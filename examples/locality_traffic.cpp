// Demonstrates the paper's headline point: oblivious routing that respects
// locality. Packets to nearby destinations (the traffic the paper's
// introduction motivates) must not be dragged across the network.
//
// The example routes distance-controlled traffic with the access-tree
// baseline (Maggs et al. [9]: near-optimal congestion, unbounded stretch)
// and with the paper's bridge-based algorithm, then delivers both path
// sets and compares end-to-end delivery times.
//
//   ./locality_traffic [side] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/evaluate.hpp"
#include "routing/registry.hpp"
#include "simulator/simulator.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace oblivious;
  const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  const Mesh mesh = Mesh::cube(2, side);
  std::cout << "network: " << mesh.describe() << "\n";
  std::cout << "workload: every node talks to a partner at distance 2, plus\n"
            << "          the pairs straddling the central bisector\n\n";

  Rng wrng(seed);
  RoutingProblem problem = random_pairs_at_distance(
      mesh, wrng, static_cast<std::size_t>(mesh.num_nodes() / 2), 2);
  const RoutingProblem straddlers = cut_straddlers(mesh);
  problem.demands.insert(problem.demands.end(), straddlers.demands.begin(),
                         straddlers.demands.end());

  const double lb = best_lower_bound(mesh, problem);
  Table table({"algorithm", "C", "D", "max stretch", "mean stretch",
               "delivery makespan"});
  for (const Algorithm a : {Algorithm::kAccessTree, Algorithm::kHierarchical2d,
                            Algorithm::kValiant}) {
    const auto router = make_router(a, mesh);
    RouteAllOptions options;
    options.seed = seed;
    const std::vector<Path> paths = route_all(mesh, *router, problem, options);
    const RouteSetMetrics m = measure_paths(mesh, problem, paths, lb);
    const SimulationResult sim = simulate(mesh, paths);
    table.row()
        .add(router->name())
        .add(m.congestion)
        .add(m.dilation)
        .add(m.max_stretch, 1)
        .add(m.mean_stretch, 2)
        .add(sim.makespan);
  }
  table.print(std::cout);

  std::cout << "\nThe access tree hauls bisector-straddling packets (distance\n"
            << "1!) through submeshes as large as the whole mesh -- dilation\n"
            << "and delivery time grow with the network. The bridge submeshes\n"
            << "of the paper cap the stretch at 64 regardless of size.\n";
  return 0;
}
