// Compares every routing algorithm on the classic hard workloads and
// prints one quality table per workload: congestion (and its ratio to the
// boundary lower bound), stretch, and random bits per packet.
//
//   ./workload_comparison [side] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/evaluate.hpp"
#include "routing/registry.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace oblivious;
  const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 32;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const Mesh mesh = Mesh::cube(2, side);
  std::cout << "network: " << mesh.describe() << "\n";

  struct Workload {
    const char* name;
    RoutingProblem problem;
  };
  Rng wrng(seed);
  const Workload workloads[] = {
      {"transpose", transpose(mesh)},
      {"bit-reversal", bit_reversal(mesh)},
      {"random-permutation", random_permutation(mesh, wrng)},
      {"tornado", tornado(mesh)},
      {"nearest-neighbor", nearest_neighbor(mesh, wrng)},
  };

  for (const Workload& w : workloads) {
    const double lb = best_lower_bound(mesh, w.problem);
    std::cout << "\n== " << w.name << " (" << w.problem.size()
              << " packets, C* >= " << lb << ") ==\n";
    Table table({"algorithm", "C", "C/C*", "D", "max stretch", "bits/packet"});
    for (const Algorithm a : algorithms_for(mesh)) {
      const auto router = make_router(a, mesh);
      RouteAllOptions options;
      options.seed = seed;
      const RouteSetMetrics m =
          evaluate_with_bound(mesh, *router, w.problem, lb, options);
      table.row()
          .add(m.algorithm)
          .add(m.congestion)
          .add(m.congestion_ratio, 2)
          .add(m.dilation)
          .add(m.max_stretch, 2)
          .add(m.bits_per_packet.mean(), 1);
    }
    table.print(std::cout);
  }
  std::cout << "\nNote how the hierarchical algorithms keep BOTH the\n"
               "congestion ratio and the stretch small, while e-cube has\n"
               "unit stretch but no congestion guarantee and Valiant has\n"
               "good congestion but diameter-scale stretch.\n";
  return 0;
}
