// How much does obliviousness cost? Routes one workload three ways --
// the offline optimizer with full knowledge of the traffic, the paper's
// oblivious algorithm, and deterministic e-cube -- and shows the edge-load
// heatmaps side by side. The offline optimum hugs the lower bound; the
// oblivious algorithm pays a log-factor premium for knowing nothing; the
// deterministic router leaves a visible hot ridge.
//
//   ./offline_vs_oblivious [side] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/evaluate.hpp"
#include "analysis/heatmap.hpp"
#include "offline/greedy.hpp"
#include "routing/registry.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace oblivious;
  const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 32;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  const Mesh mesh = Mesh::cube(2, side);
  const RoutingProblem problem = transpose(mesh);
  const double lb = best_lower_bound(mesh, problem);
  std::cout << "network : " << mesh.describe() << "\n"
            << "workload: transpose (" << problem.size() << " packets)\n"
            << "C* bound: >= " << lb << "\n\n";

  Table table({"router", "knowledge", "C", "C/C*"});

  // Offline: sees all demands, iterates to a congestion-game equilibrium.
  OfflineOptions off;
  off.seed = seed;
  const OfflineResult offline = offline_route(mesh, problem, off);
  table.row()
      .add("offline best-response")
      .add("all packets")
      .add(offline.congestion)
      .add(static_cast<double>(offline.congestion) / lb, 2);
  EdgeLoadMap offline_loads(mesh);
  offline_loads.add_paths(offline.paths);

  // Oblivious: each packet alone.
  const auto hier = make_router(Algorithm::kHierarchical2d, mesh);
  RouteAllOptions options;
  options.seed = seed;
  const std::vector<Path> hier_paths = route_all(mesh, *hier, problem, options);
  EdgeLoadMap hier_loads(mesh);
  hier_loads.add_paths(hier_paths);
  table.row()
      .add("hierarchical-2d (oblivious)")
      .add("own (s,t) only")
      .add(static_cast<std::int64_t>(hier_loads.max_load()))
      .add(static_cast<double>(hier_loads.max_load()) / lb, 2);

  // Deterministic: not even random bits.
  const auto ecube = make_router(Algorithm::kEcube, mesh);
  const std::vector<Path> ecube_paths =
      route_all(mesh, *ecube, problem, options);
  EdgeLoadMap ecube_loads(mesh);
  ecube_loads.add_paths(ecube_paths);
  table.row()
      .add("ecube (deterministic)")
      .add("own (s,t), no bits")
      .add(static_cast<std::int64_t>(ecube_loads.max_load()))
      .add(static_cast<double>(ecube_loads.max_load()) / lb, 2);

  table.print(std::cout);

  std::cout << "\necube load (note the diagonal ridge):\n"
            << render_load_heatmap(ecube_loads, 32);
  std::cout << "\nhierarchical-2d load (spread, no structure):\n"
            << render_load_heatmap(hier_loads, 32);
  std::cout << "\noffline load (flattened to near the bound):\n"
            << render_load_heatmap(offline_loads, 32);
  return 0;
}
