// Quickstart: route a hard permutation obliviously on a 2D mesh, inspect
// the path quality, and deliver the packets in the synchronous model.
//
//   ./quickstart [side] [seed]
#include <cstdlib>
#include <iostream>

#include "core/oblivious_routing.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace oblivious;
  const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // The paper's 2D algorithm on a side x side mesh.
  ObliviousMeshRouting system(Mesh::cube(2, side), Algorithm::kHierarchical2d);
  std::cout << "network: " << system.mesh().describe() << "\n";
  std::cout << "algorithm: " << system.router().name() << "\n\n";

  // A hard workload: the transpose permutation.
  const RoutingProblem problem = transpose(system.mesh());
  const RoutingRun run = system.route(problem, seed);

  const RouteSetMetrics& m = run.metrics;
  std::cout << "packets           : " << m.packets << "\n";
  std::cout << "congestion C      : " << m.congestion << "\n";
  std::cout << "lower bound C*    : >= " << m.lower_bound << "\n";
  std::cout << "competitive ratio : " << m.congestion_ratio << "\n";
  std::cout << "dilation D        : " << m.dilation << "\n";
  std::cout << "max stretch       : " << m.max_stretch
            << "  (Theorem 3.4 guarantees <= 64)\n";
  std::cout << "mean stretch      : " << m.mean_stretch << "\n";
  std::cout << "random bits/packet: " << m.bits_per_packet.mean() << "\n\n";

  // Deliver the packets: at most one packet per edge per time step.
  const SimulationResult sim = system.deliver(run.paths);
  std::cout << "delivery makespan : " << sim.makespan << " steps (completed: "
            << (sim.completed ? "yes" : "no") << ")\n";
  std::cout << "max(C, D) bound   : " << std::max(sim.congestion, sim.dilation)
            << "  -> schedule within " << sim.optimality_ratio()
            << "x of the trivial lower bound\n";
  std::cout << "mean packet delay : " << sim.queueing_delay.mean()
            << " steps of queueing\n";
  return 0;
}
