// A tour of the d-dimensional algorithm (Section 4): for d = 1..4, route
// random permutations on a d-cube, report stretch against the O(d^2)
// guarantee and congestion against the boundary lower bound, and show the
// Section 5.3 random-bit budget.
//
//   ./multidim_tour [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/evaluate.hpp"
#include "routing/hierarchical.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace oblivious;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;

  std::cout << "The d-dimensional hierarchical algorithm (Section 4),\n"
            << "naive vs frugal randomness (Section 5.3):\n\n";
  Table table({"d", "mesh", "mode", "C", "C/C*", "max stretch",
               "stretch bound 40d(d+1)", "bits/packet"});
  for (int d = 1; d <= 4; ++d) {
    const std::int64_t side = d == 1 ? 1024 : (d == 2 ? 64 : (d == 3 ? 16 : 8));
    const Mesh mesh = Mesh::cube(d, side);
    Rng wrng(seed);
    const RoutingProblem problem = random_permutation(mesh, wrng);
    const double lb = best_lower_bound(mesh, problem);
    for (const auto mode : {NdRouter::RandomnessMode::kNaive,
                            NdRouter::RandomnessMode::kFrugal}) {
      const NdRouter router(mesh, mode);
      RouteAllOptions options;
      options.seed = seed;
      const RouteSetMetrics m =
          evaluate_with_bound(mesh, *&router, problem, lb, options);
      table.row()
          .add(d)
          .add(mesh.describe())
          .add(mode == NdRouter::RandomnessMode::kNaive ? "naive" : "frugal")
          .add(m.congestion)
          .add(m.congestion_ratio, 2)
          .add(m.max_stretch, 2)
          .add(static_cast<std::int64_t>(40 * d * (d + 1)))
          .add(m.bits_per_packet.mean(), 1);
    }
  }
  table.print(std::cout);
  std::cout << "\nStretch stays far below the O(d^2) guarantee; frugal mode\n"
            << "cuts the random bits roughly by a log factor at identical\n"
            << "path quality.\n";
  return 0;
}
