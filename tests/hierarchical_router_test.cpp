#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "routing/hierarchical.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"

namespace oblivious {
namespace {

// --- Theorem 3.4: stretch <= 64 for the 2D algorithm ---------------------------

class Hierarchical2DStretch
    : public ::testing::TestWithParam<std::tuple<std::int64_t, bool>> {};

TEST_P(Hierarchical2DStretch, StretchNeverExceeds64) {
  const auto [side, torus] = GetParam();
  const Mesh mesh({side, side}, torus);
  const AncestorRouter router(mesh, AncestorRouter::Hierarchy::kAccessGraph);
  Rng rng(2025);
  RunningStats stretch;
  for (const auto& [s, t] : testing::sample_pairs(mesh, 600, 42)) {
    const Path p = router.route(s, t, rng);
    ASSERT_TRUE(is_valid_path(mesh, p));
    stretch.add(path_stretch(mesh, p));
  }
  EXPECT_LE(stretch.max(), 64.0);
  // The bound is loose in practice; typical paths are much shorter.
  EXPECT_LT(stretch.mean(), 16.0);
}

TEST_P(Hierarchical2DStretch, AdjacentPairsStayLocal) {
  // The whole point of the bridges: packets to neighboring nodes take
  // short paths even across the top-level cuts.
  const auto [side, torus] = GetParam();
  const Mesh mesh({side, side}, torus);
  const AncestorRouter router(mesh, AncestorRouter::Hierarchy::kAccessGraph);
  Rng rng(7);
  for (NodeId u = 0; u < mesh.num_nodes(); u += 3) {
    for (const NodeId v : mesh.neighbors(u)) {
      const Path p = router.route(u, v, rng);
      EXPECT_LE(p.length(), 64) << "u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Hierarchical2DStretch,
    ::testing::Combine(::testing::Values<std::int64_t>(8, 16, 32, 64),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<std::int64_t, bool>>& pinfo) {
      return testing::param_name(std::get<0>(pinfo.param),
                                 std::get<1>(pinfo.param));
    });

// --- access tree: congestion-equivalent but unbounded stretch ------------------

TEST(AccessTreeRouter, StretchGrowsWithMeshSizeAcrossTheCut) {
  // Nodes straddling the global bisector have distance 1 but only the root
  // as a type-1 common ancestor, so the access-tree path crosses
  // region-sized submeshes: stretch grows linearly with the side.
  double previous = 0.0;
  for (const std::int64_t side : {16, 32, 64}) {
    const Mesh mesh({side, side});
    const AncestorRouter router(mesh, AncestorRouter::Hierarchy::kAccessTree);
    Rng rng(5);
    const NodeId s = mesh.node_id(Coord{side / 2 - 1, side / 2});
    const NodeId t = mesh.node_id(Coord{side / 2, side / 2});
    RunningStats lengths;
    for (int i = 0; i < 60; ++i) {
      lengths.add(static_cast<double>(router.route(s, t, rng).length()));
    }
    EXPECT_GT(lengths.mean(), static_cast<double>(side) / 2.0);
    EXPECT_GT(lengths.mean(), previous);
    previous = lengths.mean();
  }
}

TEST(AccessTreeRouter, BridgelessAncestorIsRootAcrossTheCut) {
  const Mesh mesh({32, 32});
  const AncestorRouter tree(mesh, AncestorRouter::Hierarchy::kAccessTree);
  const AncestorRouter graph(mesh, AncestorRouter::Hierarchy::kAccessGraph);
  const NodeId s = mesh.node_id(Coord{15, 10});
  const NodeId t = mesh.node_id(Coord{16, 10});
  EXPECT_EQ(tree.bridge_for(s, t).level, 0);
  EXPECT_GE(graph.bridge_for(s, t).level, 3);
}

// --- Theorem 4.2: stretch O(d^2) for the d-dimensional algorithm ----------------

class NdStretch : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(NdStretch, StretchBoundedByCTimesDSquared) {
  const auto [dim, torus] = GetParam();
  const std::int64_t side = dim <= 2 ? 64 : (dim == 3 ? 16 : 8);
  const Mesh mesh = Mesh::cube(dim, side, torus);
  const NdRouter router(mesh);
  Rng rng(31);
  double max_stretch = 0.0;
  for (const auto& [s, t] : testing::sample_pairs(mesh, 400, 23)) {
    const Path p = router.route(s, t, rng);
    ASSERT_TRUE(is_valid_path(mesh, p));
    max_stretch = std::max(max_stretch, path_stretch(mesh, p));
  }
  // Theorem 4.2 with the explicit constants of its proof:
  // |p| <= 2(2 sqrt? ...) -- r2 alone is <= 2(8(d+1) d dist + d), giving a
  // conservative bound of 40 d (d+1) dist for the full path.
  const double bound = 40.0 * dim * (dim + 1);
  EXPECT_LE(max_stretch, bound) << "d=" << dim;
}

TEST_P(NdStretch, FrugalModeSameStretchGuarantee) {
  const auto [dim, torus] = GetParam();
  const std::int64_t side = dim <= 2 ? 32 : 8;
  const Mesh mesh = Mesh::cube(dim, side, torus);
  const NdRouter router(mesh, NdRouter::RandomnessMode::kFrugal);
  Rng rng(33);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 200, 29)) {
    const Path p = router.route(s, t, rng);
    ASSERT_TRUE(is_valid_path(mesh, p));
    EXPECT_LE(path_stretch(mesh, p), 40.0 * dim * (dim + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NdStretch,
    ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& pinfo) {
      return std::string(std::get<1>(pinfo.param) ? "torus" : "mesh") + "_d" +
             std::to_string(std::get<0>(pinfo.param));
    });

// --- Section 5.3: frugal randomness ---------------------------------------------

TEST(FrugalRandomness, UsesFewerBitsThanNaive) {
  const Mesh mesh = Mesh::cube(2, 64, true);
  const NdRouter naive(mesh, NdRouter::RandomnessMode::kNaive);
  const NdRouter frugal(mesh, NdRouter::RandomnessMode::kFrugal);
  const auto pairs = testing::sample_pairs(mesh, 200, 3);

  auto total_bits = [&](const NdRouter& router) {
    Rng rng(17);
    BitMeter meter;
    rng.attach_meter(&meter);
    for (const auto& [s, t] : pairs) (void)router.route(s, t, rng);
    return meter.bits;
  };
  EXPECT_LT(total_bits(frugal), total_bits(naive));
}

TEST(FrugalRandomness, BitsWithinSection53Bound) {
  // Lemma 5.4: O(d log(D d)) bits per packet. With D <= diameter and the
  // constants of the construction: dim-order O(d log d) + 2 d (h+2) bits.
  for (const int dim : {1, 2, 3}) {
    const std::int64_t side = dim <= 2 ? 64 : 16;
    const Mesh mesh = Mesh::cube(dim, side, true);
    const NdRouter frugal(mesh, NdRouter::RandomnessMode::kFrugal);
    Rng rng(19);
    BitMeter meter;
    rng.attach_meter(&meter);
    for (const auto& [s, t] : testing::sample_pairs(mesh, 100, 7)) {
      meter.reset();
      (void)frugal.route(s, t, rng);
      const double dist = static_cast<double>(mesh.distance(s, t));
      const double log_term =
          std::log2(std::max(2.0, dist * dim)) + 4.0 + std::log2(dim + 1);
      const double bound = 2.0 * dim * log_term + 2.0 * dim * std::log2(dim + 1) + 8.0;
      EXPECT_LE(static_cast<double>(meter.bits), bound)
          << "d=" << dim << " dist=" << dist;
    }
  }
}

TEST(FrugalRandomness, WaypointsStillCoverSubmeshes) {
  // The recycled bits must still produce varied intermediate nodes.
  const Mesh mesh = Mesh::cube(2, 32, true);
  const NdRouter frugal(mesh, NdRouter::RandomnessMode::kFrugal);
  Rng rng(23);
  const NodeId s = mesh.node_id(Coord{3, 3});
  const NodeId t = mesh.node_id(Coord{28, 28});
  std::set<NodeId> distinct_midpoints;
  for (int i = 0; i < 200; ++i) {
    const Path p = frugal.route(s, t, rng);
    distinct_midpoints.insert(p.nodes[p.nodes.size() / 2]);
  }
  EXPECT_GT(distinct_midpoints.size(), 20U);
}

// --- congestion sanity: the hierarchical routers spread load -------------------

TEST(HierarchicalCongestion, WithinLogFactorOfOptimalOnTranspose) {
  // Theorem 3.9 shape check: on the transpose permutation of the 32x32
  // mesh the boundary-congestion lower bound is ~16; the hierarchical
  // router must land within a small multiple of it. (Full experiment with
  // all baselines and the C/C* ratio: bench_e2_congestion_2d.)
  const Mesh mesh({32, 32});
  const AncestorRouter hier(mesh, AncestorRouter::Hierarchy::kAccessGraph);
  Rng rng(3);

  std::int64_t hier_worst = 0;
  std::vector<std::int64_t> loads(static_cast<std::size_t>(mesh.num_edges()), 0);
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    Coord c = mesh.coord(u);
    std::swap(c[0], c[1]);
    const Path p = hier.route(u, mesh.node_id(c), rng);
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      const EdgeId e = mesh.edge_between(p.nodes[i], p.nodes[i + 1]);
      hier_worst = std::max(hier_worst, ++loads[static_cast<std::size_t>(e)]);
    }
  }
  EXPECT_LE(hier_worst, 6 * 16);
  EXPECT_GE(hier_worst, 16);  // no algorithm can beat the boundary bound
}

}  // namespace
}  // namespace oblivious
