#include <gtest/gtest.h>

#include <cmath>

#include "analysis/evaluate.hpp"
#include "analysis/lower_bound.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

TEST(LowerBound, EmptyProblemIsZero) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section4(m);
  const RoutingProblem empty;
  const CongestionLowerBound lb = congestion_lower_bound(m, dec, empty);
  EXPECT_DOUBLE_EQ(lb.boundary, 0.0);
  EXPECT_DOUBLE_EQ(lb.average, 0.0);
  EXPECT_DOUBLE_EQ(lb.value(), 0.0);
}

TEST(LowerBound, SelfDemandsDoNotCount) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section4(m);
  RoutingProblem p;
  p.demands = {{3, 3}, {7, 7}};
  EXPECT_DOUBLE_EQ(congestion_lower_bound(m, dec, p).value(), 0.0);
}

TEST(LowerBound, HotspotBoundedByNodeDegree) {
  // All packets into one node must cross its <= 2d incident edges; the
  // leaf-level submesh {sink} captures exactly that.
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section4(m);
  RoutingProblem p;
  const NodeId sink = m.node_id(Coord{8, 8});
  for (NodeId u = 0; u < 40; ++u) {
    if (u != sink) p.demands.push_back({u, sink});
  }
  const CongestionLowerBound lb = congestion_lower_bound(m, dec, p);
  EXPECT_GE(lb.boundary, static_cast<double>(p.demands.size()) / 4.0);
}

TEST(LowerBound, BisectionBoundOnBlockExchange) {
  // The block-exchange workload with l = side/2 sends the whole left half
  // to the right half: |Pi'| = n/2 over out = side edges... on the section4
  // decomposition the half-mesh is not a regular submesh, but quadrant
  // bounds still force B >= (n/8) / (2*side).
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section4(m);
  const RoutingProblem p = block_exchange(m, 8);
  const CongestionLowerBound lb = congestion_lower_bound(m, dec, p);
  EXPECT_GE(lb.value(), 2.0);
}

TEST(LowerBound, AverageBoundMatchesHandComputation) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section4(m);
  RoutingProblem p;
  p.demands = {{0, m.num_nodes() - 1}};  // distance 30
  const CongestionLowerBound lb = congestion_lower_bound(m, dec, p);
  EXPECT_NEAR(lb.average, 30.0 / static_cast<double>(m.num_edges()), 1e-12);
}

TEST(LowerBound, CutFallbackMatchesHierarchicalOrderOfMagnitude) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section4(m);
  const RoutingProblem p = transpose(m);
  const double hierarchical = congestion_lower_bound(m, dec, p).value();
  const double cuts = congestion_lower_bound(m, p).value();
  EXPECT_GT(cuts, 0.0);
  EXPECT_GT(hierarchical, 0.0);
  EXPECT_LT(std::abs(std::log2(hierarchical / cuts)), 2.0);
}

TEST(LowerBound, WorksOnNonPowerOfTwoMeshes) {
  const Mesh m({6, 10});
  RoutingProblem p;
  // Everything from the left half to the right half.
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    const Coord c = m.coord(u);
    if (c[1] < 5) {
      Coord o = c;
      o[1] = c[1] + 5;
      p.demands.push_back({u, m.node_id(o)});
    }
  }
  const CongestionLowerBound lb = congestion_lower_bound(m, p);
  // 30 packets cross the 6-edge cut between columns 4 and 5.
  EXPECT_GE(lb.boundary, 5.0);
}

TEST(LowerBound, NoAlgorithmBeatsTheBound) {
  // The fundamental property: for every algorithm, achieved congestion is
  // at least the lower bound (the bound is valid for *any* routing).
  const Mesh m({16, 16});
  using ProblemFactory = RoutingProblem (*)(const Mesh&);
  const ProblemFactory factories[] = {
      [](const Mesh& mesh) { return transpose(mesh); },
      [](const Mesh& mesh) { return bit_reversal(mesh); },
      [](const Mesh& mesh) { return block_exchange(mesh, 4, 0); }};
  for (const ProblemFactory make_problem : factories) {
    const RoutingProblem problem = make_problem(m);
    const double lb = best_lower_bound(m, problem);
    for (const Algorithm a : algorithms_for(m)) {
      const auto router = make_router(a, m);
      const RouteSetMetrics metrics =
          evaluate_with_bound(m, *router, problem, lb);
      EXPECT_GE(static_cast<double>(metrics.congestion) + 1e-9, std::floor(lb))
          << algorithm_name(a);
    }
  }
}

TEST(LowerBound, ArgmaxSubmeshIsReported) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section4(m);
  const RoutingProblem p = block_exchange(m, 8);
  const CongestionLowerBound lb = congestion_lower_bound(m, dec, p);
  EXPECT_GT(lb.boundary, 0.0);
  EXPECT_GE(lb.boundary_argmax.region.volume(), 1);
}

}  // namespace
}  // namespace oblivious
