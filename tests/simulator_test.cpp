#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "simulator/simulator.hpp"
#include "test_support.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

Path make_path(std::initializer_list<NodeId> nodes) {
  Path p;
  p.nodes.assign(nodes);
  return p;
}

TEST(Simulator, SinglePacketTakesPathLengthSteps) {
  const Mesh m({4, 4});
  const SimulationResult r = simulate(m, {make_path({0, 1, 2, 3})});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 3);
  EXPECT_EQ(r.dilation, 3);
  EXPECT_EQ(r.congestion, 1);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 3.0);
  EXPECT_DOUBLE_EQ(r.queueing_delay.mean(), 0.0);
}

TEST(Simulator, TrivialPacketsFinishInstantly) {
  const Mesh m({4, 4});
  const SimulationResult r = simulate(m, {make_path({5}), make_path({7})});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_EQ(r.latency.count(), 2U);
}

TEST(Simulator, ContendingPacketsSerialize) {
  const Mesh m({4, 4});
  // Three packets all crossing edge (1,2) as their first hop cannot all
  // advance at once: one per step.
  const std::vector<Path> paths = {make_path({1, 2}), make_path({1, 2, 3}),
                                   make_path({1, 2, 6})};
  const SimulationResult r = simulate(m, paths);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.congestion, 3);
  EXPECT_GE(r.makespan, 3);  // the edge is busy for 3 consecutive steps
  EXPECT_LE(r.makespan, 4);
}

TEST(Simulator, OppositeDirectionsAlsoContend) {
  // The paper's model: at most one packet per *edge* per step, regardless
  // of direction.
  const Mesh m({4, 4});
  const std::vector<Path> paths = {make_path({1, 2}), make_path({2, 1})};
  const SimulationResult r = simulate(m, paths);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 2);
}

TEST(Simulator, MakespanAtLeastMaxOfCongestionAndDilation) {
  const Mesh m({8, 8});
  const auto router = make_router(Algorithm::kHierarchical2d, m);
  Rng rng(5);
  std::vector<Path> paths;
  for (const auto& [s, t] : testing::sample_pairs(m, 150, 9)) {
    paths.push_back(router->route(s, t, rng));
  }
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kFifo, SchedulingPolicy::kFurthestToGo,
        SchedulingPolicy::kRandomRank}) {
    SimulationOptions options;
    options.policy = policy;
    const SimulationResult r = simulate(m, paths, options);
    EXPECT_TRUE(r.completed) << policy_name(policy);
    EXPECT_GE(r.makespan, r.dilation);
    // C packets must cross the hottest edge one per step.
    EXPECT_GE(r.makespan, r.congestion);
    EXPECT_GE(r.optimality_ratio(), 1.0);
  }
}

TEST(Simulator, EveryPacketDelivered) {
  const Mesh m({8, 8});
  const auto router = make_router(Algorithm::kValiant, m);
  Rng rng(3);
  std::vector<Path> paths;
  const RoutingProblem problem = transpose(m);
  for (const Demand& d : problem.demands) {
    paths.push_back(router->route(d.src, d.dst, rng));
  }
  const SimulationResult r = simulate(m, paths);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.latency.count(), problem.size());
  EXPECT_EQ(r.queueing_delay.count(), problem.size());
  EXPECT_GE(r.queueing_delay.min(), 0.0);
}

TEST(Simulator, MaxStepsAbortsCleanly) {
  const Mesh m({8, 8});
  std::vector<Path> paths;
  for (int i = 0; i < 20; ++i) paths.push_back(make_path({0, 1, 2, 3, 4, 5, 6, 7}));
  SimulationOptions options;
  options.max_steps = 2;
  const SimulationResult r = simulate(m, paths, options);
  EXPECT_FALSE(r.completed);
}

TEST(Simulator, FurthestToGoPrioritizesLongPath) {
  const Mesh m({8, 8});
  // Packet 0: short path; packet 1: long path; both want edge (0,1) at
  // step 1. Furthest-to-go lets the long one through first.
  const std::vector<Path> paths = {make_path({0, 1}),
                                   make_path({0, 1, 2, 3, 4, 5, 6, 7})};
  SimulationOptions options;
  options.policy = SchedulingPolicy::kFurthestToGo;
  const SimulationResult r = simulate(m, paths, options);
  EXPECT_TRUE(r.completed);
  // Long packet is never delayed: makespan equals its length.
  EXPECT_EQ(r.makespan, 7);
  EXPECT_DOUBLE_EQ(r.latency.min(), 2.0);  // short one waited one step
}

TEST(Simulator, FifoPrefersEarlierArrival) {
  const Mesh m({8, 8});
  // Packet 0 reaches node 2 at step 2; packet 1 sits at node 2 from the
  // start. Under FIFO packet 1 (arrival step 0) wins edge (2,3).
  const std::vector<Path> paths = {make_path({0, 1, 2, 3}),
                                   make_path({2, 3})};
  SimulationOptions options;
  options.policy = SchedulingPolicy::kFifo;
  const SimulationResult r = simulate(m, paths, options);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.latency.min(), 1.0);  // packet 1 goes immediately
  EXPECT_EQ(r.makespan, 3);                // packet 0 undisturbed afterwards
}

TEST(Simulator, RandomRankIsDeterministicPerSeed) {
  const Mesh m({8, 8});
  const auto router = make_router(Algorithm::kRandomDimOrder, m);
  Rng rng(1);
  std::vector<Path> paths;
  for (const auto& [s, t] : testing::sample_pairs(m, 60, 2)) {
    paths.push_back(router->route(s, t, rng));
  }
  SimulationOptions options;
  options.policy = SchedulingPolicy::kRandomRank;
  options.seed = 77;
  const SimulationResult a = simulate(m, paths, options);
  const SimulationResult b = simulate(m, paths, options);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
}

TEST(Simulator, WorksOnTorusWithWrapEdges) {
  const Mesh t({8, 8}, true);
  const auto router = make_router(Algorithm::kHierarchicalNd, t);
  Rng rng(9);
  std::vector<Path> paths;
  for (const auto& [s, t2] : testing::sample_pairs(t, 100, 4)) {
    paths.push_back(router->route(s, t2, rng));
  }
  const SimulationResult r = simulate(t, paths);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.makespan, r.dilation);
}

TEST(Simulator, FullDuplexLetsOpposingPacketsPass) {
  const Mesh m({4, 4});
  const std::vector<Path> paths = {make_path({1, 2}), make_path({2, 1})};
  SimulationOptions options;
  options.full_duplex = true;
  const SimulationResult r = simulate(m, paths, options);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 1);  // both cross in the same step
}

TEST(Simulator, FullDuplexStillSerializesSameDirection) {
  const Mesh m({4, 4});
  const std::vector<Path> paths = {make_path({1, 2}), make_path({1, 2, 3})};
  SimulationOptions options;
  options.full_duplex = true;
  const SimulationResult r = simulate(m, paths, options);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.makespan, 2);  // same directed link: one per step
}

TEST(Simulator, FullDuplexNeverSlowerThanHalfDuplex) {
  const Mesh m({8, 8});
  const auto router = make_router(Algorithm::kHierarchical2d, m);
  Rng rng(5);
  std::vector<Path> paths;
  for (const auto& [s, t] : testing::sample_pairs(m, 120, 21)) {
    paths.push_back(router->route(s, t, rng));
  }
  SimulationOptions half;
  SimulationOptions full;
  full.full_duplex = true;
  const SimulationResult a = simulate(m, paths, half);
  const SimulationResult b = simulate(m, paths, full);
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
  EXPECT_LE(b.makespan, a.makespan);
}

TEST(Simulator, PolicyNames) {
  EXPECT_EQ(policy_name(SchedulingPolicy::kFifo), "fifo");
  EXPECT_EQ(policy_name(SchedulingPolicy::kFurthestToGo), "furthest-to-go");
  EXPECT_EQ(policy_name(SchedulingPolicy::kRandomRank), "random-rank");
}

}  // namespace
}  // namespace oblivious
