// Tests for the tiered contract macros (util/contracts.hpp) and the
// paper-invariant validators (mesh/contracts.hpp, analysis/congestion.hpp).
//
// The macro tier tests use two extra translation units pinned to
// OBLV_CONTRACTS_FORCE 1 and 0 (contracts_macro_on.cpp / _off.cpp), so a
// single binary proves both the throwing and the compiled-out behaviour
// in every build configuration.
#include <gtest/gtest.h>

#include "analysis/congestion.hpp"
#include "contracts_macro_modes.hpp"
#include "mesh/contracts.hpp"
#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/region.hpp"
#include "mesh/segment_path.hpp"
#include "routing/baselines.hpp"
#include "routing/hierarchical.hpp"
#include "util/contracts.hpp"

namespace oblivious {
namespace {

Path make_path(std::initializer_list<NodeId> nodes) {
  Path p;
  p.nodes.assign(nodes);
  return p;
}

// ------------------------------------------------------- macro tiers --

TEST(ContractMacros, ForcedOnExpectsAndEnsuresThrowContractViolation) {
  EXPECT_TRUE(testing::forced_on_expects_throws());
  EXPECT_TRUE(testing::forced_on_ensures_throws());
}

TEST(ContractMacros, ForcedOnEvaluatesPassingExpressionExactlyOnce) {
  EXPECT_EQ(testing::forced_on_evaluation_count(), 1);
}

TEST(ContractMacros, ForcedOffCompilesOutCompletely) {
  EXPECT_FALSE(testing::forced_off_expects_throws());
  EXPECT_FALSE(testing::forced_off_ensures_throws());
  // The expressions must never be evaluated, only parsed.
  EXPECT_EQ(testing::forced_off_evaluation_count(), 0);
}

TEST(ContractMacros, DcheckFollowsNdebugNotTheContractsSwitch) {
#if defined(NDEBUG)
  EXPECT_EQ(testing::forced_off_dcheck_is_active(), 0);
#else
  EXPECT_EQ(testing::forced_off_dcheck_is_active(), 1);
#endif
}

TEST(ContractMacros, ViolationIsDistinctFromCheckExceptions) {
  // Catchable separately from OBLV_REQUIRE's std::invalid_argument.
  static_assert(std::is_base_of_v<std::logic_error, ContractViolation>);
  static_assert(!std::is_base_of_v<std::invalid_argument, ContractViolation>);
}

// -------------------------------------------------- stretch ceilings --

TEST(StretchBound, MatchesTheoremConstants) {
  EXPECT_DOUBLE_EQ(contracts::stretch_bound(2), 64.0);        // Theorem 3.4
  EXPECT_DOUBLE_EQ(contracts::stretch_bound(3), 40.0 * 3 * 4);  // Theorem 4.2
  EXPECT_DOUBLE_EQ(contracts::stretch_bound(4), 40.0 * 4 * 5);
}

TEST(StretchBound, ShortPathPassesLongPathFails) {
  const Mesh m({8, 8});
  EXPECT_TRUE(contracts::validate_stretch_bound(m, make_path({0, 1}), 2));

  // dist(0, 1) = 1, so 65 zig-zag hops give stretch 65 > 64.
  Path zigzag;
  for (int hop = 0; hop <= 65; ++hop) zigzag.nodes.push_back(hop % 2);
  ASSERT_TRUE(is_valid_path(m, zigzag));
  ASSERT_EQ(zigzag.length(), 65);
  EXPECT_FALSE(contracts::validate_stretch_bound(m, zigzag, 2));

  // The segment-path overload agrees.
  EXPECT_FALSE(contracts::validate_stretch_bound(
      m, segments_from_path(m, zigzag), 2));
  EXPECT_TRUE(contracts::validate_stretch_bound(
      m, segments_from_path(m, make_path({0, 1})), 2));
}

// ------------------------------------------------------- path checks --

TEST(PathValidators, InMeshAndEndpoints) {
  const Mesh m({4, 4});
  const Path good = make_path({0, 1, 2, 6});
  EXPECT_TRUE(contracts::validate_path_in_mesh(m, good));
  EXPECT_TRUE(contracts::validate_path_endpoints(good, 0, 6));
  EXPECT_FALSE(contracts::validate_path_endpoints(good, 0, 2));

  EXPECT_FALSE(contracts::validate_path_in_mesh(m, make_path({0, 2})));
  EXPECT_FALSE(contracts::validate_path_in_mesh(m, Path{}));
}

TEST(SegmentPathValidators, LosslessRoundTripDetectsLossyInputs) {
  const Mesh m({8, 8});
  const Path path = make_path({0, 1, 2, 10, 18, 17});
  const SegmentPath sp = segments_from_path(m, path);
  EXPECT_TRUE(contracts::validate_segment_path(m, sp));
  EXPECT_TRUE(contracts::validate_segment_path_endpoints(sp, 0, 17));
  EXPECT_TRUE(contracts::validate_segment_path_lossless(m, sp));

  // Non-maximal runs replay fine but re-derive differently: lossy.
  // (Dimension 1 is the unit-stride dimension: 0 -> 1 -> 2.)
  SegmentPath split;
  split.source = 0;
  split.dest = 2;
  split.segments.push_back(Segment{1, 1});
  split.segments.push_back(Segment{1, 1});
  EXPECT_TRUE(contracts::validate_segment_path(m, split));
  EXPECT_FALSE(contracts::validate_segment_path_lossless(m, split));

  // Runs that walk off the mesh are invalid outright.
  SegmentPath off;
  off.source = 0;
  off.dest = 0;
  off.segments.push_back(Segment{0, -1});
  EXPECT_FALSE(contracts::validate_segment_path(m, off));
  EXPECT_FALSE(contracts::validate_segment_path_lossless(m, off));

  // A recorded destination that disagrees with the replayed runs.
  SegmentPath wrong_dest = sp;
  wrong_dest.dest = 0;
  EXPECT_FALSE(contracts::validate_segment_path(m, wrong_dest));
}

// ---------------------------------------------------- bitonic chains --

TEST(BitonicChain, AcceptsAscentThenDescent) {
  const Mesh m({8, 8});
  const std::vector<Region> chain = {
      Region(Coord{0, 0}, Coord{1, 1}),
      Region(Coord{0, 0}, Coord{2, 2}),
      Region(Coord{0, 0}, Coord{4, 4}),  // bridge
      Region(Coord{2, 2}, Coord{2, 2}),
      Region(Coord{3, 3}, Coord{1, 1}),
  };
  EXPECT_TRUE(contracts::validate_bitonic_chain(m, chain, 2));
}

TEST(BitonicChain, RejectsBrokenContainment) {
  const Mesh m({8, 8});
  // Descent leg escapes the bridge: [4,6) x [4,6) is not inside [0,4)^2.
  const std::vector<Region> broken = {
      Region(Coord{0, 0}, Coord{1, 1}),
      Region(Coord{0, 0}, Coord{4, 4}),  // bridge
      Region(Coord{4, 4}, Coord{2, 2}),
  };
  EXPECT_FALSE(contracts::validate_bitonic_chain(m, broken, 1));

  // Ascent that does not grow is equally invalid.
  const std::vector<Region> shrunk = {
      Region(Coord{0, 0}, Coord{4, 4}),
      Region(Coord{0, 0}, Coord{2, 2}),  // "ascends" into a smaller region
      Region(Coord{0, 0}, Coord{1, 1}),
  };
  EXPECT_FALSE(contracts::validate_bitonic_chain(m, shrunk, 1));
}

TEST(BitonicChain, RejectsDegenerateShapes) {
  const Mesh m({8, 8});
  EXPECT_FALSE(contracts::validate_bitonic_chain(m, {}, 0));
  const std::vector<Region> chain = {Region(Coord{0, 0}, Coord{1, 1})};
  EXPECT_FALSE(contracts::validate_bitonic_chain(m, chain, 1));  // up >= size
}

// --------------------------------------------- load-map consistency --

TEST(LoadMapConsistency, HoldsAcrossBothIngestionPathsAndMerge) {
  const Mesh m({4, 4});
  EdgeLoadMap loads(m);
  EXPECT_TRUE(contracts::validate_load_map_consistency(loads));

  loads.add_path(make_path({0, 1, 2, 6}));
  EXPECT_EQ(loads.total_edge_charges(), 3U);
  EXPECT_TRUE(contracts::validate_load_map_consistency(loads));

  loads.add_segments(segments_from_path(m, make_path({5, 6, 7})));
  EXPECT_EQ(loads.total_edge_charges(), 5U);
  EXPECT_TRUE(contracts::validate_load_map_consistency(loads));

  EdgeLoadMap other(m);
  other.add_path(make_path({0, 4, 8}));
  loads.merge(other);
  EXPECT_EQ(loads.total_edge_charges(), 7U);
  EXPECT_TRUE(contracts::validate_load_map_consistency(loads));

  loads.clear();
  EXPECT_EQ(loads.total_edge_charges(), 0U);
  EXPECT_TRUE(contracts::validate_load_map_consistency(loads));
}

TEST(LoadMapConsistency, TorusLapsChargeEveryCrossedEdge) {
  const Mesh t({8, 8}, /*torus=*/true);
  EdgeLoadMap loads(t);
  SegmentPath lap;
  lap.source = 0;
  lap.dest = 0;
  lap.segments.push_back(Segment{0, 8});  // a full lap of dimension 0
  loads.add_segments(lap);
  EXPECT_EQ(loads.total_edge_charges(), 8U);
  EXPECT_TRUE(contracts::validate_load_map_consistency(loads));
}

// ------------------------------------- contracts at the API boundary --

#if OBLV_CONTRACTS_ACTIVE
TEST(RouterContracts, OffMeshEndpointsViolateThePrecondition) {
  const Mesh m({8, 8});
  const DimensionOrderRouter router(m);
  Rng rng(1);
  EXPECT_THROW(router.route(-1, 0, rng), ContractViolation);
  EXPECT_THROW(router.route(0, m.num_nodes(), rng), ContractViolation);
  EXPECT_THROW(router.route_segments(-1, 0, rng), ContractViolation);
}
#endif

TEST(RouterContracts, HierarchicalRoutesSatisfyEveryPostcondition) {
  // Routing exercises ensures_route_result + the Theorem 3.4 stretch
  // ENSURES inside AncestorRouter in contract-checked builds; in default
  // Release this is a plain smoke test of the same invariants.
  const Mesh m({16, 16});
  const AncestorRouter router(m, AncestorRouter::Hierarchy::kAccessGraph);
  Rng rng(7);
  for (NodeId s = 0; s < m.num_nodes(); s += 37) {
    for (NodeId t = 0; t < m.num_nodes(); t += 41) {
      const Path p = router.route(s, t, rng);
      EXPECT_TRUE(contracts::validate_path_endpoints(p, s, t));
      EXPECT_TRUE(contracts::validate_path_in_mesh(m, p));
      EXPECT_TRUE(contracts::validate_stretch_bound(m, p, 2));
    }
  }
}

}  // namespace
}  // namespace oblivious
