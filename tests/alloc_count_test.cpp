// Proves the zero-allocation claim of the scratch-threaded routing path:
// after a warm-up pass (which populates the plan cache and grows every
// reusable buffer to its steady-state capacity), repeated route_into /
// route_segments_into calls on the hierarchical routers perform ZERO heap
// allocations. The test binary overrides the global allocation functions
// with counting wrappers; the contract-checked build is skipped because
// the OBLV_EXPECTS validators allocate by design.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/segment_path.hpp"
#include "parallel/soa_batch.hpp"
#include "rng/rng.hpp"
#include "routing/hierarchical.hpp"
#include "routing/registry.hpp"
#include "routing/route_scratch.hpp"
#include "test_support.hpp"
#include "util/contracts.hpp"
#include "workloads/problem.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace oblivious {
namespace {

// Routes every pair in `pairs` once (segment form) and returns the number
// of heap allocations the pass performed.
template <typename RouterT>
std::uint64_t count_pass(const RouterT& router,
                         const std::vector<std::pair<NodeId, NodeId>>& pairs,
                         RouteScratch& scratch, SegmentPath& out) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (const auto& [s, t] : pairs) {
    Rng rng(99);
    router.route_segments_into(s, t, rng, scratch, out);
  }
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

template <typename RouterT>
void expect_zero_steady_state(const RouterT& router, const Mesh& mesh) {
  const auto pairs = testing::sample_pairs(mesh, 64, 17);
  RouteScratch scratch;
  SegmentPath out;
  // Two warm-up passes: the first misses the plan cache and grows buffers,
  // the second settles any capacity that depends on warm-path sizes.
  count_pass(router, pairs, scratch, out);
  count_pass(router, pairs, scratch, out);
  EXPECT_EQ(count_pass(router, pairs, scratch, out), 0u) << router.name();
  EXPECT_EQ(count_pass(router, pairs, scratch, out), 0u) << router.name();
}

TEST(AllocCount, HierarchicalRoutersAllocateNothingSteadyState) {
#if OBLV_CONTRACTS_ACTIVE
  GTEST_SKIP() << "contract validators allocate by design";
#else
  const Mesh mesh2 = Mesh::cube(2, 16);
  expect_zero_steady_state(
      AncestorRouter(mesh2, AncestorRouter::Hierarchy::kAccessGraph), mesh2);
  expect_zero_steady_state(
      AncestorRouter(mesh2, AncestorRouter::Hierarchy::kAccessTree), mesh2);
  expect_zero_steady_state(NdRouter(mesh2), mesh2);
  expect_zero_steady_state(NdRouter(mesh2, NdRouter::RandomnessMode::kFrugal),
                           mesh2);
  const Mesh mesh3 = Mesh::cube(3, 8, /*torus=*/true);
  expect_zero_steady_state(NdRouter(mesh3), mesh3);
#endif
}

TEST(AllocCount, BaselineRoutersAllocateNothingSteadyState) {
#if OBLV_CONTRACTS_ACTIVE
  GTEST_SKIP() << "contract validators allocate by design";
#else
  const Mesh mesh = Mesh::cube(2, 16);
  for (const Algorithm algo :
       {Algorithm::kEcube, Algorithm::kRandomDimOrder, Algorithm::kStaircase,
        Algorithm::kValiant, Algorithm::kBoundedValiant}) {
    const auto router = make_router(algo, mesh);
    expect_zero_steady_state(*router, mesh);
  }
#endif
}

// The SoA batch engine's buffers are all capacity-retaining members, so
// after a warm-up batch (plan cache populated, grouping tables and draw
// rows grown, output SmallVecs spilled to their final capacity) repeated
// batches perform ZERO heap allocations -- the claim soa_batch.hpp makes.
TEST(AllocCount, SoaBatchEngineAllocatesNothingSteadyState) {
#if OBLV_CONTRACTS_ACTIVE
  GTEST_SKIP() << "contract validators allocate by design";
#else
  const auto run_engine = [](const Router& router, const Mesh& mesh) {
    const auto pairs = testing::sample_pairs(mesh, 48, 29);
    std::vector<Demand> demands;
    for (const auto& [s, t] : pairs) demands.push_back({s, t});
    for (std::size_t i = 0; i < 32; ++i) {  // repeats: multi-block groups
      demands.push_back({pairs[i % 4].first, pairs[i % 4].second});
    }
    SoaBatchEngine engine;
    std::vector<SegmentPath> out(demands.size());
    const auto pass = [&]() {
      const std::uint64_t before =
          g_alloc_count.load(std::memory_order_relaxed);
      engine.run(router, demands, /*seed=*/9, 0, demands.size(),
                 std::span<SegmentPath>(out), nullptr);
      return g_alloc_count.load(std::memory_order_relaxed) - before;
    };
    pass();
    pass();
    EXPECT_EQ(pass(), 0u) << router.name();
    EXPECT_EQ(pass(), 0u) << router.name();
  };
  const Mesh mesh2 = Mesh::cube(2, 16);
  run_engine(AncestorRouter(mesh2, AncestorRouter::Hierarchy::kAccessGraph),
             mesh2);
  run_engine(NdRouter(mesh2, NdRouter::RandomnessMode::kFrugal), mesh2);
  const Mesh mesh3 = Mesh::cube(3, 8, /*torus=*/true);
  run_engine(NdRouter(mesh3), mesh3);
  for (const Algorithm algo : {Algorithm::kEcube, Algorithm::kRandomDimOrder,
                               Algorithm::kValiant,
                               Algorithm::kBoundedValiant}) {
    const auto router = make_router(algo, mesh2);
    run_engine(*router, mesh2);
  }
#endif
}

// Sanity-check the harness itself: an allocation must be observed.
TEST(AllocCount, HarnessCountsAllocations) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  std::vector<int>* v = new std::vector<int>(100);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  delete v;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace oblivious
