#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mesh/mesh.hpp"
#include "mesh/region.hpp"
#include "rng/rng.hpp"

namespace oblivious {
namespace {

TEST(Region, WholeMeshCoversEverything) {
  const Mesh m({4, 8});
  const Region r = Region::whole(m);
  EXPECT_EQ(r.volume(), 32);
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    EXPECT_TRUE(r.contains_node(m, u));
  }
}

TEST(Region, BoxConstruction) {
  const Region r = Region::box(Coord{1, 2}, Coord{3, 5});
  EXPECT_EQ(r.anchor(), (Coord{1, 2}));
  EXPECT_EQ(r.extent(), (Coord{3, 4}));
  EXPECT_EQ(r.volume(), 12);
  EXPECT_EQ(r.max_extent(), 4);
  EXPECT_EQ(r.min_extent(), 3);
  EXPECT_THROW(Region::box(Coord{2, 2}, Coord{1, 2}), std::invalid_argument);
}

TEST(Region, ContainsOnMesh) {
  const Mesh m({8, 8});
  const Region r(Coord{2, 3}, Coord{2, 2});  // [2,3]x[3,4]
  EXPECT_TRUE(r.contains(m, Coord{2, 3}));
  EXPECT_TRUE(r.contains(m, Coord{3, 4}));
  EXPECT_FALSE(r.contains(m, Coord{4, 4}));
  EXPECT_FALSE(r.contains(m, Coord{2, 5}));
  EXPECT_FALSE(r.contains(m, Coord{1, 3}));
}

TEST(Region, ContainsWrapsOnTorus) {
  const Mesh t({8, 8}, true);
  const Region r(Coord{6, 6}, Coord{4, 4});  // wraps to [6,7,0,1] per dim
  EXPECT_TRUE(r.contains(t, Coord{6, 6}));
  EXPECT_TRUE(r.contains(t, Coord{7, 0}));
  EXPECT_TRUE(r.contains(t, Coord{0, 1}));
  EXPECT_TRUE(r.contains(t, Coord{1, 1}));
  EXPECT_FALSE(r.contains(t, Coord{2, 0}));
  EXPECT_FALSE(r.contains(t, Coord{5, 7}));
}

TEST(Region, VolumeMatchesEnumeratedContainment) {
  const Mesh t({8, 8}, true);
  const Region r(Coord{5, 7}, Coord{3, 4});
  std::int64_t count = 0;
  for (NodeId u = 0; u < t.num_nodes(); ++u) {
    if (r.contains_node(t, u)) ++count;
  }
  EXPECT_EQ(count, r.volume());
}

TEST(Region, OffsetRoundTrip) {
  const Mesh t({8, 8}, true);
  const Region r(Coord{6, 2}, Coord{4, 3});
  for (std::int64_t dx = 0; dx < 4; ++dx) {
    for (std::int64_t dy = 0; dy < 3; ++dy) {
      const Coord p = r.coord_at(t, Coord{dx, dy});
      EXPECT_TRUE(r.contains(t, p));
      EXPECT_EQ(r.offset_of(t, p), (Coord{dx, dy}));
    }
  }
}

TEST(Region, OffsetOfRejectsOutside) {
  const Mesh m({8, 8});
  const Region r(Coord{0, 0}, Coord{2, 2});
  EXPECT_THROW(r.offset_of(m, Coord{3, 3}), std::invalid_argument);
}

TEST(Region, ContainsRegionNested) {
  const Mesh m({8, 8});
  const Region outer(Coord{2, 2}, Coord{4, 4});
  const Region inner(Coord{3, 3}, Coord{2, 2});
  EXPECT_TRUE(outer.contains_region(m, inner));
  EXPECT_FALSE(inner.contains_region(m, outer));
  const Region straddling(Coord{5, 3}, Coord{2, 2});
  EXPECT_FALSE(outer.contains_region(m, straddling));
  EXPECT_TRUE(outer.contains_region(m, outer));
}

TEST(Region, ContainsRegionAcrossTorusWrap) {
  const Mesh t({8, 8}, true);
  const Region outer(Coord{6, 6}, Coord{4, 4});
  const Region inner(Coord{7, 7}, Coord{2, 2});  // fully inside the wrap
  EXPECT_TRUE(outer.contains_region(t, inner));
  const Region partially(Coord{1, 7}, Coord{2, 2});  // leaves outer in dim 0
  EXPECT_FALSE(outer.contains_region(t, partially));
}

TEST(Region, RandomCoordStaysInsideAndCoversAll) {
  const Mesh t({8, 8}, true);
  const Region r(Coord{6, 3}, Coord{3, 2});
  Rng rng(5);
  std::set<NodeId> seen;
  for (int i = 0; i < 500; ++i) {
    const Coord c = r.random_coord(t, rng);
    EXPECT_TRUE(r.contains(t, c));
    seen.insert(t.node_id(c));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(r.volume()));
}

TEST(Region, RandomCoordChargesBits) {
  const Mesh m({16, 16});
  const Region r(Coord{0, 0}, Coord{8, 4});
  Rng rng(5);
  BitMeter meter;
  rng.attach_meter(&meter);
  (void)r.random_coord(m, rng);
  EXPECT_EQ(meter.bits, 3U + 2U);  // log2(8) + log2(4)
}

TEST(Region, RejectsEmptyExtent) {
  EXPECT_THROW(Region(Coord{0}, Coord{0}), std::invalid_argument);
}

// --- boundary edge counts out(M') ------------------------------------------

TEST(BoundaryEdges, InteriorSquare) {
  const Mesh m({8, 8});
  // 2x2 box in the interior: 4 faces of 2 edges each.
  EXPECT_EQ(m.boundary_edge_count(Region(Coord{3, 3}, Coord{2, 2})), 8);
}

TEST(BoundaryEdges, CornerSquareLosesTwoFaces) {
  const Mesh m({8, 8});
  EXPECT_EQ(m.boundary_edge_count(Region(Coord{0, 0}, Coord{2, 2})), 4);
}

TEST(BoundaryEdges, EdgeSquareLosesOneFace) {
  const Mesh m({8, 8});
  EXPECT_EQ(m.boundary_edge_count(Region(Coord{0, 3}, Coord{2, 2})), 6);
}

TEST(BoundaryEdges, FullDimensionHasNoFaces) {
  const Mesh m({8, 8});
  // A full row-slab only has boundary in dimension 0.
  EXPECT_EQ(m.boundary_edge_count(Region(Coord{2, 0}, Coord{2, 8})), 16);
  EXPECT_EQ(m.boundary_edge_count(Region::whole(m)), 0);
}

TEST(BoundaryEdges, TorusAlwaysHasBothFaces) {
  const Mesh t({8, 8}, true);
  EXPECT_EQ(t.boundary_edge_count(Region(Coord{0, 0}, Coord{2, 2})), 8);
  EXPECT_EQ(t.boundary_edge_count(Region(Coord{7, 7}, Coord{2, 2})), 8);
  EXPECT_EQ(t.boundary_edge_count(Region::whole(t)), 0);
}

TEST(BoundaryEdges, MatchesBruteForceCount) {
  for (const bool torus : {false, true}) {
    const Mesh m({8, 8}, torus);
    const Region regions[] = {
        Region(Coord{0, 0}, Coord{3, 5}), Region(Coord{2, 6}, Coord{4, 2}),
        Region(Coord{5, 5}, Coord{3, 3}), Region(Coord{1, 0}, Coord{2, 8})};
    for (const Region& r : regions) {
      std::int64_t brute = 0;
      for (EdgeId e = 0; e < m.num_edges(); ++e) {
        const auto [a, b] = m.edge_endpoints(e);
        if (r.contains_node(m, a) != r.contains_node(m, b)) ++brute;
      }
      EXPECT_EQ(m.boundary_edge_count(r), brute)
          << r.describe() << " torus=" << torus;
    }
  }
}

TEST(BoundaryEdges, LemmaA4LowerBound) {
  // Lemma A.4: out(M') >= d * n'^((d-1)/d) for any submesh with n' nodes.
  const Mesh m({16, 16, 16});
  const Region regions[] = {
      Region(Coord{1, 1, 1}, Coord{4, 4, 4}),
      Region(Coord{2, 3, 4}, Coord{2, 8, 4}),
      Region(Coord{5, 5, 5}, Coord{3, 3, 9}),
  };
  for (const Region& r : regions) {
    const double n = static_cast<double>(r.volume());
    const double bound = 3.0 * std::pow(n, 2.0 / 3.0);
    EXPECT_GE(static_cast<double>(m.boundary_edge_count(r)) + 1e-9, bound)
        << r.describe();
  }
}

}  // namespace
}  // namespace oblivious
