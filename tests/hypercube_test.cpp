// The hypercube is the side-2 d-cube (Section 6 / related work [4, 8]):
// everything in the library must work on it unchanged.
#include <gtest/gtest.h>

#include "analysis/evaluate.hpp"
#include "routing/registry.hpp"
#include "test_support.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

TEST(Hypercube, TopologyIsTheBinaryCube) {
  const Mesh cube = Mesh::cube(5, 2);
  EXPECT_EQ(cube.num_nodes(), 32);
  EXPECT_EQ(cube.num_edges(), 5 * 16);  // d * 2^(d-1)
  // Node degree d; neighbors differ in exactly one bit.
  for (NodeId u = 0; u < cube.num_nodes(); ++u) {
    const auto nbrs = cube.neighbors(u);
    EXPECT_EQ(nbrs.size(), 5U);
    for (const NodeId v : nbrs) {
      EXPECT_EQ(__builtin_popcountll(static_cast<unsigned long long>(u ^ v)), 1);
    }
  }
}

TEST(Hypercube, DistanceIsHammingDistance) {
  const Mesh cube = Mesh::cube(6, 2);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const NodeId a = static_cast<NodeId>(rng.uniform_below(64));
    const NodeId b = static_cast<NodeId>(rng.uniform_below(64));
    EXPECT_EQ(cube.distance(a, b),
              __builtin_popcountll(static_cast<unsigned long long>(a ^ b)));
  }
}

TEST(Hypercube, EcubeIsBitFixing) {
  const Mesh cube = Mesh::cube(6, 2);
  const auto router = make_router(Algorithm::kEcube, cube);
  Rng rng(1);
  // Bit-fixing corrects the highest-order coordinate (bit) first and every
  // hop flips exactly one bit left to right.
  const Path p = router->route(0b101010, 0b010101, rng);
  EXPECT_EQ(p.length(), 6);
  for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
    const auto diff =
        static_cast<unsigned long long>(p.nodes[i] ^ p.nodes[i + 1]);
    EXPECT_EQ(__builtin_popcountll(diff), 1);
  }
}

TEST(Hypercube, AllRoutersProduceValidPaths) {
  const Mesh cube = Mesh::cube(7, 2);
  Rng rng(5);
  for (const Algorithm a : algorithms_for(cube)) {
    const auto router = make_router(a, cube);
    for (const auto& [s, t] : testing::sample_pairs(cube, 60, 11)) {
      const Path p = router->route(s, t, rng);
      EXPECT_TRUE(is_valid_path(cube, p)) << algorithm_name(a);
      EXPECT_EQ(p.source(), s);
      EXPECT_EQ(p.destination(), t);
    }
  }
}

TEST(Hypercube, HierarchicalRoutersApplyWithSide2) {
  // side 2 = 2^1: the decomposition has two levels and the machinery
  // degenerates gracefully.
  const Mesh cube = Mesh::cube(6, 2);
  const auto router = make_router(Algorithm::kHierarchicalNd, cube);
  Rng rng(7);
  for (const auto& [s, t] : testing::sample_pairs(cube, 60, 13)) {
    const Path p = router->route(s, t, rng);
    EXPECT_TRUE(is_valid_path(cube, p));
  }
}

TEST(Hypercube, BitTransposeHurtsBitFixing) {
  // The Omega(sqrt N) classic: address (a|b) -> (b|a).
  const int d = 10;
  const Mesh cube = Mesh::cube(d, 2);
  RoutingProblem hard;
  for (NodeId u = 0; u < cube.num_nodes(); ++u) {
    Coord c = cube.coord(u);
    Coord o = c;
    for (int i = 0; i < d / 2; ++i) {
      std::swap(o[static_cast<std::size_t>(i)],
                o[static_cast<std::size_t>(i + d / 2)]);
    }
    hard.demands.push_back({u, cube.node_id(o)});
  }
  RouteAllOptions options;
  options.seed = 3;
  const auto ecube = make_router(Algorithm::kEcube, cube);
  const auto valiant = make_router(Algorithm::kValiant, cube);
  const auto c_ecube =
      evaluate_with_bound(cube, *ecube, hard, 1.0, options).congestion;
  const auto c_valiant =
      evaluate_with_bound(cube, *valiant, hard, 1.0, options).congestion;
  EXPECT_EQ(c_ecube, 16);  // sqrt(1024)/2: all (a,a) packets share an edge
  EXPECT_LT(c_valiant, c_ecube);  // randomization spreads the hot spot
}

}  // namespace
}  // namespace oblivious
