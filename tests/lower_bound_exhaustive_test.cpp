// Validates the regular-submesh boundary-congestion bound against the
// exhaustive bound over ALL axis-aligned boxes: the regular submeshes are
// a subset of all boxes, so B_regular <= B_all, and the hierarchical
// families are rich enough that the gap is a small constant -- which is
// what makes B_regular a faithful stand-in for C* in the experiments.
#include <gtest/gtest.h>

#include "analysis/lower_bound.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

double exhaustive_boundary(const Mesh& mesh, const RoutingProblem& problem) {
  OBLV_REQUIRE(mesh.dim() == 2 && !mesh.torus(), "test helper is 2D-mesh only");
  double best = 0.0;
  for (std::int64_t x0 = 0; x0 < mesh.side(0); ++x0) {
    for (std::int64_t x1 = x0; x1 < mesh.side(0); ++x1) {
      for (std::int64_t y0 = 0; y0 < mesh.side(1); ++y0) {
        for (std::int64_t y1 = y0; y1 < mesh.side(1); ++y1) {
          const Region box = Region::box(Coord{x0, y0}, Coord{x1, y1});
          const std::int64_t out = mesh.boundary_edge_count(box);
          if (out == 0) continue;  // the whole mesh
          std::int64_t crossings = 0;
          for (const Demand& d : problem.demands) {
            if (d.src == d.dst) continue;
            if (box.contains_node(mesh, d.src) != box.contains_node(mesh, d.dst)) {
              ++crossings;
            }
          }
          best = std::max(best,
                          static_cast<double>(crossings) / static_cast<double>(out));
        }
      }
    }
  }
  return best;
}

TEST(LowerBoundExhaustive, RegularSubmeshesNeverExceedAllBoxes) {
  const Mesh mesh({8, 8});
  const Decomposition dec = Decomposition::section4(mesh);
  Rng rng(3);
  for (const auto& problem :
       {transpose(mesh), bit_reversal(mesh), random_permutation(mesh, rng),
        block_exchange(mesh, 2)}) {
    const double regular = congestion_lower_bound(mesh, dec, problem).boundary;
    const double all = exhaustive_boundary(mesh, problem);
    EXPECT_LE(regular, all + 1e-9);
  }
}

TEST(LowerBoundExhaustive, RegularSubmeshesCaptureAConstantFraction) {
  // The hierarchical families lose at most a small constant against the
  // best possible box cut -- on these workloads, at most 3x.
  const Mesh mesh({8, 8});
  const Decomposition dec = Decomposition::section4(mesh);
  Rng rng(5);
  for (const auto& problem :
       {transpose(mesh), bit_reversal(mesh), random_permutation(mesh, rng),
        block_exchange(mesh, 2), tornado(mesh)}) {
    const double regular = congestion_lower_bound(mesh, dec, problem).boundary;
    const double all = exhaustive_boundary(mesh, problem);
    if (all == 0.0) continue;
    EXPECT_GE(regular, all / 3.0)
        << "regular=" << regular << " exhaustive=" << all;
  }
}

TEST(LowerBoundExhaustive, HotspotIsCapturedExactly) {
  // The worst box for a hotspot is the sink itself, which IS a regular
  // submesh (leaf level), so the two bounds agree.
  const Mesh mesh({8, 8});
  const Decomposition dec = Decomposition::section4(mesh);
  Rng rng(7);
  const RoutingProblem problem = hotspot(mesh, rng, 30);
  const double regular = congestion_lower_bound(mesh, dec, problem).boundary;
  const double all = exhaustive_boundary(mesh, problem);
  EXPECT_DOUBLE_EQ(regular, all);
}

}  // namespace
}  // namespace oblivious
