// Fault subsystem: schedule determinism, recovery policy, accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/fault_batch.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_router.hpp"
#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"
#include "routing/route_scratch.hpp"
#include "simulator/cut_through.hpp"
#include "simulator/online.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

FaultConfig dynamic_config(double rate, std::int64_t horizon,
                           std::uint64_t seed) {
  FaultConfig config;
  config.edge_fail_prob = rate;
  config.horizon = horizon;
  config.seed = seed;
  return config;
}

// All edges of row `y` (dimension-0 edges between (x,y) and (x+1,y)),
// severing horizontal movement along that row.
std::vector<EdgeId> row_edges(const Mesh& mesh, std::int64_t y) {
  std::vector<EdgeId> edges;
  for (std::int64_t x = 0; x + 1 < mesh.side(0); ++x) {
    edges.push_back(mesh.edge_id({x, y}, 0));
  }
  return edges;
}

TEST(FaultModel, FaultFreeShortCircuits) {
  const Mesh mesh({8, 8});
  const FaultModel model(mesh, FaultConfig{});
  EXPECT_TRUE(model.fault_free());
  EXPECT_EQ(model.failures_injected(), 0);
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    EXPECT_FALSE(model.edge_failed(e, 0));
  }
  EXPECT_EQ(wrap_if_faulty(*make_router(Algorithm::kEcube, mesh), model),
            nullptr);
}

TEST(FaultModel, ScheduleIsQueryOrderIndependent) {
  const Mesh mesh({8, 8});
  const FaultModel model(mesh, dynamic_config(0.05, 64, 11));
  // Forward sweep vs reverse sweep vs interval reconstruction: three
  // access orders, one schedule.
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    std::vector<bool> forward;
    for (std::int64_t s = 0; s < 64; ++s) {
      forward.push_back(model.edge_failed(e, s));
    }
    for (std::int64_t s = 63; s >= 0; --s) {
      EXPECT_EQ(model.edge_failed(e, s), forward[static_cast<std::size_t>(s)]);
    }
    std::vector<bool> from_intervals(64, false);
    for (const auto& [start, end] : model.intervals(e)) {
      ASSERT_LT(start, end);
      ASSERT_GE(start, 0);
      ASSERT_LE(end, 64);
      for (std::int64_t s = start; s < end; ++s) {
        from_intervals[static_cast<std::size_t>(s)] = true;
      }
    }
    for (std::int64_t s = 0; s < 64; ++s) {
      EXPECT_EQ(forward[static_cast<std::size_t>(s)],
                from_intervals[static_cast<std::size_t>(s)]);
    }
  }
}

TEST(FaultModel, IdenticalSeedsIdenticalSchedules) {
  const Mesh mesh({6, 6});
  const FaultModel a(mesh, dynamic_config(0.1, 32, 5));
  const FaultModel b(mesh, dynamic_config(0.1, 32, 5));
  const FaultModel other(mesh, dynamic_config(0.1, 32, 6));
  EXPECT_EQ(a.failures_injected(), b.failures_injected());
  bool any_difference = false;
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    EXPECT_EQ(a.intervals(e), b.intervals(e));
    if (a.intervals(e) != other.intervals(e)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);  // the seed actually reaches the schedule
}

TEST(FaultModel, FailedNodeKillsIncidentEdges) {
  const Mesh mesh({8, 8});
  FaultConfig config;
  const NodeId center = mesh.node_id({4, 4});
  config.failed_nodes = {center};
  const FaultModel model(mesh, config);
  EXPECT_TRUE(model.node_failed(center));
  EXPECT_FALSE(model.node_failed(mesh.node_id({0, 0})));
  for (int d = 0; d < mesh.dim(); ++d) {
    for (int dir : {-1, +1}) {
      const NodeId nb = mesh.step(center, d, dir);
      ASSERT_NE(nb, kInvalidNode);
      EXPECT_TRUE(model.edge_failed(mesh.edge_between(center, nb)));
    }
  }
  EXPECT_EQ(model.static_failed_edges(), 4);
}

TEST(FaultModel, ContractsRejectBadConfig) {
  const Mesh mesh({4, 4});
  EXPECT_THROW(FaultModel(mesh, dynamic_config(1.5, 8, 1)),
               std::invalid_argument);
  EXPECT_THROW(FaultModel(mesh, dynamic_config(-0.1, 8, 1)),
               std::invalid_argument);
  FaultConfig bad_edge;
  bad_edge.failed_edges = {mesh.num_edges()};
  EXPECT_THROW(FaultModel(mesh, bad_edge), std::invalid_argument);
  FaultConfig bad_node;
  bad_node.failed_nodes = {mesh.num_nodes()};
  EXPECT_THROW(FaultModel(mesh, bad_node), std::invalid_argument);
  const FaultModel model(mesh, FaultConfig{});
  const auto router = make_router(Algorithm::kEcube, mesh);
  RetryPolicy no_attempts;
  no_attempts.max_attempts = 0;
  EXPECT_THROW(FaultAwareRouter(*router, model, no_attempts),
               std::invalid_argument);
  const Mesh other({6, 6});
  const FaultModel other_model(other, FaultConfig{});
  EXPECT_THROW(FaultAwareRouter(*router, other_model), std::invalid_argument);
}

TEST(FaultRouter, RateZeroIsDrawForDrawIdentical) {
  const Mesh mesh({16, 16});
  const FaultModel model(mesh, FaultConfig{});
  for (const Algorithm a : algorithms_for(mesh)) {
    const auto inner = make_router(a, mesh);
    const FaultAwareRouter wrapped(*inner, model);
    RouteScratch scratch;
    for (std::size_t i = 0; i < 64; ++i) {
      Rng plain_rng = packet_rng(3, i);
      Rng fault_rng = packet_rng(3, i);
      const NodeId s = static_cast<NodeId>((i * 37) % 256);
      const NodeId t = static_cast<NodeId>((i * 101 + 13) % 256);
      Path plain;
      inner->route_into(s, t, plain_rng, scratch, plain);
      const Path kept = plain;  // route_into may alias scratch.path
      Path under_faults;
      const FaultRouteOutcome outcome =
          wrapped.route_with_faults(s, t, fault_rng, scratch, under_faults);
      EXPECT_EQ(outcome.status, FaultRouteStatus::kClean) << inner->name();
      EXPECT_EQ(kept.nodes, under_faults.nodes) << inner->name();
      // The decorator consumed exactly the same random bits.
      EXPECT_EQ(plain_rng.bits(32), fault_rng.bits(32)) << inner->name();
    }
  }
}

TEST(FaultRouter, RetryRecoversAroundStaticFailures) {
  const Mesh mesh({16, 16});
  FaultConfig config;
  // A scattering of dead links ecube's fixed path will sometimes cross;
  // a randomized router re-draws around them.
  for (std::int64_t x = 0; x < 15; x += 2) {
    config.failed_edges.push_back(mesh.edge_id({x, 7}, 0));
  }
  const FaultModel model(mesh, config);
  const auto inner = make_router(Algorithm::kValiant, mesh);
  const FaultAwareRouter wrapped(*inner, model);
  RouteScratch scratch;
  int recovered = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    Rng rng = packet_rng(9, i);
    const NodeId s = static_cast<NodeId>(i);
    const NodeId t = static_cast<NodeId>(255 - i);
    if (s == t) continue;
    Path out;
    const FaultRouteOutcome outcome =
        wrapped.route_with_faults(s, t, rng, scratch, out);
    ASSERT_TRUE(outcome.delivered());
    EXPECT_TRUE(is_valid_path(mesh, out));
    EXPECT_EQ(out.source(), s);
    EXPECT_EQ(out.destination(), t);
    EXPECT_FALSE(model.path_failed(out));
    if (outcome.status != FaultRouteStatus::kClean) ++recovered;
  }
  EXPECT_GT(recovered, 0);  // the dead links were actually in the way
}

TEST(FaultRouter, DetourCrossesSeveredRow) {
  const Mesh mesh({16, 16});
  FaultConfig config;
  // Kill every horizontal edge of row 8 except the rightmost: ecube's
  // x-then-y path from (0,8) to (15,8) is dead on the first hop and every
  // re-draw repeats it, so only the greedy detour can deliver.
  config.failed_edges = row_edges(mesh, 8);
  config.failed_edges.pop_back();  // leave (14,8)-(15,8) alive
  const FaultModel model(mesh, config);
  const auto inner = make_router(Algorithm::kEcube, mesh);
  const FaultAwareRouter wrapped(*inner, model);
  RouteScratch scratch;
  Rng rng(4);
  Path out;
  const NodeId s = mesh.node_id({0, 8});
  const NodeId t = mesh.node_id({15, 8});
  const FaultRouteOutcome outcome =
      wrapped.route_with_faults(s, t, rng, scratch, out);
  EXPECT_EQ(outcome.status, FaultRouteStatus::kDetoured);
  ASSERT_TRUE(is_valid_path(mesh, out));
  EXPECT_EQ(out.source(), s);
  EXPECT_EQ(out.destination(), t);
  EXPECT_FALSE(model.path_failed(out));
}

TEST(FaultRouter, ExhaustedBudgetIsCountedDrop) {
  const Mesh mesh({8, 8});
  FaultConfig config;
  // Island the destination: no alive path exists, so retries and the
  // detour must both fail and the packet must come back counted.
  const NodeId t = mesh.node_id({7, 7});
  config.failed_nodes = {t};
  const FaultModel model(mesh, config);
  const auto inner = make_router(Algorithm::kEcube, mesh);
  const FaultAwareRouter wrapped(*inner, model);
  RouteScratch scratch;
  Rng rng(1);
  Path out;
  const FaultRouteOutcome outcome =
      wrapped.route_with_faults(0, t, rng, scratch, out);
  EXPECT_EQ(outcome.status, FaultRouteStatus::kDropped);
  EXPECT_FALSE(outcome.delivered());
  // Router postcondition still holds: `out` is a real s -> t mesh path
  // (it just crosses dead links).
  EXPECT_TRUE(is_valid_path(mesh, out));
  EXPECT_EQ(out.destination(), t);
  EXPECT_TRUE(model.path_failed(out));
}

TEST(FaultBatchParallel, BitIdenticalAcrossThreadCountsAndChunks) {
  const Mesh mesh({16, 16});
  Rng wrng(2);
  const RoutingProblem problem = random_permutation(mesh, wrng);
  const FaultModel model(mesh, dynamic_config(0.02, 1, 17));
  const auto inner = make_router(Algorithm::kValiant, mesh);
  const FaultAwareRouter wrapped(*inner, model);

  std::vector<SegmentPath> reference;
  std::vector<FaultRouteStatus> reference_statuses;
  FaultBatchStats reference_stats;
  {
    ThreadPool pool(1);
    reference_stats = route_batch_with_faults(
        wrapped, std::span<const Demand>(problem.demands), pool,
        RouteBatchOptions{}, reference, &reference_statuses);
  }
  EXPECT_EQ(reference_stats.demands,
            static_cast<std::int64_t>(problem.size()));
  EXPECT_EQ(reference_stats.delivered + reference_stats.dropped,
            reference_stats.demands);
  EXPECT_GT(reference_stats.retried + reference_stats.detoured +
                reference_stats.dropped,
            0);  // the schedule actually bit

  for (const std::size_t threads : {2U, 8U}) {
    for (const std::size_t chunk : {0U, 1U, 7U}) {
      ThreadPool pool(threads);
      RouteBatchOptions options;
      options.chunk_size = chunk;
      std::vector<SegmentPath> out;
      std::vector<FaultRouteStatus> statuses;
      const FaultBatchStats stats = route_batch_with_faults(
          wrapped, std::span<const Demand>(problem.demands), pool, options,
          out, &statuses);
      EXPECT_EQ(stats.delivered, reference_stats.delivered);
      EXPECT_EQ(stats.dropped, reference_stats.dropped);
      EXPECT_EQ(stats.attempts, reference_stats.attempts);
      EXPECT_EQ(stats.backoff_steps, reference_stats.backoff_steps);
      ASSERT_EQ(out.size(), reference.size());
      EXPECT_EQ(statuses, reference_statuses);
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].segments, reference[i].segments) << "packet " << i;
      }
    }
  }
}

TEST(FaultOnline, AccountingHoldsUnderDynamicFaults) {
  const Mesh mesh({8, 8});
  Rng wrng(6);
  const OnlineWorkload workload =
      bernoulli_arrivals(mesh, 0.05, 40, TrafficPattern::kUniform, wrng);
  const auto router = make_router(Algorithm::kRandomDimOrder, mesh);
  const FaultModel model(mesh, dynamic_config(0.01, 4096, 23));
  OnlineOptions options;
  options.faults = &model;
  options.retry.max_attempts = 3;
  const OnlineResult faulty = simulate_online(mesh, *router, workload, options);
  ASSERT_TRUE(faulty.completed);
  EXPECT_EQ(faulty.delivered + faulty.dropped, faulty.injected);
  EXPECT_EQ(faulty.injected,
            static_cast<std::int64_t>(workload.packets.size()));
}

TEST(FaultOnline, NullAndFaultFreeModelsMatchBaseline) {
  const Mesh mesh({8, 8});
  Rng wrng(8);
  const OnlineWorkload workload =
      bernoulli_arrivals(mesh, 0.1, 30, TrafficPattern::kUniform, wrng);
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  const OnlineResult baseline = simulate_online(mesh, *router, workload);
  const FaultModel inert(mesh, FaultConfig{});
  OnlineOptions options;
  options.faults = &inert;
  const OnlineResult with_model =
      simulate_online(mesh, *router, workload, options);
  EXPECT_EQ(with_model.delivered, baseline.delivered);
  EXPECT_EQ(with_model.dropped, 0);
  EXPECT_EQ(with_model.last_delivery, baseline.last_delivery);
  EXPECT_EQ(with_model.latency.mean(), baseline.latency.mean());
}

TEST(FaultCutThrough, ReroutesOrDropsEveryStuckPacket) {
  const Mesh mesh({8, 8});
  const auto router = make_router(Algorithm::kRandomDimOrder, mesh);
  Rng rng(5);
  std::vector<Path> paths;
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    const NodeId t = static_cast<NodeId>(mesh.num_nodes() - 1 - s);
    if (s == t) continue;
    paths.push_back(router->route(s, t, rng));
  }
  const FaultModel model(mesh, dynamic_config(0.01, 4096, 31));
  CutThroughOptions options;
  options.faults = &model;
  options.reroute_router = router.get();
  options.retry.max_attempts = 3;
  const CutThroughResult r = simulate_cut_through(mesh, paths, options);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.injected, static_cast<std::int64_t>(paths.size()));
  EXPECT_EQ(r.delivered + r.dropped, r.injected);
}

}  // namespace
}  // namespace oblivious
