// In-process integration tests for the oblvd server: end-to-end routing
// equivalence with route_batch, the introspection endpoint, admission
// backpressure, wire-level abuse (oversize prefixes, unknown versions,
// mid-stream disconnects) that must stay per-connection, and the
// graceful-drain accounting invariant.
#include "daemon/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "mesh/mesh.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"

namespace oblivious::daemon {
namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  // sun_path caps at ~107 bytes; keep it short and unique per process
  // and per server instance.
  return "/tmp/oblvt-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// Runs a Server on its own thread for the duration of a test.
class ServerHarness {
 public:
  // `use_tcp` requests a loopback TCP listener on an ephemeral port
  // (tcp_port 0 means "pick one", so it cannot double as a default).
  explicit ServerHarness(const Mesh& mesh, ServerOptions options = {},
                         bool use_tcp = false) {
    if (!use_tcp && options.endpoint.unix_path.empty()) {
      options.endpoint.unix_path = unique_socket_path();
    }
    options.poll_tick_ms = 10;  // fast drain in tests
    endpoint_ = options.endpoint;
    server_ = std::make_unique<Server>(mesh, options);
    thread_ = std::thread([this] { exit_code_ = server_->run(); });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!server_->serving()) {
      if (std::chrono::steady_clock::now() >= deadline) {
        thread_.join();
        throw std::runtime_error("server did not start serving");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!endpoint_.is_unix()) {
      endpoint_.tcp_port = server_->bound_port();
    }
  }

  ~ServerHarness() { drain(); }

  // Idempotent; returns run()'s exit code.
  int drain() {
    if (thread_.joinable()) {
      server_->request_drain();
      thread_.join();
    }
    return exit_code_;
  }

  const Endpoint& endpoint() const { return endpoint_; }
  Server& server() { return *server_; }

 private:
  Endpoint endpoint_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

std::vector<Demand> some_demands(const Mesh& mesh, std::size_t n,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Demand> demands;
  const auto nodes = static_cast<std::uint64_t>(mesh.num_nodes());
  for (std::size_t i = 0; i < n; ++i) {
    demands.push_back(
        Demand{static_cast<std::int64_t>(rng.uniform_below(nodes)),
               static_cast<std::int64_t>(rng.uniform_below(nodes))});
  }
  return demands;
}

TEST(DaemonServerTest, PingPong) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  DaemonClient client(harness.endpoint());
  EXPECT_TRUE(client.ping());
}

TEST(DaemonServerTest, ServesOnLoopbackTcp) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh, {}, /*use_tcp=*/true);
  ASSERT_NE(harness.endpoint().tcp_port, 0);
  DaemonClient client(harness.endpoint());
  EXPECT_TRUE(client.ping());
}

TEST(DaemonServerTest, RoutesMatchLocalRouteBatchBitForBit) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  DaemonClient client(harness.endpoint());

  const std::uint64_t seed = 1234;
  const auto demands = some_demands(mesh, 100, 99);
  const RouteResponse response = client.route("test", seed, demands);
  ASSERT_EQ(response.status, RouteStatus::kOk);
  ASSERT_EQ(response.paths.size(), demands.size());

  // Determinism contract: the daemon's answer is bit-identical to a
  // local route_batch with the same seed, regardless of batching.
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  ThreadPool pool(2);
  RouteBatchOptions options;
  options.seed = seed;
  std::vector<SegmentPath> local;
  route_batch(*router, demands, pool, options, local);
  ASSERT_EQ(local.size(), response.paths.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(local[i], response.paths[i]) << "path " << i << " diverged";
  }
}

TEST(DaemonServerTest, ConcurrentClientsAllGetTheirOwnAnswers) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DaemonClient client(harness.endpoint());
      for (int r = 0; r < kRequests; ++r) {
        const std::uint64_t seed = 1000 + c * 100 + r;
        const auto demands = some_demands(mesh, 16 + c, seed);
        const RouteResponse response =
            client.route("tenant" + std::to_string(c), seed, demands);
        if (response.status != RouteStatus::kOk ||
            response.paths.size() != demands.size()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(harness.drain(), 0);
  const ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.requests_delivered,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(stats.unaccounted_requests(), 0);
}

TEST(DaemonServerTest, MetricsEndpointServesEnvelope) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  DaemonClient client(harness.endpoint());
  (void)client.route("test", 7, some_demands(mesh, 10, 7));
  const std::string json = client.metrics_json();
  EXPECT_NE(json.find("\"schema\": \"oblv-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("daemon.requests.submitted"), std::string::npos);
  EXPECT_NE(json.find("daemon.unaccounted"), std::string::npos);
  EXPECT_NE(json.find("daemon.tenant.test.served_packets"),
            std::string::npos);
}

TEST(DaemonServerTest, BackpressureRejectsWithRetryAfter) {
  const Mesh mesh({16, 16});
  ServerOptions options;
  options.queue.capacity_packets = 64;  // any request > 64 packets can't fit
  ServerHarness harness(mesh, options);
  DaemonClient client(harness.endpoint());
  const RouteResponse response =
      client.route("greedy", 1, some_demands(mesh, 100, 1));
  EXPECT_EQ(response.status, RouteStatus::kRejected);
  EXPECT_GT(response.retry_after_ms, 0u);
  EXPECT_TRUE(response.paths.empty());
  // The rejected request still counts toward the accounting identity.
  EXPECT_EQ(harness.drain(), 0);
  const ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.requests_rejected, 1u);
  EXPECT_EQ(stats.unaccounted_requests(), 0);
}

TEST(DaemonServerTest, InvalidEndpointsAreRefusedPerRequest) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  DaemonClient client(harness.endpoint());
  const RouteResponse bad =
      client.route("test", 1, {{0, mesh.num_nodes() + 5}});
  EXPECT_EQ(bad.status, RouteStatus::kError);
  EXPECT_NE(bad.message.find("off the mesh"), std::string::npos);
  // The connection survives a refused request.
  const RouteResponse good = client.route("test", 1, {{0, 1}});
  EXPECT_EQ(good.status, RouteStatus::kOk);
}

TEST(DaemonServerTest, MidStreamDisconnectDoesNotWedgeAcceptLoop) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  {
    // Half a length prefix, then slam the connection shut.
    UniqueFd raw = connect_to(harness.endpoint());
    const std::uint8_t partial[2] = {0x08, 0x00};
    ASSERT_EQ(write_all(raw.get(), partial, 2, 1000), IoStatus::kOk);
  }
  {
    // A whole prefix promising a payload that never comes.
    UniqueFd raw = connect_to(harness.endpoint());
    const std::uint8_t prefix[4] = {0x40, 0x00, 0x00, 0x00};
    ASSERT_EQ(write_all(raw.get(), prefix, 4, 1000), IoStatus::kOk);
  }
  // New connections keep working.
  DaemonClient client(harness.endpoint());
  EXPECT_TRUE(client.ping());
  EXPECT_EQ(harness.drain(), 0);
  EXPECT_GE(harness.server().stats().protocol_errors, 1u);
}

TEST(DaemonServerTest, OversizeLengthPrefixFailsOnlyThatConnection) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  {
    UniqueFd raw = connect_to(harness.endpoint());
    // 2 GiB length prefix: must be refused before any allocation.
    const std::uint8_t prefix[4] = {0x00, 0x00, 0x00, 0x80};
    ASSERT_EQ(write_all(raw.get(), prefix, 4, 1000), IoStatus::kOk);
    // The server drops the connection without a response.
    std::vector<std::uint8_t> payload;
    const IoStatus status = read_frame(raw.get(), payload, 5000);
    EXPECT_EQ(status, IoStatus::kClosed);
  }
  DaemonClient client(harness.endpoint());
  EXPECT_TRUE(client.ping());
  EXPECT_EQ(harness.drain(), 0);
  EXPECT_GE(harness.server().stats().protocol_errors, 1u);
}

TEST(DaemonServerTest, UnknownVersionGetsErrorResponseThenClose) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  {
    UniqueFd raw = connect_to(harness.endpoint());
    std::vector<std::uint8_t> frame;
    encode_ping(3, frame);
    frame[4 + 4] = 0x63;  // corrupt the version field (prefix + magic)
    ASSERT_EQ(write_all(raw.get(), frame.data(), frame.size(), 1000),
              IoStatus::kOk);
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(read_frame(raw.get(), payload, 5000), IoStatus::kOk);
    const RouteResponse error =
        decode_route_response(payload.data(), payload.size());
    EXPECT_EQ(error.status, RouteStatus::kError);
    EXPECT_NE(error.message.find("version"), std::string::npos);
    // ...then the connection closes.
    EXPECT_EQ(read_frame(raw.get(), payload, 5000), IoStatus::kClosed);
  }
  DaemonClient client(harness.endpoint());
  EXPECT_TRUE(client.ping());
}

TEST(DaemonServerTest, DeadlineMeasuredFromFrameStartShedsSlowLoris) {
  // The v2 deadline budget starts when the frame's first byte arrives,
  // so a client that dribbles its frame consumes its own budget: a
  // 1 ms deadline written with a 50 ms mid-frame pause must come back
  // kExpired (shed at admission), deterministically.
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  {
    RouteRequest request;
    request.request_id = 5;
    request.seed = 3;
    request.deadline_ms = 1;
    request.tenant = "loris";
    request.demands = some_demands(mesh, 8, 3);
    std::vector<std::uint8_t> frame;
    encode_route_request(request, frame);

    UniqueFd raw = connect_to(harness.endpoint());
    ASSERT_EQ(write_all(raw.get(), frame.data(), 10, 1000), IoStatus::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_EQ(write_all(raw.get(), frame.data() + 10, frame.size() - 10,
                        1000),
              IoStatus::kOk);
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(read_frame(raw.get(), payload, 5000), IoStatus::kOk);
    const RouteResponse response =
        decode_route_response(payload.data(), payload.size());
    EXPECT_EQ(response.status, RouteStatus::kExpired);
    EXPECT_TRUE(response.paths.empty());
  }
  EXPECT_EQ(harness.drain(), 0);
  const ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.requests_expired, 1u);
  EXPECT_EQ(stats.requests_delivered, 0u);
  EXPECT_EQ(stats.unaccounted_requests(), 0);
}

TEST(DaemonServerTest, GenerousDeadlineStillDelivers) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  DaemonClient client(harness.endpoint());
  const auto demands = some_demands(mesh, 16, 11);
  const RouteResponse response =
      client.route("t", 11, demands, /*deadline_ms=*/60000);
  ASSERT_EQ(response.status, RouteStatus::kOk);
  EXPECT_EQ(response.paths.size(), demands.size());
}

TEST(DaemonServerTest, V1ClientIsServedAndAnsweredInV1) {
  // A legacy client speaks version 1 (no deadline field); the server
  // must decode it and echo version 1 in the response header so the
  // client never sees a frame it cannot parse.
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  RouteRequest request;
  request.request_id = 77;
  request.seed = 9;
  request.tenant = "legacy";
  request.demands = some_demands(mesh, 12, 9);
  std::vector<std::uint8_t> frame;
  encode_route_request(request, frame, /*version=*/1);

  UniqueFd raw = connect_to(harness.endpoint());
  ASSERT_EQ(write_all(raw.get(), frame.data(), frame.size(), 1000),
            IoStatus::kOk);
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(raw.get(), payload, 5000), IoStatus::kOk);
  EXPECT_EQ(decode_header(payload.data(), payload.size()).version, 1u);
  const RouteResponse response =
      decode_route_response(payload.data(), payload.size());
  EXPECT_EQ(response.request_id, 77u);
  ASSERT_EQ(response.status, RouteStatus::kOk);
  EXPECT_EQ(response.paths.size(), request.demands.size());
}

TEST(DaemonServerTest, RetryPolicyBacksOffAndCountsAttempts) {
  const Mesh mesh({16, 16});
  ServerOptions options;
  options.queue.capacity_packets = 64;
  ServerHarness harness(mesh, options);
  DaemonClient client(harness.endpoint());
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.base_ms = 1;
  policy.max_backoff_ms = 5;  // keep the test fast
  // 100 packets can never fit a 64-packet queue: every attempt is
  // rejected, the client must burn exactly max_retries retries and
  // surface the final rejection.
  const RouteResponse response = client.route_with_retry(
      "greedy", 1, some_demands(mesh, 100, 1), /*deadline_ms=*/0, policy);
  EXPECT_EQ(response.status, RouteStatus::kRejected);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_GT(client.stats().backoff_ms_total, 0u);
  EXPECT_EQ(harness.drain(), 0);
  EXPECT_EQ(harness.server().stats().requests_rejected, 3u);
  EXPECT_EQ(harness.server().stats().unaccounted_requests(), 0);
}

TEST(DaemonServerTest, DrainDeliversEverythingAdmitted) {
  const Mesh mesh({16, 16});
  ServerHarness harness(mesh);
  constexpr int kRequests = 20;
  std::thread producer([&] {
    DaemonClient client(harness.endpoint());
    for (int i = 0; i < kRequests; ++i) {
      try {
        const RouteResponse r =
            client.route("t", 1 + i, some_demands(mesh, 32, i));
        // Admitted requests are delivered even if the drain starts
        // while they are queued; late ones may see kShuttingDown.
        EXPECT_TRUE(r.status == RouteStatus::kOk ||
                    r.status == RouteStatus::kShuttingDown);
      } catch (const ClientError&) {
        break;  // the drain completed and closed the connection
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(harness.drain(), 0);
  producer.join();
  const ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.unaccounted_requests(), 0);
  EXPECT_EQ(stats.requests_delivered + stats.requests_rejected +
                stats.requests_expired,
            stats.requests_submitted);
}

}  // namespace
}  // namespace oblivious::daemon
