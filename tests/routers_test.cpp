#include <gtest/gtest.h>

#include <tuple>

#include "routing/baselines.hpp"
#include "routing/hierarchical.hpp"
#include "routing/registry.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

// --- registry ------------------------------------------------------------------

TEST(Registry, NamesRoundTrip) {
  for (const Algorithm a : all_algorithms()) {
    const auto back = algorithm_from_name(algorithm_name(a));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
  EXPECT_FALSE(algorithm_from_name("no-such-router").has_value());
}

TEST(Registry, MakeRouterProducesMatchingName) {
  const Mesh mesh({16, 16});
  for (const Algorithm a : algorithms_for(mesh)) {
    const auto router = make_router(a, mesh);
    EXPECT_EQ(router->name(), algorithm_name(a));
  }
}

TEST(Registry, NonPowerOfTwoMeshGetsBaselinesOnly) {
  const Mesh mesh({6, 6});
  const auto algorithms = algorithms_for(mesh);
  EXPECT_EQ(algorithms.size(), 5U);
  for (const Algorithm a : algorithms) {
    EXPECT_NE(a, Algorithm::kHierarchical2d);
    EXPECT_NE(a, Algorithm::kAccessTree);
  }
}

// --- generic router contract -----------------------------------------------------

class EveryRouter
    : public ::testing::TestWithParam<std::tuple<Algorithm, bool>> {};

TEST_P(EveryRouter, PathsAreValidWithCorrectEndpoints) {
  const auto [algorithm, torus] = GetParam();
  const Mesh mesh({16, 16}, torus);
  const auto router = make_router(algorithm, mesh);
  Rng rng(12345);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 200, 5)) {
    const Path p = router->route(s, t, rng);
    ASSERT_TRUE(is_valid_path(mesh, p)) << router->name();
    EXPECT_EQ(p.source(), s);
    EXPECT_EQ(p.destination(), t);
  }
}

TEST_P(EveryRouter, SelfRouteIsTrivial) {
  const auto [algorithm, torus] = GetParam();
  const Mesh mesh({16, 16}, torus);
  const auto router = make_router(algorithm, mesh);
  Rng rng(7);
  const Path p = router->route(5, 5, rng);
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{5}));
}

TEST_P(EveryRouter, DeterministicGivenSameRngState) {
  const auto [algorithm, torus] = GetParam();
  const Mesh mesh({16, 16}, torus);
  const auto router = make_router(algorithm, mesh);
  Rng rng1(99);
  Rng rng2(99);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 50, 3)) {
    EXPECT_EQ(router->route(s, t, rng1).nodes, router->route(s, t, rng2).nodes);
  }
}

TEST_P(EveryRouter, ObliviousNoHiddenStateAcrossPackets) {
  // Oblivious path selection: the path of a packet depends only on its own
  // (s, t, randomness). Routing other packets first through the same
  // router instance must not change the path a given packet gets.
  const auto [algorithm, torus] = GetParam();
  const Mesh mesh({16, 16}, torus);
  const auto router = make_router(algorithm, mesh);
  const auto pairs = testing::sample_pairs(mesh, 21, 17);
  const auto& probe = pairs.back();

  Rng lone(555);
  const Path expected = router->route(probe.first, probe.second, lone);

  Rng warmup(777);
  for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
    (void)router->route(pairs[i].first, pairs[i].second, warmup);
  }
  Rng again(555);
  const Path actual = router->route(probe.first, probe.second, again);
  EXPECT_EQ(expected.nodes, actual.nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, EveryRouter,
    ::testing::Combine(::testing::ValuesIn(all_algorithms()),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, bool>>& pinfo) {
      std::string name = algorithm_name(std::get<0>(pinfo.param)) +
                         (std::get<1>(pinfo.param) ? "_torus" : "_mesh");
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- baselines -------------------------------------------------------------------

TEST(DimensionOrderRouter, IsDeterministicShortest) {
  const Mesh mesh({16, 16});
  const DimensionOrderRouter router(mesh);
  EXPECT_TRUE(router.deterministic());
  Rng rng(1);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 100, 9)) {
    const Path p = router.route(s, t, rng);
    EXPECT_EQ(p.length(), mesh.distance(s, t));
    EXPECT_DOUBLE_EQ(path_stretch(mesh, p), 1.0);
  }
}

TEST(DimensionOrderRouter, ConsumesNoRandomBits) {
  const Mesh mesh({16, 16});
  const DimensionOrderRouter router(mesh);
  Rng rng(1);
  BitMeter meter;
  rng.attach_meter(&meter);
  (void)router.route(3, 200, rng);
  EXPECT_EQ(meter.bits, 0U);
}

TEST(RandomDimOrderRouter, AlwaysShortestPath) {
  const Mesh mesh({16, 16});
  const RandomDimOrderRouter router(mesh);
  Rng rng(2);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 100, 11)) {
    EXPECT_EQ(router.route(s, t, rng).length(), mesh.distance(s, t));
  }
}

TEST(RandomDimOrderRouter, BothOrdersAppear) {
  const Mesh mesh({16, 16});
  const RandomDimOrderRouter router(mesh);
  Rng rng(3);
  const NodeId s = mesh.node_id(Coord{2, 2});
  const NodeId t = mesh.node_id(Coord{5, 5});
  bool saw_x_first = false;
  bool saw_y_first = false;
  for (int i = 0; i < 50; ++i) {
    const Path p = router.route(s, t, rng);
    const Coord second = mesh.coord(p.nodes[1]);
    if (second == Coord{3, 2}) saw_x_first = true;
    if (second == Coord{2, 3}) saw_y_first = true;
  }
  EXPECT_TRUE(saw_x_first);
  EXPECT_TRUE(saw_y_first);
}

TEST(ValiantRouter, VisitsRandomIntermediate) {
  const Mesh mesh({16, 16});
  const ValiantRouter router(mesh);
  Rng rng(4);
  // Paths between the same nearby pair should frequently be much longer
  // than the direct distance (locality destroyed).
  const NodeId s = mesh.node_id(Coord{7, 7});
  const NodeId t = mesh.node_id(Coord{8, 7});
  double total_length = 0;
  for (int i = 0; i < 100; ++i) {
    const Path p = router.route(s, t, rng);
    total_length += static_cast<double>(p.length());
  }
  EXPECT_GT(total_length / 100.0, 5.0);
}

TEST(ValiantRouter, LengthBoundedByTwoDiameters) {
  const Mesh mesh({16, 16});
  const ValiantRouter router(mesh);
  Rng rng(5);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 200, 13)) {
    EXPECT_LE(router.route(s, t, rng).length(), 2 * mesh.diameter());
  }
}

}  // namespace
}  // namespace oblivious
