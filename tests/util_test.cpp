#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/bits.hpp"
#include "util/small_vec.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace oblivious {
namespace {

// --- bits ------------------------------------------------------------------

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2(std::uint64_t{1} << 63), 63);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Bits, FloorLog2RejectsZero) {
  EXPECT_THROW(floor_log2(0), std::invalid_argument);
}

TEST(Bits, IsPowerOfTwo) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1ULL << 40));
  EXPECT_FALSE(is_power_of_two((1ULL << 40) + 1));
}

TEST(Bits, FloorDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(floor_div(0, 5), 0);
  EXPECT_EQ(floor_div(-1, 4), -1);
}

TEST(Bits, PosMod) {
  EXPECT_EQ(pos_mod(7, 4), 3);
  EXPECT_EQ(pos_mod(-1, 4), 3);
  EXPECT_EQ(pos_mod(-8, 4), 0);
  EXPECT_EQ(pos_mod(0, 4), 0);
}

// --- SmallVec ----------------------------------------------------------------

TEST(SmallVec, StartsEmptyAndInline) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0U);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), 4U);
}

TEST(SmallVec, PushBackWithinInlineCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4U);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 10);
}

TEST(SmallVec, SpillsToHeapBeyondInlineCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100U);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, CopyPreservesContents) {
  SmallVec<int, 2> v{1, 2, 3, 4, 5};
  SmallVec<int, 2> w(v);
  EXPECT_EQ(v, w);
  w.push_back(6);
  EXPECT_NE(v, w);
}

TEST(SmallVec, CopyAssignOverwrites) {
  SmallVec<int, 2> v{1, 2, 3};
  SmallVec<int, 2> w{9};
  w = v;
  EXPECT_EQ(w.size(), 3U);
  EXPECT_EQ(w[2], 3);
}

TEST(SmallVec, MoveStealsHeapStorage) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const int* data = v.data();
  SmallVec<int, 2> w(std::move(v));
  EXPECT_EQ(w.data(), data);  // heap buffer moved, not copied
  EXPECT_EQ(w.size(), 50U);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVec, MoveInlineCopies) {
  SmallVec<int, 8> v{1, 2, 3};
  SmallVec<int, 8> w(std::move(v));
  EXPECT_EQ(w.size(), 3U);
  EXPECT_EQ(w[0], 1);
}

TEST(SmallVec, ResizeGrowsWithValue) {
  SmallVec<int, 2> v;
  v.resize(5, 7);
  EXPECT_EQ(v.size(), 5U);
  for (const int x : v) EXPECT_EQ(x, 7);
  v.resize(2);
  EXPECT_EQ(v.size(), 2U);
}

TEST(SmallVec, AtThrowsOutOfRange) {
  SmallVec<int, 2> v{1};
  EXPECT_EQ(v.at(0), 1);
  EXPECT_THROW(v.at(1), std::invalid_argument);
}

TEST(SmallVec, InitializerListAndEquality) {
  SmallVec<int, 4> a{1, 2, 3};
  SmallVec<int, 4> b{1, 2, 3};
  SmallVec<int, 4> c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SmallVec, PopBack) {
  SmallVec<int, 4> v{1, 2};
  v.pop_back();
  EXPECT_EQ(v.size(), 1U);
  v.pop_back();
  EXPECT_TRUE(v.empty());
  EXPECT_THROW(v.pop_back(), std::invalid_argument);
}

// --- RunningStats ------------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (const double x : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5U);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, VarianceMatchesDirectFormula) {
  RunningStats s;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= 8.0;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= 7.0;
  for (const double x : xs) s.add(x);
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i * i % 17);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1U);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, MergeEmptyWithEmptyStaysEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0U);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  // Still usable afterwards.
  a.add(4.0);
  EXPECT_EQ(a.count(), 1U);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(RunningStats, MergeEmptyWithNonemptyCopiesEveryMoment) {
  RunningStats src;
  src.add(1.0);
  src.add(2.0);
  src.add(6.0);
  RunningStats dst;
  dst.merge(src);
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_DOUBLE_EQ(dst.mean(), src.mean());
  EXPECT_DOUBLE_EQ(dst.variance(), src.variance());
  EXPECT_DOUBLE_EQ(dst.min(), src.min());
  EXPECT_DOUBLE_EQ(dst.max(), src.max());
}

TEST(RunningStats, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  // Merging two single-sample streams gives the two-sample variance.
  RunningStats t;
  t.add(5.5);
  s.merge(t);
  EXPECT_EQ(s.count(), 2U);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);  // ((1)^2 + (1)^2) / (2 - 1)
}

// --- IntHistogram --------------------------------------------------------------

TEST(IntHistogram, CountsAndTotal) {
  IntHistogram h;
  h.add(3);
  h.add(3);
  h.add(1);
  EXPECT_EQ(h.total(), 3U);
  EXPECT_EQ(h.count(3), 2U);
  EXPECT_EQ(h.count(1), 1U);
  EXPECT_EQ(h.count(0), 0U);
  EXPECT_EQ(h.count(99), 0U);
  EXPECT_EQ(h.max_value(), 3);
}

TEST(IntHistogram, WeightedAdd) {
  IntHistogram h;
  h.add(2, 10);
  EXPECT_EQ(h.total(), 10U);
  EXPECT_EQ(h.count(2), 10U);
}

TEST(IntHistogram, Quantile) {
  IntHistogram h;
  for (int v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.5), 50);
  EXPECT_EQ(h.quantile(0.99), 99);
  EXPECT_EQ(h.quantile(1.0), 100);
}

TEST(IntHistogram, MeanAndEmpty) {
  IntHistogram h;
  EXPECT_EQ(h.max_value(), -1);
  EXPECT_EQ(h.quantile(0.5), -1);
  h.add(2);
  h.add(4);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(IntHistogram, RejectsNegative) {
  IntHistogram h;
  EXPECT_THROW(h.add(-1), std::invalid_argument);
}

// --- Table --------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("x").add(std::int64_t{42});
  t.row().add("longer-name").add(7.5, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("7.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2U);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add(1).add(2);
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsOverfullRow) {
  Table t({"only"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), std::invalid_argument);
}

TEST(Table, RejectsAddWithoutRow) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), std::invalid_argument);
}

}  // namespace
}  // namespace oblivious
