#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "decomposition/decomposition.hpp"
#include "util/bits.hpp"

namespace oblivious {
namespace {

// --- configuration -----------------------------------------------------------

TEST(DecompositionConfig, Section3IsDiagonalHalfShift) {
  const auto cfg = DecompositionConfig::section3();
  EXPECT_EQ(cfg.shift_divisor_log2, 1);
  EXPECT_TRUE(cfg.discard_corners);
}

TEST(DecompositionConfig, Section4DivisorCoversDPlusOne) {
  for (int d = 1; d <= 8; ++d) {
    const auto cfg = DecompositionConfig::section4(d);
    const int families = 1 << cfg.shift_divisor_log2;
    EXPECT_GE(families, d + 1) << "d=" << d;
    EXPECT_LE(families, 2 * (d + 1)) << "d=" << d;
    EXPECT_FALSE(cfg.discard_corners);
  }
}

TEST(Decomposition, RequiresSquarePowerOfTwo) {
  const Mesh rect({4, 8});
  EXPECT_THROW(Decomposition::section3(rect), std::invalid_argument);
  const Mesh odd({6, 6});
  EXPECT_THROW(Decomposition::section3(odd), std::invalid_argument);
}

TEST(Decomposition, LevelsAndSides) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section3(m);
  EXPECT_EQ(dec.leaf_level(), 4);
  EXPECT_EQ(dec.side_at(0), 16);
  EXPECT_EQ(dec.side_at(1), 8);
  EXPECT_EQ(dec.side_at(4), 1);
  EXPECT_EQ(dec.height_of(1), 3);
  EXPECT_EQ(dec.level_of_height(3), 1);
}

TEST(Decomposition, Section3TypeCounts) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section3(m);
  EXPECT_EQ(dec.num_types(0), 1);  // the root has no shifted copies
  EXPECT_EQ(dec.num_types(1), 2);
  EXPECT_EQ(dec.num_types(3), 2);
  EXPECT_EQ(dec.num_types(4), 1);  // leaf level: single nodes
  EXPECT_EQ(dec.shift_lambda(1), 4);  // m_1 = 8, shift 8/2
}

TEST(Decomposition, Section4TypeCountsAndLambda3D) {
  const Mesh m = Mesh::cube(3, 16);
  const Decomposition dec = Decomposition::section4(m);
  // d = 3: divisor 2^ceil(log2 4) = 4.
  EXPECT_EQ(dec.num_types(1), 4);   // m = 8, lambda = 2
  EXPECT_EQ(dec.shift_lambda(1), 2);
  EXPECT_EQ(dec.num_types(2), 4);   // m = 4, lambda = 1 (Figure 2 setup)
  EXPECT_EQ(dec.shift_lambda(2), 1);
  EXPECT_EQ(dec.num_types(3), 2);   // m = 2 < 4 families
  EXPECT_EQ(dec.num_types(4), 1);
}

// --- type-1 structure (Lemma 3.1) ---------------------------------------------

class Section3Decomposition : public ::testing::TestWithParam<bool> {
 protected:
  Section3Decomposition()
      : mesh_({16, 16}, GetParam()), dec_(Decomposition::section3(mesh_)) {}
  Mesh mesh_;
  Decomposition dec_;
};

TEST_P(Section3Decomposition, Type1PartitionsEveryLevel) {
  // Lemma 3.1 (1): type-1 submeshes at a level are disjoint; together they
  // cover the mesh.
  for (int level = 0; level <= dec_.leaf_level(); ++level) {
    std::vector<int> covered(static_cast<std::size_t>(mesh_.num_nodes()), 0);
    dec_.for_each_submesh(level, 1, [&](const RegularSubmesh& sm) {
      for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
        if (sm.region.contains_node(mesh_, u)) {
          ++covered[static_cast<std::size_t>(u)];
        }
      }
    });
    for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
      EXPECT_EQ(covered[static_cast<std::size_t>(u)], 1)
          << "level " << level << " node " << u;
    }
  }
}

TEST_P(Section3Decomposition, ShiftedFamilyIsDisjoint) {
  // Lemma 3.1 (1) for the type-2 family: disjoint (but not covering).
  for (int level = 1; level < dec_.leaf_level(); ++level) {
    std::vector<int> covered(static_cast<std::size_t>(mesh_.num_nodes()), 0);
    dec_.for_each_submesh(level, 2, [&](const RegularSubmesh& sm) {
      for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
        if (sm.region.contains_node(mesh_, u)) {
          ++covered[static_cast<std::size_t>(u)];
        }
      }
    });
    for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
      EXPECT_LE(covered[static_cast<std::size_t>(u)], 1);
    }
  }
}

TEST_P(Section3Decomposition, EveryRegularSubmeshPartitionsIntoType1Children) {
  // Lemma 3.1 (2): every regular submesh at level l is a disjoint union of
  // type-1 submeshes at level l+1.
  for (int level = 0; level < dec_.leaf_level(); ++level) {
    dec_.for_each_submesh(level, [&](const RegularSubmesh& sm) {
      std::int64_t child_volume = 0;
      dec_.for_each_submesh(level + 1, 1, [&](const RegularSubmesh& child) {
        // A type-1 child is either fully inside or fully outside.
        const bool inside = sm.region.contains_region(mesh_, child.region);
        if (inside) {
          child_volume += child.region.volume();
        } else {
          // No partial overlap: no node of the child may be inside sm.
          bool any = false;
          for (std::int64_t dx = 0; dx < child.region.extent_at(0) && !any; ++dx) {
            for (std::int64_t dy = 0; dy < child.region.extent_at(1) && !any;
                 ++dy) {
              const Coord p = child.region.coord_at(mesh_, Coord{dx, dy});
              any = sm.region.contains(mesh_, p);
            }
          }
          EXPECT_FALSE(any) << "partial overlap at level " << level;
        }
      });
      EXPECT_EQ(child_volume, sm.region.volume()) << sm.describe();
    });
  }
}

TEST_P(Section3Decomposition, EveryType1SubmeshContainedInSomeParent) {
  // Lemma 3.1 (3) for the submeshes the algorithm actually chains: every
  // *type-1* submesh at level l+1 lies inside a regular submesh at level l
  // (its type-1 parent, and possibly a shifted one too). Note the lemma
  // does not hold for shifted submeshes as children -- e.g. on the 16x16
  // mesh the level-2 type-2 submesh [2,5]x[6,9] fits in no level-1
  // submesh -- but shifted submeshes only ever appear as bridges (the top
  // of a bitonic path), never as children, so the routing algorithm never
  // relies on them having parents.
  for (int level = 1; level <= dec_.leaf_level(); ++level) {
    dec_.for_each_submesh(level, 1, [&](const RegularSubmesh& sm) {
      bool found = false;
      dec_.for_each_submesh(level - 1, [&](const RegularSubmesh& parent) {
        found = found || parent.region.contains_region(mesh_, sm.region);
      });
      EXPECT_TRUE(found) << sm.describe();
    });
  }
}

TEST_P(Section3Decomposition, ShiftedSubmeshesDecomposeIntoType1Children) {
  // The property the bridge construction needs: a shifted submesh at level
  // l is an exact union of type-1 submeshes at level l+1 (its anchors are
  // aligned to the level-(l+1) grid), so a monotonic type-1 path can enter
  // and leave it.
  for (int level = 1; level < dec_.leaf_level(); ++level) {
    dec_.for_each_submesh(level, 2, [&](const RegularSubmesh& sm) {
      std::int64_t child_volume = 0;
      dec_.for_each_submesh(level + 1, 1, [&](const RegularSubmesh& child) {
        if (sm.region.contains_region(mesh_, child.region)) {
          child_volume += child.region.volume();
        }
      });
      EXPECT_EQ(child_volume, sm.region.volume()) << sm.describe();
    });
  }
}

TEST_P(Section3Decomposition, SubmeshAtAgreesWithEnumeration) {
  // The implicit containment query returns exactly the submesh that the
  // exhaustive enumeration finds.
  for (int level = 0; level <= dec_.leaf_level(); ++level) {
    for (int type = 1; type <= dec_.num_types(level); ++type) {
      std::map<NodeId, std::int64_t> owner;  // node -> grid key
      dec_.for_each_submesh(level, type, [&](const RegularSubmesh& sm) {
        for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
          if (sm.region.contains_node(mesh_, u)) owner[u] = sm.grid_key;
        }
      });
      for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
        const auto sm = dec_.submesh_at(mesh_.coord(u), level, type);
        const auto it = owner.find(u);
        if (it == owner.end()) {
          EXPECT_FALSE(sm.has_value());
        } else {
          ASSERT_TRUE(sm.has_value());
          EXPECT_EQ(sm->grid_key, it->second);
        }
      }
    }
  }
}

TEST_P(Section3Decomposition, GridKeysAreUniquePerFamily) {
  for (int level = 0; level <= dec_.leaf_level(); ++level) {
    for (int type = 1; type <= dec_.num_types(level); ++type) {
      std::set<std::int64_t> keys;
      dec_.for_each_submesh(level, type, [&](const RegularSubmesh& sm) {
        EXPECT_TRUE(keys.insert(sm.grid_key).second) << sm.describe();
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MeshAndTorus, Section3Decomposition, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "torus" : "mesh";
                         });

// --- the Figure 1 counts -------------------------------------------------------

TEST(Decomposition, Figure1CountsOn4x4) {
  // Figure 1 of the paper is drawn on the 4x4 mesh.
  const Mesh m({4, 4});
  const Decomposition dec = Decomposition::section3(m);
  // Level 1, type 1: the four quadrants.
  std::int64_t type1_level1 = 0;
  dec.for_each_submesh(1, 1, [&](const RegularSubmesh&) { ++type1_level1; });
  EXPECT_EQ(type1_level1, 4);
  // Level 1, type 2: 3x3 translated grid minus the 4 discarded corners.
  std::int64_t type2_level1 = 0;
  std::int64_t internal = 0;
  dec.for_each_submesh(1, 2, [&](const RegularSubmesh& sm) {
    ++type2_level1;
    if (!sm.truncated) ++internal;
  });
  EXPECT_EQ(type2_level1, 5);
  EXPECT_EQ(internal, 1);  // the centered [1,2]^2 submesh
  // Level 2, type 1: sixteen 1x1 leaves... no, 2x2 blocks: 4 per side / 2.
  std::int64_t type1_level2 = 0;
  dec.for_each_submesh(2, 1, [&](const RegularSubmesh&) { ++type1_level2; });
  EXPECT_EQ(type1_level2, 16);  // level 2 of a 4x4 mesh is the leaf level
}

TEST(Decomposition, CornerDiscardOnlyOnMesh) {
  const Mesh m({8, 8});
  const Decomposition dec = Decomposition::section3(m);
  // The corner node (0,0) has no valid type-2 submesh at level 1: its
  // piece is truncated in both dimensions and discarded.
  EXPECT_FALSE(dec.submesh_at(Coord{0, 0}, 1, 2).has_value());
  // But an edge (non-corner) node does.
  EXPECT_TRUE(dec.submesh_at(Coord{0, 4}, 1, 2).has_value());
  // On the torus everything wraps and nothing is discarded.
  const Mesh t({8, 8}, true);
  const Decomposition dect = Decomposition::section3(t);
  EXPECT_TRUE(dect.submesh_at(Coord{0, 0}, 1, 2).has_value());
}

TEST(Decomposition, TorusShiftedSubmeshesAreFullSize) {
  const Mesh t({16, 16}, true);
  const Decomposition dec = Decomposition::section3(t);
  for (int level = 1; level < dec.leaf_level(); ++level) {
    dec.for_each_submesh(level, 2, [&](const RegularSubmesh& sm) {
      EXPECT_EQ(sm.region.volume(), dec.side_at(level) * dec.side_at(level));
      EXPECT_FALSE(sm.truncated);
    });
  }
}

TEST(Decomposition, TruncatedSubmeshKeepsIntersectionOnly) {
  const Mesh m({8, 8});
  const Decomposition dec = Decomposition::section3(m);
  // Level 1 (m=4, shift 2): the submesh containing (0,4) spans x in [-2,1]
  // truncated to [0,1], y in [2,5].
  const auto sm = dec.submesh_at(Coord{0, 4}, 1, 2);
  ASSERT_TRUE(sm.has_value());
  EXPECT_TRUE(sm->truncated);
  EXPECT_EQ(sm->region.anchor(), (Coord{0, 2}));
  EXPECT_EQ(sm->region.extent(), (Coord{2, 4}));
}

TEST(Decomposition, CommonSubmeshRequiresSameCell) {
  const Mesh m({8, 8});
  const Decomposition dec = Decomposition::section3(m);
  // (0,3) and (0,4) straddle the level-1 type-1 cut but share a type-2 cell.
  EXPECT_FALSE(dec.common_submesh(Coord{0, 3}, Coord{0, 4}, 1, 1).has_value());
  EXPECT_TRUE(dec.common_submesh(Coord{0, 3}, Coord{0, 4}, 1, 2).has_value());
}

TEST(Decomposition, DeepestCommonPrefersDeeperLevels) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section3(m);
  // Two nodes in the same 2x2 block.
  const RegularSubmesh a = dec.deepest_common(Coord{0, 0}, Coord{1, 1}, true);
  EXPECT_EQ(a.level, 3);  // side-2 block
  // Straddling the global bisector: type-1 would force the root, the
  // access graph finds a small type-2 bridge.
  const RegularSubmesh tree =
      dec.deepest_common(Coord{7, 0}, Coord{8, 0}, false);
  EXPECT_EQ(tree.level, 0);
  const RegularSubmesh graph =
      dec.deepest_common(Coord{7, 0}, Coord{8, 0}, true);
  EXPECT_GT(graph.level, 0);
  EXPECT_EQ(graph.type, 2);
}

TEST(Decomposition, CountSubmeshesMatchesEnumeration) {
  const Mesh m({16, 16});
  const Decomposition dec = Decomposition::section3(m);
  EXPECT_EQ(dec.count_submeshes(0), 1);
  // Level 1: 4 type-1 + (3x3 - 4 corners = 5) type-2.
  EXPECT_EQ(dec.count_submeshes(1), 9);
}

// --- Lemma 4.1 (d-dimensional bridge existence) --------------------------------

TEST(DecompositionNd, EveryLevelHasAtLeastDPlus1FamiliesWhenWideEnough) {
  const Mesh m = Mesh::cube(3, 32);
  const Decomposition dec = Decomposition::section4(m);
  for (int level = 1; level <= dec.leaf_level(); ++level) {
    if (dec.side_at(level) >= 4) {
      EXPECT_GE(dec.num_types(level), 4) << "level " << level;
    }
  }
}

TEST(DecompositionNd, ShiftedFamiliesAreDistinct) {
  const Mesh m = Mesh::cube(2, 32);
  const Decomposition dec = Decomposition::section4(m);
  // d = 2: divisor 4, lambda = m/4.
  EXPECT_EQ(dec.num_types(1), 4);
  EXPECT_EQ(dec.shift_lambda(1), 4);  // m_1 = 16
  std::set<std::int64_t> anchors;
  for (int type = 1; type <= 4; ++type) {
    const auto sm = dec.submesh_at(Coord{16, 16}, 1, type);
    ASSERT_TRUE(sm.has_value());
    anchors.insert(sm->region.anchor_at(0));
  }
  EXPECT_EQ(anchors.size(), 4U);
}

TEST(DecompositionNd, Figure2Setup3D) {
  // Figure 2: d = 3, m_l = 4, lambda = 1, four types.
  const Mesh m = Mesh::cube(3, 16, true);
  const Decomposition dec = Decomposition::section4(m);
  const int level = 2;  // side 4
  EXPECT_EQ(dec.side_at(level), 4);
  EXPECT_EQ(dec.shift_lambda(level), 1);
  EXPECT_EQ(dec.num_types(level), 4);
  // Anchors of consecutive types differ by 1 in every dimension.
  for (int type = 1; type < 4; ++type) {
    const auto a = dec.submesh_at(Coord{8, 8, 8}, level, type);
    const auto b = dec.submesh_at(Coord{8, 8, 8}, level, type + 1);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(pos_mod(b->region.anchor_at(d) - a->region.anchor_at(d), 4), 1);
    }
  }
}

}  // namespace
}  // namespace oblivious
