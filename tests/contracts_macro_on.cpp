// Pins the contract switch ON for this TU regardless of build type.
#define OBLV_CONTRACTS_FORCE 1
#include "util/contracts.hpp"

#include "contracts_macro_modes.hpp"

namespace oblivious::testing {

bool forced_on_expects_throws() {
  try {
    OBLV_EXPECTS(false, "forced-on precondition");
  } catch (const ContractViolation&) {
    return true;
  }
  return false;
}

bool forced_on_ensures_throws() {
  try {
    OBLV_ENSURES(false, "forced-on postcondition");
  } catch (const ContractViolation&) {
    return true;
  }
  return false;
}

int forced_on_evaluation_count() {
  int evaluations = 0;
  OBLV_EXPECTS((++evaluations, true), "passing check evaluates exactly once");
  return evaluations;
}

}  // namespace oblivious::testing
