#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/congestion.hpp"
#include "analysis/evaluate.hpp"
#include "offline/greedy.hpp"
#include "routing/staircase.hpp"
#include "test_support.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

// --- staircase router ----------------------------------------------------------

TEST(Staircase, AlwaysShortestPaths) {
  for (const bool torus : {false, true}) {
    const Mesh mesh({16, 16}, torus);
    const RandomStaircaseRouter router(mesh);
    Rng rng(3);
    for (const auto& [s, t] : testing::sample_pairs(mesh, 200, 5)) {
      const Path p = router.route(s, t, rng);
      ASSERT_TRUE(is_valid_path(mesh, p));
      EXPECT_EQ(p.length(), mesh.distance(s, t));
    }
  }
}

TEST(Staircase, ExploresManyShortestPaths) {
  const Mesh mesh({16, 16});
  const RandomStaircaseRouter router(mesh);
  Rng rng(7);
  const NodeId s = mesh.node_id(Coord{2, 2});
  const NodeId t = mesh.node_id(Coord{7, 7});
  std::set<std::vector<NodeId>> distinct;
  for (int i = 0; i < 300; ++i) distinct.insert(router.route(s, t, rng).nodes);
  // C(10,5) = 252 shortest paths exist; the sampler should hit many.
  EXPECT_GT(distinct.size(), 100U);
}

TEST(Staircase, UniformOverShortestPathsOnSmallInstance) {
  // 2x2 displacement: 6 shortest paths; chi-square over 6 bins.
  const Mesh mesh({8, 8});
  const RandomStaircaseRouter router(mesh);
  Rng rng(11);
  std::map<std::vector<NodeId>, int> counts;
  constexpr int kTrials = 6000;
  for (int i = 0; i < kTrials; ++i) {
    ++counts[router.route(mesh.node_id(Coord{1, 1}), mesh.node_id(Coord{3, 3}),
                          rng)
                 .nodes];
  }
  ASSERT_EQ(counts.size(), 6U);
  const double expected = kTrials / 6.0;
  double chi2 = 0.0;
  for (const auto& [path, count] : counts) {
    chi2 += (count - expected) * (count - expected) / expected;
  }
  EXPECT_LT(chi2, 25.0);  // 5 dof, 0.999 quantile ~ 20.5
}

TEST(Staircase, SpreadsBetterThanOneBendOnSharedPair) {
  const Mesh mesh({16, 16});
  const RandomStaircaseRouter router(mesh);
  Rng rng(13);
  EdgeLoadMap loads(mesh);
  const NodeId s = mesh.node_id(Coord{2, 2});
  const NodeId t = mesh.node_id(Coord{13, 13});
  for (int i = 0; i < 100; ++i) loads.add_path(router.route(s, t, rng));
  // One-bend routing would put 50 packets on each corner edge; the
  // staircase sampler concentrates only near the endpoints.
  EXPECT_LT(loads.max_load(), 60U);
  EXPECT_GE(loads.max_load(), 25U);  // endpoint edges are unavoidable
}

// --- offline optimizer ----------------------------------------------------------

TEST(Offline, PathsAreShortestWithCorrectEndpoints) {
  const Mesh mesh({16, 16});
  const RoutingProblem problem = transpose(mesh);
  const OfflineResult result = offline_route(mesh, problem);
  ASSERT_EQ(result.paths.size(), problem.size());
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    EXPECT_EQ(result.paths[i].source(), problem.demands[i].src);
    EXPECT_EQ(result.paths[i].destination(), problem.demands[i].dst);
    EXPECT_EQ(result.paths[i].length(),
              mesh.distance(problem.demands[i].src, problem.demands[i].dst));
  }
}

TEST(Offline, CongestionMatchesReportedPaths) {
  const Mesh mesh({16, 16});
  Rng wrng(3);
  const RoutingProblem problem = random_permutation(mesh, wrng);
  const OfflineResult result = offline_route(mesh, problem);
  EdgeLoadMap loads(mesh);
  loads.add_paths(result.paths);
  EXPECT_EQ(static_cast<std::int64_t>(loads.max_load()), result.congestion);
}

TEST(Offline, NeverBeatsTheLowerBound) {
  const Mesh mesh({16, 16});
  for (const auto& problem :
       {transpose(mesh), bit_reversal(mesh), block_exchange(mesh, 4)}) {
    const double lb = best_lower_bound(mesh, problem);
    const OfflineResult result = offline_route(mesh, problem);
    EXPECT_GE(static_cast<double>(result.congestion) + 1e-9, std::floor(lb));
  }
}

TEST(Offline, ImprovesOnItsInitialAssignment) {
  const Mesh mesh({32, 32});
  const RoutingProblem problem = transpose(mesh);
  OfflineOptions one_round;
  one_round.max_rounds = 1;
  one_round.candidates_per_packet = 1;
  OfflineOptions full;
  full.max_rounds = 16;
  full.candidates_per_packet = 8;
  const OfflineResult rough = offline_route(mesh, problem, one_round);
  const OfflineResult tuned = offline_route(mesh, problem, full);
  EXPECT_LT(tuned.congestion, rough.congestion);
  EXPECT_GT(tuned.total_switches, 0);
}

TEST(Offline, ComesCloseToTheLowerBoundOnTranspose) {
  const Mesh mesh({32, 32});
  const RoutingProblem problem = transpose(mesh);
  const double lb = best_lower_bound(mesh, problem);  // 16
  const OfflineResult result = offline_route(mesh, problem);
  EXPECT_LE(static_cast<double>(result.congestion), 2.0 * lb);
}

TEST(Offline, HandlesTrivialAndEmptyProblems) {
  const Mesh mesh({8, 8});
  RoutingProblem empty;
  const OfflineResult r1 = offline_route(mesh, empty);
  EXPECT_EQ(r1.congestion, 0);
  RoutingProblem self;
  self.demands = {{3, 3}};
  const OfflineResult r2 = offline_route(mesh, self);
  EXPECT_EQ(r2.congestion, 0);
  EXPECT_EQ(r2.paths[0].nodes, (std::vector<NodeId>{3}));
}

TEST(Offline, RejectsBadOptions) {
  const Mesh mesh({8, 8});
  OfflineOptions bad;
  bad.max_rounds = 0;
  EXPECT_THROW(offline_route(mesh, transpose(mesh), bad), std::invalid_argument);
}

}  // namespace
}  // namespace oblivious
