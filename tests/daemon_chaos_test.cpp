// Tests for the deterministic network-chaos layer: the decision
// sequence is a pure function of (seed, site, invocation index), the
// disarmed layer is inert, and -- in -DOBLV_CHAOS=ON builds -- the
// net.cpp fault points slice, stall and reset real socket I/O while
// frames still round-trip and a drain under fire stays exact.
#include "daemon/chaos.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/net.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "mesh/mesh.hpp"

namespace oblivious::daemon {
namespace {

// Disarms the global chaos state however a test exits.
struct ChaosGuard {
  ~ChaosGuard() { chaos::disable(); }
};

chaos::ChaosConfig mixed_config(std::uint64_t seed) {
  chaos::ChaosConfig config;
  config.seed = seed;
  config.short_read_per_mille = 150;
  config.torn_write_per_mille = 150;
  config.stall_per_mille = 100;
  config.reset_per_mille = 100;
  config.stall_ms = 1;
  return config;
}

std::vector<chaos::Fault> record_sequence(std::uint64_t seed, int n) {
  chaos::configure(mixed_config(seed));
  std::vector<chaos::Fault> sequence;
  for (int i = 0; i < n; ++i) {
    sequence.push_back(chaos::next(chaos::Site::kReadFrame).fault);
    sequence.push_back(chaos::next(chaos::Site::kWriteAll).fault);
  }
  return sequence;
}

TEST(DaemonChaosTest, DecisionSequenceIsPureFunctionOfSeed) {
  ChaosGuard guard;
  const auto first = record_sequence(42, 200);
  const auto replay = record_sequence(42, 200);
  EXPECT_EQ(first, replay) << "same seed must replay the identical "
                              "fault schedule";
  const auto other = record_sequence(43, 200);
  EXPECT_NE(first, other) << "a different seed must not replay it";
}

TEST(DaemonChaosTest, EveryFaultKindFiresAtTheseRates) {
  ChaosGuard guard;
  (void)record_sequence(7, 2000);
  const chaos::ChaosCounters counters = chaos::counters();
  EXPECT_EQ(counters.read_invocations, 2000u);
  EXPECT_EQ(counters.write_invocations, 2000u);
  EXPECT_GT(counters.short_reads, 0u);
  EXPECT_GT(counters.torn_writes, 0u);
  EXPECT_GT(counters.stalls, 0u);
  EXPECT_GT(counters.resets, 0u);
}

TEST(DaemonChaosTest, DisarmedLayerIsInertAndCountsNothing) {
  ChaosGuard guard;
  chaos::configure(mixed_config(1));
  chaos::disable();
  EXPECT_FALSE(chaos::enabled());
  const chaos::ChaosCounters before = chaos::counters();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(chaos::next(chaos::Site::kReadFrame).fault,
              chaos::Fault::kNone);
  }
  const chaos::ChaosCounters after = chaos::counters();
  EXPECT_EQ(after.read_invocations, before.read_invocations)
      << "a disarmed next() must not advance the invocation counters "
         "(it would desynchronise a later armed run)";
}

TEST(DaemonChaosTest, SliceFaultsRespectTheirSite) {
  // A short-read draw consumed by the write site (and vice versa) must
  // degrade to kNone, never cross over.
  ChaosGuard guard;
  chaos::ChaosConfig config;
  config.seed = 11;
  config.short_read_per_mille = 500;
  config.torn_write_per_mille = 500;  // every draw is a slice fault
  chaos::configure(config);
  for (int i = 0; i < 200; ++i) {
    const chaos::Fault read = chaos::next(chaos::Site::kReadFrame).fault;
    EXPECT_TRUE(read == chaos::Fault::kShortRead ||
                read == chaos::Fault::kNone);
    const chaos::Fault write = chaos::next(chaos::Site::kWriteAll).fault;
    EXPECT_TRUE(write == chaos::Fault::kTornWrite ||
                write == chaos::Fault::kNone);
  }
}

#ifdef OBLV_CHAOS_ENABLED

// Two connected stream sockets; [0] plays the peer, [1] the daemon side.
struct SocketPair {
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = UniqueFd(fds[0]);
    b = UniqueFd(fds[1]);
  }
  UniqueFd a, b;
};

TEST(DaemonChaosTest, ShortReadSlicesButStillCompletesFrame) {
  ChaosGuard guard;
  chaos::ChaosConfig config;
  config.seed = 3;
  config.short_read_per_mille = 1000;  // every read is 1-byte sliced
  chaos::configure(config);

  SocketPair pair;
  std::vector<std::uint8_t> frame;
  encode_ping(9, frame);
  ASSERT_EQ(::write(pair.a.get(), frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));

  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(pair.b.get(), payload, 5000), IoStatus::kOk);
  EXPECT_EQ(decode_header(payload.data(), payload.size()).request_id, 9u);
  EXPECT_GE(chaos::counters().short_reads, 1u);
}

TEST(DaemonChaosTest, TornWriteSlicesButStillDeliversFrame) {
  ChaosGuard guard;
  chaos::ChaosConfig config;
  config.seed = 4;
  config.torn_write_per_mille = 1000;
  chaos::configure(config);

  SocketPair pair;
  std::vector<std::uint8_t> frame;
  encode_ping(12, frame);
  ASSERT_EQ(write_all(pair.a.get(), frame.data(), frame.size(), 5000),
            IoStatus::kOk);
  chaos::disable();  // read the echo un-faulted
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(pair.b.get(), payload, 5000), IoStatus::kOk);
  EXPECT_EQ(decode_header(payload.data(), payload.size()).request_id, 12u);
}

TEST(DaemonChaosTest, ResetFailsTheIoWithAChaosError) {
  ChaosGuard guard;
  chaos::ChaosConfig config;
  config.seed = 5;
  config.reset_per_mille = 1000;
  chaos::configure(config);

  SocketPair pair;
  std::vector<std::uint8_t> frame;
  encode_ping(1, frame);
  std::string error;
  EXPECT_EQ(write_all(pair.a.get(), frame.data(), frame.size(), 1000,
                      &error),
            IoStatus::kError);
  EXPECT_NE(error.find("chaos"), std::string::npos);
  std::vector<std::uint8_t> payload;
  error.clear();
  EXPECT_EQ(read_frame(pair.b.get(), payload, 1000, &error),
            IoStatus::kError);
  EXPECT_NE(error.find("chaos"), std::string::npos);
  EXPECT_GE(chaos::counters().resets, 2u);
}

TEST(DaemonChaosTest, DrainStaysExactUnderChaosAndDeadlines) {
  // Drain while chaos (slices + stalls, no hard resets so the
  // in-process clients survive) and deadline shedding are both live:
  // the server must exit 0 with submitted == delivered + rejected +
  // expired.
  ChaosGuard guard;
  chaos::ChaosConfig config;
  config.seed = 21;
  config.short_read_per_mille = 200;
  config.torn_write_per_mille = 200;
  config.stall_per_mille = 150;
  config.stall_ms = 2;
  chaos::configure(config);

  const Mesh mesh({16, 16});
  ServerOptions options;
  options.endpoint.unix_path =
      "/tmp/oblvt-chaos-" + std::to_string(::getpid()) + ".sock";
  options.poll_tick_ms = 10;
  Server server(mesh, options);
  std::thread server_thread([&] { EXPECT_EQ(server.run(), 0); });
  while (!server.serving()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<int> transport_failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      try {
        DaemonClient client(options.endpoint, 10000);
        for (int i = 0; i < 10; ++i) {
          // Every third request carries a deadline tight enough that a
          // chaos stall can expire it; all outcomes are legal, the
          // accounting below is what must hold.
          const std::uint32_t deadline = (i % 3 == 0) ? 2 : 0;
          std::vector<Demand> demands;
          for (int d = 0; d < 8; ++d) demands.push_back({d, 255 - d});
          (void)client.route("chaos" + std::to_string(c),
                             static_cast<std::uint64_t>(i), demands,
                             deadline);
        }
      } catch (const std::exception&) {
        transport_failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  server.request_drain();
  server_thread.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.unaccounted_requests(), 0)
      << "drain under chaos+deadlines must stay exact";
  EXPECT_EQ(stats.requests_delivered + stats.requests_rejected +
                stats.requests_expired,
            stats.requests_submitted);
  EXPECT_EQ(transport_failures.load(), 0)
      << "no resets were injected, so no client may fail in transport";
}

#else  // !OBLV_CHAOS_ENABLED

TEST(DaemonChaosTest, InjectionRequiresChaosBuild) {
  GTEST_SKIP() << "net.cpp fault points need -DOBLV_CHAOS=ON; the "
                  "decision-layer tests above still ran";
}

#endif  // OBLV_CHAOS_ENABLED

}  // namespace
}  // namespace oblivious::daemon
