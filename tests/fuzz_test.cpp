// Differential fuzz tests: randomized operation sequences checked against
// an independent reference implementation.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_model.hpp"
#include "mesh/mesh.hpp"
#include "mesh/region.hpp"
#include "mesh/segment_path.hpp"
#include "rng/rng.hpp"
#include "util/small_vec.hpp"

namespace oblivious {
namespace {

TEST(Fuzz, SmallVecBehavesLikeStdVector) {
  Rng rng(0xfacade);
  for (int trial = 0; trial < 50; ++trial) {
    SmallVec<int, 4> sv;
    std::vector<int> ref;
    for (int op = 0; op < 200; ++op) {
      switch (rng.uniform_below(5)) {
        case 0:
        case 1: {  // push_back (weighted: grow more than shrink)
          const int v = static_cast<int>(rng.uniform_below(1000));
          sv.push_back(v);
          ref.push_back(v);
          break;
        }
        case 2: {  // pop_back
          if (!ref.empty()) {
            sv.pop_back();
            ref.pop_back();
          }
          break;
        }
        case 3: {  // resize
          const std::size_t n = rng.uniform_below(20);
          sv.resize(n, 7);
          ref.resize(n, 7);
          break;
        }
        case 4: {  // write through operator[]
          if (!ref.empty()) {
            const std::size_t i = rng.uniform_below(ref.size());
            const int v = static_cast<int>(rng.uniform_below(1000));
            sv[i] = v;
            ref[i] = v;
          }
          break;
        }
      }
      ASSERT_EQ(sv.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(sv[i], ref[i]) << "trial " << trial << " op " << op;
      }
    }
    // Copy/move round trip preserves contents.
    SmallVec<int, 4> copy(sv);
    SmallVec<int, 4> moved(std::move(copy));
    ASSERT_EQ(moved.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(moved[i], ref[i]);
  }
}

TEST(Fuzz, RegionContainmentMatchesBruteForce) {
  Rng rng(0xbeef);
  for (const bool torus : {false, true}) {
    const Mesh mesh({8, 16}, torus);
    for (int trial = 0; trial < 60; ++trial) {
      Coord anchor;
      Coord extent;
      anchor.resize(2);
      extent.resize(2);
      for (int d = 0; d < 2; ++d) {
        const std::size_t dd = static_cast<std::size_t>(d);
        extent[dd] = 1 + static_cast<std::int64_t>(
                             rng.uniform_below(
                                 static_cast<std::uint64_t>(mesh.side(d))));
        const std::int64_t max_anchor =
            torus ? mesh.side(d) : mesh.side(d) - extent[dd] + 1;
        anchor[dd] = static_cast<std::int64_t>(
            rng.uniform_below(static_cast<std::uint64_t>(max_anchor)));
      }
      const Region region(anchor, extent);
      // Brute force: enumerate the region's nodes via coord_at.
      std::vector<bool> inside(static_cast<std::size_t>(mesh.num_nodes()), false);
      for (std::int64_t dx = 0; dx < extent[0]; ++dx) {
        for (std::int64_t dy = 0; dy < extent[1]; ++dy) {
          inside[static_cast<std::size_t>(
              mesh.node_id(region.coord_at(mesh, Coord{dx, dy})))] = true;
        }
      }
      for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
        ASSERT_EQ(region.contains_node(mesh, u),
                  inside[static_cast<std::size_t>(u)])
            << region.describe() << " node " << u << " torus " << torus;
      }
      // Volume agrees with the enumeration.
      std::int64_t count = 0;
      for (const bool b : inside) count += b ? 1 : 0;
      ASSERT_EQ(count, region.volume());
    }
  }
}

TEST(Fuzz, DistanceMatchesBfsOnSmallMeshes) {
  // L1 (wrap-aware) distance vs breadth-first search over the real edges.
  for (const bool torus : {false, true}) {
    const Mesh mesh({4, 3, 2}, torus);
    for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
      std::vector<std::int64_t> dist(static_cast<std::size_t>(mesh.num_nodes()),
                                     -1);
      std::vector<NodeId> frontier = {s};
      dist[static_cast<std::size_t>(s)] = 0;
      while (!frontier.empty()) {
        std::vector<NodeId> next;
        for (const NodeId u : frontier) {
          for (const NodeId v : mesh.neighbors(u)) {
            if (dist[static_cast<std::size_t>(v)] == -1) {
              dist[static_cast<std::size_t>(v)] =
                  dist[static_cast<std::size_t>(u)] + 1;
              next.push_back(v);
            }
          }
        }
        frontier = std::move(next);
      }
      for (NodeId t = 0; t < mesh.num_nodes(); ++t) {
        ASSERT_EQ(mesh.distance(s, t), dist[static_cast<std::size_t>(t)])
            << "s=" << s << " t=" << t << " torus=" << torus;
      }
    }
  }
}

TEST(Fuzz, FaultScheduleInvariantsOnRandomConfigs) {
  // Random (rate, repair, horizon, seed) configs: the CSR interval store
  // must agree with the point-query path (two independent code paths into
  // the same schedule), the intervals must be well-formed, and the
  // fail-event count must tie out with the static masks.
  Rng fuzz(0xfa01);
  for (int trial = 0; trial < 40; ++trial) {
    const Mesh mesh({static_cast<std::int64_t>(2 + fuzz.uniform_below(5)),
                     static_cast<std::int64_t>(2 + fuzz.uniform_below(5))});
    FaultConfig config;
    config.edge_fail_prob =
        static_cast<double>(fuzz.uniform_below(300)) / 1000.0;
    config.edge_repair_prob =
        static_cast<double>(fuzz.uniform_below(1000)) / 1000.0;
    config.horizon = static_cast<std::int64_t>(fuzz.uniform_below(50));
    config.seed = fuzz.bits(64);
    if (fuzz.coin()) {
      config.failed_edges.push_back(static_cast<EdgeId>(
          fuzz.uniform_below(static_cast<std::uint64_t>(mesh.num_edges()))));
    }
    const FaultModel model(mesh, config);

    std::int64_t interval_count = 0;
    for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
      const auto intervals = model.intervals(e);
      interval_count += static_cast<std::int64_t>(intervals.size());
      std::int64_t prev_end = -1;
      std::vector<bool> down(static_cast<std::size_t>(config.horizon),
                             false);
      for (const auto& [start, end] : intervals) {
        ASSERT_LE(0, start);
        ASSERT_LT(start, end);
        ASSERT_LE(end, config.horizon);
        // Disjoint with a real up-gap: a zero-length gap would mean a
        // repair and an immediate refail merged into one interval.
        ASSERT_GT(start, prev_end);
        prev_end = end;
        for (std::int64_t s = start; s < end; ++s) {
          down[static_cast<std::size_t>(s)] = true;
        }
      }
      const bool statically_dead = model.edge_failed(e, config.horizon);
      for (std::int64_t s = 0; s < config.horizon; ++s) {
        ASSERT_EQ(model.edge_failed(e, s),
                  statically_dead || down[static_cast<std::size_t>(s)])
            << "trial " << trial << " edge " << e << " step " << s;
      }
      // Beyond the horizon only the static masks apply.
      ASSERT_EQ(model.edge_failed(e, config.horizon + 7), statically_dead);
    }
    ASSERT_EQ(model.failures_injected(),
              model.static_failed_edges() + interval_count);
    // fault_free() is config-driven (a live rate can still produce zero
    // intervals by luck), so only the forward implication holds.
    if (model.fault_free()) {
      ASSERT_EQ(model.failures_injected(), 0);
    }
  }
}

TEST(Fuzz, FaultPathAndSegmentProbesAgree) {
  // path_failed walks node pairs, segments_failed walks segment runs:
  // two independent edge enumerations of the same walk must agree at
  // every probed step.
  Rng fuzz(0xfa02);
  for (int trial = 0; trial < 30; ++trial) {
    const bool torus = fuzz.coin();
    const Mesh mesh({8, 8}, torus);
    FaultConfig config;
    config.edge_fail_prob = 0.05;
    config.horizon = 16;
    config.seed = fuzz.bits(64);
    const FaultModel model(mesh, config);
    // A random simple-ish walk: repeated random productive steps.
    Path path;
    NodeId u = static_cast<NodeId>(
        fuzz.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    path.nodes.push_back(u);
    for (int hop = 0; hop < 20; ++hop) {
      const int d = static_cast<int>(fuzz.uniform_below(2));
      const int dir = fuzz.coin() ? +1 : -1;
      const NodeId v = mesh.step(u, d, dir);
      if (v == kInvalidNode) continue;
      path.nodes.push_back(v);
      u = v;
    }
    const SegmentPath sp = segments_from_path(mesh, path);
    for (std::int64_t step = 0; step < 18; ++step) {
      ASSERT_EQ(model.path_failed(path, step), model.segments_failed(sp, step))
          << "trial " << trial << " step " << step;
    }
  }
}

}  // namespace
}  // namespace oblivious
