// Differential fuzz tests: randomized operation sequences checked against
// an independent reference implementation.
#include <gtest/gtest.h>

#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/region.hpp"
#include "rng/rng.hpp"
#include "util/small_vec.hpp"

namespace oblivious {
namespace {

TEST(Fuzz, SmallVecBehavesLikeStdVector) {
  Rng rng(0xfacade);
  for (int trial = 0; trial < 50; ++trial) {
    SmallVec<int, 4> sv;
    std::vector<int> ref;
    for (int op = 0; op < 200; ++op) {
      switch (rng.uniform_below(5)) {
        case 0:
        case 1: {  // push_back (weighted: grow more than shrink)
          const int v = static_cast<int>(rng.uniform_below(1000));
          sv.push_back(v);
          ref.push_back(v);
          break;
        }
        case 2: {  // pop_back
          if (!ref.empty()) {
            sv.pop_back();
            ref.pop_back();
          }
          break;
        }
        case 3: {  // resize
          const std::size_t n = rng.uniform_below(20);
          sv.resize(n, 7);
          ref.resize(n, 7);
          break;
        }
        case 4: {  // write through operator[]
          if (!ref.empty()) {
            const std::size_t i = rng.uniform_below(ref.size());
            const int v = static_cast<int>(rng.uniform_below(1000));
            sv[i] = v;
            ref[i] = v;
          }
          break;
        }
      }
      ASSERT_EQ(sv.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(sv[i], ref[i]) << "trial " << trial << " op " << op;
      }
    }
    // Copy/move round trip preserves contents.
    SmallVec<int, 4> copy(sv);
    SmallVec<int, 4> moved(std::move(copy));
    ASSERT_EQ(moved.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(moved[i], ref[i]);
  }
}

TEST(Fuzz, RegionContainmentMatchesBruteForce) {
  Rng rng(0xbeef);
  for (const bool torus : {false, true}) {
    const Mesh mesh({8, 16}, torus);
    for (int trial = 0; trial < 60; ++trial) {
      Coord anchor;
      Coord extent;
      anchor.resize(2);
      extent.resize(2);
      for (int d = 0; d < 2; ++d) {
        const std::size_t dd = static_cast<std::size_t>(d);
        extent[dd] = 1 + static_cast<std::int64_t>(
                             rng.uniform_below(
                                 static_cast<std::uint64_t>(mesh.side(d))));
        const std::int64_t max_anchor =
            torus ? mesh.side(d) : mesh.side(d) - extent[dd] + 1;
        anchor[dd] = static_cast<std::int64_t>(
            rng.uniform_below(static_cast<std::uint64_t>(max_anchor)));
      }
      const Region region(anchor, extent);
      // Brute force: enumerate the region's nodes via coord_at.
      std::vector<bool> inside(static_cast<std::size_t>(mesh.num_nodes()), false);
      for (std::int64_t dx = 0; dx < extent[0]; ++dx) {
        for (std::int64_t dy = 0; dy < extent[1]; ++dy) {
          inside[static_cast<std::size_t>(
              mesh.node_id(region.coord_at(mesh, Coord{dx, dy})))] = true;
        }
      }
      for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
        ASSERT_EQ(region.contains_node(mesh, u),
                  inside[static_cast<std::size_t>(u)])
            << region.describe() << " node " << u << " torus " << torus;
      }
      // Volume agrees with the enumeration.
      std::int64_t count = 0;
      for (const bool b : inside) count += b ? 1 : 0;
      ASSERT_EQ(count, region.volume());
    }
  }
}

TEST(Fuzz, DistanceMatchesBfsOnSmallMeshes) {
  // L1 (wrap-aware) distance vs breadth-first search over the real edges.
  for (const bool torus : {false, true}) {
    const Mesh mesh({4, 3, 2}, torus);
    for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
      std::vector<std::int64_t> dist(static_cast<std::size_t>(mesh.num_nodes()),
                                     -1);
      std::vector<NodeId> frontier = {s};
      dist[static_cast<std::size_t>(s)] = 0;
      while (!frontier.empty()) {
        std::vector<NodeId> next;
        for (const NodeId u : frontier) {
          for (const NodeId v : mesh.neighbors(u)) {
            if (dist[static_cast<std::size_t>(v)] == -1) {
              dist[static_cast<std::size_t>(v)] =
                  dist[static_cast<std::size_t>(u)] + 1;
              next.push_back(v);
            }
          }
        }
        frontier = std::move(next);
      }
      for (NodeId t = 0; t < mesh.num_nodes(); ++t) {
        ASSERT_EQ(mesh.distance(s, t), dist[static_cast<std::size_t>(t)])
            << "s=" << s << " t=" << t << " torus=" << torus;
      }
    }
  }
}

}  // namespace
}  // namespace oblivious
