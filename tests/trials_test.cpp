#include <gtest/gtest.h>

#include "analysis/trials.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

TEST(Trials, SummaryCountsMatch) {
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  const RoutingProblem problem = transpose(mesh);
  const TrialSummary s = evaluate_trials(mesh, *router, problem, 5, 100);
  EXPECT_EQ(s.congestion.count(), 5U);
  EXPECT_EQ(s.dilation.count(), 5U);
  EXPECT_EQ(s.max_stretch.count(), 5U);
  EXPECT_GT(s.lower_bound, 0.0);
  EXPECT_GT(s.max_expected_edge_load, 0.0);
}

TEST(Trials, DeterministicRouterHasZeroVariance) {
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kEcube, mesh);
  const RoutingProblem problem = transpose(mesh);
  const TrialSummary s = evaluate_trials(mesh, *router, problem, 4, 7);
  EXPECT_DOUBLE_EQ(s.congestion.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.congestion.min(), s.congestion.max());
  // For a deterministic router E[C(e)] peaks at exactly C.
  EXPECT_DOUBLE_EQ(s.max_expected_edge_load, s.congestion.mean());
}

TEST(Trials, ExpectedLoadNeverExceedsMeanCongestion) {
  // E[max_e C(e)] >= max_e E[C(e)] by Jensen.
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  Rng wrng(5);
  const RoutingProblem problem = random_permutation(mesh, wrng);
  const TrialSummary s = evaluate_trials(mesh, *router, problem, 10, 55);
  EXPECT_LE(s.max_expected_edge_load, s.congestion.mean() + 1e-9);
}

TEST(Trials, PoolAndSerialAgree) {
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kValiant, mesh);
  const RoutingProblem problem = transpose(mesh);
  ThreadPool pool(3);
  const TrialSummary serial = evaluate_trials(mesh, *router, problem, 6, 42);
  const TrialSummary parallel =
      evaluate_trials(mesh, *router, problem, 6, 42, &pool);
  // Same seeds -> identical per-trial results regardless of scheduling.
  EXPECT_DOUBLE_EQ(serial.congestion.mean(), parallel.congestion.mean());
  EXPECT_DOUBLE_EQ(serial.congestion.min(), parallel.congestion.min());
  EXPECT_DOUBLE_EQ(serial.congestion.max(), parallel.congestion.max());
  EXPECT_DOUBLE_EQ(serial.max_expected_edge_load,
                   parallel.max_expected_edge_load);
}

TEST(Trials, ConcentrationOnRandomizedRouter) {
  // Theorem 3.9's w.h.p. claim, in miniature: the spread of C over trials
  // is small relative to its mean.
  const Mesh mesh({32, 32});
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  const RoutingProblem problem = transpose(mesh);
  const TrialSummary s = evaluate_trials(mesh, *router, problem, 20, 9);
  EXPECT_LT(s.congestion.stddev(), 0.2 * s.congestion.mean());
  EXPECT_LT(s.congestion.max() / s.congestion.min(), 1.8);
}

TEST(Trials, RejectsZeroTrials) {
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kEcube, mesh);
  EXPECT_THROW(evaluate_trials(mesh, *router, transpose(mesh), 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace oblivious
