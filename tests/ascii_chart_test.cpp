#include <gtest/gtest.h>

#include <cmath>

#include "util/ascii_chart.hpp"

namespace oblivious {
namespace {

TEST(AsciiChart, RendersMarkersAndLegend) {
  AsciiChart chart({"1", "2", "3"}, 5);
  chart.add_series({"up", {1.0, 2.0, 3.0}, 'u'});
  chart.add_series({"down", {3.0, 2.0, 1.0}, 'd'});
  const std::string s = chart.render();
  EXPECT_NE(s.find('u'), std::string::npos);
  EXPECT_NE(s.find('d'), std::string::npos);
  EXPECT_NE(s.find("u = up"), std::string::npos);
  EXPECT_NE(s.find("d = down"), std::string::npos);
  EXPECT_NE(s.find("3.0"), std::string::npos);  // y-axis top tick
  EXPECT_NE(s.find("1.0"), std::string::npos);  // y-axis bottom tick
}

TEST(AsciiChart, ExtremesLandOnTopAndBottomRows) {
  AsciiChart chart({"a", "b"}, 4);
  chart.add_series({"s", {0.0, 10.0}, '#'});
  const std::string s = chart.render();
  std::vector<std::string> lines;
  std::stringstream ss(s);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  // Row 0 (max) holds the second point, row 3 (min) the first.
  EXPECT_NE(lines[0].find('#'), std::string::npos);
  EXPECT_NE(lines[3].find('#'), std::string::npos);
}

TEST(AsciiChart, SkipsNaNs) {
  AsciiChart chart({"a", "b", "c"}, 4);
  chart.add_series({"s", {1.0, std::nan(""), 2.0}, '#'});
  const std::string s = chart.render();
  EXPECT_EQ(std::count(s.begin(), s.end(), '#'), 3);  // 2 points + legend
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart({"a", "b"}, 4);
  chart.add_series({"s", {5.0, 5.0}, '#'});
  EXPECT_NO_THROW(chart.render());
}

TEST(AsciiChart, RejectsMisuse) {
  EXPECT_THROW(AsciiChart({}, 5), std::invalid_argument);
  EXPECT_THROW(AsciiChart({"a"}, 1), std::invalid_argument);
  AsciiChart chart({"a", "b"}, 4);
  EXPECT_THROW(chart.add_series({"s", {1.0}, '#'}), std::invalid_argument);
  EXPECT_THROW(chart.render(), std::invalid_argument);  // no series
  chart.add_series({"s", {std::nan(""), std::nan("")}, '#'});
  EXPECT_THROW(chart.render(), std::invalid_argument);  // no finite values
}

}  // namespace
}  // namespace oblivious
