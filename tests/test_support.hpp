// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mesh/mesh.hpp"
#include "rng/rng.hpp"

namespace oblivious::testing {

// Deterministic sample of `count` distinct-source/destination pairs.
inline std::vector<std::pair<NodeId, NodeId>> sample_pairs(const Mesh& mesh,
                                                           std::size_t count,
                                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const NodeId s = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    const NodeId t = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    if (s != t) pairs.emplace_back(s, t);
  }
  return pairs;
}

// Pretty parameter names for TEST_P instantiations.
inline std::string param_name(std::int64_t side, bool torus) {
  return (torus ? std::string("torus") : std::string("mesh")) + std::to_string(side);
}

}  // namespace oblivious::testing
