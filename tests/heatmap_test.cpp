#include <gtest/gtest.h>

#include "analysis/heatmap.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

Path make_path(std::initializer_list<NodeId> nodes) {
  Path p;
  p.nodes.assign(nodes);
  return p;
}

TEST(Heatmap, EmptyLoadsRenderBlank) {
  const Mesh mesh({8, 8});
  const EdgeLoadMap loads(mesh);
  const std::string map = render_load_heatmap(loads);
  // 8 rows of 8 spaces (plus the header line).
  EXPECT_NE(map.find("peak edge load 0"), std::string::npos);
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 9);
  // No hot cells below the header line (the header itself shows the ramp).
  EXPECT_EQ(map.find('@', map.find('\n')), std::string::npos);
}

TEST(Heatmap, HotEdgeGetsPeakSymbol) {
  const Mesh mesh({8, 8});
  EdgeLoadMap loads(mesh);
  for (int i = 0; i < 5; ++i) loads.add_path(make_path({0, 1}));
  const std::string map = render_load_heatmap(loads);
  EXPECT_NE(map.find("peak edge load 5"), std::string::npos);
  EXPECT_NE(map.find('@'), std::string::npos);
}

TEST(Heatmap, EcubeTransposeShowsDiagonal) {
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kEcube, mesh);
  EdgeLoadMap loads(mesh);
  Rng rng(1);
  for (const Demand& d : transpose(mesh).demands) {
    loads.add_path(router->route(d.src, d.dst, rng));
  }
  const std::string map = render_load_heatmap(loads);
  // The hottest cells of dimension-order transpose sit on the diagonal.
  std::vector<std::string> rows;
  std::stringstream ss(map);
  std::string line;
  std::getline(ss, line);  // header
  while (std::getline(ss, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 16U);
  int diagonal_hot = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    if (c == '@' || c == '%' || c == '#') ++diagonal_hot;
  }
  EXPECT_GE(diagonal_hot, 8);
}

TEST(Heatmap, DownsamplesLargeMeshes) {
  const Mesh mesh({64, 64});
  EdgeLoadMap loads(mesh);
  loads.add_path(make_path({0, 1}));
  const std::string map = render_load_heatmap(loads, /*width=*/16);
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 17);
}

TEST(Heatmap, Rejects3DMeshes) {
  const Mesh mesh({4, 4, 4});
  const EdgeLoadMap loads(mesh);
  EXPECT_THROW(render_load_heatmap(loads), std::invalid_argument);
}

}  // namespace
}  // namespace oblivious
