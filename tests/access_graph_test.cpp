#include <gtest/gtest.h>

#include <set>

#include "decomposition/access_graph.hpp"
#include "decomposition/render.hpp"

namespace oblivious {
namespace {

class AccessGraph2D : public ::testing::TestWithParam<bool> {
 protected:
  AccessGraph2D()
      : mesh_({16, 16}, GetParam()),
        dec_(Decomposition::section3(mesh_)),
        graph_(dec_) {}
  Mesh mesh_;
  Decomposition dec_;
  AccessGraph graph_;
};

TEST_P(AccessGraph2D, UniqueRootAtLevelZero) {
  const auto roots = graph_.nodes_at_level(0);
  ASSERT_EQ(roots.size(), 1U);
  EXPECT_EQ(graph_.node(roots[0]).submesh.region.volume(), mesh_.num_nodes());
  EXPECT_TRUE(graph_.node(roots[0]).parents.empty());
}

TEST_P(AccessGraph2D, LeavesAreSingleNodesWithNoChildren) {
  const auto leaves = graph_.nodes_at_level(dec_.leaf_level());
  EXPECT_EQ(leaves.size(), static_cast<std::size_t>(mesh_.num_nodes()));
  for (const int idx : leaves) {
    EXPECT_EQ(graph_.node(idx).submesh.region.volume(), 1);
    EXPECT_TRUE(graph_.node(idx).children.empty());
  }
}

TEST_P(AccessGraph2D, ParentsBoundedAndType1AlwaysCovered) {
  // Section 3.2: the access graph is not a tree; a type-1 node has its
  // unique type-1 parent and possibly one type-2 parent. Type-2 nodes can
  // be parentless (they only ever serve as the top of a bitonic path).
  for (const AccessGraphNode& node : graph_.nodes()) {
    if (node.submesh.level == 0) continue;
    EXPECT_LE(node.parents.size(), 2U) << node.submesh.describe();
    if (node.submesh.type == 1) {
      EXPECT_GE(node.parents.size(), 1U) << node.submesh.describe();
    }
    // At most one parent of each type.
    std::set<int> parent_types;
    for (const int pi : node.parents) {
      EXPECT_TRUE(parent_types.insert(graph_.node(pi).submesh.type).second)
          << node.submesh.describe();
    }
    // Exactly one type-1 parent for type-1 nodes.
    if (node.submesh.type == 1) {
      int type1_parents = 0;
      for (const int pi : node.parents) {
        if (graph_.node(pi).submesh.type == 1) ++type1_parents;
      }
      EXPECT_EQ(type1_parents, 1) << node.submesh.describe();
    }
  }
}

TEST_P(AccessGraph2D, EdgesConnectAdjacentLevelsAndContain) {
  for (const AccessGraphNode& node : graph_.nodes()) {
    for (const int ci : node.children) {
      const AccessGraphNode& child = graph_.node(ci);
      EXPECT_EQ(child.submesh.level, node.submesh.level + 1);
      EXPECT_TRUE(
          node.submesh.region.contains_region(mesh_, child.submesh.region));
    }
  }
}

TEST_P(AccessGraph2D, Lemma32EveryNodeOfARegularSubmeshHasItAsAncestor) {
  // Lemma 3.2: for any node v inside a regular submesh M',
  // g^{-1}(M') is an ancestor of the leaf g^{-1}(v).
  for (int level = 0; level < dec_.leaf_level(); ++level) {
    for (const int idx : graph_.nodes_at_level(level)) {
      const AccessGraphNode& node = graph_.node(idx);
      // Sample the submesh's corner and center nodes.
      const Region& r = node.submesh.region;
      for (const Coord& off :
           {Coord{0, 0}, Coord{r.extent_at(0) - 1, r.extent_at(1) - 1},
            Coord{r.extent_at(0) / 2, r.extent_at(1) / 2}}) {
        const Coord p = r.coord_at(mesh_, off);
        EXPECT_TRUE(graph_.is_ancestor(idx, graph_.leaf_of(p)))
            << node.submesh.describe();
      }
    }
  }
}

TEST_P(AccessGraph2D, BitonicPathIsMonotonicWithOneBridge) {
  const auto pairs = std::vector<std::pair<Coord, Coord>>{
      {Coord{0, 0}, Coord{15, 15}}, {Coord{7, 7}, Coord{8, 8}},
      {Coord{0, 7}, Coord{0, 8}},   {Coord{3, 2}, Coord{3, 3}},
      {Coord{15, 0}, Coord{0, 15}}, {Coord{5, 5}, Coord{5, 6}}};
  for (const auto& [s, t] : pairs) {
    const std::vector<int> path = graph_.bitonic_path(s, t);
    ASSERT_GE(path.size(), 3U);
    // Levels descend to the bridge then ascend; all non-bridge nodes type-1.
    std::size_t bridge_pos = 0;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (graph_.node(path[i]).submesh.level <
          graph_.node(path[bridge_pos]).submesh.level) {
        bridge_pos = i;
      }
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
      const AccessGraphNode& node = graph_.node(path[i]);
      if (i != bridge_pos) {
        EXPECT_EQ(node.submesh.type, 1);
      }
      if (i > 0) {
        const AccessGraphNode& prev = graph_.node(path[i - 1]);
        if (i <= bridge_pos) {
          EXPECT_EQ(prev.submesh.level, node.submesh.level + 1);
          EXPECT_TRUE(
              node.submesh.region.contains_region(mesh_, prev.submesh.region));
        } else {
          EXPECT_EQ(prev.submesh.level, node.submesh.level - 1);
          EXPECT_TRUE(
              prev.submesh.region.contains_region(mesh_, node.submesh.region));
        }
      }
    }
    // Endpoints are the leaves of s and t.
    EXPECT_EQ(path.front(), graph_.leaf_of(s));
    EXPECT_EQ(path.back(), graph_.leaf_of(t));
  }
}

INSTANTIATE_TEST_SUITE_P(MeshAndTorus, AccessGraph2D, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "torus" : "mesh";
                         });

TEST(AccessGraphRender, Figure1LevelOneFamilies) {
  const Mesh m({8, 8});
  const Decomposition dec = Decomposition::section3(m);
  const std::string type1 = render_family(dec, 1, 1);
  // Four quadrants of side 4: first row is AAAABBBB.
  EXPECT_EQ(type1.substr(0, 8), "AAAABBBB");
  const std::string type2 = render_family(dec, 1, 2);
  // Corners are discarded: the first two characters are dots.
  EXPECT_EQ(type2.substr(0, 2), "..");
  const std::string level = render_level(dec, 1);
  EXPECT_NE(level.find("type 1"), std::string::npos);
  EXPECT_NE(level.find("type 2"), std::string::npos);
}

TEST(AccessGraphRender, TorusHasNoGaps) {
  const Mesh t({8, 8}, true);
  const Decomposition dec = Decomposition::section3(t);
  const std::string type2 = render_family(dec, 1, 2);
  EXPECT_EQ(type2.find('.'), std::string::npos);
}

}  // namespace
}  // namespace oblivious
