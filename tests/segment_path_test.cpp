// Equivalence of the segment-path pipeline with the node-list pipeline:
// every router's route_segments must describe exactly the path its route
// returns (same rng seed), and EdgeLoadMap::add_segments must charge
// exactly the edges add_path charges -- across dimensions, tori, odd
// sides, and the truncated bridge submeshes of non-torus meshes.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/congestion.hpp"
#include "mesh/segment_path.hpp"
#include "routing/registry.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

std::vector<Mesh> test_meshes() {
  std::vector<Mesh> meshes;
  meshes.push_back(Mesh::cube(2, 8));                  // square pow2: all algos
  meshes.push_back(Mesh::cube(2, 8, /*torus=*/true));  // torus wrap
  meshes.push_back(Mesh({6, 10}));                     // non-square, non-pow2
  meshes.push_back(Mesh({5, 7}, /*torus=*/true));      // odd-side torus
  meshes.push_back(Mesh::cube(3, 4));                  // 3D
  meshes.push_back(Mesh::cube(3, 5, /*torus=*/true));  // 3D odd torus
  meshes.push_back(Mesh::cube(4, 3));                  // 4D
  meshes.push_back(Mesh({2, 2, 4}, /*torus=*/true));   // side-2 torus dims
  return meshes;
}

void expect_same_loads(const Mesh& mesh, const EdgeLoadMap& a,
                       const EdgeLoadMap& b) {
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    ASSERT_EQ(a.load(e), b.load(e)) << "edge " << e << " of " << mesh.describe();
  }
}

TEST(SegmentPath, AppendMergesSameDirectionRuns) {
  SegmentPath sp;
  sp.source = 0;
  sp.append(1, 2);
  sp.append(1, 3);
  ASSERT_EQ(sp.segments.size(), 1U);
  EXPECT_EQ(sp.segments[0].run, 5);
  sp.append(1, -1);  // direction change: new segment
  ASSERT_EQ(sp.segments.size(), 2U);
  sp.append(0, 4);  // dimension change: new segment
  ASSERT_EQ(sp.segments.size(), 3U);
  sp.append(0, 0);  // no-op
  ASSERT_EQ(sp.segments.size(), 3U);
  EXPECT_EQ(sp.length(), 10);
}

TEST(SegmentPath, RoundTripOnEveryMesh) {
  for (const Mesh& mesh : test_meshes()) {
    const auto router = make_router(Algorithm::kStaircase, mesh);
    Rng rng(21);
    for (const auto& [s, t] : testing::sample_pairs(mesh, 30, 5)) {
      const Path path = router->route(s, t, rng);
      const SegmentPath sp = segments_from_path(mesh, path);
      EXPECT_TRUE(is_valid_segment_path(mesh, sp));
      EXPECT_EQ(path_from_segments(mesh, sp).nodes, path.nodes)
          << mesh.describe();
      EXPECT_EQ(sp.length(), path.length());
    }
  }
}

// Every registered algorithm: route_segments with the same rng state must
// describe exactly the node path route returns.
TEST(SegmentPath, RouteSegmentsMatchesRouteForEveryAlgorithm) {
  for (const Mesh& mesh : test_meshes()) {
    for (const Algorithm algo : algorithms_for(mesh)) {
      const auto router = make_router(algo, mesh);
      for (const auto& [s, t] : testing::sample_pairs(mesh, 20, 7)) {
        Rng rng_a(99);
        Rng rng_b(99);
        const Path path = router->route(s, t, rng_a);
        const SegmentPath sp = router->route_segments(s, t, rng_b);
        EXPECT_EQ(sp.source, s);
        EXPECT_EQ(sp.destination(), t);
        EXPECT_TRUE(is_valid_segment_path(mesh, sp));
        ASSERT_EQ(path_from_segments(mesh, sp).nodes, path.nodes)
            << router->name() << " on " << mesh.describe();
        EXPECT_DOUBLE_EQ(segment_path_stretch(mesh, sp),
                         path_stretch(mesh, path));
      }
    }
  }
}

// add_segments must charge exactly the edges add_path charges.
TEST(SegmentPath, EdgeLoadsMatchNodeListAccounting) {
  for (const Mesh& mesh : test_meshes()) {
    for (const Algorithm algo : algorithms_for(mesh)) {
      const auto router = make_router(algo, mesh);
      EdgeLoadMap by_path(mesh);
      EdgeLoadMap by_segments(mesh);
      Rng rng(3);
      for (const auto& [s, t] : testing::sample_pairs(mesh, 25, 11)) {
        Rng rng_copy = rng;
        by_path.add_path(router->route(s, t, rng));
        by_segments.add_segments(router->route_segments(s, t, rng_copy));
      }
      EXPECT_EQ(by_segments.max_load(), by_path.max_load()) << router->name();
      expect_same_loads(mesh, by_path, by_segments);
    }
  }
}

// Torus wraps and full laps: synthetic segment paths whose runs wrap the
// torus (including multiple full laps) must charge the same edges as the
// hop-by-hop walk of their node expansion.
TEST(SegmentPath, TorusWrapAndLapAccounting) {
  const Mesh mesh({5, 4}, /*torus=*/true);
  std::vector<SegmentPath> cases;
  for (const std::int64_t run :
       {std::int64_t{4}, std::int64_t{-4}, std::int64_t{5}, std::int64_t{-5},
        std::int64_t{7}, std::int64_t{-7}, std::int64_t{12}}) {
    for (const int dim : {0, 1}) {
      for (const NodeId start : {NodeId{0}, NodeId{7}, NodeId{19}}) {
        SegmentPath sp;
        sp.source = start;
        sp.append(dim, run);
        sp.append(1 - dim, 2);
        sp.append(dim, -1);
        // Recompute dest by expanding (path_from_segments checks it).
        Coord c = mesh.coord(start);
        c[static_cast<std::size_t>(dim)] += run - 1;
        c[static_cast<std::size_t>(1 - dim)] += 2;
        sp.dest = mesh.node_id(mesh.wrap(c));
        cases.push_back(sp);
      }
    }
  }
  EdgeLoadMap by_segments(mesh);
  EdgeLoadMap by_path(mesh);
  for (const SegmentPath& sp : cases) {
    ASSERT_TRUE(is_valid_segment_path(mesh, sp));
    by_segments.add_segments(sp);
    by_path.add_path(path_from_segments(mesh, sp));
  }
  expect_same_loads(mesh, by_path, by_segments);
}

// Side-2 torus dimensions have a single edge per line; every unit step
// crosses it regardless of direction.
TEST(SegmentPath, SideTwoTorusCountsTheSingleEdge) {
  const Mesh mesh({2, 3}, /*torus=*/true);
  SegmentPath sp;
  sp.source = 0;
  sp.dest = 0;
  sp.append(0, 1);
  sp.append(0, 1);  // merged: run 2 = back and forth across the one edge
  EdgeLoadMap by_segments(mesh);
  by_segments.add_segments(sp);
  EdgeLoadMap by_path(mesh);
  by_path.add_path(path_from_segments(mesh, sp));
  expect_same_loads(mesh, by_path, by_segments);
  // Node (1,0) has id 3; the single dim-0 edge is crossed on both steps.
  EXPECT_EQ(by_segments.load(mesh.edge_between(0, 3)), 2U);
}

// Hierarchical routing on a non-torus mesh exercises truncated bridge
// submeshes near the boundary; the segment pipeline must agree there too.
TEST(SegmentPath, TruncatedBridgeSubmeshesAgree) {
  const Mesh mesh = Mesh::cube(2, 16);
  const auto router = make_router(Algorithm::kHierarchicalNd, mesh);
  EdgeLoadMap by_path(mesh);
  EdgeLoadMap by_segments(mesh);
  // Pairs hugging the boundary, where bridge truncation happens.
  for (NodeId s = 0; s < 16; ++s) {
    for (const NodeId t : {NodeId{255}, NodeId{240}, NodeId{15 * 16 + 7}}) {
      if (s == t) continue;
      Rng rng_a(s * 31 + t);
      Rng rng_b(s * 31 + t);
      const Path path = router->route(s, t, rng_a);
      const SegmentPath sp = router->route_segments(s, t, rng_b);
      ASSERT_EQ(path_from_segments(mesh, sp).nodes, path.nodes);
      by_path.add_path(path);
      by_segments.add_segments(sp);
    }
  }
  expect_same_loads(mesh, by_path, by_segments);
}

TEST(SegmentPath, ClearResetsSegmentContributions) {
  const Mesh mesh = Mesh::cube(2, 8, /*torus=*/true);
  const auto router = make_router(Algorithm::kRandomDimOrder, mesh);
  EdgeLoadMap loads(mesh);
  Rng rng(17);
  SegmentPath sp = router->route_segments(1, 62, rng);
  loads.add_segments(sp);
  const std::uint32_t before = loads.max_load();
  ASSERT_GT(before, 0U);
  loads.clear();
  EXPECT_EQ(loads.max_load(), 0U);
  loads.add_segments(sp);
  EXPECT_EQ(loads.max_load(), before);
}

TEST(SegmentPath, MergeEqualsBulkAccounting) {
  const Mesh mesh = Mesh::cube(3, 4, /*torus=*/true);
  const auto router = make_router(Algorithm::kValiant, mesh);
  std::vector<SegmentPath> sps;
  Rng rng(29);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 40, 23)) {
    sps.push_back(router->route_segments(s, t, rng));
  }
  EdgeLoadMap bulk(mesh);
  bulk.add_segment_paths(sps);
  EdgeLoadMap shard_a(mesh);
  EdgeLoadMap shard_b(mesh);
  for (std::size_t i = 0; i < sps.size(); ++i) {
    (i % 2 == 0 ? shard_a : shard_b).add_segments(sps[i]);
  }
  shard_a.merge(shard_b);
  expect_same_loads(mesh, bulk, shard_a);
}

}  // namespace
}  // namespace oblivious
