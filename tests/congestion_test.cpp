#include <gtest/gtest.h>

#include "analysis/congestion.hpp"
#include "routing/baselines.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

Path make_path(std::initializer_list<NodeId> nodes) {
  Path p;
  p.nodes.assign(nodes);
  return p;
}

TEST(EdgeLoadMap, EmptyMapHasZeroLoad) {
  const Mesh m({4, 4});
  const EdgeLoadMap loads(m);
  EXPECT_EQ(loads.max_load(), 0U);
  EXPECT_EQ(loads.edges_used(), 0);
  EXPECT_DOUBLE_EQ(loads.mean_nonzero(), 0.0);
}

TEST(EdgeLoadMap, SinglePathCountsEachEdgeOnce) {
  const Mesh m({4, 4});
  EdgeLoadMap loads(m);
  loads.add_path(make_path({0, 1, 2, 6}));
  EXPECT_EQ(loads.max_load(), 1U);
  EXPECT_EQ(loads.edges_used(), 3);
  EXPECT_EQ(loads.load(m.edge_between(0, 1)), 1U);
  EXPECT_EQ(loads.load(m.edge_between(2, 6)), 1U);
  EXPECT_EQ(loads.load(m.edge_between(6, 7)), 0U);
}

TEST(EdgeLoadMap, OverlappingPathsAccumulate) {
  const Mesh m({4, 4});
  EdgeLoadMap loads(m);
  loads.add_path(make_path({0, 1, 2}));
  loads.add_path(make_path({2, 1}));  // reverse direction counts too
  loads.add_path(make_path({1, 2, 3}));
  EXPECT_EQ(loads.load(m.edge_between(1, 2)), 3U);
  EXPECT_EQ(loads.max_load(), 3U);
  EXPECT_EQ(loads.argmax(), m.edge_between(1, 2));
}

TEST(EdgeLoadMap, TrivialPathAddsNothing) {
  const Mesh m({4, 4});
  EdgeLoadMap loads(m);
  loads.add_path(make_path({5}));
  EXPECT_EQ(loads.max_load(), 0U);
}

TEST(EdgeLoadMap, RejectsNonAdjacentHops) {
  const Mesh m({4, 4});
  EdgeLoadMap loads(m);
  EXPECT_THROW(loads.add_path(make_path({0, 2})), std::invalid_argument);
}

TEST(EdgeLoadMap, TorusWrapEdges) {
  const Mesh t({4, 4}, true);
  EdgeLoadMap loads(t);
  const NodeId a = t.node_id(Coord{0, 0});
  const NodeId b = t.node_id(Coord{3, 0});
  loads.add_path(make_path({a, b}));        // wrap -1 in dim 0
  loads.add_path(make_path({b, a}));        // wrap +1 in dim 0
  EXPECT_EQ(loads.load(t.edge_between(a, b)), 2U);
  const NodeId c = t.node_id(Coord{1, 0});
  const NodeId d = t.node_id(Coord{1, 3});
  loads.add_path(make_path({c, d}));        // wrap in dim 1
  EXPECT_EQ(loads.load(t.edge_between(c, d)), 1U);
  EXPECT_EQ(loads.max_load(), 2U);
}

TEST(EdgeLoadMap, MatchesBruteForceOnRandomPaths) {
  for (const bool torus : {false, true}) {
    const Mesh m({8, 8}, torus);
    const RandomDimOrderRouter router(m);
    Rng rng(3);
    std::vector<Path> paths;
    for (const auto& [s, t] : testing::sample_pairs(m, 100, 1)) {
      paths.push_back(router.route(s, t, rng));
    }
    EdgeLoadMap fast(m);
    fast.add_paths(paths);
    // Brute force via edge_between on every hop.
    std::vector<std::uint32_t> brute(static_cast<std::size_t>(m.num_edges()), 0);
    for (const Path& p : paths) {
      for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        ++brute[static_cast<std::size_t>(
            m.edge_between(p.nodes[i], p.nodes[i + 1]))];
      }
    }
    for (EdgeId e = 0; e < m.num_edges(); ++e) {
      ASSERT_EQ(fast.load(e), brute[static_cast<std::size_t>(e)])
          << "edge " << e << " torus=" << torus;
    }
  }
}

TEST(EdgeLoadMap, HistogramAndClear) {
  const Mesh m({4, 4});
  EdgeLoadMap loads(m);
  loads.add_path(make_path({0, 1, 2}));
  loads.add_path(make_path({0, 1}));
  const IntHistogram h = loads.histogram();
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(m.num_edges()));
  EXPECT_EQ(h.count(2), 1U);  // edge (0,1)
  EXPECT_EQ(h.count(1), 1U);  // edge (1,2)
  loads.clear();
  EXPECT_EQ(loads.max_load(), 0U);
}

TEST(EdgeLoadMap, MeanNonzero) {
  const Mesh m({4, 4});
  EdgeLoadMap loads(m);
  loads.add_path(make_path({0, 1, 2}));
  loads.add_path(make_path({0, 1}));
  EXPECT_DOUBLE_EQ(loads.mean_nonzero(), 1.5);
}

TEST(EdgeLoadMap, MaxLoadMemoizationSurvivesEveryMutator) {
  // max_load() caches its scan; every mutator must invalidate the cache.
  const Mesh m({4, 4});
  EdgeLoadMap loads(m);
  EXPECT_EQ(loads.max_load(), 0U);
  loads.add_path(make_path({0, 1, 2}));
  EXPECT_EQ(loads.max_load(), 1U);
  EXPECT_EQ(loads.max_load(), 1U);  // cached read
  loads.add_path(make_path({0, 1}));
  EXPECT_EQ(loads.max_load(), 2U);  // add_path invalidates

  SegmentPath sp;
  sp.source = 0;
  // One +1 hop along the unit-stride dimension: node 0 -> 1.
  sp.append(m.node_stride(0) == 1 ? 0 : 1, 1);
  sp.dest = 1;
  loads.add_segments(sp);
  EXPECT_EQ(loads.max_load(), 3U);  // add_segments invalidates

  EdgeLoadMap other(m);
  other.add_path(make_path({0, 1}));
  loads.merge(other);
  EXPECT_EQ(loads.max_load(), 4U);  // merge invalidates

  loads.clear();
  EXPECT_EQ(loads.max_load(), 0U);  // clear resets
}

}  // namespace
}  // namespace oblivious
