// Unit tests for the two-level weighted fair-share admission queue:
// capacity shares, backpressure hints, weighted service order, the
// idle-reactivation clamp, and drain semantics.
#include "daemon/fair_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

namespace oblivious::daemon {
namespace {

QueueItem item(const std::string& tenant, std::size_t packets,
               std::uint64_t token = 0) {
  return QueueItem{tenant, packets, token};
}

TEST(DaemonFairQueueTest, SharesSplitByWeight) {
  FairQueueOptions options;
  options.capacity_packets = 1000;
  FairShareQueue queue(options);
  queue.register_tenant("heavy", 4);
  queue.register_tenant("light", 1);

  std::map<std::string, TenantStats> stats;
  for (const TenantStats& t : queue.tenant_stats()) stats[t.name] = t;
  EXPECT_EQ(stats["heavy"].capacity_packets, 800u);
  EXPECT_EQ(stats["light"].capacity_packets, 200u);
}

TEST(DaemonFairQueueTest, TenantCapacityBoundsAdmission) {
  FairQueueOptions options;
  options.capacity_packets = 100;
  FairShareQueue queue(options);
  queue.register_tenant("a", 1);
  queue.register_tenant("b", 1);  // each gets 50 packets

  EXPECT_TRUE(queue.try_enqueue(item("a", 50)).admitted);
  const AdmissionResult rejected = queue.try_enqueue(item("a", 1));
  EXPECT_FALSE(rejected.admitted);
  EXPECT_GT(rejected.retry_after_ms, 0u);
  // The other tenant's share is untouched by a's backlog.
  EXPECT_TRUE(queue.try_enqueue(item("b", 50)).admitted);
  EXPECT_EQ(queue.queued_packets(), 100u);
}

TEST(DaemonFairQueueTest, UnknownTenantAutoRegisters) {
  FairQueueOptions options;
  options.capacity_packets = 100;
  options.default_weight = 1;
  FairShareQueue queue(options);
  EXPECT_TRUE(queue.try_enqueue(item("walk-in", 10)).admitted);
  const auto stats = queue.tenant_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "walk-in");
  EXPECT_EQ(stats[0].weight, 1u);
  EXPECT_EQ(stats[0].queued_packets, 10u);
}

TEST(DaemonFairQueueTest, OversizeRequestNeverFits) {
  FairQueueOptions options;
  options.capacity_packets = 64;
  FairShareQueue queue(options);
  queue.register_tenant("only", 1);
  // Larger than the whole queue: rejected even when idle.
  EXPECT_FALSE(queue.try_enqueue(item("only", 65)).admitted);
  EXPECT_EQ(queue.queued_packets(), 0u);
}

TEST(DaemonFairQueueTest, WeightedServiceOrderApproximatesShares) {
  // Both tenants keep a deep backlog; dequeue order must serve packets
  // in the weight ratio (2:1 here) over any sizeable window.
  FairQueueOptions options;
  options.capacity_packets = 10000;
  FairShareQueue queue(options);
  queue.register_tenant("heavy", 2);
  queue.register_tenant("light", 1);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(queue.try_enqueue(item("heavy", 10)).admitted);
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(queue.try_enqueue(item("light", 10)).admitted);
  }

  std::map<std::string, std::size_t> served;
  // Drain ~2/3 of the backlog one item at a time and count per tenant.
  for (int i = 0; i < 60; ++i) {
    const auto chunk = queue.dequeue_chunk(1);
    ASSERT_EQ(chunk.size(), 1u);
    served[chunk[0].tenant] += chunk[0].packets;
  }
  ASSERT_EQ(served["heavy"] + served["light"], 600u);
  // 2:1 split of 600 packets is 400/200; allow one-item slack.
  EXPECT_NEAR(static_cast<double>(served["heavy"]), 400.0, 10.0);
  EXPECT_NEAR(static_cast<double>(served["light"]), 200.0, 10.0);
}

TEST(DaemonFairQueueTest, FifoWithinTenant) {
  FairShareQueue queue;
  queue.register_tenant("t", 1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.try_enqueue(item("t", 1, i)).admitted);
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto chunk = queue.dequeue_chunk(1);
    ASSERT_EQ(chunk.size(), 1u);
    EXPECT_EQ(chunk[0].token, i);
  }
}

TEST(DaemonFairQueueTest, ChunkGathersUpToMaxPackets) {
  FairShareQueue queue;
  queue.register_tenant("t", 1);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.try_enqueue(item("t", 10, i)).admitted);
  }
  const auto chunk = queue.dequeue_chunk(30);
  EXPECT_EQ(chunk.size(), 3u);
  EXPECT_EQ(queue.queued_packets(), 30u);
}

TEST(DaemonFairQueueTest, OversizeItemShipsAlone) {
  FairShareQueue queue;
  queue.register_tenant("t", 1);
  ASSERT_TRUE(queue.try_enqueue(item("t", 500, 1)).admitted);
  ASSERT_TRUE(queue.try_enqueue(item("t", 1, 2)).admitted);
  // Requests are never split: a 500-packet item exceeds the 64-packet
  // quantum but still ships, by itself.
  const auto chunk = queue.dequeue_chunk(64);
  ASSERT_EQ(chunk.size(), 1u);
  EXPECT_EQ(chunk[0].token, 1u);
}

TEST(DaemonFairQueueTest, IdleTenantDoesNotBankCredit) {
  // heavy works alone for a while; when light wakes up it must not get
  // an unbounded catch-up burst -- its virtual time is clamped to the
  // active frontier, so service returns to the weight ratio.
  FairQueueOptions options;
  options.capacity_packets = 10000;
  FairShareQueue queue(options);
  queue.register_tenant("heavy", 1);
  queue.register_tenant("light", 1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(queue.try_enqueue(item("heavy", 10)).admitted);
  }
  for (int i = 0; i < 20; ++i) {
    (void)queue.dequeue_chunk(10);  // heavy-only era
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(queue.try_enqueue(item("light", 10)).admitted);
  }
  // Next 10 dequeues: without the clamp light would win all 10; with it
  // the split approximates 1:1.
  std::map<std::string, int> wins;
  for (int i = 0; i < 10; ++i) {
    const auto chunk = queue.dequeue_chunk(10);
    ASSERT_EQ(chunk.size(), 1u);
    ++wins[chunk[0].tenant];
  }
  EXPECT_GE(wins["heavy"], 4);
  EXPECT_GE(wins["light"], 4);
}

TEST(DaemonFairQueueTest, DrainRejectsAndFlushes) {
  FairShareQueue queue;
  queue.register_tenant("t", 1);
  ASSERT_TRUE(queue.try_enqueue(item("t", 5, 1)).admitted);
  queue.begin_drain();
  EXPECT_TRUE(queue.draining());
  EXPECT_FALSE(queue.try_enqueue(item("t", 1, 2)).admitted);
  // The backlog still flushes...
  auto chunk = queue.dequeue_chunk(64);
  ASSERT_EQ(chunk.size(), 1u);
  EXPECT_EQ(chunk[0].token, 1u);
  // ...and an empty draining queue returns empty instead of blocking.
  chunk = queue.dequeue_chunk(64);
  EXPECT_TRUE(chunk.empty());
}

TEST(DaemonFairQueueTest, DequeueBlocksUntilWorkArrives) {
  FairShareQueue queue;
  queue.register_tenant("t", 1);
  std::vector<QueueItem> got;
  std::thread consumer([&] { got = queue.dequeue_chunk(10); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(queue.try_enqueue(item("t", 3, 9)).admitted);
  consumer.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].token, 9u);
}

TEST(DaemonFairQueueTest, BeginDrainWakesBlockedConsumer) {
  FairShareQueue queue;
  std::vector<QueueItem> got{item("sentinel", 1)};
  std::thread consumer([&] { got = queue.dequeue_chunk(10); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.begin_drain();
  consumer.join();
  EXPECT_TRUE(got.empty());
}

TEST(DaemonFairQueueTest, StatsTrackServedAndRejected) {
  FairQueueOptions options;
  options.capacity_packets = 20;
  FairShareQueue queue(options);
  queue.register_tenant("t", 1);
  ASSERT_TRUE(queue.try_enqueue(item("t", 20)).admitted);
  EXPECT_FALSE(queue.try_enqueue(item("t", 1)).admitted);
  (void)queue.dequeue_chunk(64);
  const auto stats = queue.tenant_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].served_packets, 20u);
  EXPECT_EQ(stats[0].rejected_requests, 1u);
  EXPECT_EQ(stats[0].queued_packets, 0u);
}

QueueItem deadline_item(const std::string& tenant, std::size_t packets,
                        std::uint64_t token, std::uint64_t enqueued_at_ms,
                        std::uint64_t expires_at_ms) {
  QueueItem it{tenant, packets, token};
  it.enqueued_at_ms = enqueued_at_ms;
  it.expires_at_ms = expires_at_ms;
  return it;
}

TEST(DaemonFairQueueTest, RejectReasonsAreDistinct) {
  FairQueueOptions options;
  options.capacity_packets = 10;
  FairShareQueue queue(options);
  queue.register_tenant("t", 1);

  EXPECT_EQ(queue.try_enqueue(item("t", 10)).reason, RejectReason::kNone);
  EXPECT_EQ(queue.try_enqueue(item("t", 1)).reason, RejectReason::kCapacity);
  // A dead-on-arrival deadline outranks capacity: it is expiry, not
  // backpressure, and must not advise a retry.
  const AdmissionResult dead =
      queue.try_enqueue(deadline_item("t", 1, 0, 100, 150), /*now_ms=*/200);
  EXPECT_FALSE(dead.admitted);
  EXPECT_EQ(dead.reason, RejectReason::kDeadline);
  EXPECT_EQ(dead.retry_after_ms, 0u);
  queue.begin_drain();
  EXPECT_EQ(queue.try_enqueue(item("t", 1)).reason, RejectReason::kDraining);
}

TEST(DaemonFairQueueTest, DeadlineShedAtAdmissionCountsExpiredNotRejected) {
  FairShareQueue queue;
  queue.register_tenant("t", 1);
  const AdmissionResult result =
      queue.try_enqueue(deadline_item("t", 7, 0, 0, 50), /*now_ms=*/50);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.reason, RejectReason::kDeadline);
  const auto stats = queue.tenant_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].expired_packets, 7u);
  EXPECT_EQ(stats[0].rejected_requests, 0u);
  EXPECT_EQ(queue.queued_packets(), 0u);
}

TEST(DaemonFairQueueTest, LazyExpiryAtDequeueBanksNoCredit) {
  FairQueueOptions options;
  options.capacity_packets = 1000;
  FairShareQueue queue(options);
  queue.register_tenant("dead", 1);
  queue.register_tenant("live", 1);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        queue.try_enqueue(deadline_item("dead", 10, i, 10, 50), 10).admitted);
  }
  ASSERT_TRUE(queue.try_enqueue(item("live", 10, 99)).admitted);

  std::vector<QueueItem> expired;
  const auto chunk = queue.dequeue_chunk(10, &expired, /*now_ms=*/100);
  // The dead fronts shed without consuming the 10-packet chunk budget;
  // the one live item fills the whole chunk.
  ASSERT_EQ(chunk.size(), 1u);
  EXPECT_EQ(chunk[0].token, 99u);
  ASSERT_EQ(expired.size(), 3u);
  for (const QueueItem& e : expired) EXPECT_EQ(e.tenant, "dead");

  std::map<std::string, TenantStats> stats;
  for (const TenantStats& t : queue.tenant_stats()) stats[t.name] = t;
  // Shedding banked no service credit for the dead tenant...
  EXPECT_EQ(stats["dead"].served_packets, 0u);
  EXPECT_EQ(stats["dead"].expired_packets, 30u);
  EXPECT_EQ(stats["live"].served_packets, 10u);
  EXPECT_EQ(queue.queued_packets(), 0u);
}

TEST(DaemonFairQueueTest, AllExpiredChunkIsProgressNotDrainCompletion) {
  FairShareQueue queue;
  queue.register_tenant("t", 1);
  ASSERT_TRUE(queue.try_enqueue(deadline_item("t", 4, 1, 0, 5), 0).admitted);
  ASSERT_TRUE(queue.try_enqueue(deadline_item("t", 4, 2, 0, 5), 0).admitted);
  std::vector<QueueItem> expired;
  // Everything queued is dead: the chunk comes back empty but the
  // expired list is the proof of progress (the worker must not treat
  // this as "queue drained").
  const auto chunk = queue.dequeue_chunk(64, &expired, /*now_ms=*/100);
  EXPECT_TRUE(chunk.empty());
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(queue.queued_packets(), 0u);
}

TEST(DaemonFairQueueTest, LegacyDequeueWithoutExpiryOutStillDelivers) {
  // Call sites that predate deadlines pass no expired-out vector; an
  // expired front must then be delivered, not silently dropped.
  FairShareQueue queue;
  queue.register_tenant("t", 1);
  ASSERT_TRUE(queue.try_enqueue(deadline_item("t", 4, 8, 0, 5), 0).admitted);
  const auto chunk = queue.dequeue_chunk(64, nullptr, /*now_ms=*/100);
  ASSERT_EQ(chunk.size(), 1u);
  EXPECT_EQ(chunk[0].token, 8u);
}

TEST(DaemonFairQueueTest, CodelEntersOverloadAfterStandingQueue) {
  FairQueueOptions options;
  options.capacity_packets = 1000;
  options.codel_target_ms = 10;
  options.codel_interval_ms = 100;
  FairShareQueue queue(options);
  queue.register_tenant("t", 1);

  ASSERT_TRUE(queue.try_enqueue(deadline_item("t", 1, 1, 0, 0), 0).admitted);
  ASSERT_TRUE(queue.try_enqueue(deadline_item("t", 1, 2, 0, 0), 0).admitted);
  // A sojourn that recovers within target must be dequeued last: it is
  // what ends the overload episode.
  ASSERT_TRUE(
      queue.try_enqueue(deadline_item("t", 1, 3, 195, 0), 0).admitted);

  // First above-target sojourn starts the clock...
  (void)queue.dequeue_chunk(1, nullptr, /*now_ms=*/50);
  EXPECT_FALSE(queue.tenant_stats()[0].overloaded);
  // ...a full interval later the queue is standing, not bursting.
  (void)queue.dequeue_chunk(1, nullptr, /*now_ms=*/160);
  EXPECT_TRUE(queue.tenant_stats()[0].overloaded);

  // Overloaded + standing queue: admission degrades to reject with a
  // retry hint of at least one interval.
  const AdmissionResult rejected = queue.try_enqueue(item("t", 1), 165);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reason, RejectReason::kOverload);
  EXPECT_GE(rejected.retry_after_ms, options.codel_interval_ms);
  EXPECT_EQ(queue.tenant_stats()[0].overload_rejected_requests, 1u);

  // One good sojourn (5 ms < 10 ms target) exits the episode.
  (void)queue.dequeue_chunk(1, nullptr, /*now_ms=*/200);
  EXPECT_FALSE(queue.tenant_stats()[0].overloaded);
}

TEST(DaemonFairQueueTest, IdleTenantResetsStaleOverloadVerdict) {
  FairQueueOptions options;
  options.capacity_packets = 1000;
  options.codel_target_ms = 10;
  options.codel_interval_ms = 100;
  FairShareQueue queue(options);
  queue.register_tenant("t", 1);
  ASSERT_TRUE(queue.try_enqueue(deadline_item("t", 1, 1, 0, 0), 0).admitted);
  ASSERT_TRUE(queue.try_enqueue(deadline_item("t", 1, 2, 0, 0), 0).admitted);
  (void)queue.dequeue_chunk(1, nullptr, 50);
  (void)queue.dequeue_chunk(1, nullptr, 160);
  EXPECT_TRUE(queue.tenant_stats()[0].overloaded);
  // The backlog is gone: the tenant is idle, so the verdict is stale
  // and the next admission must succeed.
  EXPECT_EQ(queue.queued_packets(), 0u);
  EXPECT_TRUE(queue.try_enqueue(item("t", 1), 500).admitted);
  EXPECT_FALSE(queue.tenant_stats()[0].overloaded);
}

TEST(DaemonFairQueueTest, ConcurrentAdmissionAccountingUnderDrain) {
  // Accounting stress for the lock discipline (DESIGN.md section 13):
  // 8 producers across 4 tenants hammer try_enqueue while one consumer
  // drains, and begin_drain() lands mid-stream. Every offered request
  // must be exactly one of admitted or rejected, and every admitted
  // packet must come out the bottom -- under TSan this is also the
  // data-race proof for the annotated oblv::Mutex/CondVar wrappers.
  constexpr int kProducers = 8;
  constexpr int kTenants = 4;
  constexpr int kOffersPerProducer = 300;

  FairQueueOptions options;
  options.capacity_packets = 64;  // small: forces capacity rejections
  FairShareQueue queue(options);
  const std::string tenants[kTenants] = {"t0", "t1", "t2", "t3"};
  for (const std::string& t : tenants) queue.register_tenant(t, 1);

  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> admitted_packets{0};
  std::atomic<std::uint64_t> consumed_packets{0};

  std::thread consumer([&] {
    for (;;) {
      const auto chunk = queue.dequeue_chunk(16);
      if (chunk.empty()) break;  // only an empty draining queue returns so
      std::uint64_t got = 0;
      for (const QueueItem& it : chunk) got += it.packets;
      consumed_packets.fetch_add(got);
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kOffersPerProducer; ++i) {
        const std::size_t packets = 1 + static_cast<std::size_t>(i % 3);
        offered.fetch_add(1);
        if (queue.try_enqueue(item(tenants[p % kTenants], packets)).admitted) {
          admitted.fetch_add(1);
          admitted_packets.fetch_add(packets);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }

  // Drain mid-stream: wait for a real head of contention first so both
  // pre-drain admissions and post-drain rejections happen.
  while (offered.load() < kProducers * kOffersPerProducer / 4) {
    std::this_thread::yield();
  }
  queue.begin_drain();
  for (std::thread& t : producers) t.join();

  // One deterministic post-drain offer so rejected > 0 never depends on
  // scheduling: the queue is draining, this cannot be admitted.
  offered.fetch_add(1);
  ASSERT_FALSE(queue.try_enqueue(item(tenants[0], 1)).admitted);
  rejected.fetch_add(1);
  consumer.join();

  // Conservation: every offer resolved exactly once, every admitted
  // packet delivered to the consumer before the drained queue emptied.
  EXPECT_EQ(admitted.load() + rejected.load(), offered.load());
  EXPECT_EQ(consumed_packets.load(), admitted_packets.load());
  EXPECT_GT(admitted.load(), 0u);
  EXPECT_GT(rejected.load(), 0u);
  EXPECT_EQ(queue.queued_packets(), 0u);

  // The queue's own per-tenant books must agree with the callers'.
  std::uint64_t stats_served = 0;
  std::uint64_t stats_rejected = 0;
  for (const TenantStats& t : queue.tenant_stats()) {
    stats_served += t.served_packets;
    stats_rejected += t.rejected_requests;
  }
  EXPECT_EQ(stats_served, consumed_packets.load());
  EXPECT_EQ(stats_rejected, rejected.load());
}

}  // namespace
}  // namespace oblivious::daemon
