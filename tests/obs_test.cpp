// Tests for the obs/ metrics layer: registry cells, thread-local shard
// merging, the log-bucketed histogram, exporter round-trips and the
// runtime enable gate.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/stats.hpp"

namespace oblivious::obs {
namespace {

// Every test works on its own registry (the global one is shared with the
// rest of the process and other tests).
class ObsTest : public ::testing::Test {
 protected:
  MetricsRegistry registry_;
};

TEST_F(ObsTest, CounterAccumulatesAndSnapshots) {
  registry_.counter("c").add();
  registry_.counter("c").add(41);
  const MetricsSnapshot snap = registry_.snapshot();
  ASSERT_EQ(snap.counters.count("c"), 1u);
  EXPECT_EQ(snap.counters.at("c"), 42u);
}

TEST_F(ObsTest, GaugeKeepsNewestWrite) {
  registry_.gauge("g").set(1.5);
  registry_.gauge("g").set(-3.25);
  const MetricsSnapshot snap = registry_.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), -3.25);
}

TEST_F(ObsTest, StatRecordsAndMerges) {
  registry_.record_stat("t", 1.0);
  registry_.record_stat("t", 3.0);
  RunningStats extra;
  extra.add(5.0);
  registry_.merge_stat("t", extra);
  const MetricsSnapshot snap = registry_.snapshot();
  const StatSnapshot& s = snap.stats.at("t");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.total, 9.0);
}

TEST_F(ObsTest, HandlesSurviveReset) {
  Counter& c = registry_.counter("c");
  Gauge& g = registry_.gauge("g");
  Histogram& h = registry_.histogram("h");
  c.add(7);
  g.set(7.0);
  h.add(7.0);
  registry_.reset();
  const MetricsSnapshot zeroed = registry_.snapshot();
  EXPECT_EQ(zeroed.counters.at("c"), 0u);
  EXPECT_EQ(zeroed.histograms.at("h").count, 0u);
  // A reset gauge is "never written": it drops out of the snapshot.
  EXPECT_EQ(zeroed.gauges.count("g"), 0u);
  c.add(2);
  g.set(2.0);
  h.add(2.0);
  const MetricsSnapshot snap = registry_.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.0);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

TEST_F(ObsTest, ShardMergeUnderThreadPoolSumsExactly) {
  // Each worker chunk bumps the same counter name from its own thread;
  // the snapshot must see the exact total across all shards.
  ThreadPool pool(4);
  constexpr std::size_t kItems = 10000;
  parallel_for_chunks(pool, kItems, [&](std::size_t begin, std::size_t end) {
    Counter& c = registry_.counter("work.items");
    Histogram& h = registry_.histogram("work.sizes");
    RunningStats chunk;
    for (std::size_t i = begin; i < end; ++i) {
      c.add(1);
      h.add(static_cast<double>(i % 17) + 1.0);
      chunk.add(static_cast<double>(i));
    }
    registry_.merge_stat("work.chunks", chunk);
    registry_.gauge("work.last_end").set(static_cast<double>(end));
  });
  const MetricsSnapshot snap = registry_.snapshot();
  EXPECT_EQ(snap.counters.at("work.items"), kItems);
  EXPECT_EQ(snap.histograms.at("work.sizes").count, kItems);
  EXPECT_EQ(snap.stats.at("work.chunks").count, kItems);
  // sum 0..kItems-1
  EXPECT_DOUBLE_EQ(snap.stats.at("work.chunks").total,
                   static_cast<double>(kItems) * (kItems - 1) / 2.0);
  // Some chunk end wrote last; all chunk ends are in (0, kItems].
  EXPECT_GT(snap.gauges.at("work.last_end"), 0.0);
  EXPECT_LE(snap.gauges.at("work.last_end"), static_cast<double>(kItems));
}

TEST_F(ObsTest, HistogramBucketsAreMonotoneAndContainValues) {
  for (const double v : {1e-7, 0.5, 1.0, 3.0, 1024.0, 1e12}) {
    const int idx = Histogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    EXPECT_LE(v, Histogram::bucket_upper_bound(idx)) << "v=" << v;
    if (idx > 0) {
      // Buckets are half-open: [upper_bound(i-1), upper_bound(i)).
      EXPECT_GE(v, Histogram::bucket_upper_bound(idx - 1)) << "v=" << v;
    }
  }
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_LT(Histogram::bucket_upper_bound(i - 1),
              Histogram::bucket_upper_bound(i));
  }
}

TEST_F(ObsTest, HistogramQuantilesBracketTheMass) {
  Histogram& h = registry_.histogram("h");
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  const HistogramSnapshot snap = registry_.snapshot().histograms.at("h");
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  // Bucket upper bounds over-approximate; p50 must sit near 50 and the
  // quantiles must be monotone.
  const double p50 = snap.quantile(0.5);
  const double p99 = snap.quantile(0.99);
  EXPECT_GE(p50, 50.0);
  EXPECT_LE(p50, 64.0);  // next power-of-two sub-bucket bound
  EXPECT_GE(p99, 99.0);
  EXPECT_LE(snap.quantile(0.1), p50);
  EXPECT_LE(p50, p99);
}

TEST_F(ObsTest, MergeIntHistogramMatchesPerValueAdds) {
  IntHistogram ints;
  for (int i = 0; i < 50; ++i) ints.add(i % 7);
  Histogram& merged = registry_.histogram("merged");
  merged.merge_int_histogram(ints);
  Histogram& direct = registry_.histogram("direct");
  for (int i = 0; i < 50; ++i) direct.add(static_cast<double>(i % 7));
  const MetricsSnapshot snap = registry_.snapshot();
  EXPECT_EQ(snap.histograms.at("merged").buckets,
            snap.histograms.at("direct").buckets);
  EXPECT_DOUBLE_EQ(snap.histograms.at("merged").sum,
                   snap.histograms.at("direct").sum);
}

TEST_F(ObsTest, JsonRoundTripReconstructsSnapshot) {
  registry_.counter("pkts").add(123456789);
  registry_.gauge("ratio").set(1.0 / 3.0);
  registry_.gauge("neg").set(-7.5);
  registry_.record_stat("secs", 0.125);
  registry_.record_stat("secs", 0.375);
  Histogram& h = registry_.histogram("lens");
  h.add(3.0, 10);
  h.add(1e9);
  const MetricsSnapshot before = registry_.snapshot();

  const MetricsSnapshot after = metrics_from_json(metrics_to_json(before));
  EXPECT_EQ(after.counters, before.counters);
  EXPECT_EQ(after.gauges, before.gauges);
  ASSERT_EQ(after.stats.count("secs"), 1u);
  EXPECT_EQ(after.stats.at("secs").count, before.stats.at("secs").count);
  EXPECT_DOUBLE_EQ(after.stats.at("secs").mean, before.stats.at("secs").mean);
  EXPECT_DOUBLE_EQ(after.stats.at("secs").stddev,
                   before.stats.at("secs").stddev);
  ASSERT_EQ(after.histograms.count("lens"), 1u);
  EXPECT_EQ(after.histograms.at("lens").buckets,
            before.histograms.at("lens").buckets);
  EXPECT_DOUBLE_EQ(after.histograms.at("lens").sum,
                   before.histograms.at("lens").sum);
}

TEST_F(ObsTest, EnvelopeCarriesLabelsAndParsesBack) {
  registry_.counter("c").add(5);
  const std::string json = metrics_envelope_json(
      {{"tool", "obs_test"}, {"mesh", "mesh[8x8]"}}, registry_.snapshot());
  EXPECT_NE(json.find("\"schema\": \"oblv-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"obs_test\""), std::string::npos);
  const MetricsSnapshot parsed = metrics_from_json(json);
  EXPECT_EQ(parsed.counters.at("c"), 5u);
}

TEST_F(ObsTest, RenderTableListsEveryMetric) {
  registry_.counter("a.count").add(2);
  registry_.gauge("b.value").set(4.0);
  registry_.record_stat("c.secs", 0.5);
  registry_.histogram("d.sizes").add(8.0);
  const std::string table = render_metrics_table(registry_.snapshot());
  for (const char* name : {"a.count", "b.value", "c.secs", "d.sizes"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

#if defined(OBLV_METRICS_ENABLED) && OBLV_METRICS_ENABLED
TEST(ObsEnableTest, DisableGatesMacrosAndScopedTimer) {
  // The macros write through the *global* registry; gate them off and
  // check nothing is recorded under a unique name.
  set_metrics_enabled(false);
  OBLV_COUNTER_ADD("obs_test.disabled_counter", 1);
  OBLV_SCOPED_TIMER("obs_test.disabled_timer");
  set_metrics_enabled(true);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.count("obs_test.disabled_counter"), 0u);
  EXPECT_EQ(snap.stats.count("obs_test.disabled_timer"), 0u);

  OBLV_COUNTER_ADD("obs_test.enabled_counter", 3);
  { OBLV_SCOPED_TIMER("obs_test.enabled_timer"); }
  const MetricsSnapshot snap2 = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap2.counters.at("obs_test.enabled_counter"), 3u);
  EXPECT_EQ(snap2.stats.at("obs_test.enabled_timer").count, 1u);
}
#else
TEST(ObsEnableTest, CompiledOutMacrosRecordNothing) {
  OBLV_COUNTER_ADD("obs_test.compiled_out_counter", 1);
  OBLV_SCOPED_TIMER("obs_test.compiled_out_timer");
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.count("obs_test.compiled_out_counter"), 0u);
  EXPECT_EQ(snap.stats.count("obs_test.compiled_out_timer"), 0u);
}
#endif

TEST(ObsExportTest, MalformedJsonThrows) {
  EXPECT_THROW(metrics_from_json("not json"), std::invalid_argument);
  EXPECT_THROW(metrics_from_json("{\"metrics\": ["), std::invalid_argument);
}

}  // namespace
}  // namespace oblivious::obs
