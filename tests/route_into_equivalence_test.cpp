// Draw-for-draw equivalence of the zero-allocation routing entry points:
// for every registered algorithm, route_into / route_segments_into must
// select byte-identical paths AND consume exactly the same rng stream as
// the allocating route / route_segments twins -- the rng-stream
// compatibility invariant of DESIGN.md section 8. Also pins plan-cache
// correctness: warm hits and evicted-and-rebuilt plans never change paths.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/segment_path.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/soa_batch.hpp"
#include "rng/rng.hpp"
#include "routing/hierarchical.hpp"
#include "routing/registry.hpp"
#include "routing/route_scratch.hpp"
#include "test_support.hpp"
#include "workloads/problem.hpp"

namespace oblivious {
namespace {

struct MeshCase {
  int dim;
  std::int64_t side;
  bool torus;
};

std::vector<MeshCase> mesh_cases() {
  return {{2, 16, false}, {2, 16, true}, {3, 8, false}, {3, 8, true}};
}

// After each pair of calls the two rng copies must have consumed the same
// number of draws; drawing once more from each proves stream alignment
// (identical internal state), not just identical output.
void expect_same_stream(Rng& a, Rng& b, const std::string& context) {
  EXPECT_EQ(a.next_u64(), b.next_u64()) << context << ": rng streams diverged";
}

TEST(RouteIntoEquivalence, PathsAndStreamsMatchAllocatingApi) {
  for (const MeshCase& mc : mesh_cases()) {
    const Mesh mesh = Mesh::cube(mc.dim, mc.side, mc.torus);
    const auto pairs = testing::sample_pairs(mesh, 64, 7);
    for (const Algorithm algo : algorithms_for(mesh)) {
      const auto router = make_router(algo, mesh);
      RouteScratch scratch;
      Rng rng_alloc(11);
      Rng rng_into(11);
      Path into_path;
      for (const auto& [s, t] : pairs) {
        const Path ref = router->route(s, t, rng_alloc);
        router->route_into(s, t, rng_into, scratch, into_path);
        EXPECT_EQ(ref.nodes, into_path.nodes) << router->name();
        expect_same_stream(rng_alloc, rng_into, router->name());
      }
    }
  }
}

TEST(RouteIntoEquivalence, SegmentsAndStreamsMatchAllocatingApi) {
  for (const MeshCase& mc : mesh_cases()) {
    const Mesh mesh = Mesh::cube(mc.dim, mc.side, mc.torus);
    const auto pairs = testing::sample_pairs(mesh, 64, 19);
    for (const Algorithm algo : algorithms_for(mesh)) {
      const auto router = make_router(algo, mesh);
      RouteScratch scratch;
      Rng rng_alloc(23);
      Rng rng_into(23);
      SegmentPath into_sp;
      for (const auto& [s, t] : pairs) {
        const SegmentPath ref = router->route_segments(s, t, rng_alloc);
        router->route_segments_into(s, t, rng_into, scratch, into_sp);
        EXPECT_EQ(ref, into_sp) << router->name();
        expect_same_stream(rng_alloc, rng_into, router->name());
      }
    }
  }
}

// Degenerate s == t demands must also agree (and consume no randomness in
// routers that early-return).
TEST(RouteIntoEquivalence, SelfDemandsMatch) {
  const Mesh mesh = Mesh::cube(2, 16);
  for (const Algorithm algo : algorithms_for(mesh)) {
    const auto router = make_router(algo, mesh);
    RouteScratch scratch;
    Rng rng_alloc(3);
    Rng rng_into(3);
    Path into_path;
    SegmentPath into_sp;
    const NodeId n = mesh.num_nodes() / 2;
    EXPECT_EQ(router->route(n, n, rng_alloc).nodes,
              (router->route_into(n, n, rng_into, scratch, into_path),
               into_path.nodes))
        << router->name();
    EXPECT_EQ(router->route_segments(n, n, rng_alloc),
              (router->route_segments_into(n, n, rng_into, scratch, into_sp),
               into_sp))
        << router->name();
    expect_same_stream(rng_alloc, rng_into, router->name());
  }
}

// A scratch that has been through many differently-shaped routes (stale
// chain, longer previous paths) must not leak state into later results.
TEST(RouteIntoEquivalence, DirtyScratchIsHarmless) {
  const Mesh mesh = Mesh::cube(3, 8, /*torus=*/true);
  const auto pairs = testing::sample_pairs(mesh, 96, 31);
  for (const Algorithm algo : algorithms_for(mesh)) {
    const auto router = make_router(algo, mesh);
    RouteScratch reused;
    SegmentPath reused_out;
    for (const auto& [s, t] : pairs) {
      Rng rng_a(101);
      Rng rng_b(101);
      // Fresh scratch + fresh output vs. the battle-scarred pair.
      RouteScratch fresh;
      SegmentPath fresh_out;
      router->route_segments_into(s, t, rng_a, fresh, fresh_out);
      router->route_segments_into(s, t, rng_b, reused, reused_out);
      EXPECT_EQ(fresh_out, reused_out) << router->name();
    }
  }
}

// Plan-cache hits must reproduce the cold-path routes exactly: route every
// pair twice (second pass is warm) and against a cache-cleared router.
TEST(RouteIntoEquivalence, WarmPlanCacheMatchesCold) {
  for (const MeshCase& mc : std::vector<MeshCase>{{2, 16, false}, {3, 8, false}}) {
    const Mesh mesh = Mesh::cube(mc.dim, mc.side, mc.torus);
    const auto pairs = testing::sample_pairs(mesh, 48, 43);
    for (const Algorithm algo :
         {Algorithm::kAccessTree, Algorithm::kHierarchical2d,
          Algorithm::kHierarchicalNd, Algorithm::kHierarchicalNdFrugal}) {
      const auto router = make_router(algo, mesh);
      RouteScratch scratch;
      SegmentPath cold, warm;
      std::vector<SegmentPath> cold_results;
      for (const auto& [s, t] : pairs) {
        Rng rng(57);
        router->route_segments_into(s, t, rng, scratch, cold);
        cold_results.push_back(cold);
      }
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        Rng rng(57);
        router->route_segments_into(pairs[i].first, pairs[i].second, rng,
                                    scratch, warm);
        EXPECT_EQ(cold_results[i], warm) << router->name();
      }
    }
  }
}

TEST(RouteIntoEquivalence, PlanCacheCountersAdvance) {
  const Mesh mesh = Mesh::cube(2, 16);
  const AncestorRouter router(mesh, AncestorRouter::Hierarchy::kAccessGraph);
  RouteScratch scratch;
  SegmentPath out;
  Rng rng(5);
  router.route_segments_into(1, 200, rng, scratch, out);
  EXPECT_EQ(router.plan_cache().stats().misses, 1u);
  EXPECT_EQ(router.plan_cache().stats().hits, 0u);
  router.route_segments_into(1, 200, rng, scratch, out);
  EXPECT_EQ(router.plan_cache().stats().misses, 1u);
  EXPECT_EQ(router.plan_cache().stats().hits, 1u);
  router.clear_plan_cache();
  router.route_segments_into(1, 200, rng, scratch, out);
  EXPECT_EQ(router.plan_cache().stats().misses, 2u);
}

// A pathologically small cache forces constant eviction; rebuilt plans
// must be identical to the ones a big-cache router produces.
TEST(RouteIntoEquivalence, EvictionNeverChangesPaths) {
  const Mesh mesh = Mesh::cube(2, 16);
  const auto pairs = testing::sample_pairs(mesh, 128, 61);
  const AncestorRouter tiny(mesh, AncestorRouter::Hierarchy::kAccessGraph,
                            /*plan_cache_capacity=*/4);
  const AncestorRouter big(mesh, AncestorRouter::Hierarchy::kAccessGraph);
  const NdRouter tiny_nd(mesh, NdRouter::RandomnessMode::kFrugal,
                         NdRouter::BridgeHeightMode::kPrescribed,
                         /*plan_cache_capacity=*/4);
  const NdRouter big_nd(mesh, NdRouter::RandomnessMode::kFrugal);
  RouteScratch scratch;
  SegmentPath a, b;
  for (int round = 0; round < 3; ++round) {  // revisit evicted pairs
    for (const auto& [s, t] : pairs) {
      Rng rng_a(71), rng_b(71);
      tiny.route_segments_into(s, t, rng_a, scratch, a);
      big.route_segments_into(s, t, rng_b, scratch, b);
      EXPECT_EQ(a, b);
      Rng rng_c(73), rng_d(73);
      tiny_nd.route_segments_into(s, t, rng_c, scratch, a);
      big_nd.route_segments_into(s, t, rng_d, scratch, b);
      EXPECT_EQ(a, b);
    }
  }
  EXPECT_GT(tiny.plan_cache().stats().evictions, 0u);
  EXPECT_GT(tiny.plan_cache().stats().hits, 0u);  // tiny still hits on rounds
}

// The SoA batch engine must reproduce route_segments_into packet for
// packet: pair grouping, the compiled draw program, and the lane-parallel
// rng may not change a single segment (DESIGN.md section 10). One engine
// instance is reused across all meshes and algorithms, so every iteration
// after the first runs with dirty grouping tables, plan columns, and draw
// rows from a differently-shaped predecessor. The demand list repeats
// pairs (so groups span multiple lane blocks, including ragged tails) and
// the engine is driven over two uneven sub-ranges to exercise mid-array
// starts, exactly as chunked workers would.
TEST(RouteIntoEquivalence, SoaEngineMatchesScalarPerPacket) {
  constexpr std::uint64_t kSeed = 91;
  SoaBatchEngine engine;
  for (const MeshCase& mc : mesh_cases()) {
    const Mesh mesh = Mesh::cube(mc.dim, mc.side, mc.torus);
    const auto pairs = testing::sample_pairs(mesh, 40, 83);
    std::vector<Demand> demands;
    for (const auto& [s, t] : pairs) demands.push_back({s, t});
    for (std::size_t i = 0; i < 30; ++i) {  // repeats: multi-block groups
      demands.push_back({pairs[i % 3].first, pairs[i % 3].second});
    }
    demands.push_back({pairs[0].first, pairs[0].first});  // s == t
    for (const Algorithm algo : algorithms_for(mesh)) {
      const auto router = make_router(algo, mesh);
      if (!SoaBatchEngine::supports(*router)) continue;
      std::vector<SegmentPath> scalar_out(demands.size());
      RouteScratch scratch;
      for (std::size_t i = 0; i < demands.size(); ++i) {
        Rng rng = packet_rng(kSeed, i);
        router->route_segments_into(demands[i].src, demands[i].dst, rng,
                                    scratch, scalar_out[i]);
      }
      std::vector<SegmentPath> soa_out(demands.size());
      const std::size_t split = demands.size() / 3;
      engine.run(*router, demands, kSeed, 0, split,
                 std::span<SegmentPath>(soa_out), nullptr);
      engine.run(*router, demands, kSeed, split, demands.size(),
                 std::span<SegmentPath>(soa_out), nullptr);
      EXPECT_EQ(soa_out, scalar_out)
          << router->name() << " dim=" << mc.dim << " torus=" << mc.torus;
    }
  }
}

// Staircase draws a data-dependent number of words per hop, so it has no
// SoA kernel; supports() must say so (route_batch relies on it to fall
// back), and the routers with kernels must all be claimed.
TEST(RouteIntoEquivalence, SoaEngineSupportMatrix) {
  const Mesh mesh = Mesh::cube(2, 16);
  for (const Algorithm algo : algorithms_for(mesh)) {
    const auto router = make_router(algo, mesh);
    EXPECT_EQ(SoaBatchEngine::supports(*router),
              algo != Algorithm::kStaircase)
        << router->name();
  }
}

}  // namespace
}  // namespace oblivious
