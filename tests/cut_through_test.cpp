#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "simulator/cut_through.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

Path make_path(std::initializer_list<NodeId> nodes) {
  Path p;
  p.nodes.assign(nodes);
  return p;
}

TEST(CutThrough, UncontendedPacketPipelines) {
  // dist + F - 1, not dist * F.
  const Mesh m({8, 8});
  CutThroughOptions options;
  options.flits_per_packet = 4;
  const CutThroughResult r =
      simulate_cut_through(m, {make_path({0, 1, 2, 3, 4, 5})}, options);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 5 + 4 - 1);
}

TEST(CutThrough, SingleFlitMatchesStoreAndForward) {
  const Mesh m({8, 8});
  const auto router = make_router(Algorithm::kHierarchical2d, m);
  Rng rng(3);
  std::vector<Path> paths;
  for (const auto& [s, t] : testing::sample_pairs(m, 80, 7)) {
    paths.push_back(router->route(s, t, rng));
  }
  CutThroughOptions ct_options;
  ct_options.flits_per_packet = 1;
  const CutThroughResult ct = simulate_cut_through(m, paths, ct_options);
  const SimulationResult sf = simulate(m, paths);
  EXPECT_TRUE(ct.completed);
  EXPECT_EQ(ct.makespan, sf.makespan);
}

TEST(CutThrough, SharedLinkSerializesFlitTrains) {
  // Two packets over edge (1,2), F = 3: the link is busy 6 steps.
  const Mesh m({4, 4});
  CutThroughOptions options;
  options.flits_per_packet = 3;
  const CutThroughResult r =
      simulate_cut_through(m, {make_path({1, 2}), make_path({1, 2})}, options);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 6);  // second train starts at step 4, tail at 6
}

TEST(CutThrough, MakespanRespectsBothBounds) {
  const Mesh m({8, 8});
  const auto router = make_router(Algorithm::kValiant, m);
  Rng rng(5);
  std::vector<Path> paths;
  for (const auto& [s, t] : testing::sample_pairs(m, 100, 9)) {
    paths.push_back(router->route(s, t, rng));
  }
  for (const std::int64_t flits : {1, 2, 8}) {
    CutThroughOptions options;
    options.flits_per_packet = flits;
    const CutThroughResult r = simulate_cut_through(m, paths, options);
    EXPECT_TRUE(r.completed);
    EXPECT_GE(r.makespan, r.congestion * flits);      // hottest link work
    EXPECT_GE(r.makespan, r.dilation + flits - 1);    // pipelined distance
    EXPECT_GE(r.optimality_ratio(), 1.0);
    EXPECT_LE(r.optimality_ratio(), 4.0);             // schedules stay tight
  }
}

TEST(CutThrough, TrivialPacketDrainsItsFlitsLocally) {
  const Mesh m({4, 4});
  CutThroughOptions options;
  options.flits_per_packet = 5;
  const CutThroughResult r = simulate_cut_through(m, {make_path({3})}, options);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 4.0);
  EXPECT_EQ(r.makespan, 0);  // nothing crossed a link
}

TEST(CutThrough, FullDuplexPassesOpposingTrains) {
  const Mesh m({4, 4});
  CutThroughOptions options;
  options.flits_per_packet = 3;
  options.full_duplex = true;
  const CutThroughResult r =
      simulate_cut_through(m, {make_path({1, 2}), make_path({2, 1})}, options);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 3);  // both trains stream simultaneously
}

TEST(CutThrough, RejectsZeroFlits) {
  const Mesh m({4, 4});
  CutThroughOptions options;
  options.flits_per_packet = 0;
  EXPECT_THROW(simulate_cut_through(m, {make_path({0, 1})}, options),
               std::invalid_argument);
}

TEST(CutThrough, LargerPacketsNeverFinishFaster) {
  const Mesh m({8, 8});
  const auto router = make_router(Algorithm::kEcube, m);
  Rng rng(1);
  std::vector<Path> paths;
  for (const auto& [s, t] : testing::sample_pairs(m, 60, 3)) {
    paths.push_back(router->route(s, t, rng));
  }
  std::int64_t previous = 0;
  for (const std::int64_t flits : {1, 2, 4, 8}) {
    CutThroughOptions options;
    options.flits_per_packet = flits;
    const CutThroughResult r = simulate_cut_through(m, paths, options);
    EXPECT_TRUE(r.completed);
    EXPECT_GE(r.makespan, previous);
    previous = r.makespan;
  }
}

}  // namespace
}  // namespace oblivious
