// Pins the contract switch OFF for this TU regardless of build type:
// OBLV_EXPECTS / OBLV_ENSURES must parse their expression but never
// evaluate it (the -DOBLV_CONTRACTS=OFF Release behaviour).
#define OBLV_CONTRACTS_FORCE 0
#include "util/contracts.hpp"

#include "contracts_macro_modes.hpp"

namespace oblivious::testing {

bool forced_off_expects_throws() {
  try {
    OBLV_EXPECTS(false, "compiled out: must not throw");
  } catch (const ContractViolation&) {
    return true;
  }
  return false;
}

bool forced_off_ensures_throws() {
  try {
    OBLV_ENSURES(false, "compiled out: must not throw");
  } catch (const ContractViolation&) {
    return true;
  }
  return false;
}

int forced_off_evaluation_count() {
  int evaluations = 0;
  OBLV_EXPECTS((++evaluations, true), "must stay unevaluated");
  OBLV_ENSURES((++evaluations, false), "must stay unevaluated");
  return evaluations;
}

int forced_off_dcheck_is_active() {
  // OBLV_DCHECK follows NDEBUG (like assert), not the contracts switch;
  // report what this build does so the test can assert consistency.
  int evaluations = 0;
  OBLV_DCHECK((++evaluations, true), "probe");
  return evaluations;
}

}  // namespace oblivious::testing
