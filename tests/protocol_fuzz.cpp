// Fuzz target for the oblvd frame decoders (src/daemon/protocol.cpp).
//
// Two entry points share one harness:
//
//   * LLVMFuzzerTestOneInput -- link with -fsanitize=fuzzer for
//     coverage-guided fuzzing when a clang toolchain is available.
//   * main() (default build)  -- a deterministic, bounded corpus run
//     used by ctest (ProtocolFuzz): seeded splitmix64 mutations of
//     valid frames plus systematic truncations, length/count/version
//     skew, and pure garbage. Reproducible by construction, so a CI
//     failure names the exact (seed, iteration) to replay.
//
// The property under test: for ANY byte string, every decoder either
// returns normally or throws ProtocolError. Any other escape -- a
// different exception, a crash, an out-of-bounds read under ASan -- is
// a bug in the bounds-checked Reader.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "daemon/protocol.hpp"
#include "rng/rng.hpp"

namespace {

using namespace oblivious;
using namespace oblivious::daemon;

// Runs every decoder over one payload; ProtocolError is the only
// acceptable escape.
void decode_all(const std::uint8_t* data, std::size_t size) {
  try {
    (void)decode_header(data, size);
  } catch (const ProtocolError&) {
  }
  try {
    (void)decode_route_request(data, size);
  } catch (const ProtocolError&) {
  }
  try {
    (void)decode_route_response(data, size);
  } catch (const ProtocolError&) {
  }
  try {
    (void)decode_metrics_response(data, size);
  } catch (const ProtocolError&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  decode_all(data, size);
  return 0;
}

#ifndef OBLV_FUZZ_LIBFUZZER

namespace {

// Valid frames the mutations start from (payloads, prefix stripped).
std::vector<std::vector<std::uint8_t>> seed_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  const auto strip = [](std::vector<std::uint8_t> frame) {
    return std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
  };

  RouteRequest request;
  request.request_id = 7;
  request.seed = 0x1234;
  request.deadline_ms = 250;
  request.tenant = "fuzz";
  request.demands = {{0, 63}, {5, 5}, {12, 40}};
  std::vector<std::uint8_t> frame;
  encode_route_request(request, frame);
  corpus.push_back(strip(frame));
  frame.clear();
  request.deadline_ms = 0;  // v1 has no deadline field; the encoder enforces it
  encode_route_request(request, frame, /*version=*/1);
  corpus.push_back(strip(frame));

  RouteResponse response;
  response.request_id = 7;
  response.status = RouteStatus::kOk;
  SegmentPath path;
  path.source = 1;
  path.dest = 62;
  path.append(0, 3);
  path.append(1, -3);
  response.paths = {path};
  frame.clear();
  encode_route_response(response, frame);
  corpus.push_back(strip(frame));

  response.status = RouteStatus::kExpired;
  response.paths.clear();
  response.message = "deadline expired before reply";
  frame.clear();
  encode_route_response(response, frame);
  corpus.push_back(strip(frame));

  frame.clear();
  encode_metrics_response(9, R"({"schema":"oblv-metrics-v1"})", frame);
  corpus.push_back(strip(frame));
  frame.clear();
  encode_ping(1, frame);
  corpus.push_back(strip(frame));
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  // One optional flag: --iterations N (default keeps the ctest run
  // bounded at a few seconds).
  std::uint64_t iterations = 50000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--iterations") {
      iterations = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  const std::uint64_t seed = 0x0b1f00d5eedull;  // fixed: reproducible corpus

  const auto corpus = seed_corpus();

  // Phase 1: systematic edges on every corpus entry -- all strict
  // truncations, every single-byte flip of the first 64 bytes, and
  // version/count skew at known offsets.
  for (const auto& payload : corpus) {
    for (std::size_t cut = 0; cut <= payload.size(); ++cut) {
      decode_all(payload.data(), cut);
    }
    std::vector<std::uint8_t> mutated = payload;
    for (std::size_t at = 0; at < mutated.size() && at < 64; ++at) {
      for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
        mutated[at] = payload[at] ^ flip;
        decode_all(mutated.data(), mutated.size());
        mutated[at] = payload[at];
      }
    }
    // Version skew: every 16-bit value in the header's version slot.
    for (std::uint32_t v = 0; v < 0x10000; v += 0xff) {
      mutated[4] = static_cast<std::uint8_t>(v & 0xff);
      mutated[5] = static_cast<std::uint8_t>(v >> 8);
      decode_all(mutated.data(), mutated.size());
    }
  }

  // Phase 2: seeded random mutations -- pick a corpus entry, apply
  // 1..8 byte edits at splitmix64-chosen offsets, sometimes append or
  // truncate, and decode. Iteration i is fully determined by (seed, i).
  std::uint64_t counter = 0;
  const auto draw = [&]() { return splitmix64(seed ^ splitmix64(counter++)); };
  for (std::uint64_t i = 0; i < iterations; ++i) {
    std::vector<std::uint8_t> mutated = corpus[draw() % corpus.size()];
    const std::uint64_t edits = 1 + draw() % 8;
    for (std::uint64_t e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::uint64_t what = draw() % 10;
      if (what < 7) {  // byte edit
        mutated[draw() % mutated.size()] =
            static_cast<std::uint8_t>(draw());
      } else if (what == 7) {  // truncate
        mutated.resize(draw() % (mutated.size() + 1));
      } else if (what == 8) {  // append garbage
        const std::uint64_t extra = 1 + draw() % 32;
        for (std::uint64_t b = 0; b < extra; ++b) {
          mutated.push_back(static_cast<std::uint8_t>(draw()));
        }
      } else {  // oversize a claimed count/length field in place
        if (mutated.size() >= 4) {
          const std::uint64_t at = draw() % (mutated.size() - 3);
          mutated[at] = 0xff;
          mutated[at + 1] = 0xff;
          mutated[at + 2] = 0xff;
          mutated[at + 3] = 0x7f;
        }
      }
    }
    decode_all(mutated.data(), mutated.size());
  }

  // Phase 3: pure garbage of assorted sizes, including empty.
  for (std::uint64_t i = 0; i < iterations / 10; ++i) {
    std::vector<std::uint8_t> garbage(draw() % 256);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(draw());
    decode_all(garbage.data(), garbage.size());
  }

  std::printf("protocol_fuzz: OK (%llu random iterations, %zu corpus "
              "entries, no non-ProtocolError escape)\n",
              static_cast<unsigned long long>(iterations), corpus.size());
  return 0;
}

#endif  // OBLV_FUZZ_LIBFUZZER
