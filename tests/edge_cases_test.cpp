// Edge cases and error paths across modules: degenerate meshes, misuse
// rejections, and describe/render surfaces not covered by the main suites.
#include <gtest/gtest.h>

#include "analysis/lower_bound.hpp"
#include "core/oblivious_routing.hpp"
#include "decomposition/access_graph.hpp"
#include "decomposition/render.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

TEST(EdgeCases, SingleNodeMesh) {
  const Mesh m({1});
  EXPECT_EQ(m.num_nodes(), 1);
  EXPECT_EQ(m.num_edges(), 0);
  EXPECT_EQ(m.diameter(), 0);
  EXPECT_TRUE(m.neighbors(0).empty());
  const auto router = make_router(Algorithm::kEcube, m);
  Rng rng(1);
  EXPECT_EQ(router->route(0, 0, rng).nodes, (std::vector<NodeId>{0}));
}

TEST(EdgeCases, TwoNodeMeshRoutesBothWays) {
  const Mesh m({2});
  for (const Algorithm a : algorithms_for(m)) {
    const auto router = make_router(a, m);
    Rng rng(2);
    EXPECT_EQ(router->route(0, 1, rng).length(), 1) << algorithm_name(a);
    EXPECT_EQ(router->route(1, 0, rng).length(), 1) << algorithm_name(a);
  }
}

TEST(EdgeCases, DecompositionOfTrivialMesh) {
  const Mesh m({1, 1});
  const Decomposition dec = Decomposition::section3(m);
  EXPECT_EQ(dec.leaf_level(), 0);
  EXPECT_EQ(dec.num_types(0), 1);
  const RegularSubmesh root = dec.deepest_common(Coord{0, 0}, Coord{0, 0}, true);
  EXPECT_EQ(root.level, 0);
}

TEST(EdgeCases, DecompositionRejectsBadConfig) {
  const Mesh m({8, 8});
  DecompositionConfig config;
  config.shift_divisor_log2 = 0;
  EXPECT_THROW(Decomposition(m, config), std::invalid_argument);
}

TEST(EdgeCases, AccessGraphRejectsHugeMeshes) {
  const Mesh m({512, 512});
  const Decomposition dec = Decomposition::section3(m);
  EXPECT_THROW(AccessGraph graph(dec), std::invalid_argument);
}

TEST(EdgeCases, RenderOneDimensionalMesh) {
  const Mesh m({16});
  const Decomposition dec = Decomposition::section3(m);
  const std::string render = render_family(dec, 1, 1);
  // One row of 16 cells in two families of 8.
  EXPECT_EQ(render, "AAAAAAAABBBBBBBB\n");
}

TEST(EdgeCases, SubmeshDescribeAndRegionDescribe) {
  const Mesh m({8, 8});
  const Decomposition dec = Decomposition::section3(m);
  const auto sm = dec.submesh_at(Coord{0, 4}, 1, 2);
  ASSERT_TRUE(sm.has_value());
  EXPECT_NE(sm->describe().find("level 1"), std::string::npos);
  EXPECT_NE(sm->describe().find("truncated"), std::string::npos);
  EXPECT_NE(sm->region.describe().find("[0+2,2+4]"), std::string::npos);
}

TEST(EdgeCases, LowerBoundRejectsForeignDecomposition) {
  const Mesh a({8, 8});
  const Mesh b({8, 8});
  const Decomposition dec = Decomposition::section4(b);
  RoutingProblem problem;
  problem.demands = {{0, 1}};
  EXPECT_THROW(congestion_lower_bound(a, dec, problem), std::invalid_argument);
}

TEST(EdgeCases, FacadeOnHypercube) {
  ObliviousMeshRouting system(Mesh::cube(8, 2), Algorithm::kValiant);
  Rng rng(3);
  const RoutingProblem problem = random_permutation(system.mesh(), rng);
  const SimulationResult sim = system.route_and_deliver(problem, 5);
  EXPECT_TRUE(sim.completed);
}

TEST(EdgeCases, FacadeOnRing) {
  ObliviousMeshRouting system(Mesh({64}, /*torus=*/true), Algorithm::kEcube);
  const RoutingProblem problem = tornado(system.mesh());
  const RoutingRun run = system.route(problem);
  EXPECT_DOUBLE_EQ(run.metrics.max_stretch, 1.0);
  // Tornado on a ring: every packet shifts side/2-1 = 31 the same way;
  // every edge carries exactly 31 packets.
  EXPECT_EQ(run.metrics.congestion, 31);
}

TEST(EdgeCases, HierarchicalRoutersOnSide2Mesh) {
  // k = 1: two levels only, bridges clamp to the root.
  const Mesh m({2, 2});
  for (const Algorithm a :
       {Algorithm::kHierarchical2d, Algorithm::kHierarchicalNd,
        Algorithm::kHierarchicalNdFrugal, Algorithm::kAccessTree}) {
    const auto router = make_router(a, m);
    Rng rng(7);
    for (NodeId s = 0; s < 4; ++s) {
      for (NodeId t = 0; t < 4; ++t) {
        const Path p = router->route(s, t, rng);
        EXPECT_TRUE(is_valid_path(m, p)) << algorithm_name(a);
        EXPECT_EQ(p.source(), s);
        EXPECT_EQ(p.destination(), t);
      }
    }
  }
}

TEST(EdgeCases, WorkloadsOnMinimalMeshes) {
  const Mesh m({2, 2});
  EXPECT_EQ(transpose(m).size(), 4U);
  EXPECT_EQ(bit_reversal(m).size(), 4U);
  EXPECT_EQ(cut_straddlers(m).size(), 4U);
  EXPECT_EQ(block_exchange(m, 1).size(), 4U);
  Rng rng(5);
  EXPECT_EQ(nearest_neighbor(m, rng).size(), 4U);
}

TEST(EdgeCases, EmptyProblemEvaluates) {
  const Mesh m({8, 8});
  const auto router = make_router(Algorithm::kHierarchical2d, m);
  const RoutingProblem empty;
  const RouteSetMetrics metrics = evaluate(m, *router, empty);
  EXPECT_EQ(metrics.packets, 0U);
  EXPECT_EQ(metrics.congestion, 0);
  EXPECT_DOUBLE_EQ(metrics.max_stretch, 1.0);
}

}  // namespace
}  // namespace oblivious
