#include <gtest/gtest.h>

#include "mesh/region.hpp"
#include "routing/bounded_valiant.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

TEST(BoundedValiant, StretchAtMostThree) {
  for (const bool torus : {false, true}) {
    const Mesh mesh({32, 32}, torus);
    const BoundedValiantRouter router(mesh);
    Rng rng(3);
    for (const auto& [s, t] : testing::sample_pairs(mesh, 300, 5)) {
      const Path p = router.route(s, t, rng);
      ASSERT_TRUE(is_valid_path(mesh, p));
      // Both legs stay in the bounding box: length <= 2 * box semiperimeter
      // <= 2 * dist, so total <= 3 * dist... conservatively assert 3.
      EXPECT_LE(path_stretch(mesh, p), 3.0) << "s=" << s << " t=" << t;
    }
  }
}

TEST(BoundedValiant, PathStaysInBoundingBox) {
  const Mesh mesh({32, 32});
  const BoundedValiantRouter router(mesh);
  Rng rng(7);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 100, 9)) {
    const Region box = router.box_for(s, t);
    const Path p = router.route(s, t, rng);
    for (const NodeId u : p.nodes) {
      EXPECT_TRUE(box.contains_node(mesh, u));
    }
  }
}

TEST(BoundedValiant, BoxContainsEndpoints) {
  for (const bool torus : {false, true}) {
    const Mesh mesh({16, 16}, torus);
    const BoundedValiantRouter router(mesh);
    for (const auto& [s, t] : testing::sample_pairs(mesh, 100, 11)) {
      const Region box = router.box_for(s, t);
      EXPECT_TRUE(box.contains_node(mesh, s));
      EXPECT_TRUE(box.contains_node(mesh, t));
      // Tight box: per-dimension extent is the displacement + 1.
      std::int64_t expected_volume = 1;
      const Coord cs = mesh.coord(s);
      const Coord ct = mesh.coord(t);
      for (int d = 0; d < mesh.dim(); ++d) {
        expected_volume *= std::abs(mesh.displacement(
                               cs[static_cast<std::size_t>(d)],
                               ct[static_cast<std::size_t>(d)], d)) +
                           1;
      }
      EXPECT_EQ(box.volume(), expected_volume);
    }
  }
}

TEST(BoundedValiant, MarginInflatesTheBox) {
  const Mesh mesh({32, 32});
  const BoundedValiantRouter tight(mesh, 0.0);
  const BoundedValiantRouter padded(mesh, 0.5);
  const NodeId s = mesh.node_id(Coord{10, 10});
  const NodeId t = mesh.node_id(Coord{14, 12});
  EXPECT_GT(padded.box_for(s, t).volume(), tight.box_for(s, t).volume());
  EXPECT_NE(tight.name(), padded.name());
}

TEST(BoundedValiant, SelfRouteTrivial) {
  const Mesh mesh({16, 16});
  const BoundedValiantRouter router(mesh);
  Rng rng(1);
  EXPECT_EQ(router.route(7, 7, rng).nodes, (std::vector<NodeId>{7}));
}

TEST(BoundedValiant, DegenerateThinBoxIsShortestPath) {
  // Same row: the box is 1 x (dist+1); every route is a shortest path.
  const Mesh mesh({16, 16});
  const BoundedValiantRouter router(mesh);
  Rng rng(5);
  const NodeId s = mesh.node_id(Coord{4, 2});
  const NodeId t = mesh.node_id(Coord{4, 11});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(router.route(s, t, rng).length(), 9);
  }
}

TEST(BoundedValiant, RejectsNegativeMargin) {
  const Mesh mesh({16, 16});
  EXPECT_THROW(BoundedValiantRouter(mesh, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace oblivious
