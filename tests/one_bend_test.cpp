#include <gtest/gtest.h>

#include "routing/one_bend.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

Path start_at(const Mesh& mesh, const Coord& c) {
  Path p;
  p.nodes.push_back(mesh.node_id(c));
  return p;
}

TEST(OneBend, IdentityOrder) {
  const auto order = identity_order(3);
  ASSERT_EQ(order.size(), 3U);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(OneBend, ShortestPathOnMesh) {
  const Mesh m({8, 8});
  const Coord from{1, 2};
  const Coord to{5, 6};
  Path p = start_at(m, from);
  const auto order = identity_order(2);
  append_dim_order_path(m, from, to, {order.data(), order.size()}, p);
  EXPECT_TRUE(is_valid_path(m, p));
  EXPECT_EQ(p.length(), m.distance(from, to));
  EXPECT_EQ(p.destination(), m.node_id(to));
  // Dimension 0 corrected first: node 2 on the path moves in x.
  EXPECT_EQ(m.coord(p.nodes[1]), (Coord{2, 2}));
}

TEST(OneBend, OrderControlsBendPlacement) {
  const Mesh m({8, 8});
  const Coord from{1, 2};
  const Coord to{5, 6};
  Path p = start_at(m, from);
  const int order_yx[] = {1, 0};
  append_dim_order_path(m, from, to, {order_yx, 2}, p);
  EXPECT_EQ(m.coord(p.nodes[1]), (Coord{1, 3}));  // y first
  EXPECT_EQ(p.length(), m.distance(from, to));
}

TEST(OneBend, TakesShorterArcOnTorus) {
  const Mesh t({8, 8}, true);
  const Coord from{1, 0};
  const Coord to{7, 0};
  Path p = start_at(t, from);
  const auto order = identity_order(2);
  append_dim_order_path(t, from, to, {order.data(), order.size()}, p);
  EXPECT_EQ(p.length(), 2);  // 1 -> 0 -> 7, wrapping
  EXPECT_TRUE(is_valid_path(t, p));
}

TEST(OneBend, ZeroLengthPath) {
  const Mesh m({8, 8});
  const Coord c{3, 3};
  Path p = start_at(m, c);
  const auto order = identity_order(2);
  append_dim_order_path(m, c, c, {order.data(), order.size()}, p);
  EXPECT_EQ(p.length(), 0);
}

TEST(OneBend, RejectsMismatchedStart) {
  const Mesh m({8, 8});
  Path p = start_at(m, Coord{0, 0});
  const auto order = identity_order(2);
  EXPECT_THROW(
      append_dim_order_path(m, Coord{1, 1}, Coord{2, 2},
                            {order.data(), order.size()}, p),
      std::invalid_argument);
}

TEST(OneBend, InRegionStaysInside) {
  const Mesh m({16, 16});
  const Region region(Coord{4, 4}, Coord{8, 8});
  Rng rng(3);
  const auto order = identity_order(2);
  for (int trial = 0; trial < 100; ++trial) {
    const Coord a = region.random_coord(m, rng);
    const Coord b = region.random_coord(m, rng);
    Path p = start_at(m, a);
    append_path_in_region(m, region, a, b, {order.data(), order.size()}, p);
    EXPECT_TRUE(is_valid_path(m, p));
    EXPECT_EQ(p.length(), m.distance(a, b));
    for (const NodeId u : p.nodes) {
      EXPECT_TRUE(region.contains_node(m, u));
    }
  }
}

TEST(OneBend, InRegionStaysInsideWrappedRegion) {
  // On the torus the globally shorter arc may exit a wrapped region; the
  // in-region walk must stay inside regardless.
  const Mesh t({16, 16}, true);
  const Region region(Coord{12, 12}, Coord{8, 8});  // wraps both dims
  Rng rng(11);
  const auto order = identity_order(2);
  for (int trial = 0; trial < 200; ++trial) {
    const Coord a = region.random_coord(t, rng);
    const Coord b = region.random_coord(t, rng);
    Path p = start_at(t, a);
    append_path_in_region(t, region, a, b, {order.data(), order.size()}, p);
    EXPECT_TRUE(is_valid_path(t, p));
    for (const NodeId u : p.nodes) {
      EXPECT_TRUE(region.contains_node(t, u)) << t.coord(u).at(0);
    }
    EXPECT_EQ(p.destination(), t.node_id(b));
  }
}

TEST(OneBend, InRegionLengthBoundedByRegionPerimeter) {
  const Mesh t({16, 16}, true);
  const Region region(Coord{10, 2}, Coord{8, 4});
  Rng rng(13);
  const auto order = identity_order(2);
  for (int trial = 0; trial < 100; ++trial) {
    const Coord a = region.random_coord(t, rng);
    const Coord b = region.random_coord(t, rng);
    Path p = start_at(t, a);
    append_path_in_region(t, region, a, b, {order.data(), order.size()}, p);
    EXPECT_LE(p.length(), (region.extent_at(0) - 1) + (region.extent_at(1) - 1));
  }
}

TEST(OneBend, InRegionRejectsOutsideEndpoints) {
  const Mesh m({8, 8});
  const Region region(Coord{0, 0}, Coord{2, 2});
  Path p = start_at(m, Coord{0, 0});
  const auto order = identity_order(2);
  EXPECT_THROW(append_path_in_region(m, region, Coord{0, 0}, Coord{5, 5},
                                     {order.data(), order.size()}, p),
               std::invalid_argument);
}

}  // namespace
}  // namespace oblivious
