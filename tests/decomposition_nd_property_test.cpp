// Property sweeps on the Section 4 (type-j) decomposition in d dimensions:
// the analogs of Lemma 3.1 that the d-dimensional congestion analysis
// relies on, verified exhaustively on small meshes and by sampling on
// larger ones.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "decomposition/decomposition.hpp"
#include "test_support.hpp"
#include "util/bits.hpp"

namespace oblivious {
namespace {

class Section4Decomposition
    : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  Section4Decomposition()
      : mesh_(Mesh::cube(std::get<0>(GetParam()), 8, std::get<1>(GetParam()))),
        dec_(Decomposition::section4(mesh_)) {}
  Mesh mesh_;
  Decomposition dec_;
};

TEST_P(Section4Decomposition, EveryFamilyIsDisjoint) {
  for (int level = 1; level <= dec_.leaf_level(); ++level) {
    for (int type = 1; type <= dec_.num_types(level); ++type) {
      std::vector<int> covered(static_cast<std::size_t>(mesh_.num_nodes()), 0);
      dec_.for_each_submesh(level, type, [&](const RegularSubmesh& sm) {
        for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
          if (sm.region.contains_node(mesh_, u)) {
            ++covered[static_cast<std::size_t>(u)];
          }
        }
      });
      for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
        EXPECT_LE(covered[static_cast<std::size_t>(u)], 1)
            << "level " << level << " type " << type << " node " << u;
      }
    }
  }
}

TEST_P(Section4Decomposition, ContainmentQueryMatchesEnumeration) {
  for (int level = 1; level <= dec_.leaf_level(); ++level) {
    for (int type = 1; type <= dec_.num_types(level); ++type) {
      std::map<NodeId, std::int64_t> owner;
      dec_.for_each_submesh(level, type, [&](const RegularSubmesh& sm) {
        for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
          if (sm.region.contains_node(mesh_, u)) owner[u] = sm.grid_key;
        }
      });
      for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
        const auto sm = dec_.submesh_at(mesh_.coord(u), level, type);
        const auto it = owner.find(u);
        if (it == owner.end()) {
          EXPECT_FALSE(sm.has_value());
        } else {
          ASSERT_TRUE(sm.has_value());
          EXPECT_EQ(sm->grid_key, it->second);
        }
      }
    }
  }
}

TEST_P(Section4Decomposition, EveryNodeIsInSomeSubmeshOfEveryFamilyOnTorus) {
  // On the torus the shifted families tile completely (no truncation).
  if (!mesh_.torus()) GTEST_SKIP() << "mesh truncation leaves gaps by design";
  for (int level = 1; level <= dec_.leaf_level(); ++level) {
    for (int type = 1; type <= dec_.num_types(level); ++type) {
      for (NodeId u = 0; u < mesh_.num_nodes(); u += 3) {
        EXPECT_TRUE(dec_.submesh_at(mesh_.coord(u), level, type).has_value());
      }
    }
  }
}

TEST_P(Section4Decomposition, AnchorsOfConsecutiveTypesDifferByLambda) {
  for (int level = 1; level < dec_.leaf_level(); ++level) {
    const std::int64_t lambda = dec_.shift_lambda(level);
    const Coord probe = mesh_.coord(mesh_.num_nodes() / 2);
    for (int type = 1; type < dec_.num_types(level); ++type) {
      const auto a = dec_.submesh_at(probe, level, type);
      const auto b = dec_.submesh_at(probe, level, type + 1);
      if (!a.has_value() || !b.has_value()) continue;
      if (a->truncated || b->truncated) continue;
      for (int d = 0; d < mesh_.dim(); ++d) {
        EXPECT_EQ(pos_mod(b->region.anchor_at(d) - a->region.anchor_at(d),
                          dec_.side_at(level)),
                  pos_mod(lambda, dec_.side_at(level)))
            << "level " << level << " type " << type;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, Section4Decomposition,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& pinfo) {
      return std::string(std::get<1>(pinfo.param) ? "torus" : "mesh") + "_d" +
             std::to_string(std::get<0>(pinfo.param));
    });

TEST(Section4Alignment, BridgeLevelAnchorsAlignWithM1Grid) {
  // The alignment property behind condition (iii) of Appendix A.1: at the
  // prescribed bridge height, lambda is a multiple of the type-1 cell side
  // at height h' = floor(log2 dist), so shifted submeshes decompose into
  // those cells.
  for (const int d : {2, 3}) {
    const Mesh mesh = Mesh::cube(d, 64, /*torus=*/true);
    const Decomposition dec = Decomposition::section4(mesh);
    for (std::int64_t dist = 1; dist <= 8; ++dist) {
      const int h = ceil_log2(2 * static_cast<std::uint64_t>(d + 1) *
                              static_cast<std::uint64_t>(dist));
      const int bridge_height = std::min(h + 1, dec.leaf_level());
      const int m1_height =
          std::min(floor_log2(static_cast<std::uint64_t>(dist)),
                   bridge_height - 1);
      const std::int64_t lambda =
          dec.shift_lambda(dec.level_of_height(bridge_height));
      EXPECT_EQ(lambda % (std::int64_t{1} << std::max(m1_height, 0)), 0)
          << "d=" << d << " dist=" << dist;
    }
  }
}

}  // namespace
}  // namespace oblivious
