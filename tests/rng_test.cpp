#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/rng.hpp"

namespace oblivious {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(3);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowOneIsFreeAndZero) {
  Rng rng(3);
  BitMeter meter;
  rng.attach_meter(&meter);
  EXPECT_EQ(rng.uniform_below(1), 0U);
  EXPECT_EQ(meter.bits, 0U);
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_below(5));
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(kBuckets)];
  // Chi-square with 7 dof; 40 is far beyond the 0.999 quantile (24.3).
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

TEST(Rng, NonPowerOfTwoBoundIsUnbiased) {
  Rng rng(17);
  constexpr int kDraws = 90000;
  int counts[3] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(3)];
  const double expected = kDraws / 3.0;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BitsWidth) {
  Rng rng(9);
  for (int n = 0; n <= 64; n += 8) {
    const std::uint64_t v = rng.bits(n);
    if (n < 64) {
      EXPECT_LT(v, std::uint64_t{1} << n);
    }
  }
  EXPECT_EQ(rng.bits(0), 0U);
}

TEST(Rng, MeterChargesInformationContent) {
  Rng rng(21);
  BitMeter meter;
  rng.attach_meter(&meter);
  rng.uniform_below(8);  // exactly 3 bits
  EXPECT_EQ(meter.bits, 3U);
  rng.uniform_below(9);  // ceil(log2 9) = 4 bits
  EXPECT_EQ(meter.bits, 7U);
  rng.bits(10);
  EXPECT_EQ(meter.bits, 17U);
  EXPECT_EQ(meter.draws, 3U);
  meter.reset();
  EXPECT_EQ(meter.bits, 0U);
}

TEST(Rng, UnmeteredByDefault) {
  Rng rng(1);
  rng.uniform_below(100);  // must not crash without a meter
  SUCCEED();
}

TEST(Rng, CoinIsOneBit) {
  Rng rng(2);
  BitMeter meter;
  rng.attach_meter(&meter);
  (void)rng.coin();
  EXPECT_EQ(meter.bits, 1U);
}

TEST(Rng, RandomPermutationIsValid) {
  Rng rng(31);
  for (int n = 0; n <= 8; ++n) {
    const auto perm = rng.random_permutation(n);
    ASSERT_EQ(perm.size(), static_cast<std::size_t>(n));
    std::set<int> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
    for (const int x : perm) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, n);
    }
  }
}

TEST(Rng, RandomPermutationMixes) {
  Rng rng(37);
  // Over many draws every position should see every value.
  constexpr int kN = 4;
  int seen[kN][kN] = {};
  for (int trial = 0; trial < 400; ++trial) {
    const auto perm = rng.random_permutation(kN);
    for (int i = 0; i < kN; ++i) ++seen[i][perm[static_cast<std::size_t>(i)]];
  }
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) EXPECT_GT(seen[i][j], 0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v.data(), v.size());
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100U);
}

TEST(Rng, ForkDiverges) {
  Rng a(5);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace oblivious
