#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "parallel/route_batch.hpp"
#include "rng/rng.hpp"
#include "rng/rng_lanes.hpp"

namespace oblivious {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(3);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowOneIsFreeAndZero) {
  Rng rng(3);
  BitMeter meter;
  rng.attach_meter(&meter);
  EXPECT_EQ(rng.uniform_below(1), 0U);
  EXPECT_EQ(meter.bits, 0U);
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_below(5));
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(kBuckets)];
  // Chi-square with 7 dof; 40 is far beyond the 0.999 quantile (24.3).
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

TEST(Rng, NonPowerOfTwoBoundIsUnbiased) {
  Rng rng(17);
  constexpr int kDraws = 90000;
  int counts[3] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(3)];
  const double expected = kDraws / 3.0;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BitsWidth) {
  Rng rng(9);
  for (int n = 0; n <= 64; n += 8) {
    const std::uint64_t v = rng.bits(n);
    if (n < 64) {
      EXPECT_LT(v, std::uint64_t{1} << n);
    }
  }
  EXPECT_EQ(rng.bits(0), 0U);
}

TEST(Rng, MeterChargesInformationContent) {
  Rng rng(21);
  BitMeter meter;
  rng.attach_meter(&meter);
  rng.uniform_below(8);  // exactly 3 bits
  EXPECT_EQ(meter.bits, 3U);
  rng.uniform_below(9);  // ceil(log2 9) = 4 bits
  EXPECT_EQ(meter.bits, 7U);
  rng.bits(10);
  EXPECT_EQ(meter.bits, 17U);
  EXPECT_EQ(meter.draws, 3U);
  meter.reset();
  EXPECT_EQ(meter.bits, 0U);
}

TEST(Rng, UnmeteredByDefault) {
  Rng rng(1);
  rng.uniform_below(100);  // must not crash without a meter
  SUCCEED();
}

TEST(Rng, CoinIsOneBit) {
  Rng rng(2);
  BitMeter meter;
  rng.attach_meter(&meter);
  (void)rng.coin();
  EXPECT_EQ(meter.bits, 1U);
}

TEST(Rng, RandomPermutationIsValid) {
  Rng rng(31);
  for (int n = 0; n <= 8; ++n) {
    const auto perm = rng.random_permutation(n);
    ASSERT_EQ(perm.size(), static_cast<std::size_t>(n));
    std::set<int> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
    for (const int x : perm) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, n);
    }
  }
}

TEST(Rng, RandomPermutationMixes) {
  Rng rng(37);
  // Over many draws every position should see every value.
  constexpr int kN = 4;
  int seen[kN][kN] = {};
  for (int trial = 0; trial < 400; ++trial) {
    const auto perm = rng.random_permutation(kN);
    for (int i = 0; i < kN; ++i) ++seen[i][perm[static_cast<std::size_t>(i)]];
  }
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) EXPECT_GT(seen[i][j], 0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v.data(), v.size());
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100U);
}

TEST(Rng, ForkDiverges) {
  Rng a(5);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// --- RngLanes: the lane-parallel twin the SoA batch engine runs on. ---
// Its contract is bit-identity with the scalar counter streams: lane k of
// every draw must emit EXACTLY the word packet_rng(seed, indices[k])
// would emit at the same stream position.

TEST(RngLanes, LanesMatchScalarPacketStreams) {
  constexpr std::uint64_t kSeed = 0xfeedface;
  std::uint64_t indices[RngLanes::kLanes];
  std::vector<Rng> scalar;
  for (std::size_t k = 0; k < RngLanes::kLanes; ++k) {
    indices[k] = k * 977 + 3;  // non-contiguous packet indices
    scalar.push_back(packet_rng(kSeed, indices[k]));
  }
  RngLanes lanes;
  lanes.seed_packets(kSeed, indices, RngLanes::kLanes);
  std::uint64_t out[RngLanes::kLanes];
  for (int step = 0; step < 64; ++step) {
    lanes.next(out);
    for (std::size_t k = 0; k < RngLanes::kLanes; ++k) {
      ASSERT_EQ(out[k], scalar[k].next_u64())
          << "lane " << k << " step " << step;
    }
  }
}

// A tail group seeds the unused lanes with the last real index: they step
// in lock step (keeping the SIMD sweep branch-free) but mirror that
// stream, and the engine never reads them.
TEST(RngLanes, TailLanesDuplicateLastIndex) {
  constexpr std::uint64_t kSeed = 17;
  const std::uint64_t indices[3] = {5, 900, 42};
  RngLanes lanes;
  lanes.seed_packets(kSeed, indices, 3);
  EXPECT_EQ(lanes.active(), 3u);
  Rng last = packet_rng(kSeed, 42);
  std::uint64_t out[RngLanes::kLanes];
  for (int step = 0; step < 8; ++step) {
    lanes.next(out);
    const std::uint64_t expect = last.next_u64();
    for (std::size_t k = 2; k < RngLanes::kLanes; ++k) {
      ASSERT_EQ(out[k], expect) << "lane " << k << " step " << step;
    }
  }
}

// next_lane is the rejection fix-up: it must advance exactly one lane's
// stream and leave every other lane untouched.
TEST(RngLanes, NextLaneAdvancesOnlyThatLane) {
  constexpr std::uint64_t kSeed = 23;
  constexpr std::size_t kFixup = 5;
  std::uint64_t indices[RngLanes::kLanes];
  std::vector<Rng> scalar;
  for (std::size_t k = 0; k < RngLanes::kLanes; ++k) {
    indices[k] = 100 + k;
    scalar.push_back(packet_rng(kSeed, indices[k]));
  }
  RngLanes lanes;
  lanes.seed_packets(kSeed, indices, RngLanes::kLanes);
  std::uint64_t out[RngLanes::kLanes];
  lanes.next(out);
  for (std::size_t k = 0; k < RngLanes::kLanes; ++k) {
    ASSERT_EQ(out[k], scalar[k].next_u64());
  }
  // Redraw lane kFixup twice; its scalar twin follows, the rest hold.
  EXPECT_EQ(lanes.next_lane(kFixup), scalar[kFixup].next_u64());
  EXPECT_EQ(lanes.next_lane(kFixup), scalar[kFixup].next_u64());
  // The next full-width step finds every lane back on its own stream.
  lanes.next(out);
  for (std::size_t k = 0; k < RngLanes::kLanes; ++k) {
    ASSERT_EQ(out[k], scalar[k].next_u64()) << "lane " << k;
  }
}

// The blocked sweep (state held in registers across all ops) must be
// bit-identical to repeated single steps -- including the state left
// behind, proven by drawing once more from both.
TEST(RngLanes, NextBlockMatchesRepeatedNext) {
  constexpr std::uint64_t kSeed = 31;
  constexpr std::size_t kOps = 22;
  std::uint64_t indices[RngLanes::kLanes];
  for (std::size_t k = 0; k < RngLanes::kLanes; ++k) indices[k] = 7 * k + 1;
  RngLanes blocked, stepped;
  blocked.seed_packets(kSeed, indices, RngLanes::kLanes);
  stepped.seed_packets(kSeed, indices, RngLanes::kLanes);
  std::vector<std::uint64_t> rows(kOps * RngLanes::kLanes);
  blocked.next_block(rows.data(), kOps);
  std::uint64_t out[RngLanes::kLanes];
  for (std::size_t o = 0; o < kOps; ++o) {
    stepped.next(out);
    for (std::size_t k = 0; k < RngLanes::kLanes; ++k) {
      ASSERT_EQ(rows[o * RngLanes::kLanes + k], out[k])
          << "op " << o << " lane " << k;
    }
  }
  std::uint64_t a[RngLanes::kLanes], b[RngLanes::kLanes];
  blocked.next(a);
  stepped.next(b);
  for (std::size_t k = 0; k < RngLanes::kLanes; ++k) EXPECT_EQ(a[k], b[k]);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace oblivious
