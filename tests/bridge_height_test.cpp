#include <gtest/gtest.h>

#include <tuple>

#include "decomposition/decomposition.hpp"
#include "routing/hierarchical.hpp"
#include "test_support.hpp"
#include "util/bits.hpp"

namespace oblivious {
namespace {

// --- Lemma 3.3: the deepest common ancestor of two leaves has height at
// most log2(dist) + O(1) in the Section 3 decomposition. ---------------------

class BridgeHeight2D
    : public ::testing::TestWithParam<std::tuple<std::int64_t, bool>> {};

TEST_P(BridgeHeight2D, DeepestCommonAncestorIsShallow) {
  const auto [side, torus] = GetParam();
  const Mesh mesh({side, side}, torus);
  const Decomposition dec = Decomposition::section3(mesh);
  // Exhaustive over sources, sampled destinations for larger meshes.
  const std::int64_t stride = side >= 32 ? 7 : 1;
  int worst_excess = -100;
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    for (NodeId t = (s * 31) % stride; t < mesh.num_nodes(); t += stride) {
      if (s == t) continue;
      const std::int64_t dist = mesh.distance(s, t);
      const RegularSubmesh dca =
          dec.deepest_common(mesh.coord(s), mesh.coord(t), true);
      const int height = dec.height_of(dca.level);
      // Lemma 3.3: height <= ceil(log2 dist) + 2 (exact on the torus;
      // truncation at mesh borders may cost one more level).
      const int bound = ceil_log2(static_cast<std::uint64_t>(dist)) + 2;
      const int excess = height - bound;
      worst_excess = std::max(worst_excess, excess);
      ASSERT_LE(height, std::min(bound + 1, dec.leaf_level()))
          << "s=" << s << " t=" << t << " dist=" << dist;
    }
  }
  // The torus construction achieves the exact Lemma 3.3 bound.
  if (torus) {
    EXPECT_LE(worst_excess, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BridgeHeight2D,
    ::testing::Combine(::testing::Values<std::int64_t>(8, 16, 32),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<std::int64_t, bool>>& pinfo) {
      return testing::param_name(std::get<0>(pinfo.param), std::get<1>(pinfo.param));
    });

// --- Lemma 4.1: in the Section 4 decomposition, the prescribed bridge
// height always yields a submesh containing both endpoints' type-1 cells. ----

class BridgeHeightNd
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(BridgeHeightNd, PrescribedBridgeExists) {
  const auto [dim, torus] = GetParam();
  const std::int64_t side = dim <= 2 ? 32 : 16;
  const Mesh mesh = Mesh::cube(dim, side, torus);
  const NdRouter router(mesh);
  const Decomposition& dec = router.decomposition();
  const int k = dec.leaf_level();
  for (const auto& [s, t] : testing::sample_pairs(mesh, 400, 99)) {
    const auto [m1_height, bridge_height] = router.heights_for(s, t);
    const RegularSubmesh bridge = router.bridge_for(s, t);
    const int height = dec.height_of(bridge.level);
    // On the torus Lemma 4.1 is exact: the bridge is found at the
    // prescribed height. On the mesh, truncation can push it at most a
    // constant number of levels up; the root caps everything.
    if (torus) {
      EXPECT_EQ(height, bridge_height) << "s=" << s << " t=" << t;
    } else {
      EXPECT_LE(height, std::min(bridge_height + 2, k));
    }
    EXPECT_GE(height, m1_height);
    // The bridge must contain both endpoints' height-h' type-1 cells.
    const RegularSubmesh m1 = dec.type1_at(mesh.coord(s), k - m1_height);
    const RegularSubmesh m3 = dec.type1_at(mesh.coord(t), k - m1_height);
    EXPECT_TRUE(bridge.region.contains_region(mesh, m1.region));
    EXPECT_TRUE(bridge.region.contains_region(mesh, m3.region));
  }
}

TEST_P(BridgeHeightNd, BridgeSideIsProportionalToDistance) {
  const auto [dim, torus] = GetParam();
  const std::int64_t side = dim <= 2 ? 64 : 16;
  const Mesh mesh = Mesh::cube(dim, side, torus);
  const NdRouter router(mesh);
  const Decomposition& dec = router.decomposition();
  for (const auto& [s, t] : testing::sample_pairs(mesh, 300, 7)) {
    const std::int64_t dist = mesh.distance(s, t);
    const RegularSubmesh bridge = router.bridge_for(s, t);
    const std::int64_t bridge_side = dec.side_at(bridge.level);
    // Section 4.1: 4(d+1) dist >= m_h, bridge side m_{h+1} <= 8(d+1) dist
    // (unless clamped at the root).
    if (bridge.level > 0) {
      EXPECT_LE(bridge_side, 8 * (dim + 1) * dist)
          << "s=" << s << " t=" << t << " dist=" << dist;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BridgeHeightNd,
    ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& pinfo) {
      return std::string(std::get<1>(pinfo.param) ? "torus" : "mesh") + "_d" +
             std::to_string(std::get<0>(pinfo.param));
    });

}  // namespace
}  // namespace oblivious
