// Statistical cross-checks of the probability lemmas behind the
// congestion analysis, measured on the actual subpath construction.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/region.hpp"
#include "routing/one_bend.hpp"
#include "rng/rng.hpp"

namespace oblivious {
namespace {

// Empirical probability that the random-dimension-order one-bend subpath
// from a uniform node of `from` to a uniform node of `to` uses `edge`.
double edge_usage_probability(const Mesh& mesh, const Region& from,
                              const Region& to,
                              const std::pair<NodeId, NodeId>& edge,
                              int samples, Rng& rng) {
  int hits = 0;
  for (int i = 0; i < samples; ++i) {
    const Coord a = from.random_coord(mesh, rng);
    const Coord b = to.random_coord(mesh, rng);
    Path path;
    path.nodes.push_back(mesh.node_id(a));
    const auto order = rng.random_permutation(mesh.dim());
    append_path_in_region(mesh, to, a, b,
                          {order.data(), order.size()}, path);
    for (std::size_t j = 0; j + 1 < path.nodes.size(); ++j) {
      const NodeId x = path.nodes[j];
      const NodeId y = path.nodes[j + 1];
      if ((x == edge.first && y == edge.second) ||
          (x == edge.second && y == edge.first)) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / samples;
}

TEST(Lemma35, SubpathUsesAnyEdgeWithProbabilityAtMost2OverM) {
  // Section 3.3, Lemma 3.5: the subpath from a type-1 submesh M1 of side
  // m to a containing submesh M2 uses a fixed edge e of M2 with
  // probability <= 2/m. We measure several edges, including the
  // worst-placed ones (aligned with M1's rows/columns).
  const Mesh mesh({32, 32});
  const Region m1(Coord{8, 8}, Coord{8, 8});    // side m = 8
  const Region m2(Coord{0, 0}, Coord{16, 16});  // the containing submesh
  Rng rng(7);
  const int samples = 40000;
  const double bound = 2.0 / 8.0;
  const double sigma = std::sqrt(bound * (1 - bound) / samples);
  const std::pair<NodeId, NodeId> edges[] = {
      {mesh.node_id(Coord{9, 4}), mesh.node_id(Coord{9, 5})},    // vertical
      {mesh.node_id(Coord{4, 9}), mesh.node_id(Coord{5, 9})},    // horizontal
      {mesh.node_id(Coord{0, 0}), mesh.node_id(Coord{0, 1})},    // far corner
      {mesh.node_id(Coord{12, 12}), mesh.node_id(Coord{12, 13})},  // inside M1
      {mesh.node_id(Coord{15, 8}), mesh.node_id(Coord{15, 9})},
  };
  for (const auto& edge : edges) {
    const double p = edge_usage_probability(mesh, m1, m2, edge, samples, rng);
    EXPECT_LE(p, bound + 4 * sigma)
        << "edge (" << edge.first << "," << edge.second << ") p=" << p;
  }
}

TEST(Lemma35, BoundIsNearlyTightForAlignedEdges) {
  // An edge whose column intersects M1 is used with probability
  // Theta(1/m): the bound is within a small constant of reality.
  const Mesh mesh({32, 32});
  const Region m1(Coord{8, 8}, Coord{8, 8});
  const Region m2(Coord{0, 0}, Coord{16, 16});
  Rng rng(11);
  const auto edge = std::make_pair(mesh.node_id(Coord{9, 7}),
                                   mesh.node_id(Coord{9, 8}));
  const double p = edge_usage_probability(mesh, m1, m2, edge, 40000, rng);
  EXPECT_GE(p, 0.02);  // >= ~1/(2m) with m = 8
  EXPECT_LE(p, 0.25);
}

TEST(LemmaA1, DDimensionalSubpathProbabilityBound) {
  // Appendix A, Lemma A.1: in d dimensions with all sides of M2 at least
  // twice M1's, the subpath uses a fixed edge with probability <= 2/(a d)
  // ... conservatively <= 2/a (we assert the per-dimension average form).
  const Mesh mesh = Mesh::cube(3, 16, /*torus=*/true);
  const Region m1(Coord{4, 4, 4}, Coord{4, 4, 4});    // a = 4
  const Region m2(Coord{2, 2, 2}, Coord{8, 8, 8});    // b = 2a
  Rng rng(13);
  const int samples = 30000;
  const double bound = 2.0 / 4.0;  // 2/a
  const std::pair<NodeId, NodeId> edges[] = {
      {mesh.node_id(Coord{5, 5, 5}), mesh.node_id(Coord{5, 5, 6})},
      {mesh.node_id(Coord{3, 6, 7}), mesh.node_id(Coord{4, 6, 7})},
      {mesh.node_id(Coord{8, 8, 8}), mesh.node_id(Coord{8, 9, 8})},
  };
  for (const auto& edge : edges) {
    const double p = edge_usage_probability(mesh, m1, m2, edge, samples, rng);
    EXPECT_LE(p, bound) << "edge (" << edge.first << "," << edge.second << ")";
  }
}

}  // namespace
}  // namespace oblivious
