#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "simulator/online.hpp"

namespace oblivious {
namespace {

TEST(BernoulliArrivals, RateZeroInjectsNothing) {
  const Mesh mesh({8, 8});
  Rng rng(1);
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, 0.0, 50, TrafficPattern::kUniform, rng);
  EXPECT_TRUE(w.packets.empty());
  EXPECT_EQ(w.horizon, 50);
}

TEST(BernoulliArrivals, RateMatchesExpectation) {
  const Mesh mesh({8, 8});
  Rng rng(2);
  const std::int64_t horizon = 200;
  const double rate = 0.1;
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, rate, horizon, TrafficPattern::kUniform, rng);
  const double expected =
      rate * static_cast<double>(mesh.num_nodes()) * static_cast<double>(horizon);
  EXPECT_NEAR(static_cast<double>(w.packets.size()), expected,
              5.0 * std::sqrt(expected));
}

TEST(BernoulliArrivals, PacketsAreSortedAndValid) {
  const Mesh mesh({8, 8});
  Rng rng(3);
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, 0.2, 30, TrafficPattern::kUniform, rng);
  std::int64_t prev = 0;
  for (const TimedDemand& p : w.packets) {
    EXPECT_GE(p.inject_step, prev);
    prev = p.inject_step;
    EXPECT_NE(p.src, p.dst);
    EXPECT_GE(p.src, 0);
    EXPECT_LT(p.dst, mesh.num_nodes());
  }
}

TEST(BernoulliArrivals, LocalPatternHasBoundedDistance) {
  const Mesh mesh({16, 16});
  Rng rng(4);
  const OnlineWorkload w = bernoulli_arrivals(
      mesh, 0.2, 20, TrafficPattern::kLocal, rng, /*local_distance=*/4);
  ASSERT_FALSE(w.packets.empty());
  for (const TimedDemand& p : w.packets) {
    EXPECT_LE(mesh.distance(p.src, p.dst), 4);
    EXPECT_GE(mesh.distance(p.src, p.dst), 1);
  }
}

TEST(BernoulliArrivals, TransposePatternSwapsCoordinates) {
  const Mesh mesh({8, 8});
  Rng rng(5);
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, 0.3, 10, TrafficPattern::kTranspose, rng);
  ASSERT_FALSE(w.packets.empty());
  for (const TimedDemand& p : w.packets) {
    const Coord cs = mesh.coord(p.src);
    const Coord ct = mesh.coord(p.dst);
    EXPECT_EQ(cs[0], ct[1]);
    EXPECT_EQ(cs[1], ct[0]);
  }
}

TEST(OnlineSimulation, LowLoadDeliversEverything) {
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  Rng rng(6);
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, 0.02, 60, TrafficPattern::kLocal, rng);
  const OnlineResult r = simulate_online(mesh, *router, w);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.delivered, r.injected);
  EXPECT_EQ(r.latency.count(), static_cast<std::uint64_t>(r.injected));
  EXPECT_GT(r.throughput(), 0.0);
}

TEST(OnlineSimulation, LatencyAtLeastDistance) {
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kEcube, mesh);
  Rng rng(7);
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, 0.01, 40, TrafficPattern::kLocal, rng, 6);
  const OnlineResult r = simulate_online(mesh, *router, w);
  EXPECT_TRUE(r.completed);
  // e-cube paths are shortest; at near-zero load packets rarely queue, so
  // the minimum latency equals the minimum distance (>= 1).
  EXPECT_GE(r.latency.min(), 1.0);
}

TEST(OnlineSimulation, SingleInjectedPacketLatencyIsPathLength) {
  const Mesh mesh({8, 8});
  const auto router = make_router(Algorithm::kEcube, mesh);
  OnlineWorkload w;
  w.horizon = 5;
  w.packets = {{0, 7, 2}};  // inject at step 2, distance 7 along a row
  const OnlineResult r = simulate_online(mesh, *router, w);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.delivered, 1);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 7.0);
  EXPECT_EQ(r.last_delivery, 2 + 7);
}

TEST(OnlineSimulation, OverloadIsDetectedAsSaturation) {
  const Mesh mesh({8, 8});
  const auto router = make_router(Algorithm::kValiant, mesh);
  Rng rng(8);
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, 0.9, 100, TrafficPattern::kUniform, rng);
  OnlineOptions options;
  options.max_steps = 150;
  options.saturation_queue_per_node = 4;
  const OnlineResult r = simulate_online(mesh, *router, w, options);
  EXPECT_FALSE(r.completed);
  EXPECT_LT(r.delivered, r.injected);
}

TEST(OnlineSimulation, DeterministicPerSeed) {
  const Mesh mesh({8, 8});
  const auto router = make_router(Algorithm::kHierarchicalNd, mesh);
  Rng rng_a(9);
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, 0.05, 50, TrafficPattern::kUniform, rng_a);
  OnlineOptions options;
  options.seed = 3;
  const OnlineResult a = simulate_online(mesh, *router, w, options);
  const OnlineResult b = simulate_online(mesh, *router, w, options);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.max_node_queue, b.max_node_queue);
}

TEST(OnlineSimulation, QueueOccupancyTracked) {
  const Mesh mesh({8, 8});
  const auto router = make_router(Algorithm::kEcube, mesh);
  // Three packets from the same node at the same step: the source queue
  // holds all three (they share the first edge).
  OnlineWorkload w;
  w.horizon = 1;
  w.packets = {{0, 3, 0}, {0, 3, 0}, {0, 3, 0}};
  const OnlineResult r = simulate_online(mesh, *router, w);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.max_node_queue, 3);
}

TEST(OnlineSimulation, PoliciesAllComplete) {
  const Mesh mesh({16, 16});
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  Rng rng(10);
  const OnlineWorkload w =
      bernoulli_arrivals(mesh, 0.03, 60, TrafficPattern::kUniform, rng);
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kFifo, SchedulingPolicy::kFurthestToGo,
        SchedulingPolicy::kRandomRank}) {
    OnlineOptions options;
    options.policy = policy;
    const OnlineResult r = simulate_online(mesh, *router, w, options);
    EXPECT_TRUE(r.completed) << policy_name(policy);
  }
}

}  // namespace
}  // namespace oblivious
