// Sketch accounting tests: dyadic cover algebra, count-min / SpaceSaving
// primitives, the (eps, delta) bound against exact accounting on small
// meshes, and the parallel fold discipline (bit-identical results for any
// thread count and any block fold order).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/congestion.hpp"
#include "analysis/evaluate.hpp"
#include "analysis/sketch/count_min.hpp"
#include "analysis/sketch/dyadic.hpp"
#include "analysis/sketch/load_accountant.hpp"
#include "analysis/sketch/space_saving.hpp"
#include "analysis/sketch/stream_account.hpp"
#include "analysis/trials.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

std::unique_ptr<Router> dim_order_router(const Mesh& mesh) {
  const auto a = algorithm_from_name("random-dim-order");
  OBLV_CHECK(a.has_value(), "random-dim-order must be registered");
  return make_router(*a, mesh);
}

// ---------------------------------------------------------------------------
// Dyadic decomposition

TEST(DyadicSketch, EveryPointCoveredExactlyOnce) {
  constexpr std::int64_t kUniverse = 32;
  for (std::int64_t lo = 0; lo <= kUniverse; ++lo) {
    for (std::int64_t hi = lo; hi <= kUniverse; ++hi) {
      std::vector<int> cover(static_cast<std::size_t>(kUniverse), 0);
      int pieces = dyadic_decompose(lo, hi, [&](int level, std::int64_t pos) {
        const std::int64_t first = pos << level;
        const std::int64_t last = (pos + 1) << level;
        for (std::int64_t p = first; p < last; ++p) {
          ++cover[static_cast<std::size_t>(p)];
        }
      });
      EXPECT_LE(pieces, 2 * 5);  // <= 2 log2(U) pieces
      for (std::int64_t p = 0; p < kUniverse; ++p) {
        EXPECT_EQ(cover[static_cast<std::size_t>(p)], (p >= lo && p < hi) ? 1 : 0)
            << "range [" << lo << ", " << hi << ") point " << p;
      }
    }
  }
}

TEST(DyadicSketch, EmptyRangeEmitsNothing) {
  EXPECT_EQ(dyadic_decompose(7, 7, [](int, std::int64_t) { FAIL(); }), 0);
}

// ---------------------------------------------------------------------------
// Count-min primitive

TEST(CountMinSketchTest, NeverUnderestimates) {
  CountMinSketch cm(64, 4, 42);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (std::uint64_t k = 0; k < 200; ++k) {
    const std::uint64_t w = 1 + (k % 7);
    cm.add(k * 11, w);
    truth[k * 11] += w;
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cm.estimate(key), count);
  }
}

TEST(CountMinSketchTest, LinearMergeCommutes) {
  CountMinSketch a(64, 4, 7), b(64, 4, 7);
  for (std::uint64_t k = 0; k < 100; ++k) a.add(k, k + 1);
  for (std::uint64_t k = 50; k < 150; ++k) b.add(k * 3, 2 * k);
  CountMinSketch ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  for (std::uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(ab.estimate(k), ba.estimate(k));
  }
}

TEST(CountMinSketchTest, ConservativeTightensButNeverUnderestimates) {
  CountMinSketch linear(16, 2, 9), conservative(16, 2, 9);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (std::uint64_t k = 0; k < 300; ++k) {
    const std::uint64_t key = k % 37;
    linear.add(key, 1);
    conservative.add_conservative(key, 1);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(conservative.estimate(key), count);
    EXPECT_LE(conservative.estimate(key), linear.estimate(key));
  }
}

// ---------------------------------------------------------------------------
// SpaceSaving primitive

TEST(SpaceSavingSketch, ExactWithinCapacity) {
  SpaceSavingLines ss(8);
  ss.add(3, 10);
  ss.add(1, 4);
  ss.add(3, 5);
  ss.add(9, 1);
  const auto entries = ss.entries_sorted();
  ASSERT_EQ(entries.size(), 3U);
  EXPECT_EQ(entries[0].key, 3U);
  EXPECT_EQ(entries[0].count, 15U);
  EXPECT_EQ(entries[0].error, 0U);
  EXPECT_EQ(entries[1].key, 1U);
  EXPECT_EQ(entries[1].count, 4U);
  EXPECT_EQ(entries[2].key, 9U);
  EXPECT_EQ(entries[2].count, 1U);
  EXPECT_EQ(ss.evictions(), 0U);
}

TEST(SpaceSavingSketch, EvictionKeepsHeavyKeysAndCountsChurn) {
  SpaceSavingLines ss(2);
  for (int i = 0; i < 50; ++i) ss.add(100, 3);  // heavy: 150
  ss.add(1, 1);
  ss.add(2, 1);  // evicts key 1 (same count, larger key loses? no: evicts min)
  EXPECT_GT(ss.evictions(), 0U);
  const auto entries = ss.entries_sorted();
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].key, 100U);
  // SpaceSaving invariant: count upper-bounds, count - error lower-bounds.
  EXPECT_GE(entries[0].count, 150U);
  EXPECT_LE(entries[0].count - entries[0].error, 150U);
  ss.clear();
  EXPECT_EQ(ss.size(), 0U);
  EXPECT_EQ(ss.evictions(), 0U);  // churn resets with the summary
}

TEST(SpaceSavingSketch, MergeUnionsCountsAndTruncatesDeterministically) {
  SpaceSavingLines a(3), b(3);
  a.add(1, 10);
  a.add(2, 5);
  b.add(1, 7);
  b.add(3, 6);
  b.add(4, 1);
  a.merge(b);
  const auto entries = a.entries_sorted();
  ASSERT_EQ(entries.size(), 3U);
  EXPECT_EQ(entries[0].key, 1U);
  EXPECT_EQ(entries[0].count, 17U);
  EXPECT_EQ(entries[1].key, 3U);
  EXPECT_EQ(entries[1].count, 6U);
  EXPECT_EQ(entries[2].key, 2U);
  EXPECT_EQ(entries[2].count, 5U);
  EXPECT_EQ(a.evictions(), 1U);  // key 4 truncated
}

// ---------------------------------------------------------------------------
// Accountant: exact vs sketch on small meshes

struct MeshCase {
  std::vector<std::int64_t> sides;
  bool torus;
};

// Streams `packets` identical random demands through both accounting
// modes (sequentially: pool of 0 workers runs inline) and returns the
// pair. The sketch gets a generous budget so the (eps, delta) bound is
// loose enough to hold deterministically for the fixed hash seed.
struct ModePair {
  std::unique_ptr<LoadAccountant> exact;
  std::unique_ptr<LoadAccountant> sketch;
};

ModePair account_both_modes(const Mesh& mesh, std::size_t packets,
                            SketchConfig config) {
  ModePair out;
  out.exact = LoadAccountant::create(mesh, AccountingMode::kExact);
  out.sketch = LoadAccountant::create(mesh, AccountingMode::kSketch, config);
  const auto router = dim_order_router(mesh);
  ThreadPool pool(0);
  const DemandSource source = DemandSource::random_pairs(mesh, packets, 7);
  StreamAccountOptions options;
  options.seed = 5;
  route_and_account(*router, source, pool, options, *out.exact);
  route_and_account(*router, source, pool, options, *out.sketch);
  return out;
}

TEST(SketchAccountant, BoundsExactLoadsOnSmallMeshes) {
  const std::vector<MeshCase> cases = {
      {{8, 8}, false}, {{8, 8}, true},  {{9, 7}, false},
      {{4, 4, 4}, false}, {{4, 4, 4}, true}, {{2, 8}, true}, {{16}, false},
  };
  for (const MeshCase& c : cases) {
    const Mesh mesh(c.sides, c.torus);
    SketchConfig config;
    config.sketch_bytes = std::size_t{1} << 20;
    config.top_lines = 256;  // >= total lines: the tracker is lossless
    const ModePair both = account_both_modes(mesh, 400, config);
    SCOPED_TRACE(mesh.describe());

    EXPECT_EQ(both.sketch->total_edge_charges(),
              both.exact->total_edge_charges());
    const double bound = both.sketch->error_bound();
    EXPECT_GT(bound, 0.0);
    EXPECT_LT(both.sketch->failure_probability(), 0.1);
    for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
      const std::uint64_t truth = both.exact->estimate_load(e);
      const std::uint64_t est = both.sketch->estimate_load(e);
      EXPECT_GE(est, truth) << "edge " << e;
      EXPECT_LE(static_cast<double>(est),
                static_cast<double>(truth) + bound)
          << "edge " << e;
    }
    EXPECT_GE(both.sketch->max_load(), both.exact->max_load());
    EXPECT_LE(static_cast<double>(both.sketch->max_load()),
              static_cast<double>(both.exact->max_load()) + bound);
    // Pointwise domination carries to quantiles.
    for (const double q : {0.5, 0.9, 0.99}) {
      EXPECT_GE(both.sketch->load_quantile(q), both.exact->load_quantile(q));
    }
  }
}

TEST(SketchAccountant, PathAndSegmentChargesAgree) {
  // add_path (hop walk) and add_segments (dyadic ranges) must charge the
  // same edges: route each demand once, feed the SegmentPath to one
  // accountant and the expanded Path to another.
  for (const bool torus : {false, true}) {
    const Mesh mesh({8, 8}, torus);
    SketchConfig config;
    config.top_lines = 64;
    auto by_segments =
        LoadAccountant::create(mesh, AccountingMode::kSketch, config);
    auto by_paths =
        LoadAccountant::create(mesh, AccountingMode::kSketch, config);
    const auto router = dim_order_router(mesh);
    Rng rng(11);
    for (const auto& [s, t] : testing::sample_pairs(mesh, 200, 3)) {
      const SegmentPath sp = router->route_segments(s, t, rng);
      by_segments->add_segments(sp);
      by_paths->add_path(path_from_segments(mesh, sp));
    }
    SCOPED_TRACE(mesh.describe());
    EXPECT_EQ(by_segments->total_edge_charges(), by_paths->total_edge_charges());
    for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
      EXPECT_EQ(by_segments->estimate_load(e), by_paths->estimate_load(e))
          << "edge " << e;
    }
    EXPECT_EQ(by_segments->max_load(), by_paths->max_load());
  }
}

// ---------------------------------------------------------------------------
// Determinism: thread counts and fold orders

std::vector<std::uint64_t> sketch_fingerprint(const LoadAccountant& a) {
  std::vector<std::uint64_t> fp;
  const Mesh& mesh = a.mesh();
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    fp.push_back(a.estimate_load(e));
  }
  fp.push_back(a.max_load());
  fp.push_back(a.total_edge_charges());
  fp.push_back(static_cast<std::uint64_t>(a.load_quantile(0.5)));
  fp.push_back(static_cast<std::uint64_t>(a.load_quantile(0.99)));
  return fp;
}

TEST(SketchAccountant, BitIdenticalAcrossThreadCounts) {
  const Mesh mesh({16, 16});
  const auto router = dim_order_router(mesh);
  SketchConfig config;
  config.block_size = 128;  // many blocks: exercises out-of-order folds
  const DemandSource source = DemandSource::random_pairs(mesh, 3000, 21);

  std::vector<std::vector<std::uint64_t>> prints;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    auto accountant =
        LoadAccountant::create(mesh, AccountingMode::kSketch, config);
    ThreadPool pool(threads);
    StreamAccountOptions options;
    options.seed = 9;
    const StreamAccountResult res =
        route_and_account(*router, source, pool, options, *accountant);
    EXPECT_EQ(res.packets, 3000U);
    EXPECT_EQ(res.blocks, (3000U + 127U) / 128U);
    prints.push_back(sketch_fingerprint(*accountant));
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(SketchAccountant, FoldOrderIsBlockIndexOrder) {
  const Mesh mesh({12, 12});
  const auto router = dim_order_router(mesh);
  SketchConfig config;
  config.top_lines = 4;  // tiny: truncation makes order matter if mishandled

  // Four blocks of routed paths, each in its own shard.
  std::vector<std::unique_ptr<LoadAccountant>> shards;
  auto sequential =
      LoadAccountant::create(mesh, AccountingMode::kSketch, config);
  for (std::size_t block = 0; block < 4; ++block) {
    auto shard = sequential->clone_empty();
    Rng rng(100 + block);
    for (const auto& [s, t] :
         testing::sample_pairs(mesh, 50, 200 + block)) {
      shard->add_segments(router->route_segments(s, t, rng));
    }
    shards.push_back(std::move(shard));
  }
  for (std::size_t block = 0; block < 4; ++block) {
    sequential->fold_block(block, *shards[block]);
  }
  const auto expected = sketch_fingerprint(*sequential);

  for (const auto& order : std::vector<std::vector<std::size_t>>{
           {3, 1, 0, 2}, {1, 0, 3, 2}, {3, 2, 1, 0}}) {
    auto folded = LoadAccountant::create(mesh, AccountingMode::kSketch, config);
    for (const std::size_t block : order) {
      folded->fold_block(block, *shards[block]);
    }
    EXPECT_EQ(sketch_fingerprint(*folded), expected);
  }
}

TEST(SketchAccountant, MergeOfDisjointShardsMatchesSequential) {
  // merge() (the order-insensitive path) must equal sequential ingestion
  // when the heavy-line tracker never truncates.
  const Mesh mesh({10, 10});
  const auto router = dim_order_router(mesh);
  SketchConfig config;
  config.top_lines = 64;  // >= lines: no truncation, merge order is moot
  auto whole = LoadAccountant::create(mesh, AccountingMode::kSketch, config);
  auto left = whole->clone_empty();
  auto right = whole->clone_empty();
  Rng rng_whole(5), rng_parts(5);
  const auto pairs = testing::sample_pairs(mesh, 120, 17);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const SegmentPath sp =
        router->route_segments(pairs[i].first, pairs[i].second, rng_whole);
    whole->add_segments(sp);
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const SegmentPath sp =
        router->route_segments(pairs[i].first, pairs[i].second, rng_parts);
    (i < pairs.size() / 2 ? left : right)->add_segments(sp);
  }
  auto merged_lr = left->clone_empty();
  merged_lr->merge(*left);
  merged_lr->merge(*right);
  auto merged_rl = left->clone_empty();
  merged_rl->merge(*right);
  merged_rl->merge(*left);
  // Conservative-update cells depend on grouping, so the merged tables
  // need not equal the sequential one cell-for-cell -- but estimates stay
  // overestimates, merge order cannot matter, and totals are exact.
  EXPECT_EQ(sketch_fingerprint(*merged_lr), sketch_fingerprint(*merged_rl));
  EXPECT_EQ(merged_lr->total_edge_charges(), whole->total_edge_charges());
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    EXPECT_GE(merged_lr->estimate_load(e) + whole->error_bound(),
              whole->estimate_load(e));
  }
}

TEST(SketchAccountant, ClearResetsToEmpty) {
  const Mesh mesh({8, 8});
  auto accountant = LoadAccountant::create(mesh, AccountingMode::kSketch);
  const auto router = dim_order_router(mesh);
  Rng rng(3);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 40, 4)) {
    accountant->add_segments(router->route_segments(s, t, rng));
  }
  EXPECT_GT(accountant->max_load(), 0U);
  accountant->clear();
  EXPECT_EQ(accountant->max_load(), 0U);
  EXPECT_EQ(accountant->total_edge_charges(), 0U);
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    EXPECT_EQ(accountant->estimate_load(e), 0U);
  }
}

// ---------------------------------------------------------------------------
// Streaming driver

TEST(SketchStream, DemandSourceIsAPureFunctionOfIndex) {
  const Mesh mesh({16, 16});
  const DemandSource source = DemandSource::random_pairs(mesh, 1000, 77);
  ASSERT_EQ(source.size(), 1000U);
  for (std::size_t i = 0; i < source.size(); i += 97) {
    const Demand first = source.demand(i);
    const Demand again = source.demand(i);
    EXPECT_EQ(first.src, again.src);
    EXPECT_EQ(first.dst, again.dst);
    EXPECT_LT(first.src, mesh.num_nodes());
    EXPECT_LT(first.dst, mesh.num_nodes());
  }
}

TEST(SketchStream, FromSpanBorrowsDemands) {
  const std::vector<Demand> demands = {{0, 5}, {9, 2}, {3, 3}};
  const DemandSource source = DemandSource::from_span(demands);
  ASSERT_EQ(source.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_EQ(source.demand(i).src, demands[i].src);
    EXPECT_EQ(source.demand(i).dst, demands[i].dst);
  }
}

TEST(SketchStream, ExactModeMatchesMaterializedRouting) {
  // Streaming with exact accounting must equal routing the same demands
  // by hand with the same per-packet rng streams.
  const Mesh mesh({16, 16});
  const auto router = dim_order_router(mesh);
  const DemandSource source = DemandSource::random_pairs(mesh, 500, 13);
  auto streamed = LoadAccountant::create(mesh, AccountingMode::kExact);
  ThreadPool pool(4);
  StreamAccountOptions options;
  options.seed = 31;
  options.block_size = 64;
  route_and_account(*router, source, pool, options, *streamed);

  auto manual = LoadAccountant::create(mesh, AccountingMode::kExact);
  for (std::size_t i = 0; i < source.size(); ++i) {
    Rng rng = packet_rng(options.seed, i);
    const Demand d = source.demand(i);
    manual->add_segments(router->route_segments(d.src, d.dst, rng));
  }
  EXPECT_EQ(streamed->total_edge_charges(), manual->total_edge_charges());
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    EXPECT_EQ(streamed->estimate_load(e), manual->estimate_load(e));
  }
}

TEST(SketchStream, HugeMeshSketchFitsWhereExactCannot) {
  // A 1024^3 torus-free mesh has ~3.2e9 edges; the exact array alone
  // would need ~12.8 GB. The sketch routes and accounts a stream inside
  // a 4 MiB budget.
  const Mesh mesh = Mesh::cube(3, 1024);
  EXPECT_GT(LoadAccountant::exact_bytes(mesh),
            std::size_t{10} * 1024 * 1024 * 1024);
  SketchConfig config;
  config.sketch_bytes = std::size_t{4} << 20;
  auto accountant =
      LoadAccountant::create(mesh, AccountingMode::kSketch, config);
  EXPECT_LE(accountant->memory_bytes(), config.sketch_bytes);
  const auto router = dim_order_router(mesh);
  ThreadPool pool(4);
  StreamAccountOptions options;
  options.seed = 1;
  const StreamAccountResult res = route_and_account(
      *router, DemandSource::random_pairs(mesh, 20000, 2), pool, options,
      *accountant);
  EXPECT_EQ(res.packets, 20000U);
  EXPECT_GT(accountant->total_edge_charges(), 0U);
  EXPECT_GT(accountant->max_load(), 0U);
  EXPECT_LE(accountant->memory_bytes(), config.sketch_bytes);
}

// ---------------------------------------------------------------------------
// Pipeline integration

TEST(SketchEvaluate, RouteAndMeasureParallelSketchBoundsExact) {
  const Mesh mesh({16, 16});
  const auto router = dim_order_router(mesh);
  RoutingProblem problem;
  for (const auto& [s, t] : testing::sample_pairs(mesh, 300, 8)) {
    problem.demands.push_back({s, t});
  }
  ThreadPool pool(4);
  const RouteSetMetrics exact = route_and_measure_parallel(
      mesh, *router, problem, 1.0, pool, 3, AccountingOptions{});
  AccountingOptions sketch;
  sketch.mode = AccountingMode::kSketch;
  const RouteSetMetrics sketched =
      route_and_measure_parallel(mesh, *router, problem, 1.0, pool, 3, sketch);
  EXPECT_EQ(exact.accounting, AccountingMode::kExact);
  EXPECT_EQ(sketched.accounting, AccountingMode::kSketch);
  EXPECT_GT(sketched.accounting_error_bound, 0.0);
  EXPECT_EQ(exact.accounting_bytes, LoadAccountant::exact_bytes(mesh));
  EXPECT_LE(sketched.accounting_bytes, AccountingOptions{}.sketch.sketch_bytes);
  EXPECT_GE(sketched.congestion, exact.congestion);
  EXPECT_LE(static_cast<double>(sketched.congestion),
            static_cast<double>(exact.congestion) +
                sketched.accounting_error_bound);
  // Routing quality is accounting-independent.
  EXPECT_EQ(sketched.dilation, exact.dilation);
  EXPECT_DOUBLE_EQ(sketched.max_stretch, exact.max_stretch);
}

TEST(SketchEvaluate, TrialsRunUnderSketchAccounting) {
  const Mesh mesh({8, 8});
  const auto router = dim_order_router(mesh);
  RoutingProblem problem;
  for (const auto& [s, t] : testing::sample_pairs(mesh, 64, 5)) {
    problem.demands.push_back({s, t});
  }
  ThreadPool pool(2);
  const TrialSummary exact =
      evaluate_trials(mesh, *router, problem, 3, 42, &pool);
  AccountingOptions sketch;
  sketch.mode = AccountingMode::kSketch;
  const TrialSummary sketched =
      evaluate_trials(mesh, *router, problem, 3, 42, &pool, sketch);
  EXPECT_EQ(sketched.congestion.count(), 3U);
  // Each trial's sketch congestion upper-bounds the exact one.
  EXPECT_GE(sketched.congestion.mean(), exact.congestion.mean());
  // Stretch and dilation do not depend on the accounting mode.
  EXPECT_DOUBLE_EQ(sketched.dilation.mean(), exact.dilation.mean());
  // The expected-load statistic needs O(E) state: sketch mode skips it.
  EXPECT_EQ(sketched.max_expected_edge_load, 0.0);
  EXPECT_GT(exact.max_expected_edge_load, 0.0);
}

TEST(SketchAccountant, ModeNamesRoundTrip) {
  EXPECT_STREQ(accounting_mode_name(AccountingMode::kExact), "exact");
  EXPECT_STREQ(accounting_mode_name(AccountingMode::kSketch), "sketch");
  EXPECT_EQ(accounting_mode_from_name("exact"), AccountingMode::kExact);
  EXPECT_EQ(accounting_mode_from_name("sketch"), AccountingMode::kSketch);
  EXPECT_FALSE(accounting_mode_from_name("approximate").has_value());
}

}  // namespace
}  // namespace oblivious
