#include <gtest/gtest.h>

#include "util/flags.hpp"

namespace oblivious {
namespace {

Flags parse(std::initializer_list<const char*> args,
            const std::vector<std::string>& known = {}) {
  std::vector<const char*> argv(args);
  return Flags::parse(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(Flags, ValueStyles) {
  const Flags f = parse({"prog", "--name", "value", "--other=thing"});
  EXPECT_EQ(f.get("name", ""), "value");
  EXPECT_EQ(f.get("other", ""), "thing");
  EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, BooleanFlag) {
  const Flags f = parse({"prog", "--verbose", "--x=false"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("x", true));
  EXPECT_FALSE(f.get_bool("absent"));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, IntAndDouble) {
  const Flags f = parse({"prog", "--count", "42", "--rate=0.25", "--neg", "-7"});
  EXPECT_EQ(f.get_int("count", 0), 42);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.25);
  EXPECT_EQ(f.get_int("absent", 9), 9);
  // "-7" starts with '-' but not "--": it is consumed as the value.
  EXPECT_EQ(f.get_int("neg", 0), -7);
}

TEST(Flags, Positional) {
  const Flags f = parse({"prog", "input.txt", "--k", "3", "more"});
  ASSERT_EQ(f.positional().size(), 2U);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, KnownListRejectsUnknown) {
  EXPECT_THROW(parse({"prog", "--bogus", "1"}, {"good"}), std::invalid_argument);
  EXPECT_NO_THROW(parse({"prog", "--good", "1"}, {"good"}));
}

TEST(Flags, MalformedValuesThrowOnAccess) {
  const Flags f = parse({"prog", "--n", "abc", "--b", "maybe"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(f.get_double("n", 0.0), std::invalid_argument);
  EXPECT_THROW(f.get_bool("b"), std::invalid_argument);
}

TEST(Flags, HasDetectsPresence) {
  const Flags f = parse({"prog", "--present"});
  EXPECT_TRUE(f.has("present"));
  EXPECT_FALSE(f.has("absent"));
}

TEST(Flags, FlagFollowedByFlagIsBoolean) {
  const Flags f = parse({"prog", "--a", "--b", "7"});
  EXPECT_TRUE(f.get_bool("a"));
  EXPECT_EQ(f.get_int("b", 0), 7);
}

}  // namespace
}  // namespace oblivious
