#include <gtest/gtest.h>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"

namespace oblivious {
namespace {

Path make_path(std::initializer_list<NodeId> nodes) {
  Path p;
  p.nodes.assign(nodes);
  return p;
}

TEST(Path, LengthAndEndpoints) {
  const Path p = make_path({0, 1, 2, 3});
  EXPECT_EQ(p.length(), 3);
  EXPECT_EQ(p.source(), 0);
  EXPECT_EQ(p.destination(), 3);
}

TEST(Path, SingleNodePathHasZeroLength) {
  const Path p = make_path({5});
  EXPECT_EQ(p.length(), 0);
  EXPECT_EQ(p.source(), p.destination());
}

TEST(Path, ValidityChecksAdjacency) {
  const Mesh m({4, 4});
  // (0,0) -> (0,1) -> (1,1) is valid; skipping a node is not.
  EXPECT_TRUE(is_valid_path(m, make_path({0, 1, 5})));
  EXPECT_FALSE(is_valid_path(m, make_path({0, 2})));
  EXPECT_FALSE(is_valid_path(m, make_path({0, 0})));
  EXPECT_FALSE(is_valid_path(m, make_path({})));
  EXPECT_FALSE(is_valid_path(m, make_path({0, 16})));
  EXPECT_TRUE(is_valid_path(m, make_path({7})));
}

TEST(Path, ValidityOnTorusWrap) {
  const Mesh t({4, 4}, true);
  const NodeId a = t.node_id(Coord{0, 0});
  const NodeId b = t.node_id(Coord{3, 0});
  EXPECT_TRUE(is_valid_path(t, make_path({a, b})));
  const Mesh m({4, 4});
  EXPECT_FALSE(is_valid_path(m, make_path({a, b})));
}

TEST(Path, SimplePathDetection) {
  EXPECT_TRUE(is_simple_path(make_path({0, 1, 2})));
  EXPECT_FALSE(is_simple_path(make_path({0, 1, 0})));
  EXPECT_TRUE(is_simple_path(make_path({3})));
}

TEST(Path, StretchOfShortestPathIsOne) {
  const Mesh m({8, 8});
  const Path p = make_path({m.node_id(Coord{0, 0}), m.node_id(Coord{0, 1}),
                            m.node_id(Coord{0, 2})});
  EXPECT_DOUBLE_EQ(path_stretch(m, p), 1.0);
}

TEST(Path, StretchOfDetour) {
  const Mesh m({8, 8});
  // (0,0) -> (1,0) -> (1,1) -> (0,1): length 3, distance 1.
  const Path p = make_path({m.node_id(Coord{0, 0}), m.node_id(Coord{1, 0}),
                            m.node_id(Coord{1, 1}), m.node_id(Coord{0, 1})});
  EXPECT_DOUBLE_EQ(path_stretch(m, p), 3.0);
}

TEST(Path, StretchOfTrivialPath) {
  const Mesh m({8, 8});
  EXPECT_DOUBLE_EQ(path_stretch(m, make_path({0})), 1.0);
}

TEST(Path, RemoveCyclesErasesLoop) {
  const Mesh m({4, 4});
  // 0 -> 1 -> 5 -> 1 -> 2: the 1 -> 5 -> 1 loop must go.
  Path p = make_path({0, 1, 5, 1, 2});
  p = remove_cycles(std::move(p));
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(is_valid_path(m, p));
  EXPECT_TRUE(is_simple_path(p));
}

TEST(Path, RemoveCyclesHandlesNestedLoops) {
  Path p = make_path({0, 1, 2, 3, 2, 1, 4});
  p = remove_cycles(std::move(p));
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{0, 1, 4}));
}

TEST(Path, RemoveCyclesNoOpOnSimplePath) {
  Path p = make_path({0, 1, 2, 6});
  const Path q = remove_cycles(p);
  EXPECT_EQ(q.nodes, p.nodes);
}

TEST(Path, RemoveCyclesPreservesEndpoints) {
  Path p = make_path({7, 6, 7, 6, 7, 11});
  p = remove_cycles(std::move(p));
  EXPECT_EQ(p.source(), 7);
  EXPECT_EQ(p.destination(), 11);
  EXPECT_TRUE(is_simple_path(p));
}

TEST(Path, RemoveCyclesFullCircleCollapsesToNode) {
  Path p = make_path({4, 5, 6, 5, 4});
  p = remove_cycles(std::move(p));
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{4}));
}

}  // namespace
}  // namespace oblivious
