// NEGATIVE fixture: acquiring two mutexes against their declared
// OBLV_ACQUIRED_AFTER order (the static deadlock gate, enforced by
// -Wthread-safety-beta). The ThreadSafetyCompileGate harness asserts
// this file FAILS to compile with a -Wthread-safety diagnostic.
#include "util/thread_annotations.hpp"

namespace {

class OrderedPair {
 public:
  // VIOLATION: tenant_mu_ is declared acquired-after global_mu_, but
  // this path takes tenant_mu_ first -- the inversion that deadlocks
  // against a thread locking in the declared order.
  void locked_backwards() OBLV_EXCLUDES(global_mu_, tenant_mu_) {
    oblv::MutexLock tenant(tenant_mu_);
    oblv::MutexLock global(global_mu_);
    ++sequenced_;
  }

 private:
  oblv::Mutex global_mu_;
  oblv::Mutex tenant_mu_ OBLV_ACQUIRED_AFTER(global_mu_);
  long sequenced_ OBLV_GUARDED_BY(tenant_mu_) = 0;
};

}  // namespace

int main() {
  OrderedPair pair;
  pair.locked_backwards();
  return 0;
}
