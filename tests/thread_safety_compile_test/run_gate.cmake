# ThreadSafetyCompileGate: proves the lock-discipline gate is live.
#
# A static gate that silently stopped firing is worse than no gate, so
# this harness does not trust the flags -- it demonstrates them: the
# positive control must compile, and each violation fixture must FAIL
# with a -Wthread-safety diagnostic (failing for any other reason --
# syntax error, missing header -- is reported as a harness bug, not a
# pass).
#
# Script-mode CMake (ctest runs `cmake -P run_gate.cmake`), so no
# try_compile: each fixture is one -fsyntax-only compiler invocation.
#
# Required -D definitions: CXX (clang++ path), REPO_SRC (<repo>/src),
# FIXTURES (this directory).

foreach(var CXX REPO_SRC FIXTURES)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_gate.cmake needs -D${var}=...")
  endif()
endforeach()

set(TSA_FLAGS
  -std=c++20
  -fsyntax-only
  "-I${REPO_SRC}"
  -Wthread-safety
  -Wthread-safety-beta
  -Werror=thread-safety-analysis
  -Werror=thread-safety-beta)

function(expect_compiles fixture)
  execute_process(
    COMMAND "${CXX}" ${TSA_FLAGS} "${FIXTURES}/${fixture}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${fixture} must compile cleanly under the thread-safety flags but "
      "failed (rc=${rc}):\n${out}${err}")
  endif()
  message(STATUS "${fixture}: compiles (positive control)")
endfunction()

function(expect_rejected fixture)
  execute_process(
    COMMAND "${CXX}" ${TSA_FLAGS} "${FIXTURES}/${fixture}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "${fixture} compiled, but it violates the lock discipline -- the "
      "thread-safety gate is DEAD (flags dropped, or the annotations "
      "header no longer expands the attributes under clang)")
  endif()
  # Must fail for the right reason: a thread-safety diagnostic, not a
  # stray syntax error that would mask a dead gate.
  if(NOT "${out}${err}" MATCHES "-Wthread-safety")
    message(FATAL_ERROR
      "${fixture} failed to compile, but not with a -Wthread-safety "
      "diagnostic -- harness bug:\n${out}${err}")
  endif()
  message(STATUS "${fixture}: rejected by the analysis (gate live)")
endfunction()

expect_compiles(positive_control.cpp)
expect_rejected(unguarded_field.cpp)
expect_rejected(missing_requires.cpp)
expect_rejected(lock_order_inversion.cpp)

message(STATUS "thread-safety compile gate: all fixtures behaved")
