// Positive control for the ThreadSafetyCompileGate harness: correct use
// of every wrapper the violation fixtures misuse. This file MUST compile
// cleanly under -Wthread-safety -Wthread-safety-beta -Werror=...; if it
// does not, the gate is broken (or the annotations header regressed),
// not the code under test.
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(long amount) OBLV_EXCLUDES(mu_) {
    oblv::MutexLock lock(mu_);
    deposit_locked(amount);
  }

  long balance() const OBLV_EXCLUDES(mu_) {
    oblv::MutexLock lock(mu_);
    return balance_;
  }

  long wait_nonzero() OBLV_EXCLUDES(mu_) {
    oblv::MutexLock lock(mu_);
    while (balance_ == 0) funded_.wait(mu_);
    return balance_;
  }

 private:
  void deposit_locked(long amount) OBLV_REQUIRES(mu_) {
    balance_ += amount;
    if (balance_ != 0) funded_.notify_all();
  }

  mutable oblv::Mutex mu_;
  oblv::CondVar funded_;
  long balance_ OBLV_GUARDED_BY(mu_) = 0;
};

class OrderedPair {
 public:
  void locked_in_order() OBLV_EXCLUDES(global_mu_, tenant_mu_) {
    oblv::MutexLock global(global_mu_);
    oblv::MutexLock tenant(tenant_mu_);
    ++sequenced_;
  }

 private:
  oblv::Mutex global_mu_;
  oblv::Mutex tenant_mu_ OBLV_ACQUIRED_AFTER(global_mu_);
  long sequenced_ OBLV_GUARDED_BY(tenant_mu_) = 0;
};

class SharedState {
 public:
  long read() const OBLV_EXCLUDES(mu_) {
    oblv::ReaderMutexLock lock(mu_);
    return value_;
  }

  void write(long v) OBLV_EXCLUDES(mu_) {
    oblv::WriterMutexLock lock(mu_);
    value_ = v;
  }

 private:
  mutable oblv::SharedMutex mu_;
  long value_ OBLV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  OrderedPair pair;
  pair.locked_in_order();
  SharedState shared;
  shared.write(2);
  return account.balance() + shared.read() == 3 ? 0 : 1;
}
