// NEGATIVE fixture: reading a GUARDED_BY field without its lock. The
// ThreadSafetyCompileGate harness asserts this file FAILS to compile
// with a -Wthread-safety diagnostic; if it ever compiles, the gate is
// dead and the build must say so.
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(long amount) OBLV_EXCLUDES(mu_) {
    oblv::MutexLock lock(mu_);
    balance_ += amount;
  }

  // VIOLATION: unguarded read of balance_ (no lock held).
  long balance_unlocked() const { return balance_; }

 private:
  mutable oblv::Mutex mu_;
  long balance_ OBLV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance_unlocked() == 1 ? 0 : 1;
}
