// NEGATIVE fixture: calling an OBLV_REQUIRES function without holding
// the capability. The ThreadSafetyCompileGate harness asserts this file
// FAILS to compile with a -Wthread-safety diagnostic.
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  // VIOLATION: deposit_locked requires mu_, but no lock is taken.
  void deposit(long amount) { deposit_locked(amount); }

 private:
  void deposit_locked(long amount) OBLV_REQUIRES(mu_) { balance_ += amount; }

  mutable oblv::Mutex mu_;
  long balance_ OBLV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return 0;
}
