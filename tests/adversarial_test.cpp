#include <gtest/gtest.h>

#include "analysis/evaluate.hpp"
#include "routing/registry.hpp"
#include "workloads/adversarial.hpp"

namespace oblivious {
namespace {

TEST(PiA, ConstructionAgainstEcubeIsExact) {
  // Section 5.1 against the deterministic dimension-order algorithm: every
  // kept packet definitely crosses the worst edge, so routing Pi_A with
  // e-cube yields congestion exactly |Pi_A|.
  const Mesh m({32, 32});
  const auto ecube = make_router(Algorithm::kEcube, m);
  Rng rng(1);
  const AdversarialInstance inst = build_pi_a(m, *ecube, /*l=*/8, rng);
  EXPECT_EQ(inst.base_size, static_cast<std::size_t>(m.num_nodes()));
  EXPECT_EQ(inst.packet_distance, 8);
  EXPECT_GE(inst.problem.size(), 1U);
  EXPECT_EQ(static_cast<std::int64_t>(inst.problem.size()), inst.modal_load);

  const RouteSetMetrics metrics =
      evaluate_with_bound(m, *ecube, inst.problem, 1.0);
  EXPECT_EQ(metrics.congestion, static_cast<std::int64_t>(inst.problem.size()));
}

TEST(PiA, DeterministicCongestionScalesWithL) {
  // Lemma 5.1 with kappa = 1: congestion >= l / d on Pi_A.
  const Mesh m({32, 32});
  const auto ecube = make_router(Algorithm::kEcube, m);
  std::int64_t previous = 0;
  for (const std::int64_t l : {2, 4, 8, 16}) {
    Rng rng(3);
    const AdversarialInstance inst = build_pi_a(m, *ecube, l, rng);
    const auto congestion = static_cast<std::int64_t>(inst.problem.size());
    EXPECT_GE(congestion, l / 2) << "l=" << l;
    EXPECT_GE(congestion, previous);
    previous = congestion;
  }
}

TEST(PiA, AllKeptPacketsHaveDistanceL) {
  const Mesh m({16, 16});
  const auto ecube = make_router(Algorithm::kEcube, m);
  Rng rng(5);
  const AdversarialInstance inst = build_pi_a(m, *ecube, 4, rng);
  for (const Demand& d : inst.problem.demands) {
    EXPECT_EQ(m.distance(d.src, d.dst), 4);
  }
  EXPECT_TRUE(inst.problem.is_partial_permutation(m));
}

TEST(PiA, HierarchicalRouterEscapesTheTrap) {
  // The same Pi_A built against e-cube is easy for the randomized
  // hierarchical algorithm: its congestion stays near the lower bound
  // while e-cube pays |Pi_A|.
  const Mesh m({32, 32});
  const auto ecube = make_router(Algorithm::kEcube, m);
  Rng rng(7);
  const AdversarialInstance inst = build_pi_a(m, *ecube, 16, rng);
  ASSERT_GE(inst.problem.size(), 8U);

  const RouteSetMetrics trapped =
      evaluate_with_bound(m, *ecube, inst.problem, 1.0);
  const auto hier = make_router(Algorithm::kHierarchical2d, m);
  const RouteSetMetrics escaped =
      evaluate_with_bound(m, *hier, inst.problem, 1.0);
  EXPECT_LT(2 * escaped.congestion, trapped.congestion);
}

TEST(PiA, SamplingModeWorksOnRandomizedAlgorithms) {
  // For a randomized algorithm the modal path is estimated by sampling;
  // the construction must still produce a coherent instance.
  const Mesh m({16, 16});
  const auto rdo = make_router(Algorithm::kRandomDimOrder, m);
  Rng rng(9);
  const AdversarialInstance inst =
      build_pi_a(m, *rdo, 4, rng, /*samples_per_packet=*/5);
  EXPECT_GE(inst.problem.size(), 1U);
  EXPECT_NE(inst.worst_edge, kInvalidEdge);
  EXPECT_GE(inst.modal_load, 1);
}

}  // namespace
}  // namespace oblivious
