#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace oblivious {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0U);  // no workers: tasks run inline
  int value = 0;
  pool.submit([&value] { value = 7; });
  EXPECT_EQ(value, 7);  // already done, no wait needed
  pool.wait_idle();
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] {
      // Small busy work.
      volatile int x = 0;
      for (int j = 0; j < 10000; ++j) x = x + j;
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_chunks(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallback) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  parallel_for_chunks(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_chunks(pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::atomic<std::int64_t> sum{0};
  parallel_for_chunks(pool, kN, [&](std::size_t begin, std::size_t end) {
    std::int64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += static_cast<std::int64_t>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kN) * (kN - 1) / 2);
}

}  // namespace
}  // namespace oblivious
