#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mesh/mesh.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0U);  // no workers: tasks run inline
  int value = 0;
  pool.submit([&value] { value = 7; });
  EXPECT_EQ(value, 7);  // already done, no wait needed
  pool.wait_idle();
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] {
      // Small busy work.
      volatile int x = 0;
      for (int j = 0; j < 10000; ++j) x = x + j;
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_chunks(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallback) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  parallel_for_chunks(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_chunks(pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// The batch driver claims chunks through an atomic cursor, so the claim
// order is racy by design -- but the per-packet rng streams depend only on
// (seed, index), so the output must be bit-identical for every thread
// count and chunk size, and identical to a plain sequential loop.
TEST(ParallelRouteBatch, BitIdenticalAcrossThreadCountsAndChunks) {
  const Mesh mesh = Mesh::cube(2, 16);
  Rng wl_rng(3);
  const RoutingProblem problem = random_permutation(mesh, wl_rng);
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  RouteBatchOptions options;
  options.seed = 21;

  // Sequential reference with the same counter-derived streams.
  std::vector<SegmentPath> reference(problem.size());
  RouteScratch scratch;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    Rng rng = packet_rng(options.seed, i);
    router->route_segments_into(problem.demands[i].src, problem.demands[i].dst,
                                rng, scratch, reference[i]);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<SegmentPath> out;
    route_batch(*router, std::span<const Demand>(problem.demands), pool,
                options, out);
    EXPECT_EQ(out, reference) << threads << " threads";
  }
  // Pathological chunk sizes: one packet per claim, and one giant chunk.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{100000}}) {
    ThreadPool pool(4);
    RouteBatchOptions opts = options;
    opts.chunk_size = chunk;
    std::vector<SegmentPath> out;
    route_batch(*router, std::span<const Demand>(problem.demands), pool, opts,
                out);
    EXPECT_EQ(out, reference) << "chunk " << chunk;
  }
}

// The SoA engine's determinism contract (DESIGN.md section 10): for every
// supported algorithm, thread count, and chunk size -- including odd
// chunks that split lane groups mid-stream -- the grouped, vectorized
// engine emits segment output bit-identical to the forced-scalar loop.
// Unsupported routers (Staircase) must silently fall back to scalar under
// kSoa, so they are kept in the algorithm sweep on purpose. The pool(1)
// runs route inline on this thread, so one thread-local engine serves
// every mesh shape and algorithm in turn: stale columns from a 3d torus
// batch must not leak into the next 2d mesh batch.
TEST(ParallelRouteBatch, SoaEngineBitIdenticalToScalar) {
  struct MeshCase {
    int dim;
    std::int64_t side;
    bool torus;
  };
  for (const MeshCase& mc : {MeshCase{2, 16, false}, MeshCase{2, 16, true},
                             MeshCase{3, 8, false}, MeshCase{3, 8, true}}) {
    const Mesh mesh = Mesh::cube(mc.dim, mc.side, mc.torus);
    Rng wl_rng(9);
    RoutingProblem problem = random_permutation(mesh, wl_rng);
    // A few self demands: the engine must reproduce the scalar early-out.
    problem.demands.push_back({5, 5});
    problem.demands.push_back({0, 0});
    for (const Algorithm algo : algorithms_for(mesh)) {
      const auto router = make_router(algo, mesh);
      RouteBatchOptions scalar_opts;
      scalar_opts.seed = 33;
      scalar_opts.engine = BatchEngine::kScalar;
      ThreadPool ref_pool(1);
      std::vector<SegmentPath> reference;
      route_batch(*router, std::span<const Demand>(problem.demands), ref_pool,
                  scalar_opts, reference);

      RouteBatchOptions soa_opts = scalar_opts;
      soa_opts.engine = BatchEngine::kSoa;
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        // Chunk 0 is the engine-tuned default; 37 is an odd prime that
        // fragments every pair group across chunk boundaries and lanes.
        for (const std::size_t chunk : {std::size_t{0}, std::size_t{37}}) {
          ThreadPool pool(threads);
          soa_opts.chunk_size = chunk;
          std::vector<SegmentPath> out;
          route_batch(*router, std::span<const Demand>(problem.demands), pool,
                      soa_opts, out);
          EXPECT_EQ(out, reference)
              << router->name() << " torus=" << mc.torus
              << " threads=" << threads << " chunk=" << chunk;
        }
      }
    }
  }
}

// kAuto must route identically to both forced engines (it only picks the
// inner loop), and switching off demand validation must not change paths.
TEST(ParallelRouteBatch, EngineChoiceAndValidationDoNotChangeOutput) {
  const Mesh mesh = Mesh::cube(2, 16);
  Rng wl_rng(4);
  const RoutingProblem problem = random_permutation(mesh, wl_rng);
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  ThreadPool pool(4);
  RouteBatchOptions options;
  options.seed = 55;
  std::vector<SegmentPath> auto_out;
  route_batch(*router, std::span<const Demand>(problem.demands), pool, options,
              auto_out);
  for (const BatchEngine engine : {BatchEngine::kScalar, BatchEngine::kSoa}) {
    for (const bool validate : {true, false}) {
      RouteBatchOptions opts = options;
      opts.engine = engine;
      opts.validate_demands = validate;
      std::vector<SegmentPath> out;
      route_batch(*router, std::span<const Demand>(problem.demands), pool,
                  opts, out);
      EXPECT_EQ(out, auto_out) << "engine=" << static_cast<int>(engine)
                               << " validate=" << validate;
    }
  }
}

TEST(ParallelRouteBatch, PathsTwinMatchesSegmentForm) {
  const Mesh mesh = Mesh::cube(3, 8);
  const RoutingProblem problem = transpose(mesh);
  const auto router = make_router(Algorithm::kHierarchicalNd, mesh);
  ThreadPool pool(4);
  RouteBatchOptions options;
  options.seed = 77;
  std::vector<Path> node_paths;
  std::vector<SegmentPath> seg_paths;
  route_batch_paths(*router, std::span<const Demand>(problem.demands), pool,
                    options, node_paths);
  route_batch(*router, std::span<const Demand>(problem.demands), pool, options,
              seg_paths);
  ASSERT_EQ(node_paths.size(), seg_paths.size());
  for (std::size_t i = 0; i < node_paths.size(); ++i) {
    EXPECT_EQ(path_from_segments(mesh, seg_paths[i]).nodes,
              node_paths[i].nodes);
  }
}

TEST(ParallelRouteBatch, EmptyBatchAndOutputReuse) {
  const Mesh mesh = Mesh::cube(2, 8);
  const auto router = make_router(Algorithm::kRandomDimOrder, mesh);
  ThreadPool pool(2);
  RouteBatchOptions options;
  std::vector<SegmentPath> out;
  route_batch(*router, std::span<const Demand>(), pool, options, out);
  EXPECT_TRUE(out.empty());
  // Reusing the same output vector across differently-sized batches
  // resizes it to match, old contents notwithstanding.
  const RoutingProblem big = transpose(mesh);
  route_batch(*router, std::span<const Demand>(big.demands), pool, options,
              out);
  EXPECT_EQ(out.size(), big.size());
  const std::vector<Demand> one{big.demands.front()};
  route_batch(*router, std::span<const Demand>(one), pool, options, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().source, one.front().src);
  EXPECT_EQ(out.front().destination(), one.front().dst);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::atomic<std::int64_t> sum{0};
  parallel_for_chunks(pool, kN, [&](std::size_t begin, std::size_t end) {
    std::int64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += static_cast<std::int64_t>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kN) * (kN - 1) / 2);
}

}  // namespace
}  // namespace oblivious
