// Determinism of the parallel segment pipeline: per-packet rng streams are
// derived from (seed, packet index) only, so the selected paths -- and
// every reported metric -- must be byte-identical for any thread count.
// Also pins evaluate_trials to its node-based reference semantics.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/congestion.hpp"
#include "analysis/evaluate.hpp"
#include "analysis/trials.hpp"
#include "core/oblivious_routing.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"
#include "test_support.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

TEST(PipelineDeterminism, SegmentRoutingIdenticalAcrossThreadCounts) {
  const Mesh mesh = Mesh::cube(2, 16);
  const RoutingProblem problem = transpose(mesh);
  for (const Algorithm algo :
       {Algorithm::kRandomDimOrder, Algorithm::kHierarchicalNd}) {
    const auto router = make_router(algo, mesh);
    ThreadPool pool1(1);
    ThreadPool pool2(2);
    ThreadPool pool8(8);
    const auto paths1 =
        route_all_segments_parallel(mesh, *router, problem, pool1, 42);
    const auto paths2 =
        route_all_segments_parallel(mesh, *router, problem, pool2, 42);
    const auto paths8 =
        route_all_segments_parallel(mesh, *router, problem, pool8, 42);
    ASSERT_EQ(paths1.size(), problem.size());
    EXPECT_EQ(paths1, paths2) << router->name();
    EXPECT_EQ(paths1, paths8) << router->name();
  }
}

// The segment pipeline and the node-list pipeline draw the same per-packet
// streams, so they must select the same routes.
TEST(PipelineDeterminism, SegmentPipelineMatchesNodeListPipeline) {
  const Mesh mesh = Mesh::cube(2, 8, /*torus=*/true);
  Rng wl_rng(5);
  const RoutingProblem problem = random_permutation(mesh, wl_rng);
  const auto router = make_router(Algorithm::kHierarchical2d, mesh);
  ThreadPool pool(2);
  const std::vector<Path> node_paths =
      route_all_parallel(mesh, *router, problem, pool, 77);
  const std::vector<SegmentPath> seg_paths =
      route_all_segments_parallel(mesh, *router, problem, pool, 77);
  ASSERT_EQ(node_paths.size(), seg_paths.size());
  for (std::size_t i = 0; i < node_paths.size(); ++i) {
    EXPECT_EQ(path_from_segments(mesh, seg_paths[i]).nodes,
              node_paths[i].nodes);
  }
}

TEST(PipelineDeterminism, RouteAndMeasureMetricsThreadCountInvariant) {
  const Mesh mesh = Mesh::cube(2, 16);
  const RoutingProblem problem = bit_reversal(mesh);
  const auto router = make_router(Algorithm::kHierarchicalNdFrugal, mesh);
  const double bound = best_lower_bound(mesh, problem);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  std::vector<SegmentPath> paths;
  const RouteSetMetrics m1 = route_and_measure_parallel(
      mesh, *router, problem, bound, pool1, 9, &paths);
  const RouteSetMetrics m8 =
      route_and_measure_parallel(mesh, *router, problem, bound, pool8, 9);
  EXPECT_EQ(m1.congestion, m8.congestion);
  EXPECT_EQ(m1.dilation, m8.dilation);
  EXPECT_DOUBLE_EQ(m1.max_stretch, m8.max_stretch);
  EXPECT_DOUBLE_EQ(m1.mean_stretch, m8.mean_stretch);
  // And the one-pass metrics agree with measuring the returned paths.
  const RouteSetMetrics again =
      measure_segment_paths(mesh, problem, paths, bound);
  EXPECT_EQ(again.congestion, m1.congestion);
  EXPECT_EQ(again.dilation, m1.dilation);
  EXPECT_DOUBLE_EQ(again.max_stretch, m1.max_stretch);
  EXPECT_DOUBLE_EQ(again.mean_stretch, m1.mean_stretch);
}

// measure_segment_paths must agree with measure_paths on the same routes.
TEST(PipelineDeterminism, MeasureSegmentPathsMatchesMeasurePaths) {
  const Mesh mesh = Mesh::cube(3, 8);
  const RoutingProblem problem = tornado(mesh);
  const auto router = make_router(Algorithm::kBoundedValiant, mesh);
  RouteAllOptions options;
  options.seed = 13;
  const std::vector<Path> node_paths = route_all(mesh, *router, problem, options);
  const std::vector<SegmentPath> seg_paths =
      route_all_segments(mesh, *router, problem, options);
  const double bound = best_lower_bound(mesh, problem);
  const RouteSetMetrics a = measure_paths(mesh, problem, node_paths, bound);
  const RouteSetMetrics b =
      measure_segment_paths(mesh, problem, seg_paths, bound);
  EXPECT_EQ(a.congestion, b.congestion);
  EXPECT_EQ(a.dilation, b.dilation);
  EXPECT_DOUBLE_EQ(a.max_stretch, b.max_stretch);
  EXPECT_DOUBLE_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.max_distance, b.max_distance);
}

// evaluate_trials now runs on the segment pipeline internally; its numbers
// must still match a hand-written node-based reference loop on the same
// seeds, for every registered algorithm.
TEST(PipelineDeterminism, EvaluateTrialsMatchesNodeBasedReference) {
  const Mesh mesh = Mesh::cube(2, 8);
  const RoutingProblem problem = transpose(mesh);
  const int trials = 4;
  const std::uint64_t base_seed = 100;
  for (const Algorithm algo : algorithms_for(mesh)) {
    const auto router = make_router(algo, mesh);
    const TrialSummary summary =
        evaluate_trials(mesh, *router, problem, trials, base_seed);

    RunningStats ref_congestion;
    std::vector<double> edge_sums(static_cast<std::size_t>(mesh.num_edges()),
                                  0.0);
    for (int t = 0; t < trials; ++t) {
      RouteAllOptions options;
      options.seed = base_seed + static_cast<std::uint64_t>(t);
      options.meter_bits = false;
      const std::vector<Path> paths =
          route_all(mesh, *router, problem, options);
      EdgeLoadMap loads(mesh);
      loads.add_paths(paths);
      ref_congestion.add(static_cast<double>(loads.max_load()));
      for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
        edge_sums[static_cast<std::size_t>(e)] +=
            static_cast<double>(loads.load(e));
      }
    }
    double ref_max_expected = 0.0;
    for (const double sum : edge_sums) {
      ref_max_expected =
          std::max(ref_max_expected, sum / static_cast<double>(trials));
    }
    EXPECT_DOUBLE_EQ(summary.congestion.mean(), ref_congestion.mean())
        << router->name();
    EXPECT_DOUBLE_EQ(summary.congestion.max(), ref_congestion.max())
        << router->name();
    EXPECT_DOUBLE_EQ(summary.max_expected_edge_load, ref_max_expected)
        << router->name();
  }
}

TEST(PipelineDeterminism, FacadeRouteSegmentsThreadCountInvariant) {
  const ObliviousMeshRouting system(Mesh::cube(2, 16),
                                    Algorithm::kHierarchical2d);
  const RoutingProblem problem = transpose(system.mesh());
  ThreadPool pool1(1);
  ThreadPool pool2(2);
  const SegmentRoutingRun run1 = system.route_segments(problem, pool1, 3);
  const SegmentRoutingRun run2 = system.route_segments(problem, pool2, 3);
  EXPECT_EQ(run1.paths, run2.paths);
  EXPECT_EQ(run1.metrics.congestion, run2.metrics.congestion);
  EXPECT_EQ(run1.metrics.dilation, run2.metrics.dilation);
  EXPECT_GT(run1.metrics.congestion, 0);
  for (const SegmentPath& sp : run1.paths) {
    EXPECT_TRUE(is_valid_segment_path(system.mesh(), sp));
  }
}

}  // namespace
}  // namespace oblivious
