// The generic router contract across topologies beyond the 2D 16x16 mesh:
// 1D lines/rings, 3D cubes, 4D tori, and rectangular meshes (baselines
// only). Complements routers_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "routing/registry.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

struct Topology {
  const char* name;
  std::vector<std::int64_t> sides;
  bool torus;
};

const Topology kTopologies[] = {
    {"line64", {64}, false},
    {"ring64", {64}, true},
    {"cube8", {8, 8, 8}, false},
    {"torus4d", {8, 8, 8, 8}, true},
    {"rect", {4, 32}, false},
};

class RouterTopology
    : public ::testing::TestWithParam<std::tuple<int, Algorithm>> {
 protected:
  static Mesh make_mesh() {
    const Topology& topo = kTopologies[std::get<0>(GetParam())];
    return Mesh(topo.sides, topo.torus);
  }
};

TEST_P(RouterTopology, ValidPathsEverywhere) {
  const Mesh mesh = make_mesh();
  const Algorithm algorithm = std::get<1>(GetParam());
  const auto supported = algorithms_for(mesh);
  if (std::find(supported.begin(), supported.end(), algorithm) ==
      supported.end()) {
    GTEST_SKIP() << "algorithm not applicable to this mesh";
  }
  const auto router = make_router(algorithm, mesh);
  Rng rng(1);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 120, 3)) {
    const Path p = router->route(s, t, rng);
    ASSERT_TRUE(is_valid_path(mesh, p))
        << router->name() << " on " << mesh.describe();
    EXPECT_EQ(p.source(), s);
    EXPECT_EQ(p.destination(), t);
  }
}

TEST_P(RouterTopology, StretchWithinDiameterBound) {
  const Mesh mesh = make_mesh();
  const Algorithm algorithm = std::get<1>(GetParam());
  const auto supported = algorithms_for(mesh);
  if (std::find(supported.begin(), supported.end(), algorithm) ==
      supported.end()) {
    GTEST_SKIP() << "algorithm not applicable to this mesh";
  }
  const auto router = make_router(algorithm, mesh);
  Rng rng(5);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 80, 7)) {
    // Universal sanity bound: even Valiant uses at most two leg lengths
    // plus the hierarchy's constant overhead per level.
    EXPECT_LE(router->route(s, t, rng).length(), 8 * mesh.diameter())
        << router->name() << " on " << mesh.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RouterTopology,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::ValuesIn(all_algorithms())),
    [](const ::testing::TestParamInfo<std::tuple<int, Algorithm>>& pinfo) {
      std::string name =
          std::string(kTopologies[std::get<0>(pinfo.param)].name) + "_" +
          algorithm_name(std::get<1>(pinfo.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace oblivious
