// Cross-TU probes for the OBLV_CONTRACTS_FORCE override. Each function is
// defined in a translation unit that pins the contract switch to ON
// (contracts_macro_on.cpp) or OFF (contracts_macro_off.cpp) before
// including util/contracts.hpp, so one test binary proves both the
// checking and the compiled-out behaviour regardless of build type.
#pragma once

namespace oblivious::testing {

// TU compiled with OBLV_CONTRACTS_FORCE 1.
bool forced_on_expects_throws();        // OBLV_EXPECTS(false) -> throws?
bool forced_on_ensures_throws();        // OBLV_ENSURES(false) -> throws?
int forced_on_evaluation_count();       // times a passing EXPECTS ran its expr

// TU compiled with OBLV_CONTRACTS_FORCE 0.
bool forced_off_expects_throws();       // OBLV_EXPECTS(false) -> throws?
bool forced_off_ensures_throws();       // OBLV_ENSURES(false) -> throws?
int forced_off_evaluation_count();      // must be 0: expr never evaluated
int forced_off_dcheck_is_active();      // 1 iff OBLV_DCHECK evaluates here

}  // namespace oblivious::testing
