#include <gtest/gtest.h>

#include "core/oblivious_routing.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

TEST(Facade, QuickstartFlow) {
  // The README quickstart, as a test.
  ObliviousMeshRouting system(Mesh::cube(2, 32), Algorithm::kHierarchical2d);
  const RoutingProblem problem = transpose(system.mesh());
  const RoutingRun run = system.route(problem, /*seed=*/7);
  ASSERT_EQ(run.paths.size(), problem.size());
  EXPECT_GT(run.metrics.congestion, 0);
  EXPECT_LE(run.metrics.max_stretch, 64.0);

  const SimulationResult sim = system.deliver(run.paths);
  EXPECT_TRUE(sim.completed);
  EXPECT_GE(sim.makespan, std::max(sim.congestion, sim.dilation));
}

TEST(Facade, RouteOneIsDeterministicPerSeed) {
  const ObliviousMeshRouting system(Mesh::cube(2, 16), Algorithm::kValiant);
  const Path a = system.route_one(3, 200, 11);
  const Path b = system.route_one(3, 200, 11);
  const Path c = system.route_one(3, 200, 12);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_TRUE(is_valid_path(system.mesh(), a));
  EXPECT_EQ(a.source(), 3);
  EXPECT_EQ(a.destination(), 200);
  (void)c;
}

TEST(Facade, RouteAndDeliverEndToEnd) {
  for (const Algorithm a :
       {Algorithm::kEcube, Algorithm::kHierarchical2d, Algorithm::kHierarchicalNd}) {
    ObliviousMeshRouting system(Mesh::cube(2, 16), a);
    Rng rng(5);
    const RoutingProblem problem = random_permutation(system.mesh(), rng);
    const SimulationResult sim = system.route_and_deliver(problem);
    EXPECT_TRUE(sim.completed) << algorithm_name(a);
    EXPECT_EQ(sim.latency.count(), problem.size());
  }
}

TEST(Facade, TorusSupport) {
  ObliviousMeshRouting system(Mesh::cube(2, 16, /*torus=*/true),
                              Algorithm::kHierarchicalNdFrugal);
  const RoutingProblem problem = tornado(system.mesh());
  const RoutingRun run = system.route(problem, 3);
  EXPECT_GT(run.metrics.bits_per_packet.mean(), 0.0);
  EXPECT_TRUE(system.deliver(run.paths).completed);
}

TEST(Facade, RejectsHierarchicalOnIrregularMesh) {
  EXPECT_THROW(ObliviousMeshRouting(Mesh({6, 6}), Algorithm::kHierarchical2d),
               std::invalid_argument);
  // Baselines are fine on any mesh.
  const ObliviousMeshRouting ok(Mesh({6, 6}), Algorithm::kEcube);
  EXPECT_EQ(ok.router().name(), "ecube");
}

TEST(Facade, AlgorithmAccessor) {
  const ObliviousMeshRouting system(Mesh::cube(2, 16), Algorithm::kAccessTree);
  EXPECT_EQ(system.algorithm(), Algorithm::kAccessTree);
  EXPECT_EQ(system.router().name(), "access-tree");
}

}  // namespace
}  // namespace oblivious
