#include <gtest/gtest.h>

#include <set>

#include "workloads/generators.hpp"

namespace oblivious {
namespace {

bool is_full_permutation(const Mesh& mesh, const RoutingProblem& p) {
  if (p.size() != static_cast<std::size_t>(mesh.num_nodes())) return false;
  return p.is_partial_permutation(mesh);
}

TEST(RoutingProblem, DistanceAggregates) {
  const Mesh m({8, 8});
  RoutingProblem p;
  p.demands = {{0, 0}, {0, m.node_id(Coord{3, 4})}, {0, m.node_id(Coord{7, 7})}};
  EXPECT_EQ(p.max_distance(m), 14);
  EXPECT_EQ(p.total_distance(m), 0 + 7 + 14);
}

TEST(RoutingProblem, PartialPermutationDetection) {
  const Mesh m({4, 4});
  RoutingProblem ok;
  ok.demands = {{0, 1}, {1, 2}};
  EXPECT_TRUE(ok.is_partial_permutation(m));
  RoutingProblem dup_src;
  dup_src.demands = {{0, 1}, {0, 2}};
  EXPECT_FALSE(dup_src.is_partial_permutation(m));
  RoutingProblem dup_dst;
  dup_dst.demands = {{0, 2}, {1, 2}};
  EXPECT_FALSE(dup_dst.is_partial_permutation(m));
}

TEST(Workloads, RandomPermutationIsPermutation) {
  const Mesh m({8, 8});
  Rng rng(1);
  const RoutingProblem p = random_permutation(m, rng);
  EXPECT_TRUE(is_full_permutation(m, p));
  // Sources are 0..n-1 in order.
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    EXPECT_EQ(p.demands[static_cast<std::size_t>(u)].src, u);
  }
}

TEST(Workloads, RandomPermutationVariesWithSeed) {
  const Mesh m({8, 8});
  Rng rng1(1);
  Rng rng2(2);
  EXPECT_NE(random_permutation(m, rng1).demands,
            random_permutation(m, rng2).demands);
}

TEST(Workloads, TransposeSwapsFirstTwoDims) {
  const Mesh m({8, 8});
  const RoutingProblem p = transpose(m);
  EXPECT_TRUE(is_full_permutation(m, p));
  for (const Demand& d : p.demands) {
    const Coord cs = m.coord(d.src);
    const Coord ct = m.coord(d.dst);
    EXPECT_EQ(cs[0], ct[1]);
    EXPECT_EQ(cs[1], ct[0]);
  }
}

TEST(Workloads, TransposeRequiresTwoDims) {
  const Mesh line({8});
  EXPECT_THROW(transpose(line), std::invalid_argument);
}

TEST(Workloads, BitReversalIsInvolution) {
  const Mesh m({16, 16});
  const RoutingProblem p = bit_reversal(m);
  EXPECT_TRUE(is_full_permutation(m, p));
  // Applying the map twice returns to the source.
  for (const Demand& d : p.demands) {
    EXPECT_EQ(p.demands[static_cast<std::size_t>(d.dst)].dst, d.src);
  }
  // Spot check: x=0b0001 -> 0b1000.
  const NodeId s = m.node_id(Coord{1, 0});
  EXPECT_EQ(p.demands[static_cast<std::size_t>(s)].dst, m.node_id(Coord{8, 0}));
}

TEST(Workloads, TornadoShiftsDimZero) {
  const Mesh m({8, 8});
  const RoutingProblem p = tornado(m);
  EXPECT_TRUE(is_full_permutation(m, p));
  for (const Demand& d : p.demands) {
    const Coord cs = m.coord(d.src);
    const Coord ct = m.coord(d.dst);
    EXPECT_EQ(ct[0], (cs[0] + 3) % 8);
    EXPECT_EQ(ct[1], cs[1]);
  }
}

TEST(Workloads, HotspotSingleSink) {
  const Mesh m({8, 8});
  Rng rng(5);
  const RoutingProblem p = hotspot(m, rng, 20);
  EXPECT_LE(p.size(), 20U);
  EXPECT_GE(p.size(), 19U);  // the sink itself may be skipped
  std::set<NodeId> sinks;
  std::set<NodeId> sources;
  for (const Demand& d : p.demands) {
    sinks.insert(d.dst);
    EXPECT_TRUE(sources.insert(d.src).second);  // distinct sources
  }
  EXPECT_EQ(sinks.size(), 1U);
}

TEST(Workloads, NearestNeighborDistanceOne) {
  const Mesh m({8, 8});
  Rng rng(7);
  const RoutingProblem p = nearest_neighbor(m, rng);
  EXPECT_EQ(p.size(), static_cast<std::size_t>(m.num_nodes()));
  for (const Demand& d : p.demands) {
    EXPECT_EQ(m.distance(d.src, d.dst), 1);
  }
}

TEST(Workloads, RandomPairsHitExactDistance) {
  for (const bool torus : {false, true}) {
    const Mesh m({16, 16}, torus);
    Rng rng(9);
    for (const std::int64_t dist : {1, 3, 7, 12}) {
      const RoutingProblem p = random_pairs_at_distance(m, rng, 50, dist);
      EXPECT_EQ(p.size(), 50U);
      for (const Demand& d : p.demands) {
        EXPECT_EQ(m.distance(d.src, d.dst), dist) << "torus=" << torus;
      }
    }
  }
}

TEST(Workloads, BlockExchangeDistanceExactlyL) {
  // Section 5.1: every packet travels exactly distance l.
  const Mesh m({16, 16});
  for (const std::int64_t l : {1, 2, 4, 8}) {
    const RoutingProblem p = block_exchange(m, l);
    EXPECT_TRUE(is_full_permutation(m, p));
    for (const Demand& d : p.demands) {
      EXPECT_EQ(m.distance(d.src, d.dst), l) << "l=" << l;
    }
  }
}

TEST(Workloads, BlockExchangeIsInvolution) {
  const Mesh m({16, 16});
  const RoutingProblem p = block_exchange(m, 4);
  for (const Demand& d : p.demands) {
    EXPECT_EQ(p.demands[static_cast<std::size_t>(d.dst)].dst, d.src);
  }
}

TEST(Workloads, BlockExchangeRejectsBadThickness) {
  const Mesh m({16, 16});
  EXPECT_THROW(block_exchange(m, 3), std::invalid_argument);
  EXPECT_THROW(block_exchange(m, 16), std::invalid_argument);
}

TEST(Workloads, CutStraddlersDistanceOneAcrossBisector) {
  const Mesh m({16, 16});
  const RoutingProblem p = cut_straddlers(m);
  EXPECT_EQ(p.size(), 32U);  // both directions, 16 rows
  for (const Demand& d : p.demands) {
    EXPECT_EQ(m.distance(d.src, d.dst), 1);
    const Coord cs = m.coord(d.src);
    EXPECT_TRUE(cs[0] == 7 || cs[0] == 8);
  }
  EXPECT_TRUE(p.is_partial_permutation(m));
}

}  // namespace
}  // namespace oblivious
