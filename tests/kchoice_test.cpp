#include <gtest/gtest.h>

#include <set>

#include "routing/kchoice.hpp"
#include "routing/registry.hpp"
#include "test_support.hpp"

namespace oblivious {
namespace {

TEST(KChoice, KappaOneIsDeterministic) {
  const Mesh mesh({16, 16});
  const KChoiceRouter router(make_router(Algorithm::kHierarchical2d, mesh), 1);
  EXPECT_TRUE(router.deterministic());
  Rng a(1);
  Rng b(999);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 40, 3)) {
    // Identical paths regardless of the caller's rng state.
    EXPECT_EQ(router.route(s, t, a).nodes, router.route(s, t, b).nodes);
  }
}

TEST(KChoice, KappaOneConsumesZeroBits) {
  const Mesh mesh({16, 16});
  const KChoiceRouter router(make_router(Algorithm::kValiant, mesh), 1);
  Rng rng(1);
  BitMeter meter;
  rng.attach_meter(&meter);
  (void)router.route(3, 77, rng);
  EXPECT_EQ(meter.bits, 0U);
}

TEST(KChoice, ChargesExactlyLogKappaBits) {
  const Mesh mesh({16, 16});
  for (const int kappa : {2, 4, 8, 16}) {
    const KChoiceRouter router(make_router(Algorithm::kHierarchical2d, mesh),
                               kappa);
    Rng rng(5);
    BitMeter meter;
    rng.attach_meter(&meter);
    (void)router.route(3, 200, rng);
    EXPECT_EQ(meter.bits, static_cast<std::uint64_t>(ceil_log2(
                              static_cast<std::uint64_t>(kappa))))
        << "kappa=" << kappa;
  }
}

TEST(KChoice, RoutesComeFromTheAlternativeTable) {
  const Mesh mesh({16, 16});
  const KChoiceRouter router(make_router(Algorithm::kHierarchical2d, mesh), 4);
  const NodeId s = 3;
  const NodeId t = 212;
  std::set<std::vector<NodeId>> alternatives;
  for (int i = 0; i < 4; ++i) {
    alternatives.insert(router.alternative(s, t, i).nodes);
  }
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    EXPECT_TRUE(alternatives.count(router.route(s, t, rng).nodes) == 1);
  }
}

TEST(KChoice, AllAlternativesEventuallyChosen) {
  const Mesh mesh({16, 16});
  const KChoiceRouter router(make_router(Algorithm::kValiant, mesh), 4);
  Rng rng(11);
  std::set<std::vector<NodeId>> seen;
  for (int trial = 0; trial < 200; ++trial) {
    seen.insert(router.route(3, 200, rng).nodes);
  }
  // Valiant alternatives are almost surely distinct paths.
  EXPECT_EQ(seen.size(), 4U);
}

TEST(KChoice, TableIsStableAcrossInstances) {
  const Mesh mesh({16, 16});
  const KChoiceRouter a(make_router(Algorithm::kHierarchical2d, mesh), 8, 42);
  const KChoiceRouter b(make_router(Algorithm::kHierarchical2d, mesh), 8, 42);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.alternative(5, 100, i).nodes, b.alternative(5, 100, i).nodes);
  }
  const KChoiceRouter c(make_router(Algorithm::kHierarchical2d, mesh), 8, 43);
  bool any_different = false;
  for (int i = 0; i < 8; ++i) {
    any_different =
        any_different || a.alternative(5, 100, i).nodes != c.alternative(5, 100, i).nodes;
  }
  EXPECT_TRUE(any_different);
}

TEST(KChoice, AlternativesAreValidPaths) {
  const Mesh mesh({16, 16}, /*torus=*/true);
  const KChoiceRouter router(make_router(Algorithm::kHierarchicalNd, mesh), 3);
  for (const auto& [s, t] : testing::sample_pairs(mesh, 30, 7)) {
    for (int i = 0; i < 3; ++i) {
      const Path p = router.alternative(s, t, i);
      EXPECT_TRUE(is_valid_path(mesh, p));
      EXPECT_EQ(p.source(), s);
      EXPECT_EQ(p.destination(), t);
    }
  }
}

TEST(KChoice, NameEncodesKappa) {
  const Mesh mesh({16, 16});
  const KChoiceRouter router(make_router(Algorithm::kEcube, mesh), 4);
  EXPECT_EQ(router.name(), "ecube-k4");
}

TEST(KChoice, RejectsBadArguments) {
  const Mesh mesh({16, 16});
  EXPECT_THROW(KChoiceRouter(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(KChoiceRouter(make_router(Algorithm::kEcube, mesh), 0),
               std::invalid_argument);
  const KChoiceRouter router(make_router(Algorithm::kEcube, mesh), 2);
  EXPECT_THROW(router.alternative(0, 1, 2), std::invalid_argument);
  EXPECT_THROW(router.alternative(0, 1, -1), std::invalid_argument);
}

TEST(KChoice, MoreChoicesSpreadLoadOnSharedPair) {
  // All packets share one (s, t). With kappa = 1 they all take the same
  // fixed path (worst edge load = all 64 packets); with many choices the
  // load spreads. Edges incident to the shared endpoints always carry
  // ~64 / (2d) packets, so the comparison is between the extremes.
  const Mesh mesh({32, 32});
  const NodeId s = mesh.node_id(Coord{4, 4});
  const NodeId t = mesh.node_id(Coord{27, 27});
  auto worst_load = [&](int kappa) {
    const KChoiceRouter router(make_router(Algorithm::kValiant, mesh), kappa);
    Rng rng(13);
    std::vector<std::int64_t> loads(
        static_cast<std::size_t>(mesh.num_edges()), 0);
    std::int64_t worst = 0;
    for (int packet = 0; packet < 64; ++packet) {
      const Path p = router.route(s, t, rng);
      for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        const EdgeId e = mesh.edge_between(p.nodes[i], p.nodes[i + 1]);
        worst = std::max(worst, ++loads[static_cast<std::size_t>(e)]);
      }
    }
    return worst;
  };
  // kappa = 1: all 64 packets share one fixed path (an edge the path
  // doubles back through via the intermediate carries 2 per packet).
  EXPECT_GE(worst_load(1), 64);
  EXPECT_LE(worst_load(16), 48);
}

}  // namespace
}  // namespace oblivious
