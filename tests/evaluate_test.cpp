#include <gtest/gtest.h>

#include "analysis/evaluate.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

namespace oblivious {
namespace {

TEST(RouteAll, OnePathPerDemandWithMatchingEndpoints) {
  const Mesh m({16, 16});
  const auto router = make_router(Algorithm::kHierarchical2d, m);
  Rng rng(1);
  const RoutingProblem problem = random_permutation(m, rng);
  const std::vector<Path> paths = route_all(m, *router, problem, {});
  ASSERT_EQ(paths.size(), problem.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].source(), problem.demands[i].src);
    EXPECT_EQ(paths[i].destination(), problem.demands[i].dst);
  }
}

TEST(RouteAll, SeedReproducibility) {
  const Mesh m({16, 16});
  const auto router = make_router(Algorithm::kValiant, m);
  const RoutingProblem problem = transpose(m);
  RouteAllOptions options;
  options.seed = 42;
  const auto a = route_all(m, *router, problem, options);
  const auto b = route_all(m, *router, problem, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].nodes, b[i].nodes);
  options.seed = 43;
  const auto c = route_all(m, *router, problem, options);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different = any_different || a[i].nodes != c[i].nodes;
  }
  EXPECT_TRUE(any_different);
}

TEST(RouteAll, CycleErasureShortensWithoutChangingEndpoints) {
  const Mesh m({16, 16});
  const auto router = make_router(Algorithm::kValiant, m);
  const RoutingProblem problem = transpose(m);
  RouteAllOptions plain;
  RouteAllOptions erased;
  erased.erase_cycles = true;
  const auto a = route_all(m, *router, problem, plain);
  const auto b = route_all(m, *router, problem, erased);
  std::int64_t total_a = 0;
  std::int64_t total_b = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total_a += a[i].length();
    total_b += b[i].length();
    EXPECT_EQ(b[i].source(), a[i].source());
    EXPECT_EQ(b[i].destination(), a[i].destination());
    EXPECT_TRUE(is_simple_path(b[i]));
  }
  EXPECT_LE(total_b, total_a);
}

TEST(RouteAll, BitStatsCollected) {
  const Mesh m({16, 16});
  const auto router = make_router(Algorithm::kHierarchicalNdFrugal, m);
  const RoutingProblem problem = transpose(m);
  RunningStats bits;
  (void)route_all(m, *router, problem, {}, &bits);
  EXPECT_EQ(bits.count(), problem.size());
  EXPECT_GT(bits.mean(), 0.0);
}

TEST(RouteAllParallel, MatchesAcrossThreadCounts) {
  // Oblivious selection: per-packet seeds make the result independent of
  // chunking and thread count.
  const Mesh m({16, 16});
  const auto router = make_router(Algorithm::kHierarchical2d, m);
  const RoutingProblem problem = transpose(m);
  ThreadPool serial(1);
  ThreadPool wide(4);
  const auto a = route_all_parallel(m, *router, problem, serial, 99);
  const auto b = route_all_parallel(m, *router, problem, wide, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes) << i;
  }
}

TEST(RouteAllParallel, ValidPathsAndSeedSensitivity) {
  const Mesh m({16, 16});
  const auto router = make_router(Algorithm::kValiant, m);
  const RoutingProblem problem = transpose(m);
  ThreadPool pool(2);
  const auto a = route_all_parallel(m, *router, problem, pool, 1);
  const auto b = route_all_parallel(m, *router, problem, pool, 2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(is_valid_path(m, a[i]));
    EXPECT_EQ(a[i].source(), problem.demands[i].src);
    EXPECT_EQ(a[i].destination(), problem.demands[i].dst);
    any_different = any_different || a[i].nodes != b[i].nodes;
  }
  EXPECT_TRUE(any_different);
}

TEST(Evaluate, MetricsAreInternallyConsistent) {
  const Mesh m({16, 16});
  const auto router = make_router(Algorithm::kHierarchical2d, m);
  const RoutingProblem problem = bit_reversal(m);
  const RouteSetMetrics metrics = evaluate(m, *router, problem);
  EXPECT_EQ(metrics.algorithm, "hierarchical-2d");
  EXPECT_EQ(metrics.packets, problem.size());
  EXPECT_GT(metrics.congestion, 0);
  EXPECT_GE(metrics.dilation, metrics.max_distance);
  EXPECT_GE(metrics.max_stretch, metrics.mean_stretch);
  EXPECT_GE(metrics.mean_stretch, 1.0);
  EXPECT_GT(metrics.lower_bound, 0.0);
  EXPECT_NEAR(metrics.congestion_ratio,
              static_cast<double>(metrics.congestion) /
                  std::max(metrics.lower_bound, 1.0),
              1e-12);
}

TEST(Evaluate, EcubeHasUnitStretch) {
  const Mesh m({16, 16});
  const auto router = make_router(Algorithm::kEcube, m);
  const RouteSetMetrics metrics = evaluate(m, *router, transpose(m));
  EXPECT_DOUBLE_EQ(metrics.max_stretch, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(metrics.bits_per_packet.max(), 0.0);
}

TEST(Evaluate, LowerBoundFallbackOnRectangularMesh) {
  const Mesh m({4, 32});
  const auto router = make_router(Algorithm::kEcube, m);
  RoutingProblem problem;
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    problem.demands.push_back({u, m.num_nodes() - 1 - u});
  }
  const RouteSetMetrics metrics = evaluate(m, *router, problem);
  EXPECT_GT(metrics.lower_bound, 0.0);
  EXPECT_GE(static_cast<double>(metrics.congestion), metrics.lower_bound - 1.0);
}

TEST(Evaluate, RejectsMismatchedPathCount) {
  const Mesh m({16, 16});
  RoutingProblem problem;
  problem.demands = {{0, 1}, {1, 2}};
  const std::vector<Path> one_path(1);
  EXPECT_THROW(measure_paths(m, problem, one_path, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace oblivious
