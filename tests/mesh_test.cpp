#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mesh/mesh.hpp"
#include "mesh/region.hpp"

namespace oblivious {
namespace {

Coord c2(std::int64_t x, std::int64_t y) { return Coord{x, y}; }

TEST(Mesh, BasicProperties2D) {
  const Mesh m({4, 4});
  EXPECT_EQ(m.dim(), 2);
  EXPECT_EQ(m.num_nodes(), 16);
  EXPECT_EQ(m.num_edges(), 2 * 3 * 4);  // 12 per dimension
  EXPECT_FALSE(m.torus());
  EXPECT_TRUE(m.is_square());
  EXPECT_TRUE(m.sides_power_of_two());
}

TEST(Mesh, RectangularSides) {
  const Mesh m({2, 3, 5});
  EXPECT_EQ(m.num_nodes(), 30);
  EXPECT_FALSE(m.is_square());
  EXPECT_FALSE(m.sides_power_of_two());
  // edges: dim0: 1*15, dim1: 2*10, dim2: 4*6
  EXPECT_EQ(m.num_edges(), 15 + 20 + 24);
}

TEST(Mesh, CubeFactory) {
  const Mesh m = Mesh::cube(3, 4, true);
  EXPECT_EQ(m.dim(), 3);
  EXPECT_EQ(m.num_nodes(), 64);
  EXPECT_TRUE(m.torus());
}

TEST(Mesh, NodeIdCoordRoundTrip) {
  const Mesh m({4, 8});
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    EXPECT_EQ(m.node_id(m.coord(u)), u);
  }
}

TEST(Mesh, NodeIdIsRowMajor) {
  const Mesh m({4, 8});
  EXPECT_EQ(m.node_id(c2(0, 0)), 0);
  EXPECT_EQ(m.node_id(c2(0, 7)), 7);
  EXPECT_EQ(m.node_id(c2(1, 0)), 8);
  EXPECT_EQ(m.node_id(c2(3, 7)), 31);
}

TEST(Mesh, NodeIdRejectsOutOfRange) {
  const Mesh m({4, 4});
  EXPECT_THROW(m.node_id(c2(4, 0)), std::invalid_argument);
  EXPECT_THROW(m.node_id(c2(0, -1)), std::invalid_argument);
  EXPECT_THROW(m.coord(16), std::invalid_argument);
  EXPECT_THROW(m.coord(-1), std::invalid_argument);
}

TEST(Mesh, ContainsChecksRangeAndDim) {
  const Mesh m({4, 4});
  EXPECT_TRUE(m.contains(c2(0, 3)));
  EXPECT_FALSE(m.contains(c2(0, 4)));
  EXPECT_FALSE(m.contains(Coord{1}));
}

TEST(Mesh, StepInterior) {
  const Mesh m({4, 4});
  const NodeId u = m.node_id(c2(1, 1));
  EXPECT_EQ(m.step(u, 0, 1), m.node_id(c2(2, 1)));
  EXPECT_EQ(m.step(u, 0, -1), m.node_id(c2(0, 1)));
  EXPECT_EQ(m.step(u, 1, 1), m.node_id(c2(1, 2)));
}

TEST(Mesh, StepOffBoundaryIsInvalid) {
  const Mesh m({4, 4});
  EXPECT_EQ(m.step(m.node_id(c2(0, 0)), 0, -1), kInvalidNode);
  EXPECT_EQ(m.step(m.node_id(c2(3, 0)), 0, 1), kInvalidNode);
}

TEST(Mesh, StepWrapsOnTorus) {
  const Mesh t({4, 4}, true);
  EXPECT_EQ(t.step(t.node_id(c2(0, 0)), 0, -1), t.node_id(c2(3, 0)));
  EXPECT_EQ(t.step(t.node_id(c2(3, 2)), 0, 1), t.node_id(c2(0, 2)));
}

TEST(Mesh, NeighborsCountMatchesDegree) {
  const Mesh m({4, 4});
  EXPECT_EQ(m.neighbors(m.node_id(c2(0, 0))).size(), 2U);   // corner
  EXPECT_EQ(m.neighbors(m.node_id(c2(0, 1))).size(), 3U);   // edge
  EXPECT_EQ(m.neighbors(m.node_id(c2(1, 1))).size(), 4U);   // interior
  const Mesh t({4, 4}, true);
  for (NodeId u = 0; u < t.num_nodes(); ++u) {
    EXPECT_EQ(t.neighbors(u).size(), 4U);
  }
}

TEST(Mesh, AdjacencyIsSymmetricAndMatchesNeighbors) {
  for (const bool torus : {false, true}) {
    const Mesh m({4, 4}, torus);
    for (NodeId u = 0; u < m.num_nodes(); ++u) {
      const auto nbrs = m.neighbors(u);
      const std::set<NodeId> nbr_set(nbrs.begin(), nbrs.end());
      for (NodeId v = 0; v < m.num_nodes(); ++v) {
        EXPECT_EQ(m.adjacent(u, v), nbr_set.count(v) == 1)
            << "u=" << u << " v=" << v << " torus=" << torus;
        EXPECT_EQ(m.adjacent(u, v), m.adjacent(v, u));
      }
    }
  }
}

TEST(Mesh, DistanceIsL1OnMesh) {
  const Mesh m({8, 8});
  EXPECT_EQ(m.distance(c2(0, 0), c2(7, 7)), 14);
  EXPECT_EQ(m.distance(c2(3, 4), c2(3, 4)), 0);
  EXPECT_EQ(m.distance(c2(2, 5), c2(5, 1)), 7);
}

TEST(Mesh, DistanceWrapsOnTorus) {
  const Mesh t({8, 8}, true);
  EXPECT_EQ(t.distance(c2(0, 0), c2(7, 7)), 2);
  EXPECT_EQ(t.distance(c2(0, 0), c2(4, 4)), 8);
  EXPECT_EQ(t.distance(c2(1, 0), c2(6, 0)), 3);
}

TEST(Mesh, DistanceSatisfiesTriangleInequality) {
  const Mesh t({4, 4}, true);
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      for (NodeId c = 0; c < t.num_nodes(); c += 3) {
        EXPECT_LE(t.distance(a, b), t.distance(a, c) + t.distance(c, b));
      }
    }
  }
}

TEST(Mesh, Diameter) {
  EXPECT_EQ(Mesh({8, 8}).diameter(), 14);
  EXPECT_EQ(Mesh({8, 8}, true).diameter(), 8);
  EXPECT_EQ(Mesh({2, 3, 5}).diameter(), 1 + 2 + 4);
}

TEST(Mesh, WrapCanonicalizesOnTorus) {
  const Mesh t({4, 4}, true);
  EXPECT_EQ(t.wrap(Coord{-1, 5}), (Coord{3, 1}));
  const Mesh m({4, 4});
  EXPECT_THROW(m.wrap(Coord{-1, 0}), std::invalid_argument);
}

TEST(Mesh, DisplacementPrefersShorterArc) {
  const Mesh t({8, 8}, true);
  EXPECT_EQ(t.displacement(1, 6, 0), -3);
  EXPECT_EQ(t.displacement(6, 1, 0), 3);
  EXPECT_EQ(t.displacement(0, 4, 0), 4);  // tie resolved to +side/2
  const Mesh m({8, 8});
  EXPECT_EQ(m.displacement(1, 6, 0), 5);
}

TEST(Mesh, OneDimensionalMesh) {
  const Mesh line({8});
  EXPECT_EQ(line.dim(), 1);
  EXPECT_EQ(line.num_edges(), 7);
  EXPECT_EQ(line.distance(Coord{0}, Coord{7}), 7);
  const Mesh ring({8}, true);
  EXPECT_EQ(ring.num_edges(), 8);
  EXPECT_EQ(ring.distance(Coord{0}, Coord{7}), 1);
}

TEST(Mesh, DegenerateSideOne) {
  const Mesh m({1, 4});
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.num_edges(), 3);
  EXPECT_EQ(m.neighbors(0).size(), 1U);
}

TEST(Mesh, TorusSideTwoHasNoDoubleEdges) {
  const Mesh t({2, 2}, true);
  // Side-2 torus dimensions must not wrap (would duplicate edges).
  EXPECT_EQ(t.num_edges(), 4);
  for (NodeId u = 0; u < t.num_nodes(); ++u) {
    EXPECT_EQ(t.neighbors(u).size(), 2U);
  }
}

TEST(Mesh, DescribeMentionsShape) {
  EXPECT_NE(Mesh({4, 8}).describe().find("4x8"), std::string::npos);
  EXPECT_NE(Mesh({4, 4}, true).describe().find("torus"), std::string::npos);
}

TEST(Mesh, RejectsBadConstruction) {
  EXPECT_THROW(Mesh({}), std::invalid_argument);
  EXPECT_THROW(Mesh({0, 4}), std::invalid_argument);
  EXPECT_THROW(Mesh({-2}), std::invalid_argument);
}

// --- edges -------------------------------------------------------------------

TEST(MeshEdges, EndpointsRoundTrip) {
  for (const bool torus : {false, true}) {
    const Mesh m({4, 8}, torus);
    std::set<std::pair<NodeId, NodeId>> seen;
    for (EdgeId e = 0; e < m.num_edges(); ++e) {
      const auto [a, b] = m.edge_endpoints(e);
      EXPECT_TRUE(m.adjacent(a, b)) << "edge " << e;
      EXPECT_EQ(m.edge_between(a, b), e);
      EXPECT_EQ(m.edge_between(b, a), e);
      seen.insert({std::min(a, b), std::max(a, b)});
    }
    // All edges distinct.
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(m.num_edges()));
  }
}

TEST(MeshEdges, EdgeDimConsistent) {
  const Mesh m({4, 4, 4});
  for (EdgeId e = 0; e < m.num_edges(); ++e) {
    const auto [a, b] = m.edge_endpoints(e);
    const Coord ca = m.coord(a);
    const Coord cb = m.coord(b);
    const int d = m.edge_dim(e);
    for (int i = 0; i < 3; ++i) {
      if (i == d) {
        EXPECT_NE(ca[static_cast<std::size_t>(i)], cb[static_cast<std::size_t>(i)]);
      } else {
        EXPECT_EQ(ca[static_cast<std::size_t>(i)], cb[static_cast<std::size_t>(i)]);
      }
    }
  }
}

TEST(MeshEdges, TorusEdgeCountIsDTimesN) {
  const Mesh t({4, 4, 4}, true);
  EXPECT_EQ(t.num_edges(), 3 * t.num_nodes());
}

TEST(MeshEdges, EdgeBetweenRequiresAdjacency) {
  const Mesh m({4, 4});
  EXPECT_THROW(m.edge_between(0, 5), std::invalid_argument);
  EXPECT_THROW(m.edge_between(0, 0), std::invalid_argument);
}

TEST(MeshEdges, WrapEdgeKeyedAtHighCoordinate) {
  const Mesh t({4, 4}, true);
  const NodeId a = t.node_id(c2(3, 1));
  const NodeId b = t.node_id(c2(0, 1));
  const EdgeId e = t.edge_between(a, b);
  const auto [x, y] = t.edge_endpoints(e);
  EXPECT_EQ(x, a);
  EXPECT_EQ(y, b);
}

}  // namespace
}  // namespace oblivious
