#include <gtest/gtest.h>

#include <sstream>

#include "workloads/generators.hpp"
#include "workloads/io.hpp"

namespace oblivious {
namespace {

TEST(ProblemIo, RoundTrip) {
  const Mesh mesh({8, 16});
  RoutingProblem problem;
  problem.demands = {{0, 5}, {10, 120}, {3, 3}};
  const std::string text = problem_to_text(mesh, problem);
  const auto [mesh2, problem2] = problem_from_text(text);
  EXPECT_EQ(mesh2.sides(), mesh.sides());
  EXPECT_EQ(mesh2.torus(), mesh.torus());
  EXPECT_EQ(problem2.demands, problem.demands);
}

TEST(ProblemIo, TorusFlagPreserved) {
  const Mesh mesh({4, 4, 4}, /*torus=*/true);
  RoutingProblem problem;
  problem.demands = {{0, 63}};
  const auto [mesh2, problem2] =
      problem_from_text(problem_to_text(mesh, problem));
  EXPECT_TRUE(mesh2.torus());
  EXPECT_EQ(mesh2.dim(), 3);
}

TEST(ProblemIo, GeneratedWorkloadRoundTrips) {
  const Mesh mesh({16, 16});
  const RoutingProblem problem = transpose(mesh);
  const auto [mesh2, problem2] =
      problem_from_text(problem_to_text(mesh, problem));
  EXPECT_EQ(problem2.demands, problem.demands);
}

TEST(ProblemIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "mesh 4 4  # inline comment\n"
      "demand 0 1\n"
      "   \n"
      "demand 2 3 # another\n";
  const auto [mesh, problem] = problem_from_text(text);
  EXPECT_EQ(mesh.num_nodes(), 16);
  EXPECT_EQ(problem.size(), 2U);
}

TEST(ProblemIo, RejectsMalformedInput) {
  EXPECT_THROW(problem_from_text("demand 0 1\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 4 4\nmesh 4 4\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand 0\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand 0 16\n"),
               std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 4 4\nfrobnicate 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 0 4\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("# nothing\n"), std::invalid_argument);
}

TEST(ProblemIo, ParseErrorsCarryFileAndLineContext) {
  try {
    std::istringstream is("mesh 4 4\ndemand 0 1\ndemand 0 99\n");
    read_problem(is, "workload.txt");
    FAIL() << "expected ProblemParseError";
  } catch (const ProblemParseError& e) {
    EXPECT_EQ(e.source(), "workload.txt");
    EXPECT_EQ(e.line(), 3U);
    EXPECT_EQ(std::string(e.what()),
              "workload.txt:3: demand id 99 is off the mesh (16 nodes)");
  }
}

TEST(ProblemIo, RejectsNonIntegerAndOverflowingTokens) {
  EXPECT_THROW(problem_from_text("mesh 4x4\n"), ProblemParseError);
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand 0 1.5\n"),
               ProblemParseError);
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand zero 1\n"),
               ProblemParseError);
  // Overflows int64: must be a parse error, not a wrapped id.
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand 0 99999999999999999999\n"),
               ProblemParseError);
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand 0 -\n"),
               ProblemParseError);
}

TEST(ProblemIo, RejectsTrailingAndMisplacedTokens) {
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand 0 1 2\n"),
               ProblemParseError);
  EXPECT_THROW(problem_from_text("mesh 4 torus 4\n"), ProblemParseError);
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand -1 1\n"),
               ProblemParseError);
}

TEST(ProblemIo, TruncatedDemandReportsItsLine) {
  try {
    problem_from_text("mesh 8 8\ndemand 3\n");
    FAIL() << "expected ProblemParseError";
  } catch (const ProblemParseError& e) {
    EXPECT_EQ(e.line(), 2U);
    EXPECT_NE(std::string(e.what()).find("truncated demand"),
              std::string::npos);
  }
}

TEST(ProblemIo, MissingMeshReportsWholeFile) {
  try {
    problem_from_text("# only comments\n");
    FAIL() << "expected ProblemParseError";
  } catch (const ProblemParseError& e) {
    EXPECT_EQ(e.line(), 0U);  // no single line to blame
    EXPECT_EQ(std::string(e.what()), "<input>: no mesh record found");
  }
}

TEST(ProblemIo, UnopenableFileThrowsWithPath) {
  try {
    read_problem_file("/nonexistent/dir/problem.txt");
    FAIL() << "expected ProblemParseError";
  } catch (const ProblemParseError& e) {
    EXPECT_EQ(e.source(), "/nonexistent/dir/problem.txt");
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(ProblemIo, EmptyProblemIsFine) {
  const auto [mesh, problem] = problem_from_text("mesh 8 8\n");
  EXPECT_EQ(mesh.num_nodes(), 64);
  EXPECT_TRUE(problem.empty());
}

}  // namespace
}  // namespace oblivious
