#include <gtest/gtest.h>

#include <sstream>

#include "workloads/generators.hpp"
#include "workloads/io.hpp"

namespace oblivious {
namespace {

TEST(ProblemIo, RoundTrip) {
  const Mesh mesh({8, 16});
  RoutingProblem problem;
  problem.demands = {{0, 5}, {10, 120}, {3, 3}};
  const std::string text = problem_to_text(mesh, problem);
  const auto [mesh2, problem2] = problem_from_text(text);
  EXPECT_EQ(mesh2.sides(), mesh.sides());
  EXPECT_EQ(mesh2.torus(), mesh.torus());
  EXPECT_EQ(problem2.demands, problem.demands);
}

TEST(ProblemIo, TorusFlagPreserved) {
  const Mesh mesh({4, 4, 4}, /*torus=*/true);
  RoutingProblem problem;
  problem.demands = {{0, 63}};
  const auto [mesh2, problem2] =
      problem_from_text(problem_to_text(mesh, problem));
  EXPECT_TRUE(mesh2.torus());
  EXPECT_EQ(mesh2.dim(), 3);
}

TEST(ProblemIo, GeneratedWorkloadRoundTrips) {
  const Mesh mesh({16, 16});
  const RoutingProblem problem = transpose(mesh);
  const auto [mesh2, problem2] =
      problem_from_text(problem_to_text(mesh, problem));
  EXPECT_EQ(problem2.demands, problem.demands);
}

TEST(ProblemIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "mesh 4 4  # inline comment\n"
      "demand 0 1\n"
      "   \n"
      "demand 2 3 # another\n";
  const auto [mesh, problem] = problem_from_text(text);
  EXPECT_EQ(mesh.num_nodes(), 16);
  EXPECT_EQ(problem.size(), 2U);
}

TEST(ProblemIo, RejectsMalformedInput) {
  EXPECT_THROW(problem_from_text("demand 0 1\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 4 4\nmesh 4 4\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand 0\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 4 4\ndemand 0 16\n"),
               std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 4 4\nfrobnicate 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW(problem_from_text("mesh 0 4\n"), std::invalid_argument);
  EXPECT_THROW(problem_from_text("# nothing\n"), std::invalid_argument);
}

TEST(ProblemIo, EmptyProblemIsFine) {
  const auto [mesh, problem] = problem_from_text("mesh 8 8\n");
  EXPECT_EQ(mesh.num_nodes(), 64);
  EXPECT_TRUE(problem.empty());
}

}  // namespace
}  // namespace oblivious
