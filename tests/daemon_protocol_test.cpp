// Wire-format tests for the oblvd protocol: codec round-trips plus the
// malformed-frame edge cases the server must survive per connection --
// truncated headers, oversize length prefixes, unknown versions,
// trailing garbage.
#include "daemon/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace oblivious::daemon {
namespace {

// Strips the length prefix an encoder prepended, returning the payload.
std::vector<std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), 4u);
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data(), 4);
  EXPECT_EQ(length, frame.size() - 4);
  return {frame.begin() + 4, frame.end()};
}

RouteRequest sample_request() {
  RouteRequest request;
  request.request_id = 42;
  request.seed = 0xfeedbeefcafeull;
  request.tenant = "interactive";
  request.demands = {{0, 63}, {7, 56}, {12, 12}};
  return request;
}

TEST(DaemonProtocolTest, RouteRequestRoundTrip) {
  RouteRequest request = sample_request();
  request.deadline_ms = 750;
  std::vector<std::uint8_t> frame;
  encode_route_request(request, frame);
  const auto payload = payload_of(frame);

  const FrameHeader header = decode_header(payload.data(), payload.size());
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, MessageType::kRouteRequest);
  EXPECT_EQ(header.request_id, 42u);

  const RouteRequest decoded =
      decode_route_request(payload.data(), payload.size());
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.seed, request.seed);
  EXPECT_EQ(decoded.deadline_ms, 750u);
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.tenant, request.tenant);
  ASSERT_EQ(decoded.demands.size(), request.demands.size());
  for (std::size_t i = 0; i < decoded.demands.size(); ++i) {
    EXPECT_EQ(decoded.demands[i].src, request.demands[i].src);
    EXPECT_EQ(decoded.demands[i].dst, request.demands[i].dst);
  }
}

TEST(DaemonProtocolTest, Version1RequestStillDecodes) {
  // An old client's frame: version 1 in the header, no deadline field
  // in the body. The decoder must accept it and default the deadline.
  const RouteRequest request = sample_request();
  std::vector<std::uint8_t> frame;
  encode_route_request(request, frame, /*version=*/1);
  const auto payload = payload_of(frame);

  EXPECT_EQ(decode_header(payload.data(), payload.size()).version, 1u);
  const RouteRequest decoded =
      decode_route_request(payload.data(), payload.size());
  EXPECT_EQ(decoded.version, 1u);
  EXPECT_EQ(decoded.deadline_ms, 0u) << "a v1 request can never expire";
  EXPECT_EQ(decoded.seed, request.seed);
  EXPECT_EQ(decoded.tenant, request.tenant);
  EXPECT_EQ(decoded.demands.size(), request.demands.size());
}

TEST(DaemonProtocolTest, Version1ResponseOmitsNothingV1Knows) {
  // The server echoes a v1 client's version; the frame must carry a v1
  // header and still round-trip (the response body layout is shared).
  RouteResponse response;
  response.request_id = 21;
  response.status = RouteStatus::kRejected;
  response.retry_after_ms = 40;
  response.message = "queue full";
  std::vector<std::uint8_t> frame;
  encode_route_response(response, frame, /*version=*/1);
  const auto payload = payload_of(frame);
  EXPECT_EQ(decode_header(payload.data(), payload.size()).version, 1u);
  const RouteResponse decoded =
      decode_route_response(payload.data(), payload.size());
  EXPECT_EQ(decoded.status, RouteStatus::kRejected);
  EXPECT_EQ(decoded.retry_after_ms, 40u);
}

TEST(DaemonProtocolTest, FutureVersionThrows) {
  std::vector<std::uint8_t> frame;
  encode_ping(1, frame);
  auto payload = payload_of(frame);
  payload[4] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  payload[5] = 0;
  EXPECT_THROW(decode_header(payload.data(), payload.size()), ProtocolError);
}

TEST(DaemonProtocolTest, ExpiredResponseRoundTrip) {
  RouteResponse response;
  response.request_id = 13;
  response.status = RouteStatus::kExpired;
  response.message = "deadline expired before reply";
  std::vector<std::uint8_t> frame;
  encode_route_response(response, frame);
  const auto payload = payload_of(frame);
  const RouteResponse decoded =
      decode_route_response(payload.data(), payload.size());
  EXPECT_EQ(decoded.status, RouteStatus::kExpired);
  EXPECT_EQ(decoded.message, "deadline expired before reply");
  EXPECT_TRUE(decoded.paths.empty());
}

TEST(DaemonProtocolTest, RouteResponseRoundTripWithPaths) {
  RouteResponse response;
  response.request_id = 7;
  response.status = RouteStatus::kOk;
  SegmentPath path;
  path.source = 3;
  path.dest = 60;
  path.append(0, 5);
  path.append(1, -2);
  response.paths = {path, path};

  std::vector<std::uint8_t> frame;
  encode_route_response(response, frame);
  const auto payload = payload_of(frame);
  const RouteResponse decoded =
      decode_route_response(payload.data(), payload.size());
  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(decoded.status, RouteStatus::kOk);
  ASSERT_EQ(decoded.paths.size(), 2u);
  EXPECT_EQ(decoded.paths[0], path);
  EXPECT_EQ(decoded.paths[1], path);
}

TEST(DaemonProtocolTest, RouteResponseRoundTripRejected) {
  RouteResponse response;
  response.request_id = 9;
  response.status = RouteStatus::kRejected;
  response.retry_after_ms = 125;
  response.message = "tenant share full";

  std::vector<std::uint8_t> frame;
  encode_route_response(response, frame);
  const auto payload = payload_of(frame);
  const RouteResponse decoded =
      decode_route_response(payload.data(), payload.size());
  EXPECT_EQ(decoded.status, RouteStatus::kRejected);
  EXPECT_EQ(decoded.retry_after_ms, 125u);
  EXPECT_EQ(decoded.message, "tenant share full");
  EXPECT_TRUE(decoded.paths.empty());
}

TEST(DaemonProtocolTest, MetricsAndPingRoundTrip) {
  std::vector<std::uint8_t> frame;
  encode_metrics_response(5, R"({"schema":"oblv-metrics-v1"})", frame);
  auto payload = payload_of(frame);
  EXPECT_EQ(decode_metrics_response(payload.data(), payload.size()),
            R"({"schema":"oblv-metrics-v1"})");

  frame.clear();
  encode_ping(11, frame);
  payload = payload_of(frame);
  const FrameHeader ping = decode_header(payload.data(), payload.size());
  EXPECT_EQ(ping.type, MessageType::kPing);
  EXPECT_EQ(ping.request_id, 11u);

  frame.clear();
  encode_pong(11, frame);
  payload = payload_of(frame);
  EXPECT_EQ(decode_header(payload.data(), payload.size()).type,
            MessageType::kPong);
}

TEST(DaemonProtocolTest, EncoderAppendsWithoutClearing) {
  std::vector<std::uint8_t> frames;
  encode_ping(1, frames);
  const std::size_t first = frames.size();
  encode_ping(2, frames);
  EXPECT_EQ(frames.size(), 2 * first);  // two identical-size frames
}

TEST(DaemonProtocolTest, TruncatedHeaderThrows) {
  std::vector<std::uint8_t> frame;
  encode_ping(1, frame);
  const auto payload = payload_of(frame);
  for (std::size_t size = 0; size < kHeaderBytes; ++size) {
    EXPECT_THROW(decode_header(payload.data(), size), ProtocolError)
        << "header of " << size << " bytes must be rejected";
  }
}

TEST(DaemonProtocolTest, BadMagicThrows) {
  std::vector<std::uint8_t> frame;
  encode_ping(1, frame);
  auto payload = payload_of(frame);
  payload[0] ^= 0xff;
  EXPECT_THROW(decode_header(payload.data(), payload.size()), ProtocolError);
}

TEST(DaemonProtocolTest, UnknownVersionThrows) {
  std::vector<std::uint8_t> frame;
  encode_ping(1, frame);
  auto payload = payload_of(frame);
  payload[4] = 0x7f;  // version low byte
  payload[5] = 0x7f;
  EXPECT_THROW(decode_header(payload.data(), payload.size()), ProtocolError);
}

TEST(DaemonProtocolTest, WrongTypeRejectedByBodyDecoder) {
  std::vector<std::uint8_t> frame;
  encode_ping(1, frame);
  const auto payload = payload_of(frame);
  EXPECT_THROW(decode_route_request(payload.data(), payload.size()),
               ProtocolError);
  EXPECT_THROW(decode_route_response(payload.data(), payload.size()),
               ProtocolError);
  EXPECT_THROW(decode_metrics_response(payload.data(), payload.size()),
               ProtocolError);
}

TEST(DaemonProtocolTest, TruncatedBodyThrows) {
  std::vector<std::uint8_t> frame;
  encode_route_request(sample_request(), frame);
  const auto payload = payload_of(frame);
  // Every strict prefix that still passes the header check must fail
  // cleanly in the body decoder, never read out of bounds.
  for (std::size_t size = kHeaderBytes; size < payload.size(); ++size) {
    EXPECT_THROW(decode_route_request(payload.data(), size), ProtocolError)
        << "body truncated to " << size << " bytes must be rejected";
  }
}

TEST(DaemonProtocolTest, TrailingBytesThrow) {
  std::vector<std::uint8_t> frame;
  encode_route_request(sample_request(), frame);
  auto payload = payload_of(frame);
  payload.push_back(0);
  EXPECT_THROW(decode_route_request(payload.data(), payload.size()),
               ProtocolError);
}

TEST(DaemonProtocolTest, DemandCountOverclaimThrows) {
  // A count field claiming more demands than the payload carries must
  // be rejected up front (no quadratic or overflowing resize).
  RouteRequest request = sample_request();
  std::vector<std::uint8_t> frame;
  encode_route_request(request, frame);
  auto payload = payload_of(frame);
  // demand count sits after header(12) + seed(8) + deadline(4) +
  // tenant len(2) + tenant.
  const std::size_t count_at =
      kHeaderBytes + 8 + 4 + 2 + request.tenant.size();
  payload[count_at] = 0xff;
  payload[count_at + 1] = 0xff;
  payload[count_at + 2] = 0xff;
  payload[count_at + 3] = 0x7f;
  EXPECT_THROW(decode_route_request(payload.data(), payload.size()),
               ProtocolError);
}

}  // namespace
}  // namespace oblivious::daemon
