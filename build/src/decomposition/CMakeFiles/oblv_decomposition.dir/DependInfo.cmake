
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomposition/access_graph.cpp" "src/decomposition/CMakeFiles/oblv_decomposition.dir/access_graph.cpp.o" "gcc" "src/decomposition/CMakeFiles/oblv_decomposition.dir/access_graph.cpp.o.d"
  "/root/repo/src/decomposition/decomposition.cpp" "src/decomposition/CMakeFiles/oblv_decomposition.dir/decomposition.cpp.o" "gcc" "src/decomposition/CMakeFiles/oblv_decomposition.dir/decomposition.cpp.o.d"
  "/root/repo/src/decomposition/render.cpp" "src/decomposition/CMakeFiles/oblv_decomposition.dir/render.cpp.o" "gcc" "src/decomposition/CMakeFiles/oblv_decomposition.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/oblv_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oblv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
