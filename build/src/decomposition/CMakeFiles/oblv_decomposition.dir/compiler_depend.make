# Empty compiler generated dependencies file for oblv_decomposition.
# This may be replaced when dependencies are built.
