file(REMOVE_RECURSE
  "liboblv_decomposition.a"
)
