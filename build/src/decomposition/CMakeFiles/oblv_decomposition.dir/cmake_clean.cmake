file(REMOVE_RECURSE
  "CMakeFiles/oblv_decomposition.dir/access_graph.cpp.o"
  "CMakeFiles/oblv_decomposition.dir/access_graph.cpp.o.d"
  "CMakeFiles/oblv_decomposition.dir/decomposition.cpp.o"
  "CMakeFiles/oblv_decomposition.dir/decomposition.cpp.o.d"
  "CMakeFiles/oblv_decomposition.dir/render.cpp.o"
  "CMakeFiles/oblv_decomposition.dir/render.cpp.o.d"
  "liboblv_decomposition.a"
  "liboblv_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
