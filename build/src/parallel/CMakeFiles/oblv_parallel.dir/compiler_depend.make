# Empty compiler generated dependencies file for oblv_parallel.
# This may be replaced when dependencies are built.
