file(REMOVE_RECURSE
  "liboblv_parallel.a"
)
