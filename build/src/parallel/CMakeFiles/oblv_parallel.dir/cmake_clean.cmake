file(REMOVE_RECURSE
  "CMakeFiles/oblv_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/oblv_parallel.dir/thread_pool.cpp.o.d"
  "liboblv_parallel.a"
  "liboblv_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
