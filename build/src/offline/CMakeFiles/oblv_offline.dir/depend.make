# Empty dependencies file for oblv_offline.
# This may be replaced when dependencies are built.
