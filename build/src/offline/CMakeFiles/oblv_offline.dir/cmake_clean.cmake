file(REMOVE_RECURSE
  "CMakeFiles/oblv_offline.dir/greedy.cpp.o"
  "CMakeFiles/oblv_offline.dir/greedy.cpp.o.d"
  "liboblv_offline.a"
  "liboblv_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
