file(REMOVE_RECURSE
  "liboblv_offline.a"
)
