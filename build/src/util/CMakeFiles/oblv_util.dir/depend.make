# Empty dependencies file for oblv_util.
# This may be replaced when dependencies are built.
