file(REMOVE_RECURSE
  "liboblv_util.a"
)
