file(REMOVE_RECURSE
  "CMakeFiles/oblv_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/oblv_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/oblv_util.dir/flags.cpp.o"
  "CMakeFiles/oblv_util.dir/flags.cpp.o.d"
  "CMakeFiles/oblv_util.dir/table.cpp.o"
  "CMakeFiles/oblv_util.dir/table.cpp.o.d"
  "liboblv_util.a"
  "liboblv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
