file(REMOVE_RECURSE
  "liboblv_core.a"
)
