file(REMOVE_RECURSE
  "CMakeFiles/oblv_core.dir/oblivious_routing.cpp.o"
  "CMakeFiles/oblv_core.dir/oblivious_routing.cpp.o.d"
  "liboblv_core.a"
  "liboblv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
