# Empty compiler generated dependencies file for oblv_core.
# This may be replaced when dependencies are built.
