
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/baselines.cpp" "src/routing/CMakeFiles/oblv_routing.dir/baselines.cpp.o" "gcc" "src/routing/CMakeFiles/oblv_routing.dir/baselines.cpp.o.d"
  "/root/repo/src/routing/bounded_valiant.cpp" "src/routing/CMakeFiles/oblv_routing.dir/bounded_valiant.cpp.o" "gcc" "src/routing/CMakeFiles/oblv_routing.dir/bounded_valiant.cpp.o.d"
  "/root/repo/src/routing/hierarchical.cpp" "src/routing/CMakeFiles/oblv_routing.dir/hierarchical.cpp.o" "gcc" "src/routing/CMakeFiles/oblv_routing.dir/hierarchical.cpp.o.d"
  "/root/repo/src/routing/kchoice.cpp" "src/routing/CMakeFiles/oblv_routing.dir/kchoice.cpp.o" "gcc" "src/routing/CMakeFiles/oblv_routing.dir/kchoice.cpp.o.d"
  "/root/repo/src/routing/one_bend.cpp" "src/routing/CMakeFiles/oblv_routing.dir/one_bend.cpp.o" "gcc" "src/routing/CMakeFiles/oblv_routing.dir/one_bend.cpp.o.d"
  "/root/repo/src/routing/registry.cpp" "src/routing/CMakeFiles/oblv_routing.dir/registry.cpp.o" "gcc" "src/routing/CMakeFiles/oblv_routing.dir/registry.cpp.o.d"
  "/root/repo/src/routing/staircase.cpp" "src/routing/CMakeFiles/oblv_routing.dir/staircase.cpp.o" "gcc" "src/routing/CMakeFiles/oblv_routing.dir/staircase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/oblv_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/decomposition/CMakeFiles/oblv_decomposition.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oblv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
