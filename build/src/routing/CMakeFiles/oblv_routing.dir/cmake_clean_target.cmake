file(REMOVE_RECURSE
  "liboblv_routing.a"
)
