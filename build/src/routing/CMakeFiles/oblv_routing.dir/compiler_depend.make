# Empty compiler generated dependencies file for oblv_routing.
# This may be replaced when dependencies are built.
