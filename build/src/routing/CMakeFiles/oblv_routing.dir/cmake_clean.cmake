file(REMOVE_RECURSE
  "CMakeFiles/oblv_routing.dir/baselines.cpp.o"
  "CMakeFiles/oblv_routing.dir/baselines.cpp.o.d"
  "CMakeFiles/oblv_routing.dir/bounded_valiant.cpp.o"
  "CMakeFiles/oblv_routing.dir/bounded_valiant.cpp.o.d"
  "CMakeFiles/oblv_routing.dir/hierarchical.cpp.o"
  "CMakeFiles/oblv_routing.dir/hierarchical.cpp.o.d"
  "CMakeFiles/oblv_routing.dir/kchoice.cpp.o"
  "CMakeFiles/oblv_routing.dir/kchoice.cpp.o.d"
  "CMakeFiles/oblv_routing.dir/one_bend.cpp.o"
  "CMakeFiles/oblv_routing.dir/one_bend.cpp.o.d"
  "CMakeFiles/oblv_routing.dir/registry.cpp.o"
  "CMakeFiles/oblv_routing.dir/registry.cpp.o.d"
  "CMakeFiles/oblv_routing.dir/staircase.cpp.o"
  "CMakeFiles/oblv_routing.dir/staircase.cpp.o.d"
  "liboblv_routing.a"
  "liboblv_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
