file(REMOVE_RECURSE
  "liboblv_mesh.a"
)
