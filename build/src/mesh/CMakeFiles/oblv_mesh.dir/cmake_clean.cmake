file(REMOVE_RECURSE
  "CMakeFiles/oblv_mesh.dir/mesh.cpp.o"
  "CMakeFiles/oblv_mesh.dir/mesh.cpp.o.d"
  "CMakeFiles/oblv_mesh.dir/path.cpp.o"
  "CMakeFiles/oblv_mesh.dir/path.cpp.o.d"
  "CMakeFiles/oblv_mesh.dir/region.cpp.o"
  "CMakeFiles/oblv_mesh.dir/region.cpp.o.d"
  "liboblv_mesh.a"
  "liboblv_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
