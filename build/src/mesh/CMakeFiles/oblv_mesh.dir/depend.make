# Empty dependencies file for oblv_mesh.
# This may be replaced when dependencies are built.
