
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/mesh.cpp" "src/mesh/CMakeFiles/oblv_mesh.dir/mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/oblv_mesh.dir/mesh.cpp.o.d"
  "/root/repo/src/mesh/path.cpp" "src/mesh/CMakeFiles/oblv_mesh.dir/path.cpp.o" "gcc" "src/mesh/CMakeFiles/oblv_mesh.dir/path.cpp.o.d"
  "/root/repo/src/mesh/region.cpp" "src/mesh/CMakeFiles/oblv_mesh.dir/region.cpp.o" "gcc" "src/mesh/CMakeFiles/oblv_mesh.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oblv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
