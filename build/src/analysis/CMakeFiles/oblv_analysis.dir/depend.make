# Empty dependencies file for oblv_analysis.
# This may be replaced when dependencies are built.
