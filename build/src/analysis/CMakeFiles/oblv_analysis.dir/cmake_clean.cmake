file(REMOVE_RECURSE
  "CMakeFiles/oblv_analysis.dir/congestion.cpp.o"
  "CMakeFiles/oblv_analysis.dir/congestion.cpp.o.d"
  "CMakeFiles/oblv_analysis.dir/evaluate.cpp.o"
  "CMakeFiles/oblv_analysis.dir/evaluate.cpp.o.d"
  "CMakeFiles/oblv_analysis.dir/heatmap.cpp.o"
  "CMakeFiles/oblv_analysis.dir/heatmap.cpp.o.d"
  "CMakeFiles/oblv_analysis.dir/lower_bound.cpp.o"
  "CMakeFiles/oblv_analysis.dir/lower_bound.cpp.o.d"
  "CMakeFiles/oblv_analysis.dir/trials.cpp.o"
  "CMakeFiles/oblv_analysis.dir/trials.cpp.o.d"
  "liboblv_analysis.a"
  "liboblv_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
