file(REMOVE_RECURSE
  "liboblv_analysis.a"
)
