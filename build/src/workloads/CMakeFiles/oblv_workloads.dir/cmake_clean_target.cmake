file(REMOVE_RECURSE
  "liboblv_workloads.a"
)
