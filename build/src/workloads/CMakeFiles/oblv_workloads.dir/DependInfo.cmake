
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adversarial.cpp" "src/workloads/CMakeFiles/oblv_workloads.dir/adversarial.cpp.o" "gcc" "src/workloads/CMakeFiles/oblv_workloads.dir/adversarial.cpp.o.d"
  "/root/repo/src/workloads/generators.cpp" "src/workloads/CMakeFiles/oblv_workloads.dir/generators.cpp.o" "gcc" "src/workloads/CMakeFiles/oblv_workloads.dir/generators.cpp.o.d"
  "/root/repo/src/workloads/io.cpp" "src/workloads/CMakeFiles/oblv_workloads.dir/io.cpp.o" "gcc" "src/workloads/CMakeFiles/oblv_workloads.dir/io.cpp.o.d"
  "/root/repo/src/workloads/problem.cpp" "src/workloads/CMakeFiles/oblv_workloads.dir/problem.cpp.o" "gcc" "src/workloads/CMakeFiles/oblv_workloads.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/oblv_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/oblv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/decomposition/CMakeFiles/oblv_decomposition.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oblv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
