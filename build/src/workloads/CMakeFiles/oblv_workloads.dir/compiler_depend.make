# Empty compiler generated dependencies file for oblv_workloads.
# This may be replaced when dependencies are built.
