file(REMOVE_RECURSE
  "CMakeFiles/oblv_workloads.dir/adversarial.cpp.o"
  "CMakeFiles/oblv_workloads.dir/adversarial.cpp.o.d"
  "CMakeFiles/oblv_workloads.dir/generators.cpp.o"
  "CMakeFiles/oblv_workloads.dir/generators.cpp.o.d"
  "CMakeFiles/oblv_workloads.dir/io.cpp.o"
  "CMakeFiles/oblv_workloads.dir/io.cpp.o.d"
  "CMakeFiles/oblv_workloads.dir/problem.cpp.o"
  "CMakeFiles/oblv_workloads.dir/problem.cpp.o.d"
  "liboblv_workloads.a"
  "liboblv_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
