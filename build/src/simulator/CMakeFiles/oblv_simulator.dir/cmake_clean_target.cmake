file(REMOVE_RECURSE
  "liboblv_simulator.a"
)
