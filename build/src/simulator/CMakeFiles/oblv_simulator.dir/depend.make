# Empty dependencies file for oblv_simulator.
# This may be replaced when dependencies are built.
