file(REMOVE_RECURSE
  "CMakeFiles/oblv_simulator.dir/cut_through.cpp.o"
  "CMakeFiles/oblv_simulator.dir/cut_through.cpp.o.d"
  "CMakeFiles/oblv_simulator.dir/online.cpp.o"
  "CMakeFiles/oblv_simulator.dir/online.cpp.o.d"
  "CMakeFiles/oblv_simulator.dir/simulator.cpp.o"
  "CMakeFiles/oblv_simulator.dir/simulator.cpp.o.d"
  "liboblv_simulator.a"
  "liboblv_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
