file(REMOVE_RECURSE
  "CMakeFiles/oblv_decompose.dir/oblv_decompose.cpp.o"
  "CMakeFiles/oblv_decompose.dir/oblv_decompose.cpp.o.d"
  "oblv_decompose"
  "oblv_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
