# Empty dependencies file for oblv_decompose.
# This may be replaced when dependencies are built.
