# Empty compiler generated dependencies file for oblv_route.
# This may be replaced when dependencies are built.
