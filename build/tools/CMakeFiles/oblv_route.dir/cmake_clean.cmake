file(REMOVE_RECURSE
  "CMakeFiles/oblv_route.dir/oblv_route.cpp.o"
  "CMakeFiles/oblv_route.dir/oblv_route.cpp.o.d"
  "oblv_route"
  "oblv_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblv_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
