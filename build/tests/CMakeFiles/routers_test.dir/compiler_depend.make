# Empty compiler generated dependencies file for routers_test.
# This may be replaced when dependencies are built.
