file(REMOVE_RECURSE
  "CMakeFiles/routers_test.dir/routers_test.cpp.o"
  "CMakeFiles/routers_test.dir/routers_test.cpp.o.d"
  "routers_test"
  "routers_test.pdb"
  "routers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
