file(REMOVE_RECURSE
  "CMakeFiles/one_bend_test.dir/one_bend_test.cpp.o"
  "CMakeFiles/one_bend_test.dir/one_bend_test.cpp.o.d"
  "one_bend_test"
  "one_bend_test.pdb"
  "one_bend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_bend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
