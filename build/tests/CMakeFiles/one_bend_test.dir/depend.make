# Empty dependencies file for one_bend_test.
# This may be replaced when dependencies are built.
