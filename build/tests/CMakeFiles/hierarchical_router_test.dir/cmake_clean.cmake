file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_router_test.dir/hierarchical_router_test.cpp.o"
  "CMakeFiles/hierarchical_router_test.dir/hierarchical_router_test.cpp.o.d"
  "hierarchical_router_test"
  "hierarchical_router_test.pdb"
  "hierarchical_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
