# Empty dependencies file for hierarchical_router_test.
# This may be replaced when dependencies are built.
