# Empty dependencies file for bridge_height_test.
# This may be replaced when dependencies are built.
