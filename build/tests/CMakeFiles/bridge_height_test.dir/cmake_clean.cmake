file(REMOVE_RECURSE
  "CMakeFiles/bridge_height_test.dir/bridge_height_test.cpp.o"
  "CMakeFiles/bridge_height_test.dir/bridge_height_test.cpp.o.d"
  "bridge_height_test"
  "bridge_height_test.pdb"
  "bridge_height_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_height_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
