file(REMOVE_RECURSE
  "CMakeFiles/trials_test.dir/trials_test.cpp.o"
  "CMakeFiles/trials_test.dir/trials_test.cpp.o.d"
  "trials_test"
  "trials_test.pdb"
  "trials_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trials_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
