# Empty compiler generated dependencies file for decomposition_nd_property_test.
# This may be replaced when dependencies are built.
