file(REMOVE_RECURSE
  "CMakeFiles/decomposition_nd_property_test.dir/decomposition_nd_property_test.cpp.o"
  "CMakeFiles/decomposition_nd_property_test.dir/decomposition_nd_property_test.cpp.o.d"
  "decomposition_nd_property_test"
  "decomposition_nd_property_test.pdb"
  "decomposition_nd_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposition_nd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
