file(REMOVE_RECURSE
  "CMakeFiles/cut_through_test.dir/cut_through_test.cpp.o"
  "CMakeFiles/cut_through_test.dir/cut_through_test.cpp.o.d"
  "cut_through_test"
  "cut_through_test.pdb"
  "cut_through_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cut_through_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
