# Empty dependencies file for cut_through_test.
# This may be replaced when dependencies are built.
