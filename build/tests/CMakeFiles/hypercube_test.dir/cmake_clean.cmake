file(REMOVE_RECURSE
  "CMakeFiles/hypercube_test.dir/hypercube_test.cpp.o"
  "CMakeFiles/hypercube_test.dir/hypercube_test.cpp.o.d"
  "hypercube_test"
  "hypercube_test.pdb"
  "hypercube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
