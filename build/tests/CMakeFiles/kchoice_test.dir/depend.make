# Empty dependencies file for kchoice_test.
# This may be replaced when dependencies are built.
