file(REMOVE_RECURSE
  "CMakeFiles/kchoice_test.dir/kchoice_test.cpp.o"
  "CMakeFiles/kchoice_test.dir/kchoice_test.cpp.o.d"
  "kchoice_test"
  "kchoice_test.pdb"
  "kchoice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kchoice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
