# Empty dependencies file for bounded_valiant_test.
# This may be replaced when dependencies are built.
