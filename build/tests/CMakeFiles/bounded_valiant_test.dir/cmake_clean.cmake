file(REMOVE_RECURSE
  "CMakeFiles/bounded_valiant_test.dir/bounded_valiant_test.cpp.o"
  "CMakeFiles/bounded_valiant_test.dir/bounded_valiant_test.cpp.o.d"
  "bounded_valiant_test"
  "bounded_valiant_test.pdb"
  "bounded_valiant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_valiant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
