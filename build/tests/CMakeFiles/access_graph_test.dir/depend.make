# Empty dependencies file for access_graph_test.
# This may be replaced when dependencies are built.
