file(REMOVE_RECURSE
  "CMakeFiles/access_graph_test.dir/access_graph_test.cpp.o"
  "CMakeFiles/access_graph_test.dir/access_graph_test.cpp.o.d"
  "access_graph_test"
  "access_graph_test.pdb"
  "access_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
