file(REMOVE_RECURSE
  "CMakeFiles/routers_multidim_test.dir/routers_multidim_test.cpp.o"
  "CMakeFiles/routers_multidim_test.dir/routers_multidim_test.cpp.o.d"
  "routers_multidim_test"
  "routers_multidim_test.pdb"
  "routers_multidim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routers_multidim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
