# Empty compiler generated dependencies file for locality_traffic.
# This may be replaced when dependencies are built.
