file(REMOVE_RECURSE
  "CMakeFiles/locality_traffic.dir/locality_traffic.cpp.o"
  "CMakeFiles/locality_traffic.dir/locality_traffic.cpp.o.d"
  "locality_traffic"
  "locality_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
