file(REMOVE_RECURSE
  "CMakeFiles/offline_vs_oblivious.dir/offline_vs_oblivious.cpp.o"
  "CMakeFiles/offline_vs_oblivious.dir/offline_vs_oblivious.cpp.o.d"
  "offline_vs_oblivious"
  "offline_vs_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_vs_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
