# Empty dependencies file for offline_vs_oblivious.
# This may be replaced when dependencies are built.
