# Empty dependencies file for multidim_tour.
# This may be replaced when dependencies are built.
