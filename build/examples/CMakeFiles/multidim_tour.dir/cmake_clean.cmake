file(REMOVE_RECURSE
  "CMakeFiles/multidim_tour.dir/multidim_tour.cpp.o"
  "CMakeFiles/multidim_tour.dir/multidim_tour.cpp.o.d"
  "multidim_tour"
  "multidim_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidim_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
