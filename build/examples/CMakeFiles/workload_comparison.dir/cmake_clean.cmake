file(REMOVE_RECURSE
  "CMakeFiles/workload_comparison.dir/workload_comparison.cpp.o"
  "CMakeFiles/workload_comparison.dir/workload_comparison.cpp.o.d"
  "workload_comparison"
  "workload_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
