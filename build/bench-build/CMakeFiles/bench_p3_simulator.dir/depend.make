# Empty dependencies file for bench_p3_simulator.
# This may be replaced when dependencies are built.
