file(REMOVE_RECURSE
  "../bench/bench_p3_simulator"
  "../bench/bench_p3_simulator.pdb"
  "CMakeFiles/bench_p3_simulator.dir/bench_p3_simulator.cpp.o"
  "CMakeFiles/bench_p3_simulator.dir/bench_p3_simulator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p3_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
