# Empty compiler generated dependencies file for bench_e15_cut_through.
# This may be replaced when dependencies are built.
