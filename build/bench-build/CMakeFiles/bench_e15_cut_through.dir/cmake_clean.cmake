file(REMOVE_RECURSE
  "../bench/bench_e15_cut_through"
  "../bench/bench_e15_cut_through.pdb"
  "CMakeFiles/bench_e15_cut_through.dir/bench_e15_cut_through.cpp.o"
  "CMakeFiles/bench_e15_cut_through.dir/bench_e15_cut_through.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_cut_through.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
