file(REMOVE_RECURSE
  "../bench/bench_e6_deterministic_lb"
  "../bench/bench_e6_deterministic_lb.pdb"
  "CMakeFiles/bench_e6_deterministic_lb.dir/bench_e6_deterministic_lb.cpp.o"
  "CMakeFiles/bench_e6_deterministic_lb.dir/bench_e6_deterministic_lb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_deterministic_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
