# Empty compiler generated dependencies file for bench_e6_deterministic_lb.
# This may be replaced when dependencies are built.
