# Empty dependencies file for bench_e5_bridge_height.
# This may be replaced when dependencies are built.
