file(REMOVE_RECURSE
  "../bench/bench_e5_bridge_height"
  "../bench/bench_e5_bridge_height.pdb"
  "CMakeFiles/bench_e5_bridge_height.dir/bench_e5_bridge_height.cpp.o"
  "CMakeFiles/bench_e5_bridge_height.dir/bench_e5_bridge_height.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_bridge_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
