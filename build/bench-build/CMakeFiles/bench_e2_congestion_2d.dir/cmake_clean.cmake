file(REMOVE_RECURSE
  "../bench/bench_e2_congestion_2d"
  "../bench/bench_e2_congestion_2d.pdb"
  "CMakeFiles/bench_e2_congestion_2d.dir/bench_e2_congestion_2d.cpp.o"
  "CMakeFiles/bench_e2_congestion_2d.dir/bench_e2_congestion_2d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_congestion_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
