# Empty compiler generated dependencies file for bench_e2_congestion_2d.
# This may be replaced when dependencies are built.
