# Empty dependencies file for bench_e8_routing_time.
# This may be replaced when dependencies are built.
