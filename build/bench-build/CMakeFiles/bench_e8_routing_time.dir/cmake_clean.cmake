file(REMOVE_RECURSE
  "../bench/bench_e8_routing_time"
  "../bench/bench_e8_routing_time.pdb"
  "CMakeFiles/bench_e8_routing_time.dir/bench_e8_routing_time.cpp.o"
  "CMakeFiles/bench_e8_routing_time.dir/bench_e8_routing_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_routing_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
