# Empty dependencies file for bench_e13_hypercube.
# This may be replaced when dependencies are built.
