file(REMOVE_RECURSE
  "../bench/bench_e13_hypercube"
  "../bench/bench_e13_hypercube.pdb"
  "CMakeFiles/bench_e13_hypercube.dir/bench_e13_hypercube.cpp.o"
  "CMakeFiles/bench_e13_hypercube.dir/bench_e13_hypercube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
