# Empty compiler generated dependencies file for bench_e4_congestion_ddim.
# This may be replaced when dependencies are built.
