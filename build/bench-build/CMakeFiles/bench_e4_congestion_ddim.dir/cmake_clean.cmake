file(REMOVE_RECURSE
  "../bench/bench_e4_congestion_ddim"
  "../bench/bench_e4_congestion_ddim.pdb"
  "CMakeFiles/bench_e4_congestion_ddim.dir/bench_e4_congestion_ddim.cpp.o"
  "CMakeFiles/bench_e4_congestion_ddim.dir/bench_e4_congestion_ddim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_congestion_ddim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
