file(REMOVE_RECURSE
  "../bench/bench_p2_decomposition"
  "../bench/bench_p2_decomposition.pdb"
  "CMakeFiles/bench_p2_decomposition.dir/bench_p2_decomposition.cpp.o"
  "CMakeFiles/bench_p2_decomposition.dir/bench_p2_decomposition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
