# Empty dependencies file for bench_p2_decomposition.
# This may be replaced when dependencies are built.
