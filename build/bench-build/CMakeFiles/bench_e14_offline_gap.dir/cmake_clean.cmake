file(REMOVE_RECURSE
  "../bench/bench_e14_offline_gap"
  "../bench/bench_e14_offline_gap.pdb"
  "CMakeFiles/bench_e14_offline_gap.dir/bench_e14_offline_gap.cpp.o"
  "CMakeFiles/bench_e14_offline_gap.dir/bench_e14_offline_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_offline_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
