# Empty compiler generated dependencies file for bench_e3_stretch_ddim.
# This may be replaced when dependencies are built.
