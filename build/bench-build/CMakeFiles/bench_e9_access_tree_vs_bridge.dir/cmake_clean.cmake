file(REMOVE_RECURSE
  "../bench/bench_e9_access_tree_vs_bridge"
  "../bench/bench_e9_access_tree_vs_bridge.pdb"
  "CMakeFiles/bench_e9_access_tree_vs_bridge.dir/bench_e9_access_tree_vs_bridge.cpp.o"
  "CMakeFiles/bench_e9_access_tree_vs_bridge.dir/bench_e9_access_tree_vs_bridge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_access_tree_vs_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
