# Empty compiler generated dependencies file for bench_e9_access_tree_vs_bridge.
# This may be replaced when dependencies are built.
