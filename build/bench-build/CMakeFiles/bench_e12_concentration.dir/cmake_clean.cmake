file(REMOVE_RECURSE
  "../bench/bench_e12_concentration"
  "../bench/bench_e12_concentration.pdb"
  "CMakeFiles/bench_e12_concentration.dir/bench_e12_concentration.cpp.o"
  "CMakeFiles/bench_e12_concentration.dir/bench_e12_concentration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
