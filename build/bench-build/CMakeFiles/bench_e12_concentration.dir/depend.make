# Empty dependencies file for bench_e12_concentration.
# This may be replaced when dependencies are built.
