# Empty compiler generated dependencies file for bench_fig2_decomposition_3d.
# This may be replaced when dependencies are built.
