# Empty compiler generated dependencies file for bench_e10_kappa_choices.
# This may be replaced when dependencies are built.
