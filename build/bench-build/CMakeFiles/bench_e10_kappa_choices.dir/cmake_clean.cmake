file(REMOVE_RECURSE
  "../bench/bench_e10_kappa_choices"
  "../bench/bench_e10_kappa_choices.pdb"
  "CMakeFiles/bench_e10_kappa_choices.dir/bench_e10_kappa_choices.cpp.o"
  "CMakeFiles/bench_e10_kappa_choices.dir/bench_e10_kappa_choices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_kappa_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
