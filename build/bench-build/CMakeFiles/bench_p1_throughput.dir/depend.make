# Empty dependencies file for bench_p1_throughput.
# This may be replaced when dependencies are built.
