file(REMOVE_RECURSE
  "../bench/bench_p1_throughput"
  "../bench/bench_p1_throughput.pdb"
  "CMakeFiles/bench_p1_throughput.dir/bench_p1_throughput.cpp.o"
  "CMakeFiles/bench_p1_throughput.dir/bench_p1_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
