
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_p1_throughput.cpp" "bench-build/CMakeFiles/bench_p1_throughput.dir/bench_p1_throughput.cpp.o" "gcc" "bench-build/CMakeFiles/bench_p1_throughput.dir/bench_p1_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oblv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/oblv_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/oblv_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/oblv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/oblv_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/oblv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/decomposition/CMakeFiles/oblv_decomposition.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/oblv_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/oblv_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oblv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
