# Empty compiler generated dependencies file for bench_fig1_decomposition_2d.
# This may be replaced when dependencies are built.
