file(REMOVE_RECURSE
  "../bench/bench_fig1_decomposition_2d"
  "../bench/bench_fig1_decomposition_2d.pdb"
  "CMakeFiles/bench_fig1_decomposition_2d.dir/bench_fig1_decomposition_2d.cpp.o"
  "CMakeFiles/bench_fig1_decomposition_2d.dir/bench_fig1_decomposition_2d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_decomposition_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
