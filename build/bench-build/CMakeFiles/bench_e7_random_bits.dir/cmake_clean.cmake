file(REMOVE_RECURSE
  "../bench/bench_e7_random_bits"
  "../bench/bench_e7_random_bits.pdb"
  "CMakeFiles/bench_e7_random_bits.dir/bench_e7_random_bits.cpp.o"
  "CMakeFiles/bench_e7_random_bits.dir/bench_e7_random_bits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_random_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
