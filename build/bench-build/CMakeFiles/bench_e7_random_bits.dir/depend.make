# Empty dependencies file for bench_e7_random_bits.
# This may be replaced when dependencies are built.
