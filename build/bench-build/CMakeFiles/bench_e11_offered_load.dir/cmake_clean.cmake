file(REMOVE_RECURSE
  "../bench/bench_e11_offered_load"
  "../bench/bench_e11_offered_load.pdb"
  "CMakeFiles/bench_e11_offered_load.dir/bench_e11_offered_load.cpp.o"
  "CMakeFiles/bench_e11_offered_load.dir/bench_e11_offered_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_offered_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
