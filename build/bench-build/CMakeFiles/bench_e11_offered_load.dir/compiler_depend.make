# Empty compiler generated dependencies file for bench_e11_offered_load.
# This may be replaced when dependencies are built.
