# Empty compiler generated dependencies file for bench_e1_stretch_2d.
# This may be replaced when dependencies are built.
