// Shared helpers for the experiment harnesses in bench/.
//
// Each bench_e*/bench_fig* binary regenerates one row of the experiment
// index in DESIGN.md: it prints the workload, the measured series, and the
// paper's analytical expectation next to each other. EXPERIMENTS.md
// records the output of a full run.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace oblivious::bench {

namespace detail {
inline std::string& bench_id() {
  static std::string id;
  return id;
}
}  // namespace detail

// Writes the standard {"schema", "bench", "metrics"} envelope to the path
// named by the OBLV_METRICS_JSON environment variable. No-op when the
// variable is unset, so every bench binary can call this unconditionally.
inline void emit_metrics_json(const std::string& id) {
  const char* path = std::getenv("OBLV_METRICS_JSON");
  if (path == nullptr || *path == '\0') return;
  try {
    obs::write_metrics_json_file(path, {{"bench", id}},
                                 obs::MetricsRegistry::global().snapshot());
  } catch (const std::exception& e) {
    std::cerr << "metrics export failed: " << e.what() << "\n";
  }
}

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=============================================================\n"
            << id << "\n" << claim << "\n"
            << "=============================================================\n";
  // Every experiment harness announces itself through banner(); piggyback
  // the metrics emitter on it so OBLV_METRICS_JSON works for all of them.
  detail::bench_id() = id;
  static const bool registered = [] {
    std::atexit([] { emit_metrics_json(detail::bench_id()); });
    return true;
  }();
  (void)registered;
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

// Benches honor OBLV_BENCH_SCALE (default 1) to run larger sweeps.
inline int scale() {
  const char* env = std::getenv("OBLV_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int s = std::atoi(env);
  return s >= 1 ? s : 1;
}

}  // namespace oblivious::bench
