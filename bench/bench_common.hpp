// Shared helpers for the experiment harnesses in bench/.
//
// Each bench_e*/bench_fig* binary regenerates one row of the experiment
// index in DESIGN.md: it prints the workload, the measured series, and the
// paper's analytical expectation next to each other. EXPERIMENTS.md
// records the output of a full run.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "util/table.hpp"
#include "util/timer.hpp"

namespace oblivious::bench {

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=============================================================\n"
            << id << "\n" << claim << "\n"
            << "=============================================================\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

// Benches honor OBLV_BENCH_SCALE (default 1) to run larger sweeps.
inline int scale() {
  const char* env = std::getenv("OBLV_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int s = std::atoi(env);
  return s >= 1 ? s : 1;
}

}  // namespace oblivious::bench
