// E12 -- the "with high probability" part of Theorem 3.9 and the
// analytical expectation bound of Lemma 3.8.
//
// Theorem 3.9's proof has two steps: (a) E[C(e)] <= 16 C* (log2 D + 3) for
// every edge e (Lemma 3.8), then (b) a Chernoff bound concentrates C around
// its expectation because packets choose independently. We reproduce both:
// the maximum *empirical* per-edge expected load over many trials sits far
// below the Lemma 3.8 bound, and the trial-to-trial distribution of C is
// tightly concentrated (small stddev/mean, max/min close to 1).
#include <cmath>
#include <iostream>

#include "analysis/trials.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E12 / Lemma 3.8 + Theorem 3.9 (w.h.p.)",
                "per-edge expected load vs the analytic bound; "
                "trial-to-trial concentration of C");

  const int trials = 40 * bench::scale();
  ThreadPool pool;
  Table table({"mesh", "workload", "E[C(e)] max", "Lemma 3.8 bound",
               "C mean", "C stddev", "C min", "C max", "C max/min"});
  for (const std::int64_t side : {32, 64}) {
    const Mesh mesh({side, side});
    Rng wrng(3);
    const struct {
      std::string name;
      RoutingProblem problem;
    } workloads[] = {{"transpose", transpose(mesh)},
                     {"random-perm", random_permutation(mesh, wrng)}};
    for (const auto& w : workloads) {
      const auto router = make_router(Algorithm::kHierarchical2d, mesh);
      const TrialSummary s =
          evaluate_trials(mesh, *router, w.problem, trials, 1000, &pool);
      const double log_d =
          std::log2(static_cast<double>(w.problem.max_distance(mesh)));
      const double lemma38 = 16.0 * s.lower_bound * (log_d + 3.0);
      table.row()
          .add(mesh.describe())
          .add(w.name)
          .add(s.max_expected_edge_load, 1)
          .add(lemma38, 1)
          .add(s.congestion.mean(), 1)
          .add(s.congestion.stddev(), 2)
          .add(s.congestion.min(), 0)
          .add(s.congestion.max(), 0)
          .add(s.congestion.max() / s.congestion.min(), 2);
    }
  }
  table.print(std::cout);
  bench::note(
      "\nExpected: the measured max expected edge load sits well below the\n"
      "16 C* (log2 D + 3) bound of Lemma 3.8 (the analysis is loose by\n"
      "design), and C concentrates: stddev is a few percent of the mean and\n"
      "the max/min ratio over independent trials stays close to 1 -- the\n"
      "'with high probability' in Theorem 3.9 is visible in the data.");
  return 0;
}
