// F1 -- Figure 1 of the paper: the 2D mesh decomposition.
//
// Renders the type-1 and type-2 families of an 8x8 mesh level by level
// (the paper draws the analogous picture) and tabulates, for a larger
// mesh, the exact submesh counts per level/type together with the
// properties of Lemma 3.1 verified exhaustively.
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/decomposition.hpp"
#include "decomposition/render.hpp"

int main() {
  using namespace oblivious;
  bench::banner("F1 / Figure 1",
                "2D mesh decomposition: type-1 quadtree + diagonally shifted "
                "type-2 submeshes (corners discarded at the mesh border)");

  const Mesh small({8, 8});
  const Decomposition dec = Decomposition::section3(small);
  for (int level = 1; level <= 2; ++level) {
    std::cout << render_level(dec, level);
  }

  bench::note("Submesh census on the 64x64 mesh:");
  const Mesh big({64, 64});
  const Decomposition bigdec = Decomposition::section3(big);
  Table table({"level", "side m_l", "shift m_l/2", "type-1 count",
               "type-2 count", "type-2 internal", "type-2 truncated"});
  for (int level = 0; level <= bigdec.leaf_level(); ++level) {
    std::int64_t t1 = 0;
    std::int64_t t2 = 0;
    std::int64_t internal = 0;
    bigdec.for_each_submesh(level, 1, [&](const RegularSubmesh&) { ++t1; });
    if (bigdec.num_types(level) >= 2) {
      bigdec.for_each_submesh(level, 2, [&](const RegularSubmesh& sm) {
        ++t2;
        if (!sm.truncated) ++internal;
      });
    }
    table.row()
        .add(level)
        .add(bigdec.side_at(level))
        .add(bigdec.side_at(level) / 2)
        .add(t1)
        .add(t2)
        .add(internal)
        .add(t2 - internal);
  }
  table.print(std::cout);

  bench::note(
      "\nLemma 3.1 checks (exhaustive on 64x64): type-1 partitions every\n"
      "level; the type-2 family is disjoint; every regular submesh splits\n"
      "exactly into type-1 children -- all verified in the test suite\n"
      "(decomposition_test.cpp); counts above show the structure.");
  return 0;
}
