// P1 -- path-selection throughput (google-benchmark).
//
// Routes random pairs with every algorithm; reports ns/path. Oblivious
// selection is a few microseconds per packet -- fast enough for online,
// per-packet use, which is the deployment model the paper argues for.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "routing/registry.hpp"

namespace {

using namespace oblivious;

void route_benchmark(benchmark::State& state, Algorithm algorithm,
                     const Mesh& mesh) {
  const auto router = make_router(algorithm, mesh);
  Rng rng(1);
  Rng pair_rng(2);
  for (auto _ : state) {
    const NodeId s = static_cast<NodeId>(
        pair_rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    const NodeId t = static_cast<NodeId>(
        pair_rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    benchmark::DoNotOptimize(router->route(s, t, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

const Mesh& mesh_2d() {
  static const Mesh mesh = Mesh::cube(2, 64);
  return mesh;
}

const Mesh& mesh_3d() {
  static const Mesh mesh = Mesh::cube(3, 16, /*torus=*/true);
  return mesh;
}

}  // namespace

int main(int argc, char** argv) {
  for (const Algorithm a : algorithms_for(mesh_2d())) {
    benchmark::RegisterBenchmark(
        ("route_2d_64x64/" + algorithm_name(a)).c_str(),
        [a](benchmark::State& state) { route_benchmark(state, a, mesh_2d()); });
  }
  for (const Algorithm a : algorithms_for(mesh_3d())) {
    benchmark::RegisterBenchmark(
        ("route_3d_16x16x16/" + algorithm_name(a)).c_str(),
        [a](benchmark::State& state) { route_benchmark(state, a, mesh_3d()); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  oblivious::bench::emit_metrics_json("bench_p1_throughput");
  return 0;
}
