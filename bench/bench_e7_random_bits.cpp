// E7 -- Section 5 / Lemma 5.4 / Theorem 5.5: the algorithm needs only
// O(d log(D d)) random bits per packet, within O(d) of the lower bound.
//
// Measures metered bits per packet for the naive and frugal variants over
// distance-controlled traffic (D = 2^j), next to the d*log2(D*d) reference
// curve, and sweeps d at fixed distance. Expected shape: frugal tracks
// c * d log(Dd); naive carries an extra log(Dd) factor; the deterministic
// baseline consumes zero bits (and E6 shows what that costs).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "routing/hierarchical.hpp"
#include "routing/registry.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace oblivious;

RunningStats bits_per_packet(const Router& router,
                             const RoutingProblem& problem, std::uint64_t seed) {
  Rng rng(seed);
  BitMeter meter;
  rng.attach_meter(&meter);
  RunningStats stats;
  for (const Demand& d : problem.demands) {
    const std::uint64_t before = meter.bits;
    (void)router.route(d.src, d.dst, rng);
    stats.add(static_cast<double>(meter.bits - before));
  }
  return stats;
}

}  // namespace

int main() {
  bench::banner("E7 / Lemma 5.4 + Theorem 5.5",
                "random bits per packet: frugal = O(d log(D d)), within O(d) "
                "of the lower bound for any near-optimal algorithm");

  std::cout << "Sweep over packet distance D (2D torus 256x256):\n";
  const Mesh mesh = Mesh::cube(2, 256, /*torus=*/true);
  const NdRouter naive(mesh, NdRouter::RandomnessMode::kNaive);
  const NdRouter frugal(mesh, NdRouter::RandomnessMode::kFrugal);
  Table table({"D (=dist)", "bits naive", "bits frugal", "d*log2(D*d)",
               "frugal / d*log2(Dd)"});
  for (const std::int64_t dist : {2, 4, 8, 16, 32, 64, 128}) {
    Rng wrng(dist);
    const RoutingProblem problem =
        random_pairs_at_distance(mesh, wrng, 400, dist);
    const RunningStats nb = bits_per_packet(naive, problem, 3);
    const RunningStats fb = bits_per_packet(frugal, problem, 3);
    const double reference =
        2.0 * std::log2(static_cast<double>(dist) * 2.0);
    table.row()
        .add(dist)
        .add(nb.mean(), 1)
        .add(fb.mean(), 1)
        .add(reference, 1)
        .add(fb.mean() / reference, 2);
  }
  table.print(std::cout);

  std::cout << "\nSweep over dimension d (distance ~ side/2 pairs):\n";
  Table dsweep({"d", "mesh", "bits naive", "bits frugal", "d*log2(D*d)"});
  for (int d = 1; d <= 4; ++d) {
    const std::int64_t side = d == 1 ? 1024 : (d == 2 ? 64 : 16);
    const Mesh m = Mesh::cube(d, side, /*torus=*/true);
    const NdRouter mnaive(m, NdRouter::RandomnessMode::kNaive);
    const NdRouter mfrugal(m, NdRouter::RandomnessMode::kFrugal);
    const std::int64_t dist = side / 4;
    Rng wrng(d);
    const RoutingProblem problem = random_pairs_at_distance(m, wrng, 300, dist);
    const RunningStats nb = bits_per_packet(mnaive, problem, 7);
    const RunningStats fb = bits_per_packet(mfrugal, problem, 7);
    dsweep.row()
        .add(d)
        .add(m.describe())
        .add(nb.mean(), 1)
        .add(fb.mean(), 1)
        .add(d * std::log2(static_cast<double>(dist * d)), 1);
  }
  dsweep.print(std::cout);

  bench::note(
      "\nExpected: the frugal column stays within a constant multiple of the\n"
      "d*log2(Dd) reference (Lemma 5.4); naive grows with an extra log\n"
      "factor. Lemma 5.3 says Omega((D/(d 2^(1+C_A/...))) log d)-style bit\n"
      "counts are unavoidable for ANY algorithm matching H's congestion, so\n"
      "frugal is within O(d) of optimal (Theorem 5.5).");
  return 0;
}
