// P4 -- segment-path pipeline throughput (google-benchmark).
//
// The end-to-end measurement loop (route every packet, account every edge
// load) in two representations:
//   * node-list:  route() -> Path -> EdgeLoadMap::add_path, O(hops) per
//     packet with one edge-id computation per hop;
//   * segments:   route_segments() -> SegmentPath ->
//     EdgeLoadMap::add_segments, O(#segments) difference-array bumps per
//     packet plus a single prefix-sum flush at the end.
// A one-bend path on a 64x64 mesh is ~43 hops but only ~2 runs, so the
// segment pipeline does ~20x less accounting work and never materializes
// the node list. The `parallel` variant adds deterministic per-packet rng
// streams + sharded accumulators on a thread pool.
//
// Record with:
//   bench/bench_p4_pipeline --benchmark_out=BENCH_p4.json
//       --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include "analysis/congestion.hpp"
#include "bench_common.hpp"
#include "analysis/evaluate.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace oblivious;

constexpr std::size_t kPackets = 100000;

const Mesh& mesh_64() {
  static const Mesh mesh = Mesh::cube(2, 64);
  return mesh;
}

// 100k random source/destination pairs, fixed across all benchmarks.
const RoutingProblem& problem_100k() {
  static const RoutingProblem problem = [] {
    Rng rng(7);
    RoutingProblem p;
    p.demands.reserve(kPackets);
    const auto nodes = static_cast<std::uint64_t>(mesh_64().num_nodes());
    while (p.demands.size() < kPackets) {
      const auto s = static_cast<NodeId>(rng.uniform_below(nodes));
      const auto t = static_cast<NodeId>(rng.uniform_below(nodes));
      if (s != t) p.demands.push_back({s, t});
    }
    return p;
  }();
  return problem;
}

void pipeline_nodelist(benchmark::State& state, Algorithm algorithm) {
  const auto router = make_router(algorithm, mesh_64());
  for (auto _ : state) {
    Rng rng(1);
    EdgeLoadMap loads(mesh_64());
    for (const Demand& d : problem_100k().demands) {
      loads.add_path(router->route(d.src, d.dst, rng));
    }
    benchmark::DoNotOptimize(loads.max_load());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kPackets));
}

void pipeline_segments(benchmark::State& state, Algorithm algorithm) {
  const auto router = make_router(algorithm, mesh_64());
  for (auto _ : state) {
    Rng rng(1);
    EdgeLoadMap loads(mesh_64());
    for (const Demand& d : problem_100k().demands) {
      loads.add_segments(router->route_segments(d.src, d.dst, rng));
    }
    benchmark::DoNotOptimize(loads.max_load());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kPackets));
}

void pipeline_parallel(benchmark::State& state, Algorithm algorithm) {
  const auto router = make_router(algorithm, mesh_64());
  ThreadPool pool;  // hardware concurrency
  for (auto _ : state) {
    const RouteSetMetrics m = route_and_measure_parallel(
        mesh_64(), *router, problem_100k(), /*lower_bound=*/1.0, pool, 1);
    benchmark::DoNotOptimize(m.congestion);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kPackets));
}

}  // namespace

int main(int argc, char** argv) {
  for (const Algorithm a :
       {Algorithm::kRandomDimOrder, Algorithm::kHierarchicalNd}) {
    const std::string name = algorithm_name(a);
    benchmark::RegisterBenchmark(
        ("pipeline_64x64_100k/nodelist/" + name).c_str(),
        [a](benchmark::State& s) { pipeline_nodelist(s, a); });
    benchmark::RegisterBenchmark(
        ("pipeline_64x64_100k/segments/" + name).c_str(),
        [a](benchmark::State& s) { pipeline_segments(s, a); });
    benchmark::RegisterBenchmark(
        ("pipeline_64x64_100k/parallel/" + name).c_str(),
        [a](benchmark::State& s) { pipeline_parallel(s, a); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  oblivious::bench::emit_metrics_json("bench_p4_pipeline");
  return 0;
}
