// E1 -- Theorem 3.4: the 2D algorithm has stretch <= 64.
//
// Measures max/mean stretch of hierarchical-2d over random pairs for mesh
// sides 8..256 (mesh and torus), plus a stretch-vs-distance profile on the
// 64x64 mesh. Expected shape: max stretch far below 64 and flat in n;
// worst stretch at short distances (where the bitonic detour dominates).
#include <iostream>

#include "bench_common.hpp"
#include "routing/hierarchical.hpp"
#include "util/ascii_chart.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E1 / Theorem 3.4",
                "2D hierarchical routing: stretch(p) <= 64 for every pair");

  const std::size_t pairs_per_cell = 2000 * static_cast<std::size_t>(bench::scale());
  Table table({"mesh", "pairs", "max stretch", "mean stretch", "p99 length/dist",
               "bound"});
  ChartSeries mesh_series{"max stretch (mesh)", {}, 'M'};
  ChartSeries torus_series{"max stretch (torus)", {}, 'O'};
  ChartSeries bound_series{"Theorem 3.4 bound", {}, '='};
  std::vector<std::string> side_labels;
  for (const bool torus : {false, true}) {
    for (const std::int64_t side : {8, 16, 32, 64, 128, 256}) {
      const Mesh mesh({side, side}, torus);
      const AncestorRouter router(mesh, AncestorRouter::Hierarchy::kAccessGraph);
      Rng rng(2025);
      Rng pair_rng(7);
      RunningStats stretch;
      IntHistogram stretch_pct;
      for (std::size_t i = 0; i < pairs_per_cell; ++i) {
        const NodeId s = static_cast<NodeId>(
            pair_rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
        const NodeId t = static_cast<NodeId>(
            pair_rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
        if (s == t) continue;
        const double st = path_stretch(mesh, router.route(s, t, rng));
        stretch.add(st);
        stretch_pct.add(static_cast<std::int64_t>(st * 100));
      }
      table.row()
          .add(mesh.describe())
          .add(static_cast<std::int64_t>(stretch.count()))
          .add(stretch.max(), 2)
          .add(stretch.mean(), 2)
          .add(static_cast<double>(stretch_pct.quantile(0.99)) / 100.0, 2)
          .add("64");
      (torus ? torus_series : mesh_series).ys.push_back(stretch.max());
      if (!torus) {
        side_labels.push_back(std::to_string(side));
        bound_series.ys.push_back(64.0);
      }
    }
  }
  table.print(std::cout);

  // Figure view: the bound is flat and never approached as n grows.
  AsciiChart chart(side_labels, 12);
  chart.add_series(mesh_series);
  chart.add_series(torus_series);
  chart.add_series(bound_series);
  std::cout << "\n" << chart.render();

  bench::note("\nStretch vs distance on the 64x64 mesh (where is the worst?):");
  const Mesh mesh({64, 64});
  const AncestorRouter router(mesh, AncestorRouter::Hierarchy::kAccessGraph);
  Table profile({"distance", "max stretch", "mean stretch"});
  Rng rng(11);
  for (const std::int64_t dist : {1, 2, 4, 8, 16, 32, 64, 100}) {
    Rng wrng(dist);
    const RoutingProblem p = random_pairs_at_distance(mesh, wrng, 800, dist);
    RunningStats stretch;
    for (const Demand& d : p.demands) {
      stretch.add(path_stretch(mesh, router.route(d.src, d.dst, rng)));
    }
    profile.row().add(dist).add(stretch.max(), 2).add(stretch.mean(), 2);
  }
  profile.print(std::cout);
  bench::note(
      "\nExpected: all values <= 64 (Theorem 3.4); short distances carry the\n"
      "largest relative detour, long distances approach stretch ~1-3.");
  return 0;
}
