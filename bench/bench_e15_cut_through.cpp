// E15 -- flit-level (virtual cut-through) delivery: the C-and-D tradeoff
// under packet pipelining.
//
// With F-flit packets the delivery time is Omega(C*F + D): the congestion
// term is amplified F-fold while the distance term is paid once. That
// shifts the balance further toward the paper's point -- an algorithm
// must keep BOTH C and D small, and bounded stretch keeps D from bloating
// the pipeline. We sweep F and compare algorithms on local traffic.
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "simulator/cut_through.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E15 / virtual cut-through",
                "flit-level delivery: makespan ~ C*F + D, so stretch "
                "control matters more as packets grow");

  const Mesh mesh({32, 32});
  Rng wrng(3);
  RoutingProblem problem = random_pairs_at_distance(
      mesh, wrng, static_cast<std::size_t>(mesh.num_nodes()), 4);

  std::cout << "local traffic (distance 4), makespan by flits per packet:\n";
  std::vector<std::string> headers = {"algorithm", "C", "D"};
  for (const int f : {1, 4, 16}) headers.push_back("F=" + std::to_string(f));
  headers.push_back("F=16: makespan/(C*F+D)");
  Table table(headers);
  for (const Algorithm a :
       {Algorithm::kEcube, Algorithm::kValiant, Algorithm::kAccessTree,
        Algorithm::kHierarchical2d}) {
    const auto router = make_router(a, mesh);
    RouteAllOptions options;
    options.seed = 7;
    const std::vector<Path> paths = route_all(mesh, *router, problem, options);
    table.row().add(router->name());
    std::int64_t c = 0;
    std::int64_t d = 0;
    bool first = true;
    std::int64_t last_makespan = 0;
    for (const std::int64_t flits : {1, 4, 16}) {
      CutThroughOptions ct;
      ct.flits_per_packet = flits;
      const CutThroughResult r = simulate_cut_through(mesh, paths, ct);
      if (first) {
        c = r.congestion;
        d = r.dilation;
        table.add(c).add(d);
        first = false;
      }
      table.add(r.makespan);
      last_makespan = r.makespan;
    }
    table.add(static_cast<double>(last_makespan) /
                  static_cast<double>(c * 16 + d),
              2);
  }
  table.print(std::cout);
  bench::note(
      "\nExpected: every makespan tracks C*F + D within a small constant.\n"
      "As F grows the congestion term dominates, so at F = 16 the ordering\n"
      "is essentially the congestion ordering -- and the algorithms that\n"
      "kept C and D small on local traffic win decisively (e-cube ~7x,\n"
      "hierarchical ~2x over Valiant/access-tree, which pay both a larger\n"
      "C and a pipeline full of unnecessary hops).");
  return 0;
}
