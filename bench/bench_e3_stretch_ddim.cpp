// E3 -- Theorem 4.2: the d-dimensional algorithm has stretch O(d^2).
//
// Measures max stretch of hierarchical-nd over random pairs for d = 1..5,
// next to the d^2 trend and the explicit 40 d (d+1) proof constant, and
// contrasts it with the *diagonal* direct generalization of the 2D
// construction, whose stretch the paper says degrades to O(2^d) -- the
// ablation that motivates the type-j families of Section 4.
#include <iostream>

#include "bench_common.hpp"
#include "routing/hierarchical.hpp"
#include "util/bits.hpp"
#include "util/stats.hpp"

namespace {

using namespace oblivious;

RunningStats measure(const Mesh& mesh, const Router& router, std::size_t pairs,
                     std::uint64_t seed) {
  Rng rng(seed);
  Rng pair_rng(seed ^ 0xabcdef);
  RunningStats stretch;
  while (stretch.count() < pairs) {
    const NodeId s = static_cast<NodeId>(
        pair_rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    const NodeId t = static_cast<NodeId>(
        pair_rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    if (s == t) continue;
    stretch.add(path_stretch(mesh, router.route(s, t, rng)));
  }
  return stretch;
}

// The 2D construction applied verbatim in d dimensions: a single
// diagonally shifted family per level (Section 4 opening remark).
class DiagonalAncestorRouter final : public Router {
 public:
  explicit DiagonalAncestorRouter(const Mesh& mesh)
      : Router(mesh), inner_(mesh, AncestorRouter::Hierarchy::kAccessGraph) {}
  Path route(NodeId s, NodeId t, Rng& rng) const override {
    return inner_.route(s, t, rng);
  }
  std::string name() const override { return "diagonal-ablation"; }

 private:
  AncestorRouter inner_;
};

}  // namespace

int main() {
  bench::banner("E3 / Theorem 4.2",
                "d-dimensional stretch: O(d^2) with the type-j families, "
                "O(2^d) with the naive diagonal generalization");

  const std::size_t pairs = 1500 * static_cast<std::size_t>(bench::scale());
  Table table({"d", "mesh", "max stretch (type-j)", "max stretch (diagonal)",
               "d^2", "40d(d+1)"});
  for (int d = 1; d <= 5; ++d) {
    const std::int64_t side = d == 1 ? 4096 : (d == 2 ? 64 : (d == 3 ? 16 : 8));
    const Mesh mesh = Mesh::cube(d, side, /*torus=*/true);
    const NdRouter typej(mesh);
    const DiagonalAncestorRouter diagonal(mesh);
    const RunningStats st_typej = measure(mesh, typej, pairs, 11);
    const RunningStats st_diag = measure(mesh, diagonal, pairs, 13);
    table.row()
        .add(d)
        .add(mesh.describe())
        .add(st_typej.max(), 2)
        .add(st_diag.max(), 2)
        .add(static_cast<std::int64_t>(d) * d)
        .add(static_cast<std::int64_t>(40) * d * (d + 1));
  }
  table.print(std::cout);
  bench::note(
      "\nExpected: the type-j column stays well inside the 40d(d+1) proof\n"
      "constant for every d. The random-pair stretch alone understates the\n"
      "diagonal construction's weakness, which is a worst-case phenomenon;\n"
      "the table below measures it directly.");

  // The failure mode of the diagonal generalization is worst-case, not
  // average-case: a level of the hierarchy is unusable for a pair when one
  // dimension straddles a type-1 cell boundary while another straddles a
  // type-2 boundary -- with only two families, two dimensions suffice to
  // veto a level. Choosing the pair (c - 1, c) with per-dimension
  // trailing-zero counts {0, 1, ..., d-2} plus one large one kills the
  // deepest d-1 levels simultaneously, forcing the deepest common ancestor
  // to height ~d for a pair at distance d: bridge side 2^d, stretch
  // Theta(2^d / d) -- the blow-up the paper cites when motivating the
  // Theta(d) type-j families. The type-j bridge side is capped at
  // 8(d+1) dist (Lemma 4.1) regardless of placement.
  bench::note(
      "\nAdversarial pairs (c-1, c), c_i with trailing-zero counts\n"
      "{big, 0, 1, ..., d-2}: bridge height excess over log2(dist):");
  Table excess_table({"d", "dist", "diagonal: dca height", "diagonal: excess",
                      "diagonal: stretch bound 2^h/dist",
                      "type-j: bridge height", "type-j excess cap"});
  for (int d = 2; d <= 6; ++d) {
    const std::int64_t side = 64;  // k = 6
    const Mesh mesh = Mesh::cube(d, side, /*torus=*/true);
    const Decomposition diagonal(mesh, DecompositionConfig::section3());
    const NdRouter typej(mesh);
    Coord c;
    c.resize(static_cast<std::size_t>(d));
    c[0] = side / 2;  // trailing zeros k-1: kills type-1 at every level
    for (int j = 1; j < d; ++j) {
      // exactly j-1 trailing zeros: kills type-2 at the level with side 2^j.
      c[static_cast<std::size_t>(j)] = std::int64_t{1} << (j - 1);
    }
    Coord s = c;
    for (int j = 0; j < d; ++j) s[static_cast<std::size_t>(j)] -= 1;
    const std::int64_t dist = mesh.distance(s, c);
    const int logd = ceil_log2(static_cast<std::uint64_t>(dist));
    const RegularSubmesh dca = diagonal.deepest_common(s, c, true);
    const int h = diagonal.height_of(dca.level);
    const auto [m1_h, bridge_h] =
        typej.heights_for(mesh.node_id(s), mesh.node_id(c));
    excess_table.row()
        .add(d)
        .add(dist)
        .add(h)
        .add(h - logd)
        .add(static_cast<double>(std::int64_t{1} << h) /
                 static_cast<double>(dist),
             1)
        .add(bridge_h)
        .add(ceil_log2(8 * static_cast<std::uint64_t>(d + 1)));
  }
  excess_table.print(std::cout);
  bench::note(
      "\nExpected: the diagonal dca height (and hence its bridge side\n"
      "2^h ~ 2^d) grows linearly in d for these pairs while dist = d only\n"
      "grows linearly -- stretch 2^h/dist ~ 2^d/d, unbounded in d. The\n"
      "type-j bridge height is pinned at log2(dist) + log2(8(d+1)): the\n"
      "exponential worst case is traded for a d^2 constant. (At laptop-\n"
      "scale d <= 5 the two are comparable; the separation is asymptotic.)");
  return 0;
}
