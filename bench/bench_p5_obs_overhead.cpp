// P5 -- observability overhead on the hot pipeline.
//
// The obs/ instrumentation promises to be cheap enough to leave on in
// production: per-packet data is batched into loop-local accumulators and
// flushed to the registry once per chunk, so the per-packet cost is one
// branch plus a histogram bump. This harness proves the budget on the same
// 64x64 / 100k-packet one-bend pipeline as P4: it interleaves repetitions
// with metrics enabled and disabled (same binary, runtime toggle) and
// compares the *minimum* time of each arm. Scheduler and cache noise is
// strictly additive, so the per-arm minimum converges on the true cost and
// the ratio of minima is robust even on loaded single-core hosts, where
// medians of per-pair ratios still drift by a few percent. The gate is
// <2%. Building with -DOBLV_METRICS=OFF compiles the instrumentation out
// entirely, which makes both arms identical by construction.
//
// Flags: --packets N (default 100000), --reps N (default 7),
//        --metrics-json FILE (also honors OBLV_METRICS_JSON).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "analysis/congestion.hpp"
#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "routing/registry.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

namespace {

using namespace oblivious;

RoutingProblem random_pairs(const Mesh& mesh, std::size_t packets) {
  Rng rng(7);
  RoutingProblem p;
  p.demands.reserve(packets);
  const auto nodes = static_cast<std::uint64_t>(mesh.num_nodes());
  while (p.demands.size() < packets) {
    const auto s = static_cast<NodeId>(rng.uniform_below(nodes));
    const auto t = static_cast<NodeId>(rng.uniform_below(nodes));
    if (s != t) p.demands.push_back({s, t});
  }
  return p;
}

// One full pipeline pass: route every packet as segments, account every
// edge load, reduce to the maximum. Returns wall seconds; accumulates the
// congestion into `checksum` so the work cannot be optimized away.
double run_once(const Mesh& mesh, const Router& router,
                const RoutingProblem& problem, std::uint64_t& checksum) {
  WallTimer timer;
  RouteAllOptions options;
  options.seed = 1;
  const std::vector<SegmentPath> paths =
      route_all_segments(mesh, router, problem, options);
  EdgeLoadMap loads(mesh);
  loads.add_segment_paths(paths);
  checksum += loads.max_load();
  return timer.elapsed_seconds();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags =
      Flags::parse(argc, argv, {"packets", "reps", "metrics-json"});
  const auto packets =
      static_cast<std::size_t>(flags.get_int("packets", 100000));
  const int reps = std::max<int>(1, static_cast<int>(flags.get_int("reps", 7)));

  bench::banner("P5 / observability overhead",
                "metrics enabled vs disabled on the 64x64/100k one-bend "
                "pipeline (budget: <2%)");

  const Mesh mesh = Mesh::cube(2, 64);
  const auto router = make_router(Algorithm::kRandomDimOrder, mesh);
  const RoutingProblem problem = random_pairs(mesh, packets);

  std::uint64_t checksum = 0;
  // Warm both arms once (page-faults, allocator, branch predictors).
  obs::set_metrics_enabled(true);
  run_once(mesh, *router, problem, checksum);
  obs::set_metrics_enabled(false);
  run_once(mesh, *router, problem, checksum);

  // Interleave the arms so drift (thermal, background load) hits both,
  // then compare the fastest run of each arm: noise only ever adds time,
  // so the minima are the cleanest estimates of the true per-arm cost.
  std::vector<double> on_seconds;
  std::vector<double> off_seconds;
  for (int r = 0; r < reps; ++r) {
    obs::set_metrics_enabled(true);
    on_seconds.push_back(run_once(mesh, *router, problem, checksum));
    obs::set_metrics_enabled(false);
    off_seconds.push_back(run_once(mesh, *router, problem, checksum));
  }
  obs::set_metrics_enabled(true);

  const double on_best = *std::min_element(on_seconds.begin(), on_seconds.end());
  const double off_best =
      *std::min_element(off_seconds.begin(), off_seconds.end());
  const double overhead_pct = (on_best - off_best) / off_best * 100.0;

  Table table({"arm", "reps", "best ms", "median ms", "packets/s"});
  table.row()
      .add("metrics on")
      .add(reps)
      .add(on_best * 1e3, 2)
      .add(median(on_seconds) * 1e3, 2)
      .add(static_cast<double>(packets) / on_best, 0);
  table.row()
      .add("metrics off")
      .add(reps)
      .add(off_best * 1e3, 2)
      .add(median(off_seconds) * 1e3, 2)
      .add(static_cast<double>(packets) / off_best, 0);
  table.print(std::cout);
  std::cout << "overhead: " << overhead_pct << "% (budget <2%)\n"
            << "checksum: " << checksum << "\n";

  OBLV_GAUGE_SET("obs.overhead_pct", overhead_pct);
  OBLV_GAUGE_SET("obs.enabled_best_seconds", on_best);
  OBLV_GAUGE_SET("obs.disabled_best_seconds", off_best);
  if (flags.has("metrics-json")) {
    obs::write_metrics_json_file(flags.get("metrics-json", ""),
                                 {{"bench", "bench_p5_obs_overhead"}},
                                 obs::MetricsRegistry::global().snapshot());
  }
  return 0;
}
