// F2 -- Figure 2 of the paper: the d-dimensional shifted decomposition.
//
// The paper draws the four type-j families for d = 3, m_l = 4, lambda = 1
// (two of the three dimensions depicted). We render exactly that slice,
// and tabulate lambda_l and the family count per level, confirming the
// Theta(d) family structure of Section 4.1.
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/decomposition.hpp"
#include "decomposition/render.hpp"

int main() {
  using namespace oblivious;
  bench::banner("F2 / Figure 2",
                "3D decomposition: type-j families shifted by (j-1)*lambda "
                "per dimension (d = 3, m_l = 4, lambda = 1; z = 0 slice)");

  const Mesh mesh = Mesh::cube(3, 16, /*torus=*/true);
  const Decomposition dec = Decomposition::section4(mesh);
  const int level = 2;  // side 4, matching the figure
  for (int type = 1; type <= dec.num_types(level); ++type) {
    std::cout << "type " << type << " (shift "
              << (type - 1) * dec.shift_lambda(level) << "):\n"
              << render_family(dec, level, type, /*dim_x=*/0, /*dim_y=*/1,
                               /*slice=*/0)
              << "\n";
  }

  bench::note("Family structure per level (d = 3, divisor 2^ceil(log2 4)):");
  Table table({"level", "side m_l", "lambda_l", "families", ">= d+1?"});
  for (int lvl = 0; lvl <= dec.leaf_level(); ++lvl) {
    table.row()
        .add(lvl)
        .add(dec.side_at(lvl))
        .add(dec.shift_lambda(lvl))
        .add(dec.num_types(lvl))
        .add(dec.num_types(lvl) >= 4 ? "yes" : "(narrow level)");
  }
  table.print(std::cout);

  bench::note(
      "\nLemma 4.1: with >= d+1 families, for any pair (s,t) one family's\n"
      "anchors avoid the bounding box in every dimension (pigeonhole), so\n"
      "some type-j submesh of side O(d * dist) contains both endpoints.\n"
      "Verified across random pairs in bridge_height_test.cpp.");
  return 0;
}
