// E9 -- the comparison with Maggs et al. [9] (related work): the access
// *tree* achieves the same congestion guarantee but unbounded stretch;
// the paper's access *graph* (bridge submeshes) caps stretch at 64.
//
// Workload: packets between neighbors straddling the top-level bisector --
// distance 1, but their only common type-1 ancestor is the root. Expected
// shape: access-tree mean path length grows ~linearly with the side while
// hierarchical-2d stays constant; congestion stays comparable on global
// traffic (random permutation).
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "util/ascii_chart.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E9 / access tree vs access graph",
                "bridges bound the stretch; the tree does not");

  std::cout << "Bisector-straddling neighbors (distance 1):\n";
  Table table({"mesh", "tree: mean |p|", "tree: max |p|", "graph: mean |p|",
               "graph: max |p|", "bound"});
  for (const std::int64_t side : {16, 32, 64, 128, 256}) {
    const Mesh mesh({side, side});
    const RoutingProblem problem = cut_straddlers(mesh);
    double mean_len[2];
    std::int64_t max_len[2];
    int i = 0;
    for (const Algorithm a :
         {Algorithm::kAccessTree, Algorithm::kHierarchical2d}) {
      const auto router = make_router(a, mesh);
      RouteAllOptions options;
      options.seed = 7;
      const std::vector<Path> paths =
          route_all(mesh, *router, problem, options);
      double total = 0;
      std::int64_t worst = 0;
      for (const Path& p : paths) {
        total += static_cast<double>(p.length());
        worst = std::max(worst, p.length());
      }
      mean_len[i] = total / static_cast<double>(paths.size());
      max_len[i] = worst;
      ++i;
    }
    table.row()
        .add(mesh.describe())
        .add(mean_len[0], 1)
        .add(max_len[0])
        .add(mean_len[1], 1)
        .add(max_len[1])
        .add("64");
  }
  table.print(std::cout);

  // Figure-style view of the headline: mean path length of distance-1
  // straddler packets as the mesh grows.
  {
    std::vector<std::string> labels;
    ChartSeries tree{"access-tree mean |p|", {}, 'T'};
    ChartSeries graph{"access-graph mean |p| (bound 64)", {}, 'G'};
    for (std::size_t i = 0; i < table.num_rows(); ++i) {
      const auto& row = table.row_at(i);
      labels.push_back(std::to_string(16LL << i));
      tree.ys.push_back(std::stod(row[1]));
      graph.ys.push_back(std::stod(row[3]));
    }
    AsciiChart chart(labels, 14);
    chart.add_series(tree);
    chart.add_series(graph);
    std::cout << "\n" << chart.render();
  }

  std::cout << "\nCongestion parity on global traffic (random permutation):\n";
  Table parity({"mesh", "C tree", "C graph", "C* >="});
  for (const std::int64_t side : {32, 64}) {
    const Mesh mesh({side, side});
    Rng rng(9);
    const RoutingProblem problem = random_permutation(mesh, rng);
    const double lb = best_lower_bound(mesh, problem);
    std::int64_t c[2];
    int i = 0;
    for (const Algorithm a :
         {Algorithm::kAccessTree, Algorithm::kHierarchical2d}) {
      const auto router = make_router(a, mesh);
      RouteAllOptions options;
      options.seed = 7;
      c[i++] = evaluate_with_bound(mesh, *router, problem, lb, options).congestion;
    }
    parity.row().add(mesh.describe()).add(c[0]).add(c[1]).add(lb, 1);
  }
  parity.print(std::cout);
  bench::note(
      "\nExpected: tree path lengths double when the side doubles (stretch\n"
      "unbounded, exactly the [9] behaviour); graph path lengths are flat\n"
      "and <= 64. On global permutations the two have comparable congestion\n"
      "-- the bridges cost nothing.");
  return 0;
}
