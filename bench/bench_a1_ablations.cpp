// A1 -- ablations of design choices the paper (and DESIGN.md) call out.
//
//  (1) Bridge height h+1 vs h (Section 4.1 "due to technical reasons"):
//      what the prescribed extra level costs in stretch and buys in
//      congestion safety.
//  (2) Cycle erasure (Section 3.3 "we can always remove any cycles
//      without increasing the expected congestion"): effect on C and D.
//  (3) Naive vs frugal randomness (Section 5.3): identical path quality
//      at a fraction of the bits.
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/hierarchical.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("A1 / ablations",
                "bridge height h vs h+1; cycle erasure; naive vs frugal bits");

  const Mesh mesh({64, 64});
  Rng wrng(5);
  const RoutingProblem problem = random_permutation(mesh, wrng);
  const double lb = best_lower_bound(mesh, problem);

  bench::note("(1) Bridge height (random permutation, 64x64, C* >= " +
              std::to_string(lb) + "):");
  {
    Table table({"bridge height", "C", "C/C*", "D", "max stretch",
                 "mean stretch"});
    for (const auto mode : {NdRouter::BridgeHeightMode::kPrescribed,
                            NdRouter::BridgeHeightMode::kMinimal}) {
      const NdRouter router(mesh, NdRouter::RandomnessMode::kNaive, mode);
      RouteAllOptions options;
      options.seed = 7;
      const RouteSetMetrics m =
          evaluate_with_bound(mesh, router, problem, lb, options);
      table.row()
          .add(mode == NdRouter::BridgeHeightMode::kPrescribed ? "h+1 (paper)"
                                                               : "h (minimal)")
          .add(m.congestion)
          .add(m.congestion_ratio, 2)
          .add(m.dilation)
          .add(m.max_stretch, 2)
          .add(m.mean_stretch, 2);
    }
    table.print(std::cout);
    bench::note(
        "The minimal bridge halves the worst-case stretch at identical\n"
        "congestion: the h+1 prescription is a proof convenience (it gives\n"
        "condition (iii) and the M1-in-bridge alignment extra slack), not a\n"
        "performance necessity on these workloads.\n");
  }

  bench::note("(2) Cycle erasure (hierarchical-nd, random permutation):");
  {
    Table table({"cycles", "C", "D", "mean stretch"});
    const NdRouter router(mesh);
    for (const bool erase : {false, true}) {
      RouteAllOptions options;
      options.seed = 9;
      options.erase_cycles = erase;
      const RouteSetMetrics m =
          evaluate_with_bound(mesh, router, problem, lb, options);
      table.row()
          .add(erase ? "erased" : "kept")
          .add(m.congestion)
          .add(m.dilation)
          .add(m.mean_stretch, 3);
    }
    table.print(std::cout);
    bench::note(
        "Erasing cycles only ever removes load, and on the d-dimensional\n"
        "algorithm it is a large win (bitonic paths often double back near\n"
        "the bridge): C drops by a third and paths shorten markedly. The\n"
        "paper's remark that removal never hurts is confirmed -- with room\n"
        "to spare.\n");
  }

  bench::note("(3) Naive vs frugal randomness (identical guarantees):");
  {
    Table table({"mode", "C", "D", "max stretch", "bits/packet"});
    for (const auto mode : {NdRouter::RandomnessMode::kNaive,
                            NdRouter::RandomnessMode::kFrugal}) {
      const NdRouter router(mesh, mode);
      RouteAllOptions options;
      options.seed = 11;
      const RouteSetMetrics m =
          evaluate_with_bound(mesh, router, problem, lb, options);
      table.row()
          .add(mode == NdRouter::RandomnessMode::kNaive ? "naive" : "frugal")
          .add(m.congestion)
          .add(m.dilation)
          .add(m.max_stretch, 2)
          .add(m.bits_per_packet.mean(), 1);
    }
    table.print(std::cout);
    bench::note(
        "Frugal recycling costs nothing in path quality and cuts the bits\n"
        "by the log factor of Section 5.3.");
  }
  return 0;
}
