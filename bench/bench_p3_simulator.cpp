// P3 -- simulator throughput (google-benchmark): packet-steps per second
// of the batch, cut-through, and online engines.
#include <benchmark/benchmark.h>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "simulator/cut_through.hpp"
#include "simulator/online.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace oblivious;

const Mesh& mesh_32() {
  static const Mesh mesh = Mesh::cube(2, 32);
  return mesh;
}

const std::vector<Path>& transpose_paths() {
  static const std::vector<Path> paths = [] {
    const auto router = make_router(Algorithm::kHierarchical2d, mesh_32());
    RouteAllOptions options;
    options.seed = 3;
    return route_all(mesh_32(), *router, transpose(mesh_32()), options);
  }();
  return paths;
}

void bm_batch_simulate(benchmark::State& state) {
  std::int64_t total_latency_steps = 0;
  for (auto _ : state) {
    const SimulationResult r = simulate(mesh_32(), transpose_paths());
    benchmark::DoNotOptimize(r.makespan);
    total_latency_steps += r.makespan;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(transpose_paths().size()));
  (void)total_latency_steps;
}
BENCHMARK(bm_batch_simulate);

void bm_cut_through_simulate(benchmark::State& state) {
  CutThroughOptions options;
  options.flits_per_packet = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_cut_through(mesh_32(), transpose_paths(), options).makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(transpose_paths().size()));
}
BENCHMARK(bm_cut_through_simulate)->Arg(1)->Arg(8);

void bm_online_simulate(benchmark::State& state) {
  const auto router = make_router(Algorithm::kHierarchical2d, mesh_32());
  Rng wrng(7);
  const OnlineWorkload workload = bernoulli_arrivals(
      mesh_32(), 0.02, 64, TrafficPattern::kLocal, wrng, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_online(mesh_32(), *router, workload).delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.packets.size()));
}
BENCHMARK(bm_online_simulate);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  oblivious::bench::emit_metrics_json("bench_p3_simulator");
  return 0;
}
