// E6 -- Section 5.1 / Lemma 5.1: deterministic oblivious routing cannot
// have good congestion.
//
// Builds the adversarial instance Pi_A against the deterministic e-cube
// algorithm for growing packet distance l. Lemma 5.1 (kappa = 1) says
// e-cube's congestion on Pi_A is at least l/d; the paper's randomized
// algorithm routes the *same* packets with congestion near the lower
// bound. This is the separation that justifies randomization.
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "workloads/adversarial.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E6 / Lemma 5.1",
                "deterministic oblivious routing suffers congestion >= l/d "
                "on its adversarial instance Pi_A");

  const Mesh mesh({128, 128});
  const auto ecube = make_router(Algorithm::kEcube, mesh);
  const auto hier = make_router(Algorithm::kHierarchical2d, mesh);
  const auto nd = make_router(Algorithm::kHierarchicalNd, mesh);

  Table table({"l", "|Pi_A|", "l/d", "C ecube", "C hier-2d", "C hier-nd",
               "C* >="});
  for (const std::int64_t l : {4, 8, 16, 32, 64}) {
    Rng rng(l);
    const AdversarialInstance inst = build_pi_a(mesh, *ecube, l, rng);
    const double lb = best_lower_bound(mesh, inst.problem);
    RouteAllOptions options;
    options.seed = 5;
    const RouteSetMetrics m_ecube =
        evaluate_with_bound(mesh, *ecube, inst.problem, lb, options);
    const RouteSetMetrics m_hier =
        evaluate_with_bound(mesh, *hier, inst.problem, lb, options);
    const RouteSetMetrics m_nd =
        evaluate_with_bound(mesh, *nd, inst.problem, lb, options);
    table.row()
        .add(l)
        .add(static_cast<std::int64_t>(inst.problem.size()))
        .add(l / 2)
        .add(m_ecube.congestion)
        .add(m_hier.congestion)
        .add(m_nd.congestion)
        .add(lb, 2);
  }
  table.print(std::cout);
  bench::note(
      "\nExpected: C(ecube) grows linearly with l (every Pi_A packet crosses\n"
      "one edge), while the randomized hierarchical algorithms stay within\n"
      "a small factor of C* -- the same packets, obliviously spread. This\n"
      "is why Section 5 shows randomization is unavoidable.");
  return 0;
}
