// P10 -- sketch-based congestion accounting.
//
// The claim from DESIGN.md section 14: the conservative-update count-min
// sketch over dyadic range keys (plus the SpaceSaving heavy-line tracker)
// tracks max load and load quantiles in O(sketch_bytes) memory, with
// estimates that never underestimate and stay within the (eps, delta)
// error bound of the exact per-edge array.
//
// Part A (2D 64x64): the same demand stream is accounted exactly and with
// the sketch; reports per-arm throughput, the absolute max-load and p99
// estimation errors, and whether they sit inside the analytical bound
// (gated: within_bound == 1, errors deterministic for the fixed seeds).
//
// Part B (2D 4096x4096, ~33.5M edges): streaming sketch-only accounting.
// The exact array would need ~134 MB; the sketch must stay inside its
// 4 MiB budget while routing the stream (gated: memory cap + throughput
// floor).
//
// Flags: --packets N (Part A stream, default 100000),
//        --huge-packets N (Part B stream, default 200000),
//        --reps N (default 3), --threads N (default 2),
//        --metrics-json FILE (also honors OBLV_METRICS_JSON).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/sketch/load_accountant.hpp"
#include "analysis/sketch/stream_account.hpp"
#include "bench_common.hpp"
#include "mesh/mesh.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace oblivious;

double best(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

std::unique_ptr<Router> dim_order_router(const Mesh& mesh) {
  return make_router(*algorithm_from_name("random-dim-order"), mesh);
}

void gauge(const std::string& name, double v) {
  obs::MetricsRegistry::global().gauge(name).set(v);
}

// Part A: exact and sketch arms over the identical demand stream.
void run_small(std::size_t packets, int reps, std::size_t threads) {
  std::cout << "\n-- 2D 64x64: exact vs sketch on one stream --\n";
  const Mesh mesh = Mesh::cube(2, 64);
  const auto router = dim_order_router(mesh);
  const DemandSource source = DemandSource::random_pairs(mesh, packets, 7);
  ThreadPool pool(threads);
  StreamAccountOptions options;
  options.seed = 5;

  SketchConfig config;  // defaults: 1 MiB budget, depth 4, 64 heavy lines
  auto exact = LoadAccountant::create(mesh, AccountingMode::kExact);
  auto sketch = LoadAccountant::create(mesh, AccountingMode::kSketch, config);

  std::vector<double> exact_times, sketch_times;
  for (int r = 0; r < reps; ++r) {
    exact->clear();
    exact_times.push_back(
        route_and_account(*router, source, pool, options, *exact).seconds);
    sketch->clear();
    sketch_times.push_back(
        route_and_account(*router, source, pool, options, *sketch).seconds);
  }
  const double exact_best = best(exact_times);
  const double sketch_best = best(sketch_times);
  const double n = static_cast<double>(packets);

  const double bound = sketch->error_bound();
  const auto exact_max = static_cast<double>(exact->max_load());
  const auto sketch_max = static_cast<double>(sketch->max_load());
  const double max_err = sketch_max - exact_max;
  const double p99_err = static_cast<double>(sketch->load_quantile(0.99)) -
                         static_cast<double>(exact->load_quantile(0.99));
  const bool within =
      max_err >= 0.0 && max_err <= bound && p99_err >= 0.0 && p99_err <= bound;

  Table table({"arm", "best ms", "packets/s", "bytes", "max load"});
  table.row()
      .add("exact")
      .add(exact_best * 1e3, 2)
      .add(n / exact_best, 0)
      .add(static_cast<double>(exact->memory_bytes()), 0)
      .add(exact_max, 0);
  table.row()
      .add("sketch")
      .add(sketch_best * 1e3, 2)
      .add(n / sketch_best, 0)
      .add(static_cast<double>(sketch->memory_bytes()), 0)
      .add(sketch_max, 0);
  table.print(std::cout);
  std::cout << "max-load abs err: " << max_err << ", p99 abs err: " << p99_err
            << ", bound: " << bound << " -> "
            << (within ? "WITHIN BOUND" : "BOUND VIOLATED") << "\n";

  gauge("sketch.2d64.exact_pkts_per_sec", n / exact_best);
  gauge("sketch.2d64.sketch_pkts_per_sec", n / sketch_best);
  gauge("sketch.2d64.sketch_vs_exact_ratio", sketch_best / exact_best);
  gauge("sketch.2d64.max_load_abs_err", max_err);
  gauge("sketch.2d64.p99_abs_err", p99_err);
  gauge("sketch.2d64.error_bound", bound);
  gauge("sketch.2d64.within_bound", within ? 1.0 : 0.0);
  gauge("sketch.2d64.memory_bytes", static_cast<double>(sketch->memory_bytes()));
}

// Part B: streaming sketch accounting where exact arrays get painful.
void run_huge(std::size_t packets, std::size_t threads) {
  std::cout << "\n-- 2D 4096x4096: streaming sketch accounting --\n";
  const Mesh mesh = Mesh::cube(2, 4096);
  const auto router = dim_order_router(mesh);
  SketchConfig config;
  config.sketch_bytes = std::size_t{4} << 20;
  auto sketch = LoadAccountant::create(mesh, AccountingMode::kSketch, config);
  ThreadPool pool(threads);
  StreamAccountOptions options;
  options.seed = 3;
  const StreamAccountResult res = route_and_account(
      *router, DemandSource::random_pairs(mesh, packets, 11), pool, options,
      *sketch);
  const double pps = static_cast<double>(res.packets) /
                     std::max(res.seconds, 1e-9);

  std::cout << "edges: " << mesh.num_edges() << " (exact accounting: "
            << LoadAccountant::exact_bytes(mesh) << " bytes)\n";
  std::cout << "routed " << res.packets << " packets in " << res.seconds
            << " s (" << pps << " pkt/s, " << res.blocks << " blocks)\n";
  std::cout << "sketch: " << sketch->memory_bytes() << " / "
            << config.sketch_bytes << " bytes, max load "
            << sketch->max_load() << ", p99 " << sketch->load_quantile(0.99)
            << "\n";

  gauge("sketch.2d4096.pkts_per_sec", pps);
  gauge("sketch.2d4096.memory_bytes",
        static_cast<double>(sketch->memory_bytes()));
  gauge("sketch.2d4096.budget_bytes", static_cast<double>(config.sketch_bytes));
  gauge("sketch.2d4096.exact_bytes",
        static_cast<double>(LoadAccountant::exact_bytes(mesh)));
  gauge("sketch.2d4096.max_load", static_cast<double>(sketch->max_load()));
  gauge("sketch.2d4096.within_budget",
        sketch->memory_bytes() <= config.sketch_bytes ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(
      argc, argv, {"packets", "huge-packets", "reps", "threads",
                   "metrics-json"});
  const auto packets = static_cast<std::size_t>(
      flags.get_int("packets", 100000 * bench::scale()));
  const auto huge_packets = static_cast<std::size_t>(
      flags.get_int("huge-packets", 200000 * bench::scale()));
  const int reps = std::max<int>(1, static_cast<int>(flags.get_int("reps", 3)));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 2));

  bench::banner("P10 / sketch congestion accounting",
                "count-min + SpaceSaving load accounting vs the exact "
                "per-edge array (gate: estimates within the (eps, delta) "
                "bound on 64x64; 4 MiB budget held on 4096x4096)");

  run_small(packets, reps, threads);
  run_huge(huge_packets, threads);

  if (flags.has("metrics-json")) {
    obs::write_metrics_json_file(flags.get("metrics-json", ""),
                                 {{"bench", "P10"}},
                                 obs::MetricsRegistry::global().snapshot());
  }
  return 0;
}
