// E13 -- Section 6 (future work) / related work [4, 8]: other specific
// networks. The d-dimensional hypercube is the side-2 d-cube, so the whole
// library applies unchanged: dimension-order routing is classic bit-fixing,
// Valiant-Brebner [4] is the original two-phase hypercube scheme, and the
// Borodin-Hopcroft / Kaklamanis et al. [5, 8] lower bound says every
// deterministic oblivious algorithm has a permutation with congestion
// Omega(sqrt(N)/d) -- which the Pi_A construction finds automatically.
#include <cmath>
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "workloads/adversarial.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E13 / hypercube (Section 6: other networks)",
                "bit-fixing vs Valiant [4] on the d-cube; the deterministic "
                "lower bound of [5, 8] via the Pi_A construction");

  std::cout << "Random permutations on the d-dimensional hypercube:\n";
  Table table({"d", "N", "algorithm", "C", "C/C*", "D"});
  for (const int d : {6, 8, 10}) {
    const Mesh cube = Mesh::cube(d, 2);
    Rng wrng(5);
    const RoutingProblem problem = random_permutation(cube, wrng);
    const double lb = best_lower_bound(cube, problem);
    for (const Algorithm a : {Algorithm::kEcube, Algorithm::kRandomDimOrder,
                              Algorithm::kValiant}) {
      const auto router = make_router(a, cube);
      RouteAllOptions options;
      options.seed = 9;
      const RouteSetMetrics m =
          evaluate_with_bound(cube, *router, problem, lb, options);
      table.row()
          .add(d)
          .add(cube.num_nodes())
          .add(m.algorithm)
          .add(m.congestion)
          .add(m.congestion_ratio, 2)
          .add(m.dilation);
    }
  }
  table.print(std::cout);

  std::cout << "\nThe bit-transpose permutation (address (a|b) -> (b|a)), the\n"
               "classic Omega(sqrt(N)) instance for deterministic bit-fixing:\n";
  Table adversarial({"d", "N", "sqrt(N)", "C bit-fixing", "C random-order",
                     "C valiant"});
  for (const int d : {6, 8, 10, 12}) {
    const Mesh cube = Mesh::cube(d, 2);
    // Transpose of the address halves: coordinate (bit) i swaps with
    // i + d/2. All 2^(d/2) packets with a == b share the route prefix.
    RoutingProblem hard;
    for (NodeId u = 0; u < cube.num_nodes(); ++u) {
      Coord c = cube.coord(u);
      Coord o = c;
      for (int i = 0; i < d / 2; ++i) {
        std::swap(o[static_cast<std::size_t>(i)],
                  o[static_cast<std::size_t>(i + d / 2)]);
      }
      hard.demands.push_back({u, cube.node_id(o)});
    }
    RouteAllOptions options;
    options.seed = 3;
    std::int64_t congestion[3];
    int i = 0;
    for (const Algorithm a : {Algorithm::kEcube, Algorithm::kRandomDimOrder,
                              Algorithm::kValiant}) {
      const auto router = make_router(a, cube);
      congestion[i++] =
          evaluate_with_bound(cube, *router, hard, 1.0, options).congestion;
    }
    adversarial.row()
        .add(d)
        .add(cube.num_nodes())
        .add(std::sqrt(static_cast<double>(cube.num_nodes())), 1)
        .add(congestion[0])
        .add(congestion[1])
        .add(congestion[2]);
  }
  adversarial.print(std::cout);
  bench::note(
      "\nExpected: on random permutations all algorithms are fine (C/C*\n"
      "small), but on the structured worst case deterministic bit-fixing\n"
      "pays Theta(sqrt(N)/d)-scale congestion [5, 8] while the randomized\n"
      "two-phase scheme stays flat -- the hypercube face of the same\n"
      "randomization story the paper tells on the mesh.");
  return 0;
}
