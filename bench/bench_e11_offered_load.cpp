// E11 -- online routing (Section 1's motivating setting): latency vs
// offered load under continuous Bernoulli arrivals.
//
// Packets arrive at every node with probability `rate` per step and pick
// their paths obliviously at injection. Sweeping the rate traces the
// classic latency/throughput curve; the saturation point is governed by
// the worst-edge load, i.e. by the congestion properties the paper proves.
// Expected shape: on *local* traffic the hierarchical algorithm saturates
// at a rate close to e-cube (it preserves locality) while Valiant -- which
// hauls every packet across the mesh -- saturates an order of magnitude
// earlier; on transpose traffic the randomized algorithms sustain higher
// load than deterministic e-cube.
#include <iomanip>
#include <limits>
#include <iostream>

#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "simulator/online.hpp"
#include "util/ascii_chart.hpp"

namespace {

using namespace oblivious;

void sweep(const Mesh& mesh, TrafficPattern pattern, const char* pattern_name,
           const std::vector<Algorithm>& algorithms,
           const std::vector<double>& rates) {
  std::cout << "\ntraffic " << pattern_name << " on " << mesh.describe()
            << " (mean latency in steps; '--' = saturated, queues diverge):\n";
  std::vector<std::string> headers = {"rate"};
  for (const Algorithm a : algorithms) headers.push_back(algorithm_name(a));
  Table table(headers);
  std::vector<std::string> labels;
  std::vector<ChartSeries> chart_series;
  static constexpr char kMarkers[] = "EVBTH";
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    chart_series.push_back(
        {algorithm_name(algorithms[i]), {}, kMarkers[i % 5]});
  }
  const std::int64_t horizon = 128;
  for (const double rate : rates) {
    table.row().add(rate, 3);
    labels.push_back(std::to_string(rate).substr(0, 5));
    std::size_t algo_index = 0;
    for (const Algorithm a : algorithms) {
      const auto router = make_router(a, mesh);
      Rng wrng(17);
      const OnlineWorkload workload =
          bernoulli_arrivals(mesh, rate, horizon, pattern, wrng,
                             /*local_distance=*/4);
      OnlineOptions options;
      options.seed = 7;
      options.max_steps = 8 * horizon;
      options.saturation_queue_per_node = 4;
      const OnlineResult result =
          simulate_online(mesh, *router, workload, options);
      if (result.completed || result.delivered > result.injected * 95 / 100) {
        table.add(result.latency.mean(), 1);
        chart_series[algo_index].ys.push_back(result.latency.mean());
      } else {
        table.add("--");
        chart_series[algo_index].ys.push_back(
            std::numeric_limits<double>::quiet_NaN());
      }
      ++algo_index;
    }
  }
  table.print(std::cout);
  AsciiChart chart(labels, 12);
  for (auto& series : chart_series) chart.add_series(std::move(series));
  std::cout << "\nmean latency vs offered rate (missing marker = saturated):\n"
            << chart.render();
}

}  // namespace

int main() {
  bench::banner("E11 / online routing",
                "latency vs offered load under continuous arrivals "
                "(packets route obliviously at injection time)");

  const Mesh mesh({32, 32});
  const std::vector<Algorithm> algorithms = {
      Algorithm::kEcube, Algorithm::kValiant, Algorithm::kBoundedValiant,
      Algorithm::kAccessTree, Algorithm::kHierarchical2d};

  sweep(mesh, TrafficPattern::kLocal, "local (distance 4)", algorithms,
        {0.01, 0.02, 0.05, 0.08, 0.12, 0.2, 0.4});
  sweep(mesh, TrafficPattern::kUniform, "uniform random", algorithms,
        {0.01, 0.02, 0.05, 0.1, 0.15});
  sweep(mesh, TrafficPattern::kTranspose, "transpose", algorithms,
        {0.01, 0.02, 0.05, 0.1, 0.15});

  bench::note(
      "\nExpected: under local traffic the saturation ordering follows the\n"
      "stretch: shortest-path routers (e-cube, bounded-valiant) last the\n"
      "longest, the paper's hierarchical algorithm sustains a constant\n"
      "factor less (its stretch is bounded by a constant), the access tree\n"
      "is clearly worse at the same rates (unbounded stretch), and Valiant\n"
      "-- which hauls every local packet across the mesh -- saturates an\n"
      "order of magnitude earlier. Under global patterns the gap closes:\n"
      "every path is long anyway, and the bounded-stretch algorithms pay\n"
      "only their constant overheads.");
  return 0;
}
