// E8 -- the synchronous routing model of Sections 1-2: total delivery time
// vs the trivial Omega(C + D) bound.
//
// Routes hard workloads with every algorithm and delivers the packets in
// the one-packet-per-edge-per-step simulator under three scheduling
// policies. Expected shape: makespan within a small constant of
// max(C, D) >= (C+D)/2 for all policies, and the paper's algorithm gives
// the best C+D combination on local traffic (bounded stretch keeps D small
// while congestion stays near-optimal).
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "simulator/simulator.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E8 / routing time",
                "synchronous delivery: makespan vs the Omega(C+D) bound");

  const Mesh mesh({64, 64});
  Rng wrng(3);
  const struct {
    std::string name;
    RoutingProblem problem;
  } workloads[] = {
      {"transpose", transpose(mesh)},
      {"random-perm", random_permutation(mesh, wrng)},
      {"local dist-4", random_pairs_at_distance(
                           mesh, wrng,
                           static_cast<std::size_t>(mesh.num_nodes()), 4)},
  };

  for (const auto& w : workloads) {
    std::cout << "\nworkload " << w.name << ":\n";
    Table table({"algorithm", "C", "D", "max(C,D)", "makespan ftg",
                 "makespan fifo", "makespan rank", "ftg/max(C,D)"});
    for (const Algorithm a : algorithms_for(mesh)) {
      const auto router = make_router(a, mesh);
      RouteAllOptions options;
      options.seed = 11;
      const std::vector<Path> paths =
          route_all(mesh, *router, w.problem, options);

      std::int64_t makespans[3] = {};
      SimulationResult last;
      int i = 0;
      for (const SchedulingPolicy policy :
           {SchedulingPolicy::kFurthestToGo, SchedulingPolicy::kFifo,
            SchedulingPolicy::kRandomRank}) {
        SimulationOptions sim_options;
        sim_options.policy = policy;
        sim_options.seed = 13;
        last = simulate(mesh, paths, sim_options);
        makespans[i++] = last.makespan;
      }
      const std::int64_t bound = std::max(last.congestion, last.dilation);
      table.row()
          .add(router->name())
          .add(last.congestion)
          .add(last.dilation)
          .add(bound)
          .add(makespans[0])
          .add(makespans[1])
          .add(makespans[2])
          .add(static_cast<double>(makespans[0]) /
                   static_cast<double>(std::max<std::int64_t>(bound, 1)),
               2);
    }
    table.print(std::cout);
  }
  bench::note(
      "\nExpected: every schedule lands within a small constant of\n"
      "max(C, D); on local traffic the hierarchical algorithm's small C AND\n"
      "small D give the fastest delivery, while Valiant (D ~ diameter) and\n"
      "the access tree (D unbounded) pay in makespan.");
  return 0;
}
