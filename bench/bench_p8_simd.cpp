// P8 -- structure-of-arrays batch engine with lane-parallel RNG.
//
// The claim from DESIGN.md section 10: grouping a batch by (s, t) pair,
// resolving each pair's plan once, and running the pair's draw program 8
// rng lanes at a time beats the scalar per-packet loop by >= 3x on the
// warm single-thread workload of P6 -- while producing bit-identical
// segment output (verified here on every run, not just in the tests).
//
// Arms (per mesh config, single pool thread, warm plan cache):
//   * scalar: route_batch with BatchEngine::kScalar -- the P6 engine;
//   * soa:    route_batch with BatchEngine::kSoa    -- this PR.
// Both arms use the same counter-derived packet_rng streams, so they do
// identical routing work; per-arm minima over interleaved reps are
// compared (noise is strictly additive). A thread sweep of the SoA engine
// is recorded but not gated (smoke runners have two cores), and the
// widened EdgeLoadMap difference-array flush is timed on the SoA output.
//
// Flags: --packets N (default 100000), --pairs N (default 8192),
//        --reps N (default 5), --metrics-json FILE
//        (also honors OBLV_METRICS_JSON).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/congestion.hpp"
#include "bench_common.hpp"
#include "mesh/mesh.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/hierarchical.hpp"
#include "util/flags.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace {

using namespace oblivious;

// Same workload shape as bench_p6_batch: `packets` demands drawn (with
// repetition) from `pairs` distinct pairs, dense enough that the plan
// cache -- and the SoA engine's per-chunk pair grouping -- get real reuse.
RoutingProblem repeated_pairs(const Mesh& mesh, std::size_t packets,
                              std::size_t pairs) {
  Rng rng(7);
  std::vector<Demand> pool;
  pool.reserve(pairs);
  const auto nodes = static_cast<std::uint64_t>(mesh.num_nodes());
  while (pool.size() < pairs) {
    const auto s = static_cast<NodeId>(rng.uniform_below(nodes));
    const auto t = static_cast<NodeId>(rng.uniform_below(nodes));
    if (s != t) pool.push_back({s, t});
  }
  RoutingProblem p;
  p.demands.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    p.demands.push_back(pool[rng.uniform_below(pairs)]);
  }
  return p;
}

double run_engine(const Router& router, const RoutingProblem& problem,
                  ThreadPool& pool, BatchEngine engine,
                  std::vector<SegmentPath>& out, std::uint64_t& checksum) {
  WallTimer timer;
  RouteBatchOptions options;
  options.seed = 1;
  options.engine = engine;
  options.validate_demands = false;
  options.chunk_size = problem.size();
  route_batch(router, std::span<const Demand>(problem.demands), pool, options,
              out);
  checksum += static_cast<std::uint64_t>(out.front().length());
  return timer.elapsed_seconds();
}

double best(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

void report_config(const std::string& tag, const Router& router,
                   const RoutingProblem& problem, int reps,
                   std::uint64_t& checksum) {
  const std::size_t packets = problem.size();
  ThreadPool pool(1);
  std::vector<SegmentPath> scalar_out;
  std::vector<SegmentPath> soa_out;

  // Warm-up: plan cache to steady state, output/engine buffers grown --
  // and the determinism contract checked on real workload output.
  run_engine(router, problem, pool, BatchEngine::kScalar, scalar_out,
             checksum);
  run_engine(router, problem, pool, BatchEngine::kSoa, soa_out, checksum);
  const bool identical = scalar_out == soa_out;
  if (!identical) {
    std::cout << "ERROR: SoA output differs from scalar output\n";
  }

  std::vector<double> scalar_times;
  std::vector<double> soa_times;
  for (int r = 0; r < reps; ++r) {
    scalar_times.push_back(run_engine(router, problem, pool,
                                      BatchEngine::kScalar, scalar_out,
                                      checksum));
    soa_times.push_back(run_engine(router, problem, pool, BatchEngine::kSoa,
                                   soa_out, checksum));
  }
  const double scalar_best = best(scalar_times);
  const double soa_best = best(soa_times);

  Table table({"arm", "best ms", "packets/s", "vs scalar"});
  const auto row = [&](const std::string& name, double seconds) {
    table.row()
        .add(name)
        .add(seconds * 1e3, 2)
        .add(static_cast<double>(packets) / seconds, 0)
        .add(seconds / scalar_best, 3);
  };
  row("scalar (warm cache)", scalar_best);
  row("soa (warm cache)", soa_best);
  table.print(std::cout);

  // Widened difference-array flush over the batch's own output.
  std::vector<double> flush_times;
  EdgeLoadMap loads(router.mesh());
  for (int r = 0; r < reps; ++r) {
    loads.clear();
    WallTimer timer;
    loads.add_segment_paths(soa_out);
    loads.flush();
    flush_times.push_back(timer.elapsed_seconds());
    checksum += loads.max_load();
  }
  const double flush_best = best(flush_times);
  std::cout << "load accumulate+flush: " << flush_best * 1e3 << " ms\n";

  // The OBLV_GAUGE_SET macro caches one registry handle per call site, so
  // runtime-composed names need the registry API directly.
  auto& registry = obs::MetricsRegistry::global();
  const auto gauge = [&](const std::string& name, double v) {
    registry.gauge("batch." + tag + "." + name).set(v);
  };
  gauge("scalar_warm_best_seconds", scalar_best);
  gauge("soa_warm_best_seconds", soa_best);
  gauge("soa_vs_scalar_ratio", soa_best / scalar_best);
  gauge("soa_bitidentical", identical ? 1.0 : 0.0);
  gauge("loads_flush_best_seconds", flush_best);

  // SoA thread sweep: recorded, not gated (two-core smoke runners).
  for (const std::size_t threads : {2, 4, 8}) {
    ThreadPool tp(threads);
    std::vector<double> times;
    for (int r = 0; r < reps; ++r) {
      times.push_back(
          run_engine(router, problem, tp, BatchEngine::kSoa, soa_out,
                     checksum));
    }
    const double b = best(times);
    std::cout << "soa x" << threads << ": " << b * 1e3 << " ms ("
              << static_cast<double>(packets) / b << " packets/s)\n";
    gauge("soa_threads" + std::to_string(threads) + "_best_seconds", b);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags =
      Flags::parse(argc, argv, {"packets", "pairs", "reps", "metrics-json"});
  const auto packets =
      static_cast<std::size_t>(flags.get_int("packets", 100000));
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs", 8192));
  const int reps = std::max<int>(1, static_cast<int>(flags.get_int("reps", 5)));

  bench::banner("P8 / SoA batch engine + lane-parallel rng",
                "scalar vs SoA batch inner loop, single warm thread "
                "(gate: 2d64 soa warm <= 0.0448 s/100k -- 3x the committed "
                "P6 scalar baseline -- and bit-identical output)");
  std::cout << "avx2 dispatch active: " << (simd_avx2_enabled() ? "yes" : "no")
            << "\n";
  obs::MetricsRegistry::global()
      .gauge("simd.avx2_active")
      .set(simd_avx2_enabled() ? 1.0 : 0.0);

  std::uint64_t checksum = 0;

  {
    std::cout << "\n-- 2D 64x64, hierarchical (Section 3) --\n";
    const Mesh mesh = Mesh::cube(2, 64);
    const RoutingProblem problem = repeated_pairs(mesh, packets, pairs);
    const AncestorRouter router(mesh, AncestorRouter::Hierarchy::kAccessGraph);
    report_config("2d64", router, problem, reps, checksum);
  }
  {
    std::cout << "\n-- 3D 32^3, hierarchical (Section 4) --\n";
    const Mesh mesh = Mesh::cube(3, 32);
    const RoutingProblem problem = repeated_pairs(mesh, packets, pairs);
    const NdRouter router(mesh);
    report_config("3d32", router, problem, reps, checksum);
  }

  std::cout << "checksum: " << checksum << "\n";
  if (flags.has("metrics-json")) {
    obs::write_metrics_json_file(flags.get("metrics-json", ""),
                                 {{"bench", "bench_p8_simd"}},
                                 obs::MetricsRegistry::global().snapshot());
  }
  bench::emit_metrics_json("bench_p8_simd");
  return 0;
}
