// P2 -- decomposition query throughput (google-benchmark).
//
// The hierarchical routers lean on three O(d)-per-level primitives:
// containment queries, deepest-common-ancestor scans, and the prescribed
// Section 4 bridge search. All are arithmetic on (level, type, anchor);
// nothing is materialized, so queries are tens of nanoseconds even on a
// million-node mesh.
#include <benchmark/benchmark.h>

#include "analysis/lower_bound.hpp"
#include "bench_common.hpp"
#include "decomposition/decomposition.hpp"
#include "routing/hierarchical.hpp"
#include "rng/rng.hpp"

namespace {

using namespace oblivious;

const Mesh& big_mesh() {
  static const Mesh mesh = Mesh::cube(2, 1024);  // ~1M nodes
  return mesh;
}

void bm_submesh_at(benchmark::State& state) {
  const Decomposition dec = Decomposition::section3(big_mesh());
  Rng rng(1);
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Coord p{static_cast<std::int64_t>(rng.uniform_below(1024)),
            static_cast<std::int64_t>(rng.uniform_below(1024))};
    benchmark::DoNotOptimize(dec.submesh_at(p, level, 2));
  }
}
BENCHMARK(bm_submesh_at)->Arg(1)->Arg(5)->Arg(9);

void bm_deepest_common(benchmark::State& state) {
  const Decomposition dec = Decomposition::section3(big_mesh());
  Rng rng(2);
  for (auto _ : state) {
    Coord s{static_cast<std::int64_t>(rng.uniform_below(1024)),
            static_cast<std::int64_t>(rng.uniform_below(1024))};
    Coord t{static_cast<std::int64_t>(rng.uniform_below(1024)),
            static_cast<std::int64_t>(rng.uniform_below(1024))};
    benchmark::DoNotOptimize(dec.deepest_common(s, t, true));
  }
}
BENCHMARK(bm_deepest_common);

void bm_nd_bridge_search(benchmark::State& state) {
  static const Mesh mesh = Mesh::cube(3, 64, /*torus=*/true);
  const NdRouter router(mesh);
  Rng rng(3);
  for (auto _ : state) {
    const NodeId s = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    NodeId t = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    if (t == s) t = (t + 1) % mesh.num_nodes();
    benchmark::DoNotOptimize(router.bridge_for(s, t));
  }
}
BENCHMARK(bm_nd_bridge_search);

void bm_boundary_lower_bound(benchmark::State& state) {
  // Full boundary-congestion scan of a 4096-packet problem on 64x64.
  static const Mesh mesh = Mesh::cube(2, 64);
  const Decomposition dec = Decomposition::section4(mesh);
  RoutingProblem problem;
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    problem.demands.push_back({u, mesh.num_nodes() - 1 - u});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(congestion_lower_bound(mesh, dec, problem));
  }
}
BENCHMARK(bm_boundary_lower_bound);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  oblivious::bench::emit_metrics_json("bench_p2_decomposition");
  return 0;
}
