// P7 -- graceful degradation under fault injection.
//
// The recovery claim of the fault subsystem, quantified: because path
// selection is oblivious (online + local, Section 1), a fault rate of
// epsilon should cost O(epsilon) delivery and stretch -- each re-draw is
// independent fresh randomness, so the algorithms degrade smoothly
// instead of falling off a cliff. This harness sweeps fault rate x
// algorithm on one seeded problem and reports the degradation curve:
// delivery rate, stretch added over the fault-free baseline (recovery
// backoff included), and congestion inflation of the delivered traffic.
//
// Everything reported is deterministic: the fault schedule and the
// per-packet routing streams are counter-derived, so the curve is
// bit-identical for any thread count (the accounting identity
// delivered + dropped == injected is enforced by a contract inside the
// sweep, and re-checked here into fault.p7.unaccounted).
//
// Flags: --mesh-side N (default 32), --threads N (default 4),
//        --metrics-json FILE (also honors OBLV_METRICS_JSON).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/degradation.hpp"
#include "bench_common.hpp"
#include "mesh/mesh.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/registry.hpp"
#include "rng/rng.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace oblivious;

// Stable metric tag for a fault rate: basis points, so 0.0005 -> "bp5".
std::string rate_tag(double rate) {
  return "bp" + std::to_string(static_cast<int>(rate * 10000.0 + 0.5));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags =
      Flags::parse(argc, argv, {"mesh-side", "threads", "metrics-json"});
  const auto side = flags.get_int("mesh-side", 32);
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 4));

  bench::banner("P7 / graceful degradation under faults",
                "delivery rate, added stretch, and congestion inflation vs "
                "fault rate (gate: exact accounting + rate-0 baseline)");

  const Mesh mesh = Mesh::cube(2, side);
  Rng wrng(7);
  const RoutingProblem problem = random_permutation(mesh, wrng);
  std::cout << "mesh " << mesh.describe() << ", " << problem.size()
            << " packets, " << threads << " threads\n\n";

  const std::vector<double> rates = {0.0, 0.0005, 0.002, 0.01, 0.05};
  const std::vector<std::string> algorithms = {
      "ecube",   "random-dim-order", "staircase",
      "valiant", "bounded-valiant",  "hierarchical-2d"};

  ThreadPool pool(threads);
  DegradationOptions options;
  options.route_seed = 1;
  options.fault_seed = 99;

  auto& registry = obs::MetricsRegistry::global();
  std::int64_t unaccounted = 0;

  Table table({"algorithm", "fault rate", "delivered", "dropped", "delivery",
               "stretch", "+stretch", "C", "C infl"});
  for (const std::string& name : algorithms) {
    const auto algorithm = algorithm_from_name(name);
    if (!algorithm.has_value()) {
      std::cerr << "unknown algorithm '" << name << "'\n";
      return 1;
    }
    const auto router = make_router(*algorithm, mesh);
    const std::vector<DegradationPoint> curve =
        degradation_sweep(mesh, *router, problem, rates, pool, options);
    for (const DegradationPoint& p : curve) {
      unaccounted += p.demands - p.delivered - p.dropped;
      table.row()
          .add(p.algorithm)
          .add(p.fault_rate, 4)
          .add(p.delivered)
          .add(p.dropped)
          .add(p.delivery_rate, 4)
          .add(p.mean_stretch, 3)
          .add(p.added_stretch, 3)
          .add(p.congestion)
          .add(p.congestion_inflation, 3);
      const std::string prefix = "fault.p7." + name + "." + rate_tag(p.fault_rate);
      registry.gauge(prefix + ".delivery_rate").set(p.delivery_rate);
      registry.gauge(prefix + ".dropped")
          .set(static_cast<double>(p.dropped));
      registry.gauge(prefix + ".added_stretch").set(p.added_stretch);
      registry.gauge(prefix + ".congestion_inflation")
          .set(p.congestion_inflation);
      registry.gauge(prefix + ".failures_injected")
          .set(static_cast<double>(p.failures_injected));
    }
  }
  table.print(std::cout);

  // Accounting identity across every cell of the sweep; the perf-smoke
  // baseline pins this gauge to exactly 0.
  registry.gauge("fault.p7.unaccounted")
      .set(static_cast<double>(unaccounted));
  std::cout << "unaccounted packets: " << unaccounted << "\n";

  if (flags.has("metrics-json")) {
    obs::write_metrics_json_file(flags.get("metrics-json", ""),
                                 {{"bench", "bench_p7_faults"}},
                                 obs::MetricsRegistry::global().snapshot());
  }
  bench::emit_metrics_json("bench_p7_faults");
  return 0;
}
