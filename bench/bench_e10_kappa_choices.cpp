// E10 -- Section 5.1 / Lemma 5.1: congestion as a function of the number
// of path choices kappa (= 2^random-bits per packet).
//
// Wraps the paper's hierarchical algorithm in the kappa-choice model: each
// pair gets kappa fixed alternatives (drawn once from the algorithm) and a
// packet spends exactly log2(kappa) random bits choosing among them. For
// each kappa we rebuild the adversarial instance Pi_A *against that
// kappa-choice algorithm* and measure its congestion, interpolating
// between the deterministic lower bound (kappa = 1: congestion ~ l) and
// the fully randomized algorithm. Lemma 5.1 predicts expected congestion
// >= l / (kappa d) on Pi_A.
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/kchoice.hpp"
#include "routing/registry.hpp"
#include "workloads/adversarial.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E10 / Lemma 5.1",
                "congestion vs path choices kappa: every kappa-choice "
                "algorithm has an instance with congestion >= l/(kappa d)");

  const Mesh mesh({64, 64});
  const std::int64_t l = 32;
  Table table({"kappa", "bits/packet", "|Pi_A|", "C on its Pi_A",
               "Lemma 5.1 bound l/(kappa d)", "C on block-exchange"});
  for (const int kappa : {1, 2, 4, 8, 16, 32}) {
    KChoiceRouter router(make_router(Algorithm::kHierarchical2d, mesh), kappa);
    // Pi_A against THIS algorithm: sample enough to find the modal path.
    Rng rng(101);
    const AdversarialInstance inst =
        build_pi_a(mesh, router, l, rng, /*samples_per_packet=*/4 * kappa);
    RouteAllOptions options;
    options.seed = 5;
    RunningStats bits;
    const std::vector<Path> pia_paths =
        route_all(mesh, router, inst.problem, options, &bits);
    const RouteSetMetrics pia =
        measure_paths(mesh, inst.problem, pia_paths, 1.0);

    const RoutingProblem base = block_exchange(mesh, l);
    const RouteSetMetrics full = evaluate_with_bound(
        mesh, router, base, best_lower_bound(mesh, base), options);

    table.row()
        .add(kappa)
        .add(bits.mean(), 1)
        .add(static_cast<std::int64_t>(inst.problem.size()))
        .add(pia.congestion)
        .add(static_cast<double>(l) / (2.0 * kappa), 1)
        .add(full.congestion);
  }
  table.print(std::cout);
  bench::note(
      "\nExpected: at kappa = 1 the adversary pins every packet to one edge\n"
      "(C ~ |Pi_A|); doubling kappa roughly halves the achievable damage,\n"
      "tracking the l/(kappa d) bound, until the full randomized algorithm's\n"
      "O(C* log n) behaviour takes over. The last column shows the same\n"
      "routers on the benign block-exchange permutation: a few choices\n"
      "already suffice there -- the adversarial instance is what separates\n"
      "the bit budgets (Section 5's point).");
  return 0;
}
