// E5 -- Lemma 3.3 / Lemma 4.1: bridges are found at height
// log2(dist) + O(1).
//
// Exhaustive (64x64) histogram of height(dca) - ceil(log2 dist) for the
// Section 3 decomposition, mesh and torus, plus the d-dimensional bridge
// height against its prescribed value for the Section 4 decomposition.
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/decomposition.hpp"
#include "routing/hierarchical.hpp"
#include "util/bits.hpp"
#include "util/stats.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E5 / Lemma 3.3 + Lemma 4.1",
                "bridge (deepest common ancestor) height <= log2(dist) + 2");

  for (const bool torus : {false, true}) {
    const Mesh mesh({64, 64}, torus);
    const Decomposition dec = Decomposition::section3(mesh);
    IntHistogram excess;  // height - ceil(log2 dist), shifted by +8
    const std::int64_t stride = 11;  // samples ~n^2/11 pairs deterministically
    for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
      for (NodeId t = s % stride + 1; t < mesh.num_nodes(); t += stride) {
        if (s == t) continue;
        const std::int64_t dist = mesh.distance(s, t);
        const RegularSubmesh dca =
            dec.deepest_common(mesh.coord(s), mesh.coord(t), true);
        const int h = dec.height_of(dca.level);
        excess.add(h - ceil_log2(static_cast<std::uint64_t>(dist)) + 8);
      }
    }
    std::cout << "\n" << mesh.describe()
              << ": distribution of height - ceil(log2 dist):\n";
    Table table({"excess", "pairs", "fraction"});
    for (std::int64_t e = 0; e <= excess.max_value(); ++e) {
      if (excess.count(e) == 0) continue;
      table.row()
          .add(e - 8)
          .add(static_cast<std::int64_t>(excess.count(e)))
          .add(static_cast<double>(excess.count(e)) /
                   static_cast<double>(excess.total()),
               4);
    }
    table.print(std::cout);
    std::cout << "max excess: " << excess.max_value() - 8
              << " (Lemma 3.3 bound: 2)\n";
  }

  bench::note("\nSection 4 (d = 3, torus): bridge found at prescribed height:");
  const Mesh mesh3 = Mesh::cube(3, 32, /*torus=*/true);
  const NdRouter router(mesh3);
  Rng rng(3);
  std::int64_t at_prescribed = 0;
  std::int64_t total = 0;
  for (int i = 0; i < 4000; ++i) {
    const NodeId s = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(mesh3.num_nodes())));
    const NodeId t = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(mesh3.num_nodes())));
    if (s == t) continue;
    const auto [m1_height, bridge_height] = router.heights_for(s, t);
    const RegularSubmesh bridge = router.bridge_for(s, t);
    ++total;
    if (router.decomposition().height_of(bridge.level) == bridge_height) {
      ++at_prescribed;
    }
  }
  std::cout << at_prescribed << " / " << total
            << " random pairs found their bridge exactly at the height "
               "prescribed by Lemma 4.1 (torus: expected all)\n";
  return 0;
}
