// E14 -- the competitive-ratio claim (Section 1 / Related Work): on the
// mesh, distributed oblivious routing is within a logarithmic factor of
// the optimal OFFLINE performance, "hence there is no significant benefit
// from using the offline algorithm".
//
// We route each workload three ways: the boundary lower bound (<= C*), an
// offline best-response optimizer with full knowledge of the traffic
// (>= C*, usually very close to it), and the paper's oblivious algorithm.
// Expected shape: offline lands essentially on the lower bound, and the
// oblivious algorithm is a small (log-factor) multiple above it --
// while needing no knowledge of the other packets at all.
#include <cmath>
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "offline/greedy.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E14 / oblivious vs offline",
                "oblivious routing is within a log factor of the offline "
                "optimum (and the offline optimum hugs the lower bound)");

  const Mesh mesh({64, 64});
  Rng wrng(5);
  const struct {
    std::string name;
    RoutingProblem problem;
  } workloads[] = {
      {"transpose", transpose(mesh)},
      {"bit-reversal", bit_reversal(mesh)},
      {"random-perm", random_permutation(mesh, wrng)},
      {"block-exch l=8", block_exchange(mesh, 8)},
  };

  Table table({"workload", "C* >=", "C offline", "offline/C*",
               "C oblivious", "oblivious/offline", "log2 n"});
  for (const auto& w : workloads) {
    const double lb = best_lower_bound(mesh, w.problem);

    OfflineOptions off_options;
    off_options.seed = 11;
    const OfflineResult offline = offline_route(mesh, w.problem, off_options);

    const auto router = make_router(Algorithm::kHierarchical2d, mesh);
    RouteAllOptions options;
    options.seed = 13;
    const RouteSetMetrics oblivious =
        evaluate_with_bound(mesh, *router, w.problem, lb, options);

    table.row()
        .add(w.name)
        .add(lb, 1)
        .add(offline.congestion)
        .add(static_cast<double>(offline.congestion) / std::max(lb, 1.0), 2)
        .add(oblivious.congestion)
        .add(static_cast<double>(oblivious.congestion) /
                 static_cast<double>(std::max<std::int64_t>(offline.congestion, 1)),
             2)
        .add(std::log2(static_cast<double>(mesh.num_nodes())), 1);
  }
  table.print(std::cout);
  bench::note(
      "\nExpected: the offline optimizer sits within ~1.5x of the lower\n"
      "bound (so the bound is a faithful stand-in for C*), and the\n"
      "oblivious algorithm is a factor of 3-6 above the offline optimum on\n"
      "a log2 n = 12 mesh -- inside the O(log n) competitive ratio, with\n"
      "zero knowledge of the traffic. The Maggs et al. lower bound\n"
      "Omega(log n / log log n) on the competitive ratio of ANY oblivious\n"
      "algorithm says a gap of this shape is unavoidable.");
  return 0;
}
