// P9 -- daemon service latency over an in-process loopback.
//
// Spins up the full oblvd server core (Unix socket, fair-share queue,
// batch coalescing through route_batch) inside the bench process, then
// drives it closed-loop from a small pool of client threads: each
// client keeps one request of `packets` demands in flight until the
// fixed request budget is spent. Reported per request:
//   * service latency (send -> response) p50 / p99 in milliseconds,
//   * delivered-packet throughput in kpkt/s,
//   * the accounting invariant (daemon.p9.unaccounted must be 0).
// The perf-smoke gate caps p99 and floors throughput against
// bench/baselines/perf_smoke.json; BENCH_p9.json records a full run.
//
// A second phase re-runs the same request budget at TWICE the
// throughput just measured (past saturation by construction, on any
// machine) against a server with a small queue, CoDel shedding, and
// per-request deadlines: admitted work must keep a bounded p99
// (daemon.p9.sat.p99_ms gate) while everything shed is fully counted
// (daemon.p9.sat.unaccounted must be 0, daemon.p9.sat.shed must be
// nonzero -- overload that sheds nothing means the phase never
// saturated).
//
// Flags: --requests N (default 600), --packets N (default 64),
//        --clients N (default 4), --mesh WxH (default 64x64),
//        --sat-deadline-ms N (default 25),
//        --metrics-json FILE (also honors OBLV_METRICS_JSON).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "daemon/client.hpp"
#include "daemon/server.hpp"
#include "mesh/mesh.hpp"
#include "rng/rng.hpp"
#include "util/flags.hpp"

namespace {

using namespace oblivious;
using Clock = std::chrono::steady_clock;

Mesh parse_mesh(const std::string& spec) {
  std::vector<std::int64_t> sides;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, 'x')) sides.push_back(std::stoll(part));
  return Mesh(std::move(sides), false);
}

std::vector<Demand> make_demands(const Mesh& mesh, std::uint64_t seed,
                                 std::size_t packets) {
  Rng rng(seed);
  const auto nodes = static_cast<std::uint64_t>(mesh.num_nodes());
  std::vector<Demand> demands;
  demands.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    demands.push_back(
        Demand{static_cast<std::int64_t>(rng.uniform_below(nodes)),
               static_cast<std::int64_t>(rng.uniform_below(nodes))});
  }
  return demands;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int run(const Flags& flags) {
  bench::banner("P9 -- daemon loopback service latency",
                "closed-loop clients against the in-process oblvd core; "
                "latency = send -> response per request");

  const Mesh mesh = parse_mesh(flags.get("mesh", "64x64"));
  const auto total_requests =
      static_cast<std::size_t>(flags.get_int("requests", 600));
  const auto packets = static_cast<std::size_t>(flags.get_int("packets", 64));
  const auto clients = static_cast<std::size_t>(flags.get_int("clients", 4));

  daemon::ServerOptions options;
  options.endpoint.unix_path =
      "/tmp/oblv-p9-" + std::to_string(::getpid()) + ".sock";
  options.routing_threads = 2;
  daemon::Server server(mesh, options);
  std::thread server_thread([&] { (void)server.run(); });
  while (!server.serving()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> delivered{0};
  std::mutex latency_mu;
  std::vector<double> latencies_ms;

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      daemon::DaemonClient client(options.endpoint);
      std::vector<double> local;
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total_requests) break;
        const std::uint64_t seed = splitmix64(0x9e01 + i);
        const auto demands = make_demands(mesh, seed, packets);
        const Clock::time_point sent = Clock::now();
        const daemon::RouteResponse response =
            client.route("bench" + std::to_string(c), seed, demands);
        if (response.status == daemon::RouteStatus::kOk) {
          delivered.fetch_add(demands.size());
          local.push_back(std::chrono::duration<double, std::milli>(
                              Clock::now() - sent)
                              .count());
        }
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  server.request_drain();
  server_thread.join();
  const daemon::ServerStats stats = server.stats();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  const double kpps =
      wall_s > 0.0
          ? static_cast<double>(delivered.load()) / wall_s / 1000.0
          : 0.0;

  Table table({"requests", "packets/req", "clients", "p50 ms", "p99 ms",
               "kpkt/s"});
  table.row()
      .add(static_cast<std::int64_t>(total_requests))
      .add(static_cast<std::int64_t>(packets))
      .add(static_cast<std::int64_t>(clients))
      .add(p50, 3)
      .add(p99, 3)
      .add(kpps, 1);
  table.print(std::cout);
  std::cout << "accounting: " << stats.requests_submitted << " submitted = "
            << stats.requests_delivered << " delivered + "
            << stats.requests_rejected << " rejected (unaccounted "
            << stats.unaccounted_requests() << ")\n";

  OBLV_GAUGE_SET("daemon.p9.p50_ms", p50);
  OBLV_GAUGE_SET("daemon.p9.p99_ms", p99);
  OBLV_GAUGE_SET("daemon.p9.throughput_kpps", kpps);
  OBLV_GAUGE_SET("daemon.p9.unaccounted",
                 static_cast<double>(stats.unaccounted_requests()));

  // ---- Phase 2: 2x saturation with deadlines + CoDel shedding ----
  // Offered load is twice the rate phase 1 just measured on THIS
  // machine, driven by 4x the clients so the closed-loop ceiling sits
  // well above it, against a queue that holds only four requests'
  // worth of packets: concurrent arrivals structurally exceed capacity
  // wherever this runs. CoDel (5 ms sojourn target) plus per-request
  // deadlines shed the excess, so queue-stuck work expires instead of
  // inflating the admitted-work tail -- the deadline sits below the
  // p99 gate by construction.
  const double base_rps =
      wall_s > 0.0 ? static_cast<double>(total_requests) / wall_s : 1000.0;
  const auto sat_deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("sat-deadline-ms", 15));
  const std::size_t sat_clients = clients * 4;

  daemon::ServerOptions sat_options;
  sat_options.endpoint.unix_path =
      "/tmp/oblv-p9-sat-" + std::to_string(::getpid()) + ".sock";
  sat_options.routing_threads = 2;
  // Half the closed-loop in-flight ceiling (16 clients x packets), one
  // shared tenant: whenever more than half the pool is outstanding the
  // arrival is shed, independent of machine speed.
  sat_options.queue.capacity_packets = packets * 8;
  sat_options.queue.codel_target_ms = 5;
  sat_options.queue.codel_interval_ms = 50;
  daemon::Server sat_server(mesh, sat_options);
  std::thread sat_thread([&] { (void)sat_server.run(); });
  while (!sat_server.serving()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<std::uint64_t> sat_delivered{0};
  std::atomic<std::uint64_t> sat_rejected{0};
  std::atomic<std::uint64_t> sat_expired{0};
  std::atomic<std::uint64_t> sat_errors{0};
  std::vector<double> sat_latencies_ms;

  const std::size_t per_client = total_requests / sat_clients;
  const auto pace = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          static_cast<double>(sat_clients) / (2.0 * base_rps)));
  const Clock::time_point sat_start = Clock::now();
  std::vector<std::thread> sat_threads;
  for (std::size_t c = 0; c < sat_clients; ++c) {
    sat_threads.emplace_back([&, c] {
      daemon::DaemonClient client(sat_options.endpoint);
      std::vector<double> local;
      for (std::size_t k = 0; k < per_client; ++k) {
        // Open-loop pacing at 2x the measured service rate; when the
        // server falls behind, the send happens late and the standing
        // queue (not the client) absorbs the pressure.
        std::this_thread::sleep_until(
            sat_start + pace * static_cast<std::int64_t>(k + 1));
        const std::uint64_t seed = splitmix64(0x5a70 + c * per_client + k);
        const auto demands = make_demands(mesh, seed, packets);
        const Clock::time_point sent = Clock::now();
        const daemon::RouteResponse response =
            client.route("sat", seed, demands, sat_deadline_ms);
        switch (response.status) {
          case daemon::RouteStatus::kOk:
            sat_delivered.fetch_add(1);
            local.push_back(std::chrono::duration<double, std::milli>(
                                Clock::now() - sent)
                                .count());
            break;
          case daemon::RouteStatus::kRejected:
            sat_rejected.fetch_add(1);
            break;
          case daemon::RouteStatus::kExpired:
            sat_expired.fetch_add(1);
            break;
          default:
            sat_errors.fetch_add(1);
            break;
        }
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      sat_latencies_ms.insert(sat_latencies_ms.end(), local.begin(),
                              local.end());
    });
  }
  for (auto& t : sat_threads) t.join();
  sat_server.request_drain();
  sat_thread.join();
  const daemon::ServerStats sat_stats = sat_server.stats();

  std::sort(sat_latencies_ms.begin(), sat_latencies_ms.end());
  const double sat_p50 = percentile(sat_latencies_ms, 0.50);
  const double sat_p99 = percentile(sat_latencies_ms, 0.99);
  const std::uint64_t sat_offered = per_client * sat_clients;
  const std::uint64_t sat_shed = sat_rejected.load() + sat_expired.load();

  Table sat_table({"offered", "delivered", "rejected", "expired",
                   "sat p50 ms", "sat p99 ms"});
  sat_table.row()
      .add(static_cast<std::int64_t>(sat_offered))
      .add(static_cast<std::int64_t>(sat_delivered.load()))
      .add(static_cast<std::int64_t>(sat_rejected.load()))
      .add(static_cast<std::int64_t>(sat_expired.load()))
      .add(sat_p50, 3)
      .add(sat_p99, 3);
  sat_table.print(std::cout);
  std::cout << "saturation accounting: " << sat_stats.requests_submitted
            << " submitted = " << sat_stats.requests_delivered
            << " delivered + " << sat_stats.requests_rejected
            << " rejected + " << sat_stats.requests_expired
            << " expired (unaccounted " << sat_stats.unaccounted_requests()
            << ")\n";

  OBLV_GAUGE_SET("daemon.p9.sat.p50_ms", sat_p50);
  OBLV_GAUGE_SET("daemon.p9.sat.p99_ms", sat_p99);
  OBLV_GAUGE_SET("daemon.p9.sat.delivered",
                 static_cast<double>(sat_delivered.load()));
  OBLV_GAUGE_SET("daemon.p9.sat.shed", static_cast<double>(sat_shed));
  OBLV_GAUGE_SET("daemon.p9.sat.unaccounted",
                 static_cast<double>(sat_stats.unaccounted_requests()));

  const bool sat_ok =
      sat_stats.unaccounted_requests() == 0 && sat_errors.load() == 0 &&
      sat_delivered.load() + sat_shed == sat_offered;
  if (!sat_ok) {
    std::cout << "saturation phase FAILED: " << sat_errors.load()
              << " transport errors, client identity "
              << sat_delivered.load() + sat_shed << " != " << sat_offered
              << "\n";
  }

  if (flags.has("metrics-json")) {
    obs::write_metrics_json_file(
        flags.get("metrics-json", ""),
        {{"bench", "P9"}, {"mesh", mesh.describe()}},
        obs::MetricsRegistry::global().snapshot());
  }
  return stats.unaccounted_requests() == 0 && sat_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Flags::parse(argc, argv,
                            {"requests", "packets", "clients", "mesh",
                             "sat-deadline-ms", "metrics-json", "help"}));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
