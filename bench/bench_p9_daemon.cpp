// P9 -- daemon service latency over an in-process loopback.
//
// Spins up the full oblvd server core (Unix socket, fair-share queue,
// batch coalescing through route_batch) inside the bench process, then
// drives it closed-loop from a small pool of client threads: each
// client keeps one request of `packets` demands in flight until the
// fixed request budget is spent. Reported per request:
//   * service latency (send -> response) p50 / p99 in milliseconds,
//   * delivered-packet throughput in kpkt/s,
//   * the accounting invariant (daemon.p9.unaccounted must be 0).
// The perf-smoke gate caps p99 and floors throughput against
// bench/baselines/perf_smoke.json; BENCH_p9.json records a full run.
//
// Flags: --requests N (default 600), --packets N (default 64),
//        --clients N (default 4), --mesh WxH (default 64x64),
//        --metrics-json FILE (also honors OBLV_METRICS_JSON).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "daemon/client.hpp"
#include "daemon/server.hpp"
#include "mesh/mesh.hpp"
#include "rng/rng.hpp"
#include "util/flags.hpp"

namespace {

using namespace oblivious;
using Clock = std::chrono::steady_clock;

Mesh parse_mesh(const std::string& spec) {
  std::vector<std::int64_t> sides;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, 'x')) sides.push_back(std::stoll(part));
  return Mesh(std::move(sides), false);
}

std::vector<Demand> make_demands(const Mesh& mesh, std::uint64_t seed,
                                 std::size_t packets) {
  Rng rng(seed);
  const auto nodes = static_cast<std::uint64_t>(mesh.num_nodes());
  std::vector<Demand> demands;
  demands.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    demands.push_back(
        Demand{static_cast<std::int64_t>(rng.uniform_below(nodes)),
               static_cast<std::int64_t>(rng.uniform_below(nodes))});
  }
  return demands;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int run(const Flags& flags) {
  bench::banner("P9 -- daemon loopback service latency",
                "closed-loop clients against the in-process oblvd core; "
                "latency = send -> response per request");

  const Mesh mesh = parse_mesh(flags.get("mesh", "64x64"));
  const auto total_requests =
      static_cast<std::size_t>(flags.get_int("requests", 600));
  const auto packets = static_cast<std::size_t>(flags.get_int("packets", 64));
  const auto clients = static_cast<std::size_t>(flags.get_int("clients", 4));

  daemon::ServerOptions options;
  options.endpoint.unix_path =
      "/tmp/oblv-p9-" + std::to_string(::getpid()) + ".sock";
  options.routing_threads = 2;
  daemon::Server server(mesh, options);
  std::thread server_thread([&] { (void)server.run(); });
  while (!server.serving()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> delivered{0};
  std::mutex latency_mu;
  std::vector<double> latencies_ms;

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      daemon::DaemonClient client(options.endpoint);
      std::vector<double> local;
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total_requests) break;
        const std::uint64_t seed = splitmix64(0x9e01 + i);
        const auto demands = make_demands(mesh, seed, packets);
        const Clock::time_point sent = Clock::now();
        const daemon::RouteResponse response =
            client.route("bench" + std::to_string(c), seed, demands);
        if (response.status == daemon::RouteStatus::kOk) {
          delivered.fetch_add(demands.size());
          local.push_back(std::chrono::duration<double, std::milli>(
                              Clock::now() - sent)
                              .count());
        }
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  server.request_drain();
  server_thread.join();
  const daemon::ServerStats stats = server.stats();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  const double kpps =
      wall_s > 0.0
          ? static_cast<double>(delivered.load()) / wall_s / 1000.0
          : 0.0;

  Table table({"requests", "packets/req", "clients", "p50 ms", "p99 ms",
               "kpkt/s"});
  table.row()
      .add(static_cast<std::int64_t>(total_requests))
      .add(static_cast<std::int64_t>(packets))
      .add(static_cast<std::int64_t>(clients))
      .add(p50, 3)
      .add(p99, 3)
      .add(kpps, 1);
  table.print(std::cout);
  std::cout << "accounting: " << stats.requests_submitted << " submitted = "
            << stats.requests_delivered << " delivered + "
            << stats.requests_rejected << " rejected (unaccounted "
            << stats.unaccounted_requests() << ")\n";

  OBLV_GAUGE_SET("daemon.p9.p50_ms", p50);
  OBLV_GAUGE_SET("daemon.p9.p99_ms", p99);
  OBLV_GAUGE_SET("daemon.p9.throughput_kpps", kpps);
  OBLV_GAUGE_SET("daemon.p9.unaccounted",
                 static_cast<double>(stats.unaccounted_requests()));

  if (flags.has("metrics-json")) {
    obs::write_metrics_json_file(
        flags.get("metrics-json", ""),
        {{"bench", "P9"}, {"mesh", mesh.describe()}},
        obs::MetricsRegistry::global().snapshot());
  }
  return stats.unaccounted_requests() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Flags::parse(argc, argv,
                            {"requests", "packets", "clients", "mesh",
                             "metrics-json", "help"}));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
