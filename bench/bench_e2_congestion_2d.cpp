// E2 -- Theorem 3.9: congestion O(C* log n) with high probability in 2D.
//
// Part 1: all algorithms on the classic hard workloads of one mesh size,
// reporting C and the competitive ratio C/C* (C* = boundary lower bound).
// Part 2: scaling of the hierarchical router's ratio with log n, which
// Theorem 3.9 predicts grows at most linearly in log n.
//
// Expected shape: hierarchical-2d's ratio is a small multiple of 1 on all
// workloads and grows (at most) like log n, while e-cube's ratio can blow
// up on adversarial instances (see E6) and Valiant pays extra on local
// traffic.
#include <cmath>
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace oblivious;

struct Workload {
  std::string name;
  RoutingProblem problem;
};

std::vector<Workload> make_workloads(const Mesh& mesh, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Workload> w;
  w.push_back({"transpose", transpose(mesh)});
  w.push_back({"bit-reversal", bit_reversal(mesh)});
  w.push_back({"random-perm", random_permutation(mesh, rng)});
  w.push_back({"tornado", tornado(mesh)});
  w.push_back({"block-exch l=8", block_exchange(mesh, 8)});
  w.push_back({"hotspot", hotspot(mesh, rng,
                                  static_cast<std::size_t>(mesh.num_nodes() / 8))});
  return w;
}

}  // namespace

int main() {
  bench::banner("E2 / Theorem 3.9",
                "2D congestion vs the optimal lower bound: C = O(C* log n)");

  const Mesh mesh({64, 64});
  std::cout << "Part 1: all algorithms, " << mesh.describe() << "\n";
  for (const Workload& w : make_workloads(mesh, 5)) {
    const double lb = best_lower_bound(mesh, w.problem);
    std::cout << "\nworkload " << w.name << " (C* >= " << lb << "):\n";
    Table table({"algorithm", "C", "C/C*", "D", "max stretch"});
    for (const Algorithm a : algorithms_for(mesh)) {
      const auto router = make_router(a, mesh);
      RouteAllOptions options;
      options.seed = 31;
      const RouteSetMetrics m =
          evaluate_with_bound(mesh, *router, w.problem, lb, options);
      table.row()
          .add(m.algorithm)
          .add(m.congestion)
          .add(m.congestion_ratio, 2)
          .add(m.dilation)
          .add(m.max_stretch, 2);
    }
    table.print(std::cout);
  }

  std::cout << "\nPart 2: scaling of hierarchical-2d with n (random "
               "permutation):\n";
  Table scaling({"mesh", "log2 n", "C* >=", "C", "C/C*", "(C/C*)/log2 n"});
  for (const std::int64_t side : {8, 16, 32, 64, 128}) {
    const Mesh m({side, side});
    Rng rng(17);
    const RoutingProblem problem = random_permutation(m, rng);
    const double lb = best_lower_bound(m, problem);
    const auto router = make_router(Algorithm::kHierarchical2d, m);
    RouteAllOptions options;
    options.seed = 23;
    const RouteSetMetrics metrics =
        evaluate_with_bound(m, *router, problem, lb, options);
    const double logn = std::log2(static_cast<double>(m.num_nodes()));
    scaling.row()
        .add(m.describe())
        .add(logn, 1)
        .add(lb, 1)
        .add(metrics.congestion)
        .add(metrics.congestion_ratio, 2)
        .add(metrics.congestion_ratio / logn, 3);
  }
  scaling.print(std::cout);
  bench::note(
      "\nExpected: the last column (ratio normalized by log n) is bounded by\n"
      "a constant -- that is exactly the O(C* log n) guarantee.");
  return 0;
}
