// E4 -- Theorem 4.3: d-dimensional congestion O(d^2 C* log n) w.h.p.
//
// Random permutations on d-cubes for d = 1..4: C, the boundary lower
// bound, and the ratio normalized by d^2 log n, which the theorem predicts
// is bounded by a constant.
#include <cmath>
#include <iostream>

#include "analysis/evaluate.hpp"
#include "bench_common.hpp"
#include "routing/registry.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace oblivious;
  bench::banner("E4 / Theorem 4.3",
                "d-dimensional congestion: C = O(d^2 C* log n) w.h.p.");

  Table table({"d", "mesh", "C* >=", "C", "C/C*", "(C/C*)/(d^2 log2 n)"});
  for (int d = 1; d <= 4; ++d) {
    const std::int64_t side = d == 1 ? 4096 : (d == 2 ? 64 : (d == 3 ? 16 : 8));
    const Mesh mesh = Mesh::cube(d, side);
    Rng rng(29);
    const RoutingProblem problem = random_permutation(mesh, rng);
    const double lb = best_lower_bound(mesh, problem);
    const auto router = make_router(Algorithm::kHierarchicalNd, mesh);
    RouteAllOptions options;
    options.seed = 37;
    const RouteSetMetrics m =
        evaluate_with_bound(mesh, *router, problem, lb, options);
    const double logn = std::log2(static_cast<double>(mesh.num_nodes()));
    table.row()
        .add(d)
        .add(mesh.describe())
        .add(lb, 1)
        .add(m.congestion)
        .add(m.congestion_ratio, 2)
        .add(m.congestion_ratio / (d * d * logn), 4);
  }
  table.print(std::cout);

  bench::note(
      "\nPer-workload detail for d = 3 (16^3):");
  const Mesh mesh = Mesh::cube(3, 16);
  Rng rng(41);
  const struct {
    std::string name;
    RoutingProblem problem;
  } workloads[] = {{"random-perm", random_permutation(mesh, rng)},
                   {"tornado", tornado(mesh)},
                   {"block-exch l=4", block_exchange(mesh, 4)},
                   {"transpose(0,1)", transpose(mesh)}};
  Table detail({"workload", "algorithm", "C", "C/C*"});
  for (const auto& w : workloads) {
    const double lb = best_lower_bound(mesh, w.problem);
    for (const Algorithm a :
         {Algorithm::kEcube, Algorithm::kValiant, Algorithm::kHierarchicalNd}) {
      const auto router = make_router(a, mesh);
      RouteAllOptions options;
      options.seed = 43;
      const RouteSetMetrics m =
          evaluate_with_bound(mesh, *router, w.problem, lb, options);
      detail.row().add(w.name).add(m.algorithm).add(m.congestion).add(
          m.congestion_ratio, 2);
    }
  }
  detail.print(std::cout);
  bench::note(
      "\nExpected: the normalized column is constant-bounded, and\n"
      "hierarchical-nd stays within a small factor of the bound across\n"
      "workloads.");
  return 0;
}
