// P6 -- zero-allocation batch routing engine.
//
// Three claims from the scratch/plan-cache/batch work, measured on the
// same style of workload as P4/P5 (100k packets, hierarchical routers):
//   * scratch:   route_segments_into with a reused RouteScratch beats the
//     allocating route_segments twin (which pays a fresh scratch + output
//     buffer per packet);
//   * plan cache: a warm chain memo beats rebuilding the bitonic chain
//     per packet -- the headline gate is warm-scratch time <= 0.67x the
//     allocating path (>= 1.5x throughput);
//   * batch:     route_batch over a thread pool scales the sequential
//     throughput near-linearly (recorded as gauges; not CI-gated because
//     the smoke runners have two cores).
// The workload repeats 100k packets over a fixed pool of distinct pairs so
// the warm arms actually hit the plan cache; the cold arms run against a
// deliberately tiny cache (forced eviction) to approximate the
// cache-less allocating engine this PR replaces. Per-arm minima over
// interleaved reps are compared, as in P5: noise is strictly additive.
//
// Flags: --packets N (default 100000), --pairs N (default 8192),
//        --reps N (default 5), --metrics-json FILE
//        (also honors OBLV_METRICS_JSON).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mesh/mesh.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/hierarchical.hpp"
#include "routing/route_scratch.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

namespace {

using namespace oblivious;

// `packets` demands drawn (with repetition) from `pairs` distinct pairs:
// dense enough that a default-capacity plan cache converges to ~100% hits.
RoutingProblem repeated_pairs(const Mesh& mesh, std::size_t packets,
                              std::size_t pairs) {
  Rng rng(7);
  std::vector<Demand> pool;
  pool.reserve(pairs);
  const auto nodes = static_cast<std::uint64_t>(mesh.num_nodes());
  while (pool.size() < pairs) {
    const auto s = static_cast<NodeId>(rng.uniform_below(nodes));
    const auto t = static_cast<NodeId>(rng.uniform_below(nodes));
    if (s != t) pool.push_back({s, t});
  }
  RoutingProblem p;
  p.demands.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    p.demands.push_back(pool[rng.uniform_below(pairs)]);
  }
  return p;
}

// One sequential pass with the ALLOCATING api (fresh scratch + output per
// packet, exactly what every caller paid before this engine existed).
double run_alloc(const Router& router, const RoutingProblem& problem,
                 std::uint64_t& checksum) {
  WallTimer timer;
  Rng rng(1);
  for (const Demand& d : problem.demands) {
    checksum += static_cast<std::uint64_t>(
        router.route_segments(d.src, d.dst, rng).length());
  }
  return timer.elapsed_seconds();
}

// One sequential pass with the scratch-threaded api.
double run_scratch(const Router& router, const RoutingProblem& problem,
                   std::uint64_t& checksum) {
  WallTimer timer;
  Rng rng(1);
  RouteScratch scratch;
  SegmentPath out;
  for (const Demand& d : problem.demands) {
    router.route_segments_into(d.src, d.dst, rng, scratch, out);
    checksum += static_cast<std::uint64_t>(out.length());
  }
  return timer.elapsed_seconds();
}

// One pass through the batch driver on `threads` pool threads.
double run_batch(const Router& router, const RoutingProblem& problem,
                 ThreadPool& pool, std::vector<SegmentPath>& out,
                 std::uint64_t& checksum) {
  WallTimer timer;
  RouteBatchOptions options;
  options.seed = 1;
  route_batch(router, std::span<const Demand>(problem.demands), pool, options,
              out);
  checksum += static_cast<std::uint64_t>(out.front().length());
  return timer.elapsed_seconds();
}

double best(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

struct ArmTimes {
  std::vector<double> alloc, cold, warm;
};

// Interleaves the three sequential arms; `cold_router` carries the tiny
// thrashing cache, `warm_router` the default one (pre-warmed by the
// caller's first rep).
ArmTimes run_sequential_arms(const Router& cold_router,
                             const Router& warm_router,
                             const RoutingProblem& problem, int reps,
                             std::uint64_t& checksum) {
  ArmTimes t;
  for (int r = 0; r < reps; ++r) {
    t.alloc.push_back(run_alloc(cold_router, problem, checksum));
    t.cold.push_back(run_scratch(cold_router, problem, checksum));
    t.warm.push_back(run_scratch(warm_router, problem, checksum));
  }
  return t;
}

void report_config(const std::string& tag, const Router& cold_router,
                   const Router& warm_router, const PlanCache& warm_cache,
                   const RoutingProblem& problem, int reps,
                   std::uint64_t& checksum) {
  const std::size_t packets = problem.size();
  // Warm-up: grows buffers, populates both caches to steady state.
  run_alloc(cold_router, problem, checksum);
  run_scratch(cold_router, problem, checksum);
  run_scratch(warm_router, problem, checksum);

  const ArmTimes t =
      run_sequential_arms(cold_router, warm_router, problem, reps, checksum);
  const double alloc_best = best(t.alloc);
  const double cold_best = best(t.cold);
  const double warm_best = best(t.warm);

  Table table({"arm", "best ms", "packets/s", "vs alloc"});
  const auto row = [&](const std::string& name, double seconds) {
    table.row()
        .add(name)
        .add(seconds * 1e3, 2)
        .add(static_cast<double>(packets) / seconds, 0)
        .add(seconds / alloc_best, 3);
  };
  row("alloc (tiny cache)", alloc_best);
  row("scratch (tiny cache)", cold_best);
  row("scratch (warm cache)", warm_best);
  table.print(std::cout);

  const PlanCache::Stats stats = warm_cache.stats();
  const double lookups = static_cast<double>(stats.hits + stats.misses);
  const double hit_rate =
      lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
  std::cout << "warm cache hit rate: " << hit_rate * 100.0 << "%\n";

  // The OBLV_GAUGE_SET macro caches one registry handle per call site, so
  // runtime-composed names need the registry API directly.
  auto& registry = obs::MetricsRegistry::global();
  const auto gauge = [&](const std::string& name, double v) {
    registry.gauge("batch." + tag + "." + name).set(v);
  };
  gauge("alloc_best_seconds", alloc_best);
  gauge("scratch_cold_best_seconds", cold_best);
  gauge("scratch_warm_best_seconds", warm_best);
  gauge("scratch_vs_alloc_ratio", cold_best / alloc_best);
  gauge("warm_vs_alloc_ratio", warm_best / alloc_best);
  gauge("plan_cache_hit_rate", hit_rate);

  // Thread sweep through the batch driver (warm router). Recorded, not
  // gated: smoke runners have two cores.
  std::vector<SegmentPath> out;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<double> times;
    for (int r = 0; r < reps; ++r) {
      times.push_back(run_batch(warm_router, problem, pool, out, checksum));
    }
    const double b = best(times);
    std::cout << "route_batch x" << threads << ": " << b * 1e3 << " ms ("
              << static_cast<double>(packets) / b << " packets/s)\n";
    gauge("batch_threads" + std::to_string(threads) + "_best_seconds", b);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags =
      Flags::parse(argc, argv, {"packets", "pairs", "reps", "metrics-json"});
  const auto packets =
      static_cast<std::size_t>(flags.get_int("packets", 100000));
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs", 8192));
  const int reps = std::max<int>(1, static_cast<int>(flags.get_int("reps", 5)));

  bench::banner("P6 / zero-allocation batch routing",
                "scratch vs allocating, warm vs cold plan cache, and the "
                "route_batch thread sweep (gate: warm <= 0.67x alloc)");

  std::uint64_t checksum = 0;

  {
    std::cout << "\n-- 2D 64x64, hierarchical (Section 3) --\n";
    const Mesh mesh = Mesh::cube(2, 64);
    const RoutingProblem problem = repeated_pairs(mesh, packets, pairs);
    const AncestorRouter cold(mesh, AncestorRouter::Hierarchy::kAccessGraph,
                              /*plan_cache_capacity=*/4);
    const AncestorRouter warm(mesh, AncestorRouter::Hierarchy::kAccessGraph);
    report_config("2d64", cold, warm, warm.plan_cache(), problem, reps,
                  checksum);
  }
  {
    std::cout << "\n-- 3D 32^3, hierarchical (Section 4) --\n";
    const Mesh mesh = Mesh::cube(3, 32);
    const RoutingProblem problem = repeated_pairs(mesh, packets, pairs);
    const NdRouter cold(mesh, NdRouter::RandomnessMode::kNaive,
                        NdRouter::BridgeHeightMode::kPrescribed,
                        /*plan_cache_capacity=*/4);
    const NdRouter warm(mesh);
    report_config("3d32", cold, warm, warm.plan_cache(), problem, reps,
                  checksum);
  }

  std::cout << "checksum: " << checksum << "\n";
  if (flags.has("metrics-json")) {
    obs::write_metrics_json_file(flags.get("metrics-json", ""),
                                 {{"bench", "bench_p6_batch"}},
                                 obs::MetricsRegistry::global().snapshot());
  }
  bench::emit_metrics_json("bench_p6_batch");
  return 0;
}
