// Structure-of-arrays batch routing engine.
//
// The scalar batch loop pays per packet for work that only depends on the
// (source, destination) pair: a mutex-guarded plan-cache lookup, chain
// decoding, and virtual route_segments_into dispatch. Because path
// selection is oblivious, packets are free to be processed in any order,
// so this engine groups a chunk's packets by pair (counting sort over a
// reusable open-addressing table), resolves each pair's routing plan ONCE,
// compiles it into a flat "draw program" (the exact sequence of rng draw
// bounds the scalar router would execute), and then runs the program for
// up to RngLanes::kLanes packets at a time with the lane-parallel counter
// RNG. Per-packet output is emitted through SegmentPath::append, so the
// segment merging semantics are shared with the scalar path by
// construction.
//
// Determinism contract (DESIGN.md section 10, enforced by the equivalence
// tests): for every supported algorithm, seed, thread count, and chunk
// size, out[i] is bit-identical to what the scalar engine produces with
// packet_rng(seed, i). Lane k of every vectorized draw consumes exactly
// the words of packet k's private stream -- lanes never share state --
// and rejection sampling is fixed up per lane (RngLanes::next_lane).
//
// The engine's buffers are all capacity-retaining members: after a warm-up
// batch the steady state performs zero heap allocations
// (tests/alloc_count_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/region.hpp"
#include "mesh/segment_path.hpp"
#include "rng/rng_lanes.hpp"
#include "routing/router.hpp"
#include "util/stats.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

class SoaBatchEngine {
 public:
  // True when `router` has a native SoA kernel: ecube, random-dim-order,
  // Valiant, bounded Valiant, and the hierarchical routers (both
  // AncestorRouter hierarchies; NdRouter naive and frugal). Staircase
  // draws a data-dependent number of words per hop, so its lanes cannot
  // run a shared program; it and unknown Router subclasses stay scalar.
  static bool supports(const Router& router);

  // Routes packets [begin, end) of `demands` into out[begin..end) using
  // the per-packet streams packet_rng(seed, i). When `path_lengths` is
  // non-null, adds the stride-weighted path-length samples for exactly
  // the packets the scalar engine would sample.
  // \pre supports(router); every demand endpoint is a node of its mesh;
  //      out.size() == demands.size().
  void run(const Router& router, std::span<const Demand> demands,
           std::uint64_t seed, std::size_t begin, std::size_t end,
           std::span<SegmentPath> out, IntHistogram* path_lengths);

 private:
  // One rng draw of the compiled program. nbits == 0 encodes a draw-free
  // op (uniform_below(1) / bits(0)): value 0, no word consumed. bound ==
  // 0 encodes bits(nbits) (top bits, rejection-free); otherwise
  // uniform_below(bound) with rejection when the bound is not a power of
  // two.
  struct DrawOp {
    std::uint64_t bound = 0;
    std::uint8_t nbits = 0;
    bool pow2 = true;
  };

  void push_uniform(std::uint64_t bound);
  void push_bits(int nbits);
  void push_perm(int dim);

  // Runs the compiled program for `nlanes` freshly seeded lanes, filling
  // draw_vals_ (row-major: op index x lane).
  void exec_program(std::size_t nlanes);

  // Fisher-Yates decode of a permutation drawn at ops [op_base,
  // op_base + dim - 1) for `lane`, exactly as Rng::random_permutation.
  void decode_perm(std::size_t op_base, int dim, std::size_t lane, int* perm);

  // Fills coord_rows_ (waypoint coordinates) and run_rows_ (per-leg
  // straight runs) for all lanes of the current block, vectorized across
  // lanes, from draw_vals_ and the static plan columns. `frugal` selects
  // the frugal program's draw layout (shared v1/v2 words reduced modulo
  // each leg extent) over the naive one (one fresh draw per leg and dim).
  void compute_rows(const Mesh& mesh, const Coord& cs, const Coord& ct,
                    std::size_t legs, bool frugal);

  // Per-pair group kernels (s != t).
  void run_ecube(const Mesh& mesh, NodeId s, NodeId t,
                 std::span<const std::uint64_t> packets, std::uint64_t seed,
                 std::span<SegmentPath> out, IntHistogram* path_lengths);
  void run_dim_order(const Mesh& mesh, NodeId s, NodeId t,
                     std::span<const std::uint64_t> packets,
                     std::uint64_t seed, std::span<SegmentPath> out,
                     IntHistogram* path_lengths);
  void run_valiant(const Mesh& mesh, NodeId s, NodeId t,
                   std::span<const std::uint64_t> packets, std::uint64_t seed,
                   std::span<SegmentPath> out, IntHistogram* path_lengths);
  void run_bounded_valiant(const Mesh& mesh, const Region& box, NodeId s,
                           NodeId t, std::span<const std::uint64_t> packets,
                           std::uint64_t seed, std::span<SegmentPath> out,
                           IntHistogram* path_lengths);
  // The hierarchical kernels read the pair's chain from chain_ (filled by
  // resolve_plan); `up_count` selects each leg's enclosing region.
  void run_hierarchical(const Mesh& mesh, NodeId s, NodeId t,
                        std::size_t up_count,
                        std::span<const std::uint64_t> packets,
                        std::uint64_t seed, std::span<SegmentPath> out,
                        IntHistogram* path_lengths);
  void run_frugal(const Mesh& mesh, NodeId s, NodeId t, std::size_t up_count,
                  int bits_per_coord, std::span<const std::uint64_t> packets,
                  std::uint64_t seed, std::span<SegmentPath> out,
                  IntHistogram* path_lengths);

  // --- pair grouping (reusable, cleared per run) ---------------------
  std::vector<std::uint64_t> slot_key_;
  std::vector<std::int32_t> slot_group_;
  std::vector<std::int32_t> group_of_;
  std::vector<Demand> group_demand_;
  std::vector<std::size_t> group_start_;
  std::vector<std::size_t> group_cursor_;
  std::vector<std::uint64_t> sorted_;  // global packet indices, group-major

  // --- per-group plan columns ----------------------------------------
  std::vector<Region> chain_;
  std::vector<DrawOp> ops_;
  std::vector<std::uint64_t> draw_vals_;  // ops_.size() x RngLanes::kLanes
  std::vector<std::uint64_t> blk_words_;  // raw words, all-pow2 fast path
  // Leg-major static columns [leg * dim + dd]: waypoint region anchor and
  // extent (chain[leg]), and the enclosing region's anchor (the region
  // the leg's one-bend subpath must stay inside; final leg included).
  std::vector<std::int64_t> wp_anchor_;
  std::vector<std::int64_t> wp_extent_;
  std::vector<std::int64_t> enc_anchor_;
  // Lane-major dynamic rows [(leg * dim + dd) * kLanes + lane]: the
  // block's waypoint coordinates and per-leg straight runs.
  std::vector<std::int64_t> coord_rows_;
  std::vector<std::int64_t> run_rows_;
  std::vector<Segment> seg_buf_;  // one packet's merged segments, staged
  std::vector<int> perm_;  // decoded dimension order, one lane at a time

  RngLanes lanes_;
};

}  // namespace oblivious
