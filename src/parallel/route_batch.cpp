#include "parallel/route_batch.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace oblivious {

namespace {

inline void check_endpoints(const Path& p, const Demand& demand) {
  OBLV_CHECK(!p.nodes.empty() && p.source() == demand.src &&
                 p.destination() == demand.dst,
             "router returned a path with wrong endpoints");
}
inline void check_endpoints(const SegmentPath& sp, const Demand& demand) {
  OBLV_CHECK(sp.source == demand.src && sp.destination() == demand.dst,
             "router returned a path with wrong endpoints");
}

inline void route_one(const Router& router, const Demand& demand, Rng& rng,
                      RouteScratch& scratch, Path& out) {
  router.route_into(demand.src, demand.dst, rng, scratch, out);
}
inline void route_one(const Router& router, const Demand& demand, Rng& rng,
                      RouteScratch& scratch, SegmentPath& out) {
  router.route_segments_into(demand.src, demand.dst, rng, scratch, out);
}

template <typename OutT>
void run_batch(const Router& router, std::span<const Demand> demands,
               ThreadPool& pool, const RouteBatchOptions& options,
               std::vector<OutT>& out) {
  const Mesh& mesh = router.mesh();
  for (const Demand& demand : demands) {
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
  }
  const std::size_t n = demands.size();
  out.resize(n);
  if (n == 0) return;

  WallTimer timer;
  const std::size_t workers = std::max<std::size_t>(1, pool.num_threads());
  const std::size_t chunk =
      options.chunk_size != 0
          ? options.chunk_size
          : std::max<std::size_t>(1, n / (workers * 8));
  std::atomic<std::size_t> cursor{0};

  const auto drain = [&]() {
    RouteScratch scratch;
    const bool obs_on = obs::metrics_enabled();
    IntHistogram path_lengths;
    std::size_t routed = 0;
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        const Demand& demand = demands[i];
        Rng rng = packet_rng(options.seed, i);
        route_one(router, demand, rng, scratch, out[i]);
        check_endpoints(out[i], demand);
        if (obs_on && (i & (kPathLengthSampleStride - 1)) == 0) {
          path_lengths.add(out[i].length(), kPathLengthSampleStride);
        }
      }
      routed += end - begin;
    }
    if (obs_on && routed > 0) {
      // One registry visit per worker, into its own thread-local shard.
      OBLV_COUNTER_ADD("routing.packets", routed);
      OBLV_HISTOGRAM_MERGE("routing.path_length", path_lengths);
    }
  };

  if (workers == 1) {
    drain();
  } else {
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit(drain);
    }
    pool.wait_idle();
  }
  OBLV_STAT_RECORD("routing.route_seconds", timer.elapsed_seconds());
}

}  // namespace

void route_batch(const Router& router, std::span<const Demand> demands,
                 ThreadPool& pool, const RouteBatchOptions& options,
                 std::vector<SegmentPath>& out) {
  run_batch(router, demands, pool, options, out);
}

void route_batch_paths(const Router& router, std::span<const Demand> demands,
                       ThreadPool& pool, const RouteBatchOptions& options,
                       std::vector<Path>& out) {
  run_batch(router, demands, pool, options, out);
}

}  // namespace oblivious
