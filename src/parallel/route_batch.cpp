#include "parallel/route_batch.hpp"

#include <algorithm>
#include <atomic>
#include <type_traits>

#include "obs/metrics.hpp"
#include "parallel/soa_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace oblivious {

namespace {

inline void check_endpoints(const Path& p, const Demand& demand) {
  OBLV_CHECK(!p.nodes.empty() && p.source() == demand.src &&
                 p.destination() == demand.dst,
             "router returned a path with wrong endpoints");
}
inline void check_endpoints(const SegmentPath& sp, const Demand& demand) {
  OBLV_CHECK(sp.source == demand.src && sp.destination() == demand.dst,
             "router returned a path with wrong endpoints");
}

inline void route_one(const Router& router, const Demand& demand, Rng& rng,
                      RouteScratch& scratch, Path& out) {
  router.route_into(demand.src, demand.dst, rng, scratch, out);
}
inline void route_one(const Router& router, const Demand& demand, Rng& rng,
                      RouteScratch& scratch, SegmentPath& out) {
  router.route_segments_into(demand.src, demand.dst, rng, scratch, out);
}

template <typename OutT>
void run_batch(const Router& router, std::span<const Demand> demands,
               ThreadPool& pool, const RouteBatchOptions& options,
               std::vector<OutT>& out) {
  const Mesh& mesh = router.mesh();
  if (options.validate_demands) {
    for (const Demand& demand : demands) {
      OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                       demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                   "demand endpoints must be mesh nodes");
    }
  }
  const std::size_t n = demands.size();
  out.resize(n);
  if (n == 0) return;

  WallTimer timer;
  const std::size_t workers = std::max<std::size_t>(1, pool.num_threads());

  // The SoA engine only emits segment form; the node-list driver and
  // unsupported routers (Staircase, external Router subclasses) keep the
  // scalar per-packet loop. Both loops claim identical chunks off the
  // same cursor and produce bit-identical output (DESIGN.md section 10).
  bool use_soa = false;
  if constexpr (std::is_same_v<OutT, SegmentPath>) {
    use_soa = options.engine != BatchEngine::kScalar &&
              SoaBatchEngine::supports(router);
  }

  // The SoA engine's pair grouping amortizes with chunk size, so its
  // default chunks are coarser (2 per worker for load balancing); the
  // scalar loop keeps fine chunks -- its per-packet cost dominates.
  const std::size_t chunk =
      options.chunk_size != 0
          ? options.chunk_size
          : std::max<std::size_t>(1, n / (workers * (use_soa ? 2 : 8)));
  // Lock-free by design (DESIGN.md section 13): the cursor is the only
  // shared mutable state in the batch loop -- every output slot and
  // scratch buffer is owned by exactly one worker per chunk claim, so
  // there is nothing for a mutex (or a GUARDED_BY annotation) to guard.
  // Relaxed suffices: fetch_add's atomicity alone partitions [0, n).
  std::atomic<std::size_t> cursor{0};

  // Per-worker tallies are flushed in one registry visit per worker, into
  // its own thread-local shard.
  const auto flush_worker_obs = [](bool obs_on, std::size_t routed,
                                   std::size_t chunks,
                                   const IntHistogram& path_lengths) {
    if (!obs_on || chunks == 0) return;
    OBLV_COUNTER_ADD("routing.batch.chunks", chunks);
    IntHistogram per_worker;
    per_worker.add(static_cast<std::int64_t>(routed));
    OBLV_HISTOGRAM_MERGE("routing.batch.packets_per_worker", per_worker);
    OBLV_COUNTER_ADD("routing.packets", routed);
    OBLV_HISTOGRAM_MERGE("routing.path_length", path_lengths);
  };

  const auto drain_scalar = [&]() {
    RouteScratch scratch;
    const bool obs_on = obs::metrics_enabled();
    IntHistogram path_lengths;
    std::size_t routed = 0;
    std::size_t chunks = 0;
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        const Demand& demand = demands[i];
        // oblv-lint: allow(D006) this IS the sanctioned scalar reference
        // engine the SoA path is bit-compared against
        Rng rng = packet_rng(options.seed, i);
        route_one(router, demand, rng, scratch, out[i]);
        check_endpoints(out[i], demand);
        if (obs_on && path_length_sampled(i)) {
          path_lengths.add(out[i].length(), kPathLengthSampleStride);
        }
      }
      routed += end - begin;
      ++chunks;
    }
    flush_worker_obs(obs_on, routed, chunks, path_lengths);
  };

  const auto drain_soa = [&]() {
    if constexpr (std::is_same_v<OutT, SegmentPath>) {
      // Workers are pool threads that outlive the batch, so the engine's
      // capacity-retaining buffers amortize across batches too.
      static thread_local SoaBatchEngine engine;
      const bool obs_on = obs::metrics_enabled();
      IntHistogram path_lengths;
      std::size_t routed = 0;
      std::size_t chunks = 0;
      for (;;) {
        const std::size_t begin =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) break;
        const std::size_t end = std::min(n, begin + chunk);
        engine.run(router, demands, options.seed, begin, end,
                   std::span<SegmentPath>(out),
                   obs_on ? &path_lengths : nullptr);
        routed += end - begin;
        ++chunks;
      }
      flush_worker_obs(obs_on, routed, chunks, path_lengths);
    }
  };

  const auto drain = [&]() {
    if (use_soa) {
      drain_soa();
    } else {
      drain_scalar();
    }
  };

  if (workers == 1) {
    drain();
  } else {
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit(drain);
    }
    pool.wait_idle();
  }
  OBLV_STAT_RECORD("routing.route_seconds", timer.elapsed_seconds());
}

}  // namespace

void route_batch(const Router& router, std::span<const Demand> demands,
                 ThreadPool& pool, const RouteBatchOptions& options,
                 std::vector<SegmentPath>& out) {
  run_batch(router, demands, pool, options, out);
}

void route_batch_paths(const Router& router, std::span<const Demand> demands,
                       ThreadPool& pool, const RouteBatchOptions& options,
                       std::vector<Path>& out) {
  run_batch(router, demands, pool, options, out);
}

}  // namespace oblivious
