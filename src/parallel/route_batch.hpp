// Chunked work-stealing batch routing driver.
//
// Path selection is oblivious, so a batch of packets is embarrassingly
// parallel: each packet's path depends only on (source, destination,
// private random bits). route_batch exploits that with an atomic chunk
// cursor over the demand array -- workers claim fixed-size chunks until
// the array is drained, which self-balances when per-packet cost varies
// (hierarchical chains are longer for distant pairs). Each worker threads
// its own RouteScratch, so the steady state allocates nothing per packet,
// and each packet's rng stream is derived from (seed, index) by the
// counter scheme shared with the analysis layer: the output is
// bit-identical for any thread count, chunk size, and claim order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/path.hpp"
#include "mesh/segment_path.hpp"
#include "rng/rng.hpp"
#include "routing/router.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

class ThreadPool;

// Per-packet RNG stream shared by every parallel routing entry point: the
// stream depends only on (seed, packet index), never on threading.
inline Rng packet_rng(std::uint64_t seed, std::size_t i) {
  return Rng(splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(i))));
}

// Path-length histograms sample every 16th packet (weighted by the
// stride): an exhaustive per-packet bump would blow the <2% observability
// budget enforced by bench_p5_obs_overhead. The stride is a power of two
// and keyed on the packet index, so the sample set is deterministic and
// identical for the serial and parallel entry points.
inline constexpr std::size_t kPathLengthSampleStride = 16;
static_assert((kPathLengthSampleStride & (kPathLengthSampleStride - 1)) == 0 &&
                  kPathLengthSampleStride != 0,
              "the sample set is selected with an index mask, which is only "
              "uniform when the stride is a power of two");

// True when packet i belongs to the deterministic path-length sample set.
// The single definition shared by every batch driver and the analysis
// pipeline: the sample set must be identical everywhere or per-engine
// histograms drift apart.
inline constexpr bool path_length_sampled(std::size_t i) {
  return (i & (kPathLengthSampleStride - 1)) == 0;
}

// Which inner loop route_batch runs. Both engines produce bit-identical
// segment output for every algorithm, seed, thread count, and chunk size
// (the determinism contract of DESIGN.md section 10); the choice is
// purely a throughput decision.
enum class BatchEngine {
  kAuto,    // SoA when the router is supported, scalar otherwise
  kScalar,  // force the per-packet scalar loop
  kSoa,     // force the SoA engine (scalar for unsupported routers)
};

struct RouteBatchOptions {
  std::uint64_t seed = 1;
  // Packets claimed per cursor bump. 0 picks a size that gives every
  // worker ~8 chunks, small enough to steal tail work, large enough to
  // keep the cursor off the hot path.
  std::size_t chunk_size = 0;
  // Validate that every demand's endpoints are mesh nodes before routing.
  // The check is O(n) per call; replaying a pre-validated demand set can
  // switch it off (the endpoints cannot have changed).
  bool validate_demands = true;
  BatchEngine engine = BatchEngine::kAuto;
};

// Routes demands[i] into out[i] (resizing `out` to match; entry capacity
// is retained across calls, so reusing the same vector avoids per-batch
// allocation). Deterministic: out depends only on (router, demands, seed).
// \pre every demand's endpoints are node ids of the router's mesh.
void route_batch(const Router& router, std::span<const Demand> demands,
                 ThreadPool& pool, const RouteBatchOptions& options,
                 std::vector<SegmentPath>& out);

// Node-list twin of route_batch (same rng streams; the paths describe the
// same routes as the segment form).
// \pre every demand's endpoints are node ids of the router's mesh.
void route_batch_paths(const Router& router, std::span<const Demand> demands,
                       ThreadPool& pool, const RouteBatchOptions& options,
                       std::vector<Path>& out);

}  // namespace oblivious
