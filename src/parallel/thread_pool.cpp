#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace oblivious {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // A single worker would only add queueing overhead over running inline;
  // keep the pool empty in that case and let parallel_for_chunks run inline.
  if (num_threads <= 1) return;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    oblv::MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    oblv::MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  oblv::MutexLock lock(mutex_);
  // Predicate loops stay explicit (no wait-with-lambda): a lambda is a
  // separate function to the thread-safety analysis, so the guarded
  // reads must happen here, where mutex_ is provably held.
  while (in_flight_ != 0) idle_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      oblv::MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) task_available_.wait(mutex_);
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      oblv::MutexLock lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = std::max<std::size_t>(1, pool.num_threads());
  if (workers == 1) {
    body(0, count);
    return;
  }
  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(count, begin + chunk_size);
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  pool.wait_idle();
}

}  // namespace oblivious
