#include "parallel/soa_batch.hpp"

#include <algorithm>

#include "mesh/mesh.hpp"
#include "parallel/route_batch.hpp"
#include "routing/baselines.hpp"
#include "routing/bounded_valiant.hpp"
#include "routing/hierarchical.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace oblivious {

namespace {

enum class Kind {
  kUnsupported,
  kEcube,
  kRandomDimOrder,
  kValiant,
  kBoundedValiant,
  kHierarchical,  // AncestorRouter, or NdRouter with naive randomness
  kNdFrugal,
};

struct RouterView {
  Kind kind = Kind::kUnsupported;
  const AncestorRouter* ancestor = nullptr;
  const NdRouter* nd = nullptr;
  const BoundedValiantRouter* bounded = nullptr;
};

RouterView view_of(const Router& router) {
  RouterView v;
  if (dynamic_cast<const DimensionOrderRouter*>(&router) != nullptr) {
    v.kind = Kind::kEcube;
  } else if (dynamic_cast<const RandomDimOrderRouter*>(&router) != nullptr) {
    v.kind = Kind::kRandomDimOrder;
  } else if (dynamic_cast<const ValiantRouter*>(&router) != nullptr) {
    v.kind = Kind::kValiant;
  } else if (const auto* b =
                 dynamic_cast<const BoundedValiantRouter*>(&router)) {
    v.kind = Kind::kBoundedValiant;
    v.bounded = b;
  } else if (const auto* a = dynamic_cast<const AncestorRouter*>(&router)) {
    v.kind = Kind::kHierarchical;
    v.ancestor = a;
  } else if (const auto* n = dynamic_cast<const NdRouter*>(&router)) {
    v.kind = n->randomness_mode() == NdRouter::RandomnessMode::kFrugal
                 ? Kind::kNdFrugal
                 : Kind::kHierarchical;
    v.nd = n;
  }
  return v;
}

inline void reset_out(NodeId s, NodeId t, SegmentPath& out) {
  out.segments.clear();
  out.source = s;
  out.dest = t;
}

inline void sample_length(IntHistogram* hist, std::uint64_t packet,
                          const SegmentPath& sp) {
  if (hist != nullptr && path_length_sampled(packet)) {
    hist->add(sp.length(), kPathLengthSampleStride);
  }
}

// One leg of a one-bend subpath inside the enclosing region anchored at
// `enc_anchor`: the run along each dimension is the offset-space delta,
// exactly append_segments_in_region (on the plain mesh the anchors cancel
// and the delta is the absolute coordinate difference).
inline void emit_leg(const Mesh& mesh, bool torus,
                     const std::int64_t* enc_anchor, const int* perm, int dim,
                     const Coord& cur, const Coord& nxt, SegmentPath& out) {
  for (int q = 0; q < dim; ++q) {
    const int d = perm[q];
    const std::size_t dd = static_cast<std::size_t>(d);
    std::int64_t run;
    if (torus) {
      const std::int64_t side = mesh.side(d);
      run = pos_mod(nxt[dd] - enc_anchor[d], side) -
            pos_mod(cur[dd] - enc_anchor[d], side);
    } else {
      run = nxt[dd] - cur[dd];
    }
    out.append(d, run);
  }
}

// Every Fisher-Yates outcome for d == 3, indexed j2 * 2 + j1 where j2 is
// the first drawn swap index (uniform_below(3)) and j1 the second
// (uniform_below(2)): start [0,1,2], swap(p[2], p[j2]), swap(p[1], p[j1]).
constexpr int kPerm3[6][3] = {{1, 2, 0}, {2, 1, 0}, {2, 0, 1},
                              {0, 2, 1}, {1, 0, 2}, {0, 1, 2}};

}  // namespace

bool SoaBatchEngine::supports(const Router& router) {
  return view_of(router).kind != Kind::kUnsupported;
}

void SoaBatchEngine::push_uniform(std::uint64_t bound) {
  DrawOp op;
  op.bound = bound;
  if (bound <= 1) {
    op.nbits = 0;  // uniform_below(1): value 0, no word consumed
    op.pow2 = true;
  } else {
    op.nbits = static_cast<std::uint8_t>(ceil_log2(bound));
    op.pow2 = (bound & (bound - 1)) == 0;
  }
  ops_.push_back(op);
}

void SoaBatchEngine::push_bits(int nbits) {
  DrawOp op;
  op.bound = 0;  // bits(n): top n bits, rejection-free
  op.nbits = static_cast<std::uint8_t>(nbits);
  op.pow2 = true;
  ops_.push_back(op);
}

void SoaBatchEngine::push_perm(int dim) {
  // Fisher-Yates swap indices of Rng::random_permutation, in draw order.
  for (int i = dim - 1; i > 0; --i) {
    push_uniform(static_cast<std::uint64_t>(i) + 1);
  }
}

void SoaBatchEngine::exec_program(std::size_t nlanes) {
  constexpr std::size_t W = RngLanes::kLanes;
  draw_vals_.resize(ops_.size() * W);
  bool all_pow2 = true;
  std::size_t ndraws = 0;
  for (const DrawOp& op : ops_) {
    all_pow2 = all_pow2 && op.pow2;
    ndraws += op.nbits != 0 ? 1 : 0;
  }
  if (all_pow2) {
    // No rejection anywhere (power-of-two sides make this the common
    // case): every raw word is drawn in one register-resident sweep,
    // then shifted into its op row.
    blk_words_.resize(ndraws * W);
    lanes_.next_block(blk_words_.data(), ndraws);
    std::size_t r = 0;
    for (std::size_t o = 0; o < ops_.size(); ++o) {
      std::uint64_t* row = &draw_vals_[o * W];
      if (ops_[o].nbits == 0) {
        std::fill_n(row, W, std::uint64_t{0});
        continue;
      }
      const std::uint64_t* words = &blk_words_[r * W];
      ++r;
      const int shift = 64 - static_cast<int>(ops_[o].nbits);
      OBLV_PRAGMA_SIMD
      for (std::size_t k = 0; k < W; ++k) row[k] = words[k] >> shift;
    }
    return;
  }
  for (std::size_t o = 0; o < ops_.size(); ++o) {
    const DrawOp op = ops_[o];
    std::uint64_t* row = &draw_vals_[o * W];
    if (op.nbits == 0) {
      std::fill_n(row, W, std::uint64_t{0});
      continue;
    }
    lanes_.next(row);  // raw words land in place; shift below
    const int shift = 64 - static_cast<int>(op.nbits);
    if (op.pow2) {
      OBLV_PRAGMA_SIMD
      for (std::size_t k = 0; k < W; ++k) row[k] >>= shift;
    } else {
      // Rejection fix-up advances ONLY the rejected lane, so every lane
      // stays exactly on its scalar stream. Inactive tail lanes are never
      // read and never fixed up.
      for (std::size_t k = 0; k < nlanes; ++k) {
        std::uint64_t v = row[k] >> shift;
        while (v >= op.bound) v = lanes_.next_lane(k) >> shift;
        row[k] = v;
      }
      for (std::size_t k = nlanes; k < W; ++k) row[k] >>= shift;
    }
  }
}

void SoaBatchEngine::decode_perm(std::size_t op_base, int dim,
                                 std::size_t lane, int* perm) {
  for (int q = 0; q < dim; ++q) perm[q] = q;
  std::size_t o = op_base;
  for (int i = dim - 1; i > 0; --i, ++o) {
    const auto j =
        static_cast<int>(draw_vals_[o * RngLanes::kLanes + lane]);
    std::swap(perm[i], perm[j]);
  }
}

void SoaBatchEngine::run_ecube(const Mesh& mesh, NodeId s, NodeId t,
                               std::span<const std::uint64_t> packets,
                               std::uint64_t /*seed*/,
                               std::span<SegmentPath> out,
                               IntHistogram* path_lengths) {
  // Deterministic router: every packet of the pair shares one segment
  // list, built once and copied out.
  const Coord cs = mesh.coord(s);
  const Coord ct = mesh.coord(t);
  SegmentPath proto;
  reset_out(s, t, proto);
  for (int d = 0; d < mesh.dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    proto.append(d, mesh.displacement(cs[dd], ct[dd], d));
  }
  for (const std::uint64_t i : packets) {
    out[i] = proto;
    sample_length(path_lengths, i, out[i]);
  }
}

void SoaBatchEngine::run_dim_order(const Mesh& mesh, NodeId s, NodeId t,
                                   std::span<const std::uint64_t> packets,
                                   std::uint64_t seed,
                                   std::span<SegmentPath> out,
                                   IntHistogram* path_lengths) {
  const int dim = mesh.dim();
  const Coord cs = mesh.coord(s);
  const Coord ct = mesh.coord(t);
  Coord disp;
  disp.resize(static_cast<std::size_t>(dim));
  for (int d = 0; d < dim; ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    disp[dd] = mesh.displacement(cs[dd], ct[dd], d);
  }
  ops_.clear();
  push_perm(dim);
  perm_.resize(static_cast<std::size_t>(dim));

  std::uint64_t idx[RngLanes::kLanes];
  for (std::size_t p = 0; p < packets.size(); p += RngLanes::kLanes) {
    const std::size_t nlanes = std::min(RngLanes::kLanes, packets.size() - p);
    for (std::size_t k = 0; k < nlanes; ++k) idx[k] = packets[p + k];
    lanes_.seed_packets(seed, idx, nlanes);
    exec_program(nlanes);
    for (std::size_t k = 0; k < nlanes; ++k) {
      const std::uint64_t i = packets[p + k];
      SegmentPath& o = out[i];
      reset_out(s, t, o);
      decode_perm(0, dim, k, perm_.data());
      for (int q = 0; q < dim; ++q) {
        const int d = perm_[static_cast<std::size_t>(q)];
        o.append(d, disp[static_cast<std::size_t>(d)]);
      }
      sample_length(path_lengths, i, o);
    }
  }
}

void SoaBatchEngine::run_valiant(const Mesh& mesh, NodeId s, NodeId t,
                                 std::span<const std::uint64_t> packets,
                                 std::uint64_t seed,
                                 std::span<SegmentPath> out,
                                 IntHistogram* path_lengths) {
  const int dim = mesh.dim();
  const Coord cs = mesh.coord(s);
  const Coord ct = mesh.coord(t);
  ops_.clear();
  for (int d = 0; d < dim; ++d) {
    push_uniform(static_cast<std::uint64_t>(mesh.side(d)));
  }
  push_perm(dim);
  push_perm(dim);
  const std::size_t perm1 = static_cast<std::size_t>(dim);
  const std::size_t perm2 = perm1 + static_cast<std::size_t>(dim - 1);
  perm_.resize(static_cast<std::size_t>(dim));

  std::uint64_t idx[RngLanes::kLanes];
  Coord mid;
  mid.resize(static_cast<std::size_t>(dim));
  for (std::size_t p = 0; p < packets.size(); p += RngLanes::kLanes) {
    const std::size_t nlanes = std::min(RngLanes::kLanes, packets.size() - p);
    for (std::size_t k = 0; k < nlanes; ++k) idx[k] = packets[p + k];
    lanes_.seed_packets(seed, idx, nlanes);
    exec_program(nlanes);
    for (std::size_t k = 0; k < nlanes; ++k) {
      const std::uint64_t i = packets[p + k];
      SegmentPath& o = out[i];
      reset_out(s, t, o);
      // The whole-mesh region is anchored at 0, so the drawn offsets ARE
      // the intermediate's coordinates.
      for (int d = 0; d < dim; ++d) {
        mid[static_cast<std::size_t>(d)] = static_cast<std::int64_t>(
            draw_vals_[static_cast<std::size_t>(d) * RngLanes::kLanes + k]);
      }
      decode_perm(perm1, dim, k, perm_.data());
      for (int q = 0; q < dim; ++q) {
        const int d = perm_[static_cast<std::size_t>(q)];
        const std::size_t dd = static_cast<std::size_t>(d);
        o.append(d, mesh.displacement(cs[dd], mid[dd], d));
      }
      decode_perm(perm2, dim, k, perm_.data());
      for (int q = 0; q < dim; ++q) {
        const int d = perm_[static_cast<std::size_t>(q)];
        const std::size_t dd = static_cast<std::size_t>(d);
        o.append(d, mesh.displacement(mid[dd], ct[dd], d));
      }
      sample_length(path_lengths, i, o);
    }
  }
}

void SoaBatchEngine::run_bounded_valiant(const Mesh& mesh, const Region& box,
                                         NodeId s, NodeId t,
                                         std::span<const std::uint64_t> packets,
                                         std::uint64_t seed,
                                         std::span<SegmentPath> out,
                                         IntHistogram* path_lengths) {
  const int dim = mesh.dim();
  const bool torus = mesh.torus();
  const Coord cs = mesh.coord(s);
  const Coord ct = mesh.coord(t);
  const Coord& anchor = box.anchor();
  ops_.clear();
  for (int d = 0; d < dim; ++d) {
    push_uniform(static_cast<std::uint64_t>(box.extent_at(d)));
  }
  push_perm(dim);
  push_perm(dim);
  const std::size_t perm1 = static_cast<std::size_t>(dim);
  const std::size_t perm2 = perm1 + static_cast<std::size_t>(dim - 1);
  perm_.resize(static_cast<std::size_t>(dim));

  std::uint64_t idx[RngLanes::kLanes];
  Coord mid;
  mid.resize(static_cast<std::size_t>(dim));
  for (std::size_t p = 0; p < packets.size(); p += RngLanes::kLanes) {
    const std::size_t nlanes = std::min(RngLanes::kLanes, packets.size() - p);
    for (std::size_t k = 0; k < nlanes; ++k) idx[k] = packets[p + k];
    lanes_.seed_packets(seed, idx, nlanes);
    exec_program(nlanes);
    for (std::size_t k = 0; k < nlanes; ++k) {
      const std::uint64_t i = packets[p + k];
      SegmentPath& o = out[i];
      reset_out(s, t, o);
      for (int d = 0; d < dim; ++d) {
        const std::size_t dd = static_cast<std::size_t>(d);
        std::int64_t x = anchor[dd] + static_cast<std::int64_t>(
            draw_vals_[dd * RngLanes::kLanes + k]);
        if (torus) x = pos_mod(x, mesh.side(d));
        mid[dd] = x;
      }
      decode_perm(perm1, dim, k, perm_.data());
      emit_leg(mesh, torus, anchor.data(), perm_.data(), dim, cs, mid, o);
      decode_perm(perm2, dim, k, perm_.data());
      emit_leg(mesh, torus, anchor.data(), perm_.data(), dim, mid, ct, o);
      sample_length(path_lengths, i, o);
    }
  }
}

void SoaBatchEngine::compute_rows(const Mesh& mesh, const Coord& cs,
                                  const Coord& ct, std::size_t legs,
                                  bool frugal) {
  constexpr std::size_t W = RngLanes::kLanes;
  const std::size_t d = static_cast<std::size_t>(mesh.dim());
  const bool torus = mesh.torus();

  if (!torus && !frugal) {
    // Plain-mesh naive fast path: coordinates are anchor + draw, so each
    // run row is a constant (anchor deltas and endpoints) plus the draw
    // difference of adjacent legs -- no intermediate coordinate pass.
    const std::size_t ops_per_leg = 2 * d - 1;
    for (std::size_t l = 0; l <= legs; ++l) {
      for (std::size_t dd = 0; dd < d; ++dd) {
        std::int64_t* r = &run_rows_[(l * d + dd) * W];
        const std::uint64_t* vfrom =
            l == 0 ? nullptr : &draw_vals_[((l - 1) * ops_per_leg + dd) * W];
        const std::uint64_t* vto =
            l == legs ? nullptr : &draw_vals_[(l * ops_per_leg + dd) * W];
        if (l == 0) {
          const std::int64_t base = wp_anchor_[dd] - cs[dd];
          OBLV_PRAGMA_SIMD
          for (std::size_t k = 0; k < W; ++k) {
            r[k] = base + static_cast<std::int64_t>(vto[k]);
          }
        } else if (l == legs) {
          const std::int64_t base = ct[dd] - wp_anchor_[(l - 1) * d + dd];
          OBLV_PRAGMA_SIMD
          for (std::size_t k = 0; k < W; ++k) {
            r[k] = base - static_cast<std::int64_t>(vfrom[k]);
          }
        } else {
          const std::int64_t base =
              wp_anchor_[l * d + dd] - wp_anchor_[(l - 1) * d + dd];
          OBLV_PRAGMA_SIMD
          for (std::size_t k = 0; k < W; ++k) {
            r[k] = base + static_cast<std::int64_t>(vto[k]) -
                   static_cast<std::int64_t>(vfrom[k]);
          }
        }
      }
    }
    return;
  }

  // Waypoint coordinate rows: anchor + offset per (leg, dim, lane). The
  // naive program's draws ARE the offsets; the frugal program reduces the
  // bridge-scale words modulo the leg extent first.
  for (std::size_t l = 0; l < legs; ++l) {
    for (std::size_t dd = 0; dd < d; ++dd) {
      std::int64_t* c = &coord_rows_[(l * d + dd) * W];
      const std::int64_t a = wp_anchor_[l * d + dd];
      if (frugal) {
        const std::uint64_t* v =
            &draw_vals_[(d - 1 + 2 * dd + (l % 2)) * W];
        const std::int64_t extent = wp_extent_[l * d + dd];
        for (std::size_t k = 0; k < W; ++k) {
          c[k] = a + static_cast<std::int64_t>(v[k]) % extent;
        }
      } else {
        const std::uint64_t* v = &draw_vals_[(l * (2 * d - 1) + dd) * W];
        OBLV_PRAGMA_SIMD
        for (std::size_t k = 0; k < W; ++k) {
          c[k] = a + static_cast<std::int64_t>(v[k]);
        }
      }
      if (torus) {
        const std::int64_t side = mesh.side(static_cast<int>(dd));
        for (std::size_t k = 0; k < W; ++k) c[k] = pos_mod(c[k], side);
      }
    }
  }

  // Run rows: leg l's straight run along dd, for every lane. On the
  // plain mesh the enclosing anchors cancel and the run is the plain
  // coordinate delta; on the torus it is the offset-space delta of
  // append_segments_in_region.
  for (std::size_t l = 0; l <= legs; ++l) {
    for (std::size_t dd = 0; dd < d; ++dd) {
      std::int64_t* r = &run_rows_[(l * d + dd) * W];
      const std::int64_t* from =
          l == 0 ? nullptr : &coord_rows_[((l - 1) * d + dd) * W];
      const std::int64_t* to =
          l == legs ? nullptr : &coord_rows_[(l * d + dd) * W];
      const std::int64_t sc = cs[dd];
      const std::int64_t tc = ct[dd];
      if (!torus) {
        if (l == 0) {
          OBLV_PRAGMA_SIMD
          for (std::size_t k = 0; k < W; ++k) r[k] = to[k] - sc;
        } else if (l == legs) {
          OBLV_PRAGMA_SIMD
          for (std::size_t k = 0; k < W; ++k) r[k] = tc - from[k];
        } else {
          OBLV_PRAGMA_SIMD
          for (std::size_t k = 0; k < W; ++k) r[k] = to[k] - from[k];
        }
      } else {
        const std::int64_t ea = enc_anchor_[l * d + dd];
        const std::int64_t side = mesh.side(static_cast<int>(dd));
        for (std::size_t k = 0; k < W; ++k) {
          const std::int64_t a = pos_mod((l == legs ? tc : to[k]) - ea, side);
          const std::int64_t b = pos_mod((l == 0 ? sc : from[k]) - ea, side);
          r[k] = a - b;
        }
      }
    }
  }
}

void SoaBatchEngine::run_hierarchical(const Mesh& mesh, NodeId s, NodeId t,
                                      std::size_t up_count,
                                      std::span<const std::uint64_t> packets,
                                      std::uint64_t seed,
                                      std::span<SegmentPath> out,
                                      IntHistogram* path_lengths) {
  constexpr std::size_t W = RngLanes::kLanes;
  const int dim = mesh.dim();
  const std::size_t legs = chain_.size();
  const std::size_t d = static_cast<std::size_t>(dim);
  const Coord cs = mesh.coord(s);
  const Coord ct = mesh.coord(t);

  // Static plan columns + the draw program: per leg, d waypoint draws
  // over the leg region's extents, then the leg's dimension permutation;
  // a final permutation for the run to t (connect_chain_into's order).
  wp_anchor_.resize(legs * d);
  enc_anchor_.resize((legs + 1) * d);
  ops_.clear();
  for (std::size_t l = 0; l < legs; ++l) {
    const Region& region = chain_[l];
    const Region& enclosing = (l <= up_count) ? chain_[l] : chain_[l - 1];
    for (int dd = 0; dd < dim; ++dd) {
      wp_anchor_[l * d + static_cast<std::size_t>(dd)] = region.anchor_at(dd);
      enc_anchor_[l * d + static_cast<std::size_t>(dd)] =
          enclosing.anchor_at(dd);
      push_uniform(static_cast<std::uint64_t>(region.extent_at(dd)));
    }
    push_perm(dim);
  }
  for (int dd = 0; dd < dim; ++dd) {
    enc_anchor_[legs * d + static_cast<std::size_t>(dd)] =
        chain_.back().anchor_at(dd);
  }
  push_perm(dim);  // the final run to t draws its own dimension order
  const std::size_t ops_per_leg = d + (d - 1);
  coord_rows_.resize(legs * d * W);
  run_rows_.resize((legs + 1) * d * W);
  seg_buf_.resize((legs + 1) * d + 1);  // slot 0 is the merge sentinel
  perm_.resize(d);

  std::uint64_t idx[W];
  for (std::size_t k = 0; k < std::min(W, packets.size()); ++k) {
    __builtin_prefetch(&out[packets[k]], 1);
  }
  for (std::size_t p = 0; p < packets.size(); p += W) {
    const std::size_t nlanes = std::min(W, packets.size() - p);
    // Software pipeline for the scattered out[i] writes: the NEXT block's
    // headers start moving now, and this block's (already prefetched)
    // headers are dereferenced to prefetch their segment storage -- the
    // seed/draw/row work below covers the latency.
    for (std::size_t k = p + W; k < std::min(p + 2 * W, packets.size()); ++k) {
      __builtin_prefetch(&out[packets[k]], 1);
    }
    for (std::size_t k = 0; k < nlanes; ++k) {
      idx[k] = packets[p + k];
      // A warm path spans several lines of (possibly spilled) storage.
      const Segment* sd = out[idx[k]].segments.data();
      __builtin_prefetch(sd, 1);
      __builtin_prefetch(reinterpret_cast<const char*>(sd) + 64, 1);
      __builtin_prefetch(reinterpret_cast<const char*>(sd) + 128, 1);
    }
    lanes_.seed_packets(seed, idx, nlanes);
    exec_program(nlanes);
    compute_rows(mesh, cs, ct, legs, /*frugal=*/false);
    for (std::size_t k = 0; k < nlanes; ++k) {
      const std::uint64_t i = packets[p + k];
      // Merge into the L1-hot scratch (SegmentPath::append semantics),
      // then land the packet's segments with ONE bulk copy -- the
      // scattered out[i] header is touched once instead of per append.
      // Branch-free merge (SegmentPath::append semantics): the zero-run
      // and same-dim tests are coin flips on small extents, so predicated
      // stores beat branches. buf[-1] is a dim == -1 sentinel that absorbs
      // the first element's merge probe.
      Segment* buf = seg_buf_.data() + 1;
      buf[-1].dim = -1;
      std::size_t m = 0;
      const auto emit = [&](int dm, std::int64_t run) {
        const bool nz = run != 0;
        const bool mrg = nz & (buf[m - 1].dim == dm) &
                         ((buf[m - 1].run > 0) == (run > 0));
        buf[m - 1].run += mrg ? run : 0;
        buf[m] = Segment{dm, run};
        m += static_cast<std::size_t>(nz & !mrg);
      };
      for (std::size_t l = 0; l <= legs; ++l) {
        // The final leg has no waypoint draws before its permutation.
        const std::size_t perm_op = l * ops_per_leg + (l < legs ? d : 0);
        const std::int64_t* runs = &run_rows_[l * d * W];
        if (dim == 2) {
          // d == 2 permutations are one draw j: the first dim is 1 - j,
          // branch-free (the bit is a coin flip -- a branch mispredicts).
          const std::size_t j =
              static_cast<std::size_t>(draw_vals_[perm_op * W + k]);
          const std::size_t f = 1 - j;
          emit(static_cast<int>(f), runs[f * W + k]);
          emit(static_cast<int>(j), runs[j * W + k]);
        } else if (dim == 3) {
          const std::size_t j2 =
              static_cast<std::size_t>(draw_vals_[perm_op * W + k]);
          const std::size_t j1 =
              static_cast<std::size_t>(draw_vals_[(perm_op + 1) * W + k]);
          const int* pr = kPerm3[j2 * 2 + j1];
          emit(pr[0], runs[static_cast<std::size_t>(pr[0]) * W + k]);
          emit(pr[1], runs[static_cast<std::size_t>(pr[1]) * W + k]);
          emit(pr[2], runs[static_cast<std::size_t>(pr[2]) * W + k]);
        } else {
          decode_perm(perm_op, dim, k, perm_.data());
          for (int q = 0; q < dim; ++q) {
            const int dq = perm_[static_cast<std::size_t>(q)];
            emit(dq, runs[static_cast<std::size_t>(dq) * W + k]);
          }
        }
      }
      SegmentPath& o = out[i];
      o.source = s;
      o.dest = t;
      o.segments.assign(buf, m);
      sample_length(path_lengths, i, o);
    }
  }
}

void SoaBatchEngine::run_frugal(const Mesh& mesh, NodeId s, NodeId t,
                                std::size_t up_count, int bits_per_coord,
                                std::span<const std::uint64_t> packets,
                                std::uint64_t seed, std::span<SegmentPath> out,
                                IntHistogram* path_lengths) {
  const int dim = mesh.dim();
  const std::size_t legs = chain_.size();
  const std::size_t d = static_cast<std::size_t>(dim);
  const Coord cs = mesh.coord(s);
  const Coord ct = mesh.coord(t);

  wp_anchor_.resize(legs * d);
  wp_extent_.resize(legs * d);
  enc_anchor_.resize((legs + 1) * d);
  for (std::size_t l = 0; l < legs; ++l) {
    const Region& region = chain_[l];
    const Region& enclosing = (l <= up_count) ? chain_[l] : chain_[l - 1];
    for (int dd = 0; dd < dim; ++dd) {
      wp_anchor_[l * d + static_cast<std::size_t>(dd)] = region.anchor_at(dd);
      wp_extent_[l * d + static_cast<std::size_t>(dd)] = region.extent_at(dd);
      enc_anchor_[l * d + static_cast<std::size_t>(dd)] =
          enclosing.anchor_at(dd);
    }
  }
  for (int dd = 0; dd < dim; ++dd) {
    enc_anchor_[legs * d + static_cast<std::size_t>(dd)] =
        chain_.back().anchor_at(dd);
  }

  // Section 5.3 draw order: one permutation, then the two bridge-scale
  // coordinate vectors v1, v2 with their per-dimension words interleaved.
  ops_.clear();
  push_perm(dim);
  for (std::size_t dd = 0; dd < d; ++dd) {
    push_bits(bits_per_coord);  // v1[dd]
    push_bits(bits_per_coord);  // v2[dd]
  }
  perm_.resize(d);
  constexpr std::size_t W = RngLanes::kLanes;
  coord_rows_.resize(legs * d * W);
  run_rows_.resize((legs + 1) * d * W);
  seg_buf_.resize((legs + 1) * d + 1);  // slot 0 is the merge sentinel

  std::uint64_t idx[W];
  for (std::size_t k = 0; k < std::min(W, packets.size()); ++k) {
    __builtin_prefetch(&out[packets[k]], 1);
  }
  for (std::size_t p = 0; p < packets.size(); p += W) {
    const std::size_t nlanes = std::min(W, packets.size() - p);
    // Same out[i] prefetch pipeline as run_hierarchical.
    for (std::size_t k = p + W; k < std::min(p + 2 * W, packets.size()); ++k) {
      __builtin_prefetch(&out[packets[k]], 1);
    }
    for (std::size_t k = 0; k < nlanes; ++k) {
      idx[k] = packets[p + k];
      // A warm path spans several lines of (possibly spilled) storage.
      const Segment* sd = out[idx[k]].segments.data();
      __builtin_prefetch(sd, 1);
      __builtin_prefetch(reinterpret_cast<const char*>(sd) + 64, 1);
      __builtin_prefetch(reinterpret_cast<const char*>(sd) + 128, 1);
    }
    lanes_.seed_packets(seed, idx, nlanes);
    exec_program(nlanes);
    compute_rows(mesh, cs, ct, legs, /*frugal=*/true);
    for (std::size_t k = 0; k < nlanes; ++k) {
      const std::uint64_t i = packets[p + k];
      // Branch-free merge (SegmentPath::append semantics): the zero-run
      // and same-dim tests are coin flips on small extents, so predicated
      // stores beat branches. buf[-1] is a dim == -1 sentinel that absorbs
      // the first element's merge probe.
      Segment* buf = seg_buf_.data() + 1;
      buf[-1].dim = -1;
      std::size_t m = 0;
      const auto emit = [&](int dm, std::int64_t run) {
        const bool nz = run != 0;
        const bool mrg = nz & (buf[m - 1].dim == dm) &
                         ((buf[m - 1].run > 0) == (run > 0));
        buf[m - 1].run += mrg ? run : 0;
        buf[m] = Segment{dm, run};
        m += static_cast<std::size_t>(nz & !mrg);
      };
      // One permutation shared by every leg (Section 5.3 draw order).
      if (dim == 2) {
        const std::size_t j = static_cast<std::size_t>(draw_vals_[k]);
        const std::size_t f = 1 - j;
        for (std::size_t l = 0; l <= legs; ++l) {
          const std::int64_t* runs = &run_rows_[l * d * W];
          emit(static_cast<int>(f), runs[f * W + k]);
          emit(static_cast<int>(j), runs[j * W + k]);
        }
      } else {
        decode_perm(0, dim, k, perm_.data());
        for (std::size_t l = 0; l <= legs; ++l) {
          const std::int64_t* runs = &run_rows_[l * d * W];
          for (int q = 0; q < dim; ++q) {
            const int dq = perm_[static_cast<std::size_t>(q)];
            emit(dq, runs[static_cast<std::size_t>(dq) * W + k]);
          }
        }
      }
      SegmentPath& o = out[i];
      o.source = s;
      o.dest = t;
      o.segments.assign(buf, m);
      sample_length(path_lengths, i, o);
    }
  }
}

void SoaBatchEngine::run(const Router& router, std::span<const Demand> demands,
                         std::uint64_t seed, std::size_t begin,
                         std::size_t end, std::span<SegmentPath> out,
                         IntHistogram* path_lengths) {
  const RouterView rv = view_of(router);
  OBLV_CHECK(rv.kind != Kind::kUnsupported,
             "SoA engine invoked for an unsupported router");
  const Mesh& mesh = router.mesh();
  const std::size_t n = end - begin;
  if (n == 0) return;

  // Counting sort of the chunk's packets into (s, t) groups through a
  // reusable open-addressing table: pair key -> dense group id, then a
  // prefix-sum scatter that keeps each group's packets in index order.
  std::size_t table = 16;
  while (table < 2 * n) table <<= 1;
  slot_key_.assign(table, 0);
  slot_group_.assign(table, -1);
  group_of_.resize(n);
  group_demand_.clear();
  const std::uint64_t mask = table - 1;
  const auto nodes = static_cast<std::uint64_t>(mesh.num_nodes());
  for (std::size_t j = 0; j < n; ++j) {
    const Demand& dm = demands[begin + j];
    const std::uint64_t key =
        static_cast<std::uint64_t>(dm.src) * nodes +
        static_cast<std::uint64_t>(dm.dst);
    std::uint64_t h = splitmix64(key) & mask;
    while (slot_group_[h] >= 0 && slot_key_[h] != key) h = (h + 1) & mask;
    if (slot_group_[h] < 0) {
      slot_group_[h] = static_cast<std::int32_t>(group_demand_.size());
      slot_key_[h] = key;
      group_demand_.push_back(dm);
    }
    group_of_[j] = slot_group_[h];
  }

  const std::size_t groups = group_demand_.size();
  group_start_.assign(groups + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    group_start_[static_cast<std::size_t>(group_of_[j]) + 1]++;
  }
  for (std::size_t g = 0; g < groups; ++g) {
    group_start_[g + 1] += group_start_[g];
  }
  group_cursor_.assign(group_start_.begin(), group_start_.end() - 1);
  sorted_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_[group_cursor_[static_cast<std::size_t>(group_of_[j])]++] =
        static_cast<std::uint64_t>(begin + j);
  }

  for (std::size_t g = 0; g < groups; ++g) {
    const Demand dm = group_demand_[g];
    const std::span<const std::uint64_t> packets(
        sorted_.data() + group_start_[g],
        group_start_[g + 1] - group_start_[g]);
    if (dm.src == dm.dst) {
      // Trivial path; no randomness consumed (matches every router's
      // early return).
      for (const std::uint64_t i : packets) {
        reset_out(dm.src, dm.dst, out[i]);
        sample_length(path_lengths, i, out[i]);
      }
      continue;
    }
    switch (rv.kind) {
      case Kind::kEcube:
        run_ecube(mesh, dm.src, dm.dst, packets, seed, out, path_lengths);
        break;
      case Kind::kRandomDimOrder:
        run_dim_order(mesh, dm.src, dm.dst, packets, seed, out, path_lengths);
        break;
      case Kind::kValiant:
        run_valiant(mesh, dm.src, dm.dst, packets, seed, out, path_lengths);
        break;
      case Kind::kBoundedValiant:
        run_bounded_valiant(mesh, rv.bounded->box_for(dm.src, dm.dst), dm.src,
                            dm.dst, packets, seed, out, path_lengths);
        break;
      case Kind::kHierarchical: {
        std::size_t up_count = 0;
        int bridge_level = 0;
        if (rv.ancestor != nullptr) {
          rv.ancestor->resolve_plan(dm.src, dm.dst, chain_, up_count,
                                    bridge_level);
        } else {
          rv.nd->resolve_plan(dm.src, dm.dst, chain_, up_count, bridge_level);
        }
        run_hierarchical(mesh, dm.src, dm.dst, up_count, packets, seed, out,
                         path_lengths);
        break;
      }
      case Kind::kNdFrugal: {
        std::size_t up_count = 0;
        int bridge_level = 0;
        rv.nd->resolve_plan(dm.src, dm.dst, chain_, up_count, bridge_level);
        const int bh = rv.nd->decomposition().height_of(bridge_level);
        run_frugal(mesh, dm.src, dm.dst, up_count, bh, packets, seed, out,
                   path_lengths);
        break;
      }
      case Kind::kUnsupported:
        OBLV_UNREACHABLE("checked above");
    }
  }
}

}  // namespace oblivious
