// A small fixed-size thread pool plus a chunked parallel_for.
//
// The Monte Carlo sweeps in the benchmark harnesses are embarrassingly
// parallel over trials; on a single-core host everything degrades to a
// serial loop with no thread overhead (the pool is bypassed when it has
// zero workers or one chunk).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace oblivious {

class ThreadPool {
 public:
  // `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues a task; tasks must not throw (violations call std::terminate
  // via the worker loop's noexcept boundary).
  void submit(std::function<void()> task) OBLV_EXCLUDES(mutex_);

  // Blocks until every submitted task has finished.
  void wait_idle() OBLV_EXCLUDES(mutex_);

 private:
  void worker_loop() OBLV_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  oblv::Mutex mutex_;
  oblv::CondVar task_available_;
  oblv::CondVar idle_;
  std::deque<std::function<void()>> queue_ OBLV_GUARDED_BY(mutex_);
  std::size_t in_flight_ OBLV_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ OBLV_GUARDED_BY(mutex_) = false;
};

// Splits [0, count) into chunks and runs `body(begin, end)` on the pool
// (or inline when the pool has <= 1 worker). Blocks until complete.
void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace oblivious
