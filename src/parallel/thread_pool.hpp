// A small fixed-size thread pool plus a chunked parallel_for.
//
// The Monte Carlo sweeps in the benchmark harnesses are embarrassingly
// parallel over trials; on a single-core host everything degrades to a
// serial loop with no thread overhead (the pool is bypassed when it has
// zero workers or one chunk).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oblivious {

class ThreadPool {
 public:
  // `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues a task; tasks must not throw (violations call std::terminate
  // via the worker loop's noexcept boundary).
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Splits [0, count) into chunks and runs `body(begin, end)` on the pool
// (or inline when the pool has <= 1 worker). Blocks until complete.
void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace oblivious
