// End-to-end path-quality evaluation: route a whole problem with one
// algorithm and measure congestion C, dilation D, stretch, the congestion
// lower bound, and per-packet random-bit consumption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lower_bound.hpp"
#include "analysis/sketch/load_accountant.hpp"
#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/segment_path.hpp"
#include "routing/router.hpp"
#include "util/stats.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

struct RouteSetMetrics {
  std::string algorithm;
  std::size_t packets = 0;
  std::int64_t congestion = 0;        // C
  std::int64_t dilation = 0;          // D = max path length
  std::int64_t max_distance = 0;      // D* = max shortest distance
  double max_stretch = 0.0;
  double mean_stretch = 0.0;
  double lower_bound = 0.0;           // C* lower bound (boundary/average)
  double congestion_ratio = 0.0;      // C / max(lower_bound, 1)
  RunningStats bits_per_packet;       // random bits drawn per packet
  double routing_seconds = 0.0;
  // Filled by the accounting-aware entry points: how the congestion was
  // measured, the accountant's memory, and (sketch mode) its additive
  // overestimation ceiling.
  AccountingMode accounting = AccountingMode::kExact;
  std::size_t accounting_bytes = 0;
  double accounting_error_bound = 0.0;
};

struct RouteAllOptions {
  std::uint64_t seed = 1;
  // Remove cycles from the selected paths (the paper notes this never
  // increases congestion).
  bool erase_cycles = false;
  // Collect per-packet random-bit statistics (small overhead).
  bool meter_bits = true;
};

// Routes every demand independently (obliviously).
// \pre every demand's src and dst are node ids of `mesh`.
std::vector<Path> route_all(const Mesh& mesh, const Router& router,
                            const RoutingProblem& problem,
                            const RouteAllOptions& options,
                            RunningStats* bits_per_packet = nullptr);

// Segment-pipeline twin of route_all: same seed, same draw order, so the
// returned segment paths describe exactly the same routes -- but without
// ever materializing node lists.
std::vector<SegmentPath> route_all_segments(const Mesh& mesh,
                                            const Router& router,
                                            const RoutingProblem& problem,
                                            const RouteAllOptions& options,
                                            RunningStats* bits_per_packet = nullptr);

// Buffer-reusing core of route_all_segments: routes into `paths` (resized
// to the problem; surviving entries keep their heap capacity) and threads
// `scratch` through every packet, so a caller looping over many problems
// or trials pays no steady-state allocation. Same seed handling and draw
// order as route_all_segments -- the results are byte-identical.
void route_all_segments_into(const Mesh& mesh, const Router& router,
                             const RoutingProblem& problem,
                             const RouteAllOptions& options,
                             RouteScratch& scratch,
                             std::vector<SegmentPath>& paths,
                             RunningStats* bits_per_packet = nullptr);

// Parallel batch routing: demands are routed concurrently on the pool.
// Because path selection is oblivious, parallelism is trivially safe; the
// per-packet rng is derived deterministically from (seed, packet index),
// so the result is identical for any thread count and chunking -- but it
// intentionally differs from route_all's single-stream draw order.
class ThreadPool;
std::vector<Path> route_all_parallel(const Mesh& mesh, const Router& router,
                                     const RoutingProblem& problem,
                                     ThreadPool& pool, std::uint64_t seed);

// Parallel segment routing with the same counter-derived per-packet RNG
// streams as route_all_parallel (Rng(splitmix64(seed ^ splitmix64(i)))):
// output is bit-identical for any thread count and chunking.
std::vector<SegmentPath> route_all_segments_parallel(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    ThreadPool& pool, std::uint64_t seed);

// Computes metrics for an existing path set.
// \pre paths.size() == problem.size(), one (valid mesh) path per demand.
RouteSetMetrics measure_paths(const Mesh& mesh, const RoutingProblem& problem,
                              const std::vector<Path>& paths,
                              double lower_bound);

// Metrics for an existing segment path set: congestion via the O(segments)
// difference-array accounting, stretch/dilation from run lengths.
// \pre paths.size() == problem.size(), one (valid) segment path per demand.
RouteSetMetrics measure_segment_paths(const Mesh& mesh,
                                      const RoutingProblem& problem,
                                      const std::vector<SegmentPath>& paths,
                                      double lower_bound);

// Route + account in one parallel pass through a LoadAccountant of the
// requested mode. Workers claim fixed-size accounting blocks (see
// SketchConfig::block_size) and hand finished blocks to fold_block, so
// every reported number -- exact or sketch -- is identical for any thread
// count and block completion order. When `paths_out` is non-null the
// selected paths are stored there.
RouteSetMetrics route_and_measure_parallel(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    double lower_bound, ThreadPool& pool, std::uint64_t seed,
    const AccountingOptions& accounting,
    std::vector<SegmentPath>* paths_out = nullptr);

// Exact-accounting shorthand for the overload above.
RouteSetMetrics route_and_measure_parallel(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    double lower_bound, ThreadPool& pool, std::uint64_t seed,
    std::vector<SegmentPath>* paths_out = nullptr);

// Route + measure in one call. The congestion lower bound uses the
// hierarchical decomposition when the mesh supports one, otherwise the cut
// bounds.
RouteSetMetrics evaluate(const Mesh& mesh, const Router& router,
                         const RoutingProblem& problem,
                         const RouteAllOptions& options = {});

// As above but with a caller-supplied lower bound (avoids recomputing it
// when comparing many algorithms on the same problem).
RouteSetMetrics evaluate_with_bound(const Mesh& mesh, const Router& router,
                                    const RoutingProblem& problem,
                                    double lower_bound,
                                    const RouteAllOptions& options = {});

// The best congestion lower bound available for this mesh.
double best_lower_bound(const Mesh& mesh, const RoutingProblem& problem);

}  // namespace oblivious
