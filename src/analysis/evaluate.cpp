#include "analysis/evaluate.hpp"

#include <algorithm>
#include <mutex>

#include "analysis/congestion.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace oblivious {

std::vector<Path> route_all(const Mesh& mesh, const Router& router,
                            const RoutingProblem& problem,
                            const RouteAllOptions& options,
                            RunningStats* bits_per_packet) {
  Rng rng(options.seed);
  BitMeter meter;
  if (options.meter_bits) rng.attach_meter(&meter);
  std::vector<Path> paths;
  paths.reserve(problem.size());
  for (const Demand& demand : problem.demands) {
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
    const std::uint64_t bits_before = meter.bits;
    Path path = router.route(demand.src, demand.dst, rng);
    OBLV_CHECK(!path.nodes.empty() && path.source() == demand.src &&
                   path.destination() == demand.dst,
               "router returned a path with wrong endpoints");
    if (options.erase_cycles) path = remove_cycles(std::move(path));
    if (bits_per_packet != nullptr && options.meter_bits) {
      bits_per_packet->add(static_cast<double>(meter.bits - bits_before));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::vector<SegmentPath> route_all_segments(const Mesh& mesh,
                                            const Router& router,
                                            const RoutingProblem& problem,
                                            const RouteAllOptions& options,
                                            RunningStats* bits_per_packet) {
  Rng rng(options.seed);
  BitMeter meter;
  if (options.meter_bits) rng.attach_meter(&meter);
  std::vector<SegmentPath> paths;
  paths.reserve(problem.size());
  for (const Demand& demand : problem.demands) {
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
    const std::uint64_t bits_before = meter.bits;
    SegmentPath sp = router.route_segments(demand.src, demand.dst, rng);
    OBLV_CHECK(sp.source == demand.src && sp.destination() == demand.dst,
               "router returned a path with wrong endpoints");
    if (options.erase_cycles) {
      // Loop erasure needs the node sequence; round-trip through it.
      sp = segments_from_path(
          mesh, remove_cycles(path_from_segments(mesh, sp)));
    }
    if (bits_per_packet != nullptr && options.meter_bits) {
      bits_per_packet->add(static_cast<double>(meter.bits - bits_before));
    }
    paths.push_back(std::move(sp));
  }
  return paths;
}

// Per-packet RNG stream shared by every parallel routing entry point: the
// stream depends only on (seed, packet index), never on threading.
static Rng packet_rng(std::uint64_t seed, std::size_t i) {
  return Rng(splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(i))));
}

std::vector<Path> route_all_parallel(const Mesh& mesh, const Router& router,
                                     const RoutingProblem& problem,
                                     ThreadPool& pool, std::uint64_t seed) {
  for (const Demand& demand : problem.demands) {
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
  }
  std::vector<Path> paths(problem.size());
  parallel_for_chunks(pool, problem.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Demand& demand = problem.demands[i];
      Rng rng = packet_rng(seed, i);
      paths[i] = router.route(demand.src, demand.dst, rng);
      OBLV_CHECK(!paths[i].nodes.empty() && paths[i].source() == demand.src &&
                     paths[i].destination() == demand.dst,
                 "router returned a path with wrong endpoints");
    }
  });
  return paths;
}

std::vector<SegmentPath> route_all_segments_parallel(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    ThreadPool& pool, std::uint64_t seed) {
  for (const Demand& demand : problem.demands) {
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
  }
  std::vector<SegmentPath> paths(problem.size());
  parallel_for_chunks(pool, problem.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Demand& demand = problem.demands[i];
      Rng rng = packet_rng(seed, i);
      paths[i] = router.route_segments(demand.src, demand.dst, rng);
      OBLV_CHECK(paths[i].source == demand.src &&
                     paths[i].destination() == demand.dst,
                 "router returned a path with wrong endpoints");
    }
  });
  return paths;
}

RouteSetMetrics measure_paths(const Mesh& mesh, const RoutingProblem& problem,
                              const std::vector<Path>& paths,
                              double lower_bound) {
  OBLV_REQUIRE(paths.size() == problem.size(), "one path per demand required");
  RouteSetMetrics m;
  m.packets = paths.size();
  m.max_distance = problem.max_distance(mesh);
  m.lower_bound = lower_bound;

  EdgeLoadMap loads(mesh);
  RunningStats stretch;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Path& path = paths[i];
    loads.add_path(path);
    m.dilation = std::max(m.dilation, path.length());
    if (problem.demands[i].src != problem.demands[i].dst) {
      stretch.add(path_stretch(mesh, path));
    }
  }
  m.congestion = static_cast<std::int64_t>(loads.max_load());
  m.max_stretch = stretch.count() > 0 ? stretch.max() : 1.0;
  m.mean_stretch = stretch.count() > 0 ? stretch.mean() : 1.0;
  m.congestion_ratio = static_cast<double>(m.congestion) /
                       std::max(lower_bound, 1.0);
  return m;
}

RouteSetMetrics measure_segment_paths(const Mesh& mesh,
                                      const RoutingProblem& problem,
                                      const std::vector<SegmentPath>& paths,
                                      double lower_bound) {
  OBLV_REQUIRE(paths.size() == problem.size(), "one path per demand required");
  RouteSetMetrics m;
  m.packets = paths.size();
  m.max_distance = problem.max_distance(mesh);
  m.lower_bound = lower_bound;

  EdgeLoadMap loads(mesh);
  loads.add_segment_paths(paths);
  RunningStats stretch;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    m.dilation = std::max(m.dilation, paths[i].length());
    if (problem.demands[i].src != problem.demands[i].dst) {
      stretch.add(segment_path_stretch(mesh, paths[i]));
    }
  }
  m.congestion = static_cast<std::int64_t>(loads.max_load());
  m.max_stretch = stretch.count() > 0 ? stretch.max() : 1.0;
  m.mean_stretch = stretch.count() > 0 ? stretch.mean() : 1.0;
  m.congestion_ratio = static_cast<double>(m.congestion) /
                       std::max(lower_bound, 1.0);
  return m;
}

RouteSetMetrics route_and_measure_parallel(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    double lower_bound, ThreadPool& pool, std::uint64_t seed,
    std::vector<SegmentPath>* paths_out) {
  for (const Demand& demand : problem.demands) {
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
  }

  WallTimer timer;
  std::vector<SegmentPath> paths(problem.size());
  EdgeLoadMap loads(mesh);
  std::mutex merge_mutex;
  parallel_for_chunks(pool, problem.size(), [&](std::size_t begin, std::size_t end) {
    // Each chunk accounts its paths into a private shard; integer edge
    // loads commute under addition, so the merge order cannot change the
    // totals.
    EdgeLoadMap shard(mesh);
    for (std::size_t i = begin; i < end; ++i) {
      const Demand& demand = problem.demands[i];
      Rng rng = packet_rng(seed, i);
      paths[i] = router.route_segments(demand.src, demand.dst, rng);
      OBLV_CHECK(paths[i].source == demand.src &&
                     paths[i].destination() == demand.dst,
                 "router returned a path with wrong endpoints");
      shard.add_segments(paths[i]);
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    loads.merge(shard);
  });
  const double seconds = timer.elapsed_seconds();

  RouteSetMetrics m;
  m.algorithm = router.name();
  m.packets = paths.size();
  m.max_distance = problem.max_distance(mesh);
  m.lower_bound = lower_bound;
  m.routing_seconds = seconds;
  RunningStats stretch;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    m.dilation = std::max(m.dilation, paths[i].length());
    if (problem.demands[i].src != problem.demands[i].dst) {
      stretch.add(segment_path_stretch(mesh, paths[i]));
    }
  }
  m.congestion = static_cast<std::int64_t>(loads.max_load());
  m.max_stretch = stretch.count() > 0 ? stretch.max() : 1.0;
  m.mean_stretch = stretch.count() > 0 ? stretch.mean() : 1.0;
  m.congestion_ratio = static_cast<double>(m.congestion) /
                       std::max(lower_bound, 1.0);
  if (paths_out != nullptr) *paths_out = std::move(paths);
  return m;
}

double best_lower_bound(const Mesh& mesh, const RoutingProblem& problem) {
  if (mesh.is_square() && mesh.sides_power_of_two()) {
    const Decomposition decomp = Decomposition::section4(mesh);
    return congestion_lower_bound(mesh, decomp, problem).value();
  }
  return congestion_lower_bound(mesh, problem).value();
}

RouteSetMetrics evaluate_with_bound(const Mesh& mesh, const Router& router,
                                    const RoutingProblem& problem,
                                    double lower_bound,
                                    const RouteAllOptions& options) {
  WallTimer timer;
  RunningStats bits;
  const std::vector<Path> paths =
      route_all(mesh, router, problem, options, &bits);
  const double seconds = timer.elapsed_seconds();
  RouteSetMetrics m = measure_paths(mesh, problem, paths, lower_bound);
  m.algorithm = router.name();
  m.bits_per_packet = bits;
  m.routing_seconds = seconds;
  return m;
}

RouteSetMetrics evaluate(const Mesh& mesh, const Router& router,
                         const RoutingProblem& problem,
                         const RouteAllOptions& options) {
  return evaluate_with_bound(mesh, router, problem,
                             best_lower_bound(mesh, problem), options);
}

}  // namespace oblivious
