#include "analysis/evaluate.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "analysis/congestion.hpp"
#include "obs/metrics.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace oblivious {

std::vector<Path> route_all(const Mesh& mesh, const Router& router,
                            const RoutingProblem& problem,
                            const RouteAllOptions& options,
                            RunningStats* bits_per_packet) {
  Rng rng(options.seed);
  BitMeter meter;
  if (options.meter_bits) rng.attach_meter(&meter);
  const bool obs_on = obs::metrics_enabled();
  WallTimer timer;
  IntHistogram path_lengths;
  RouteScratch scratch;
  std::vector<Path> paths(problem.size());
  for (std::size_t i = 0; i < problem.demands.size(); ++i) {
    const Demand& demand = problem.demands[i];
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
    const std::uint64_t bits_before = meter.bits;
    router.route_into(demand.src, demand.dst, rng, scratch, paths[i]);
    OBLV_CHECK(!paths[i].nodes.empty() && paths[i].source() == demand.src &&
                   paths[i].destination() == demand.dst,
               "router returned a path with wrong endpoints");
    if (options.erase_cycles) paths[i] = remove_cycles(std::move(paths[i]));
    if (bits_per_packet != nullptr && options.meter_bits) {
      bits_per_packet->add(static_cast<double>(meter.bits - bits_before));
    }
    if (obs_on && path_length_sampled(i)) {
      path_lengths.add(paths[i].length(), kPathLengthSampleStride);
    }
  }
  if (obs_on) {
    OBLV_STAT_RECORD("routing.route_seconds", timer.elapsed_seconds());
    OBLV_COUNTER_ADD("routing.packets", problem.size());
    OBLV_HISTOGRAM_MERGE("routing.path_length", path_lengths);
    if (options.meter_bits) {
      OBLV_COUNTER_ADD("routing.rng_bits", meter.bits);
      OBLV_COUNTER_ADD("routing.rng_draws", meter.draws);
    }
  }
  return paths;
}

void route_all_segments_into(const Mesh& mesh, const Router& router,
                             const RoutingProblem& problem,
                             const RouteAllOptions& options,
                             RouteScratch& scratch,
                             std::vector<SegmentPath>& paths,
                             RunningStats* bits_per_packet) {
  Rng rng(options.seed);
  BitMeter meter;
  if (options.meter_bits) rng.attach_meter(&meter);
  const bool obs_on = obs::metrics_enabled();
  WallTimer timer;
  IntHistogram path_lengths;
  paths.resize(problem.size());
  for (std::size_t i = 0; i < problem.demands.size(); ++i) {
    const Demand& demand = problem.demands[i];
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
    const std::uint64_t bits_before = meter.bits;
    router.route_segments_into(demand.src, demand.dst, rng, scratch, paths[i]);
    OBLV_CHECK(paths[i].source == demand.src &&
                   paths[i].destination() == demand.dst,
               "router returned a path with wrong endpoints");
    if (options.erase_cycles) {
      // Loop erasure needs the node sequence; round-trip through it.
      paths[i] = segments_from_path(
          mesh, remove_cycles(path_from_segments(mesh, paths[i])));
    }
    if (bits_per_packet != nullptr && options.meter_bits) {
      bits_per_packet->add(static_cast<double>(meter.bits - bits_before));
    }
    if (obs_on && path_length_sampled(i)) {
      path_lengths.add(paths[i].length(), kPathLengthSampleStride);
    }
  }
  if (obs_on) {
    OBLV_STAT_RECORD("routing.route_seconds", timer.elapsed_seconds());
    OBLV_COUNTER_ADD("routing.packets", problem.size());
    OBLV_HISTOGRAM_MERGE("routing.path_length", path_lengths);
    if (options.meter_bits) {
      OBLV_COUNTER_ADD("routing.rng_bits", meter.bits);
      OBLV_COUNTER_ADD("routing.rng_draws", meter.draws);
    }
  }
}

std::vector<SegmentPath> route_all_segments(const Mesh& mesh,
                                            const Router& router,
                                            const RoutingProblem& problem,
                                            const RouteAllOptions& options,
                                            RunningStats* bits_per_packet) {
  RouteScratch scratch;
  std::vector<SegmentPath> paths;
  route_all_segments_into(mesh, router, problem, options, scratch, paths,
                          bits_per_packet);
  return paths;
}

std::vector<Path> route_all_parallel(const Mesh& mesh, const Router& router,
                                     const RoutingProblem& problem,
                                     ThreadPool& pool, std::uint64_t seed) {
  OBLV_REQUIRE(&mesh == &router.mesh(), "problem mesh must be the router's");
  RouteBatchOptions options;
  options.seed = seed;
  std::vector<Path> paths;
  route_batch_paths(router, std::span<const Demand>(problem.demands), pool,
                    options, paths);
  return paths;
}

std::vector<SegmentPath> route_all_segments_parallel(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    ThreadPool& pool, std::uint64_t seed) {
  OBLV_REQUIRE(&mesh == &router.mesh(), "problem mesh must be the router's");
  RouteBatchOptions options;
  options.seed = seed;
  std::vector<SegmentPath> paths;
  route_batch(router, std::span<const Demand>(problem.demands), pool, options,
              paths);
  return paths;
}

// Publishes the quality gauges of a finished measurement pass.
static void record_quality_gauges(const RouteSetMetrics& m) {
  OBLV_GAUGE_SET("routing.congestion", m.congestion);
  OBLV_GAUGE_SET("routing.dilation", m.dilation);
  OBLV_GAUGE_SET("routing.max_stretch", m.max_stretch);
  OBLV_GAUGE_SET("routing.mean_stretch", m.mean_stretch);
  OBLV_GAUGE_SET("routing.congestion_ratio", m.congestion_ratio);
  OBLV_GAUGE_SET("routing.lower_bound", m.lower_bound);
}

// Quality gauges plus the accounting metrics behind them.
static void record_route_set_metrics(const RouteSetMetrics& m,
                                     const EdgeLoadMap& loads) {
  if (!obs::metrics_enabled()) return;
  loads.record_metrics("loads");
  record_quality_gauges(m);
}

RouteSetMetrics measure_paths(const Mesh& mesh, const RoutingProblem& problem,
                              const std::vector<Path>& paths,
                              double lower_bound) {
  OBLV_REQUIRE(paths.size() == problem.size(), "one path per demand required");
  RouteSetMetrics m;
  m.packets = paths.size();
  m.max_distance = problem.max_distance(mesh);
  m.lower_bound = lower_bound;

  const bool obs_on = obs::metrics_enabled();
  // oblv-lint: allow(D010) measure_paths is exact by contract -- its
  // conservation ENSURES needs the materialized per-edge loads.
  EdgeLoadMap loads(mesh);
  RunningStats stretch;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Path& path = paths[i];
    loads.add_path(path);
    m.dilation = std::max(m.dilation, path.length());
    if (problem.demands[i].src != problem.demands[i].dst) {
      const double s = path_stretch(mesh, path);
      stretch.add(s);
      if (obs_on) OBLV_HISTOGRAM_ADD("routing.stretch", s);
    }
  }
  OBLV_ENSURES(contracts::validate_load_map_consistency(loads),
               "edge loads must sum to the hop count of the measured paths");
  m.congestion = static_cast<std::int64_t>(loads.max_load());
  m.max_stretch = stretch.count() > 0 ? stretch.max() : 1.0;
  m.mean_stretch = stretch.count() > 0 ? stretch.mean() : 1.0;
  m.congestion_ratio = static_cast<double>(m.congestion) /
                       std::max(lower_bound, 1.0);
  record_route_set_metrics(m, loads);
  return m;
}

RouteSetMetrics measure_segment_paths(const Mesh& mesh,
                                      const RoutingProblem& problem,
                                      const std::vector<SegmentPath>& paths,
                                      double lower_bound) {
  OBLV_REQUIRE(paths.size() == problem.size(), "one path per demand required");
  RouteSetMetrics m;
  m.packets = paths.size();
  m.max_distance = problem.max_distance(mesh);
  m.lower_bound = lower_bound;

  const bool obs_on = obs::metrics_enabled();
  // oblv-lint: allow(D010) measure_segment_paths is exact by contract --
  // its conservation ENSURES needs the materialized per-edge loads.
  EdgeLoadMap loads(mesh);
  loads.add_segment_paths(paths);
  RunningStats stretch;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    m.dilation = std::max(m.dilation, paths[i].length());
    if (problem.demands[i].src != problem.demands[i].dst) {
      const double s = segment_path_stretch(mesh, paths[i]);
      stretch.add(s);
      if (obs_on) OBLV_HISTOGRAM_ADD("routing.stretch", s);
    }
  }
  OBLV_ENSURES(contracts::validate_load_map_consistency(loads),
               "segment accounting must agree with the hop count");
  m.congestion = static_cast<std::int64_t>(loads.max_load());
  m.max_stretch = stretch.count() > 0 ? stretch.max() : 1.0;
  m.mean_stretch = stretch.count() > 0 ? stretch.mean() : 1.0;
  m.congestion_ratio = static_cast<double>(m.congestion) /
                       std::max(lower_bound, 1.0);
  record_route_set_metrics(m, loads);
  return m;
}

RouteSetMetrics route_and_measure_parallel(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    double lower_bound, ThreadPool& pool, std::uint64_t seed,
    const AccountingOptions& accounting,
    std::vector<SegmentPath>* paths_out) {
  for (const Demand& demand : problem.demands) {
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
  }

  WallTimer timer;
  std::vector<SegmentPath> paths(problem.size());
  const std::unique_ptr<LoadAccountant> accountant =
      LoadAccountant::create(mesh, accounting.mode, accounting.sketch);
  // Workers claim FIXED-SIZE accounting blocks (never thread-count-derived
  // chunks): exact loads commute under addition, but the sketch's
  // conservative updates and heavy-line summaries depend on update
  // grouping, and a fixed block partition plus the ordered fold makes the
  // result bit-identical for any pool size and completion order.
  const bool per_block_fold = accountant->mode() == AccountingMode::kSketch;
  const std::size_t block_size =
      std::max<std::size_t>(1, accounting.sketch.block_size);
  std::atomic<std::size_t> cursor{0};
  oblv::Mutex fold_mutex;
  auto worker = [&]() {
    const bool obs_on = obs::metrics_enabled();
    IntHistogram path_lengths;
    const std::unique_ptr<LoadAccountant> shard = accountant->clone_empty();
    RouteScratch scratch;
    std::size_t routed = 0;
    for (;;) {
      const std::size_t block = cursor.fetch_add(1);
      const std::size_t begin = block * block_size;
      if (begin >= problem.size()) break;
      const std::size_t end = std::min(problem.size(), begin + block_size);
      if (per_block_fold) shard->clear();
      for (std::size_t i = begin; i < end; ++i) {
        const Demand& demand = problem.demands[i];
        // oblv-lint: allow(D006) this loop interleaves load accumulation
        // and metering per packet, which the SoA engine does not model
        Rng rng = packet_rng(seed, i);
        router.route_segments_into(demand.src, demand.dst, rng, scratch,
                                   paths[i]);
        OBLV_CHECK(paths[i].source == demand.src &&
                       paths[i].destination() == demand.dst,
                   "router returned a path with wrong endpoints");
        shard->add_segments(paths[i]);
        if (obs_on) path_lengths.add(paths[i].length());
      }
      routed += end - begin;
      if (per_block_fold) {
        oblv::MutexLock lock(fold_mutex);
        accountant->fold_block(block, *shard);
      }
    }
    if (!per_block_fold && routed > 0) {
      // Exact shards accumulate across blocks (clearing would cost an
      // O(E) memset per block) and merge once: sums commute.
      oblv::MutexLock lock(fold_mutex);
      accountant->merge(*shard);
    }
    if (obs_on) {
      OBLV_COUNTER_ADD("routing.packets", routed);
      OBLV_HISTOGRAM_MERGE("routing.path_length", path_lengths);
    }
  };
  const std::size_t workers = std::max<std::size_t>(1, pool.num_threads());
  for (std::size_t w = 0; w < workers; ++w) pool.submit(worker);
  pool.wait_idle();
  const double seconds = timer.elapsed_seconds();
  OBLV_STAT_RECORD("routing.route_seconds", seconds);

  RouteSetMetrics m;
  m.algorithm = router.name();
  m.packets = paths.size();
  m.max_distance = problem.max_distance(mesh);
  m.lower_bound = lower_bound;
  m.routing_seconds = seconds;
  m.accounting = accountant->mode();
  m.accounting_bytes = accountant->memory_bytes();
  m.accounting_error_bound = accountant->error_bound();
  const bool obs_on = obs::metrics_enabled();
  RunningStats stretch;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    m.dilation = std::max(m.dilation, paths[i].length());
    if (problem.demands[i].src != problem.demands[i].dst) {
      const double s = segment_path_stretch(mesh, paths[i]);
      stretch.add(s);
      if (obs_on) OBLV_HISTOGRAM_ADD("routing.stretch", s);
    }
  }
  m.congestion = static_cast<std::int64_t>(accountant->max_load());
  m.max_stretch = stretch.count() > 0 ? stretch.max() : 1.0;
  m.mean_stretch = stretch.count() > 0 ? stretch.mean() : 1.0;
  m.congestion_ratio = static_cast<double>(m.congestion) /
                       std::max(lower_bound, 1.0);
  if (obs::metrics_enabled()) {
    accountant->record_metrics("loads");
    record_quality_gauges(m);
  }
  if (paths_out != nullptr) *paths_out = std::move(paths);
  return m;
}

RouteSetMetrics route_and_measure_parallel(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    double lower_bound, ThreadPool& pool, std::uint64_t seed,
    std::vector<SegmentPath>* paths_out) {
  return route_and_measure_parallel(mesh, router, problem, lower_bound, pool,
                                    seed, AccountingOptions{}, paths_out);
}

double best_lower_bound(const Mesh& mesh, const RoutingProblem& problem) {
  if (mesh.is_square() && mesh.sides_power_of_two()) {
    const Decomposition decomp = Decomposition::section4(mesh);
    return congestion_lower_bound(mesh, decomp, problem).value();
  }
  return congestion_lower_bound(mesh, problem).value();
}

RouteSetMetrics evaluate_with_bound(const Mesh& mesh, const Router& router,
                                    const RoutingProblem& problem,
                                    double lower_bound,
                                    const RouteAllOptions& options) {
  WallTimer timer;
  RunningStats bits;
  const std::vector<Path> paths =
      route_all(mesh, router, problem, options, &bits);
  const double seconds = timer.elapsed_seconds();
  RouteSetMetrics m = measure_paths(mesh, problem, paths, lower_bound);
  m.algorithm = router.name();
  m.bits_per_packet = bits;
  m.routing_seconds = seconds;
  return m;
}

RouteSetMetrics evaluate(const Mesh& mesh, const Router& router,
                         const RoutingProblem& problem,
                         const RouteAllOptions& options) {
  return evaluate_with_bound(mesh, router, problem,
                             best_lower_bound(mesh, problem), options);
}

}  // namespace oblivious
