// Edge-load (congestion) accounting over a set of paths.
//
// The congestion C of a path set is the maximum number of paths crossing
// any edge (Section 2); edges are undirected, matching the paper's model
// of one packet per edge per time step.
//
// Two ingestion paths:
//  * add_path walks a node-list path hop by hop (O(path length));
//  * add_segments charges a SegmentPath with one difference-array range
//    update per straight run (O(#segments)), deferring the per-edge
//    materialization to a single prefix-sum flush. The flush happens
//    lazily on first read, so interleaving add_path / add_segments /
//    queries stays correct.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/segment_path.hpp"
#include "util/stats.hpp"

namespace oblivious {

class EdgeLoadMap {
 public:
  explicit EdgeLoadMap(const Mesh& mesh);

  // \pre `path` is a valid path of this map's mesh (every hop an edge).
  void add_path(const Path& path);
  void add_paths(const std::vector<Path>& paths);

  // O(#segments): each straight run becomes one range bump in a per-axis
  // difference array; a lap of a torus dimension charges the whole line.
  // \pre `sp` is a non-empty valid segment path of this map's mesh.
  void add_segments(const SegmentPath& sp);
  void add_segment_paths(const std::vector<SegmentPath>& sps);

  void clear();

  // Folds pending difference-array contributions into the per-edge loads
  // (one prefix-sum pass per axis). Read accessors call this lazily; an
  // explicit call is only needed for timing.
  void flush() const;

  // Adds every edge load of `other` into this map; used to merge sharded
  // per-thread accumulators.
  // \pre `other` accounts loads over the same mesh as this map.
  void merge(const EdgeLoadMap& other);

  // Lifetime totals of the two ingestion paths (survive clear()).
  std::uint64_t segments_charged() const { return segments_charged_; }
  std::uint64_t paths_added() const { return paths_added_; }

  // Unit hops ingested since construction/clear(): every hop of every
  // added path or segment run charges exactly one edge, so after a flush
  // the per-edge loads sum to exactly this value (see
  // contracts::validate_load_map_consistency).
  std::uint64_t total_edge_charges() const { return edge_charges_; }

  // Publishes accounting metrics (max/p50/p99 edge load, edges used, the
  // edge-load histogram, and the segment/path charge counters accumulated
  // since the previous call) under `prefix.` in the global obs registry.
  // No-op when metrics are disabled.
  void record_metrics(const std::string& prefix) const;

  const Mesh& mesh() const { return *mesh_; }
  std::uint32_t load(EdgeId e) const;
  // C = max edge load. Memoized: the O(E) scan runs once per mutation
  // epoch, so repeated queries between adds (trial loops, metrics
  // snapshots) are O(1).
  std::uint32_t max_load() const;
  // An edge achieving the maximum load.
  EdgeId argmax() const;
  // Mean load over edges with non-zero load.
  double mean_nonzero() const;
  // Number of edges with non-zero load.
  std::int64_t edges_used() const;
  // Load histogram over all edges (including zero loads).
  IntHistogram histogram() const;

 private:
  // +count on positions [lo, hi) of the dimension-d line starting at
  // diff index `base`.
  void range_add(int d, std::size_t base, std::int64_t lo, std::int64_t hi,
                 std::int64_t count);
  // Mixed-radix index of the dimension-d line through coordinate `c`
  // (the coordinate with dimension d removed).
  std::int64_t line_index(const Coord& c, int d) const;

  const Mesh* mesh_;
  std::uint64_t segments_charged_ = 0;
  std::uint64_t paths_added_ = 0;
  // Unit hops ingested; mirrors the loads_ content, reset by clear().
  std::uint64_t edge_charges_ = 0;
  // Charges already published by record_metrics (counters report deltas).
  mutable std::uint64_t reported_segments_ = 0;
  mutable std::uint64_t reported_paths_ = 0;
  mutable std::vector<std::uint32_t> loads_;
  // Per-dimension difference arrays in line-major layout (line stride =
  // edge_dim_radix(d)); allocated on first add_segments.
  mutable std::vector<std::vector<std::int64_t>> diff_;
  mutable bool dirty_ = false;
  // Memoized max_load (valid for an empty map); every mutator invalidates.
  mutable std::uint32_t max_cache_ = 0;
  mutable bool max_valid_ = true;
  // line_strides_[d][i]: contribution of coordinate i to the line index
  // of dimension d (line_strides_[d][d] is unused and 0).
  std::vector<std::vector<std::int64_t>> line_strides_;
};

namespace contracts {

// PR 1 pipeline invariant: the O(segments) difference-array accounting is
// *exact* -- after a flush the per-edge loads sum to precisely the number
// of unit hops ingested. O(E); intended for OBLV_ENSURES at accounting
// boundaries and for direct use in tests.
bool validate_load_map_consistency(const EdgeLoadMap& loads);

}  // namespace contracts

}  // namespace oblivious
