// Edge-load (congestion) accounting over a set of paths.
//
// The congestion C of a path set is the maximum number of paths crossing
// any edge (Section 2); edges are undirected, matching the paper's model
// of one packet per edge per time step.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "util/stats.hpp"

namespace oblivious {

class EdgeLoadMap {
 public:
  explicit EdgeLoadMap(const Mesh& mesh);

  void add_path(const Path& path);
  void add_paths(const std::vector<Path>& paths);
  void clear();

  const Mesh& mesh() const { return *mesh_; }
  std::uint32_t load(EdgeId e) const;
  // C = max edge load.
  std::uint32_t max_load() const;
  // An edge achieving the maximum load.
  EdgeId argmax() const;
  // Mean load over edges with non-zero load.
  double mean_nonzero() const;
  // Number of edges with non-zero load.
  std::int64_t edges_used() const;
  // Load histogram over all edges (including zero loads).
  IntHistogram histogram() const;

 private:
  const Mesh* mesh_;
  std::vector<std::uint32_t> loads_;
};

}  // namespace oblivious
