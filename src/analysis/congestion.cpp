#include "analysis/congestion.hpp"

#include <algorithm>
#include <cstdlib>

#include "mesh/contracts.hpp"
#include "obs/metrics.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"
#include "util/simd.hpp"

namespace oblivious {

namespace {

// Adds a prefix-summed difference line into the (contiguous) edge loads
// of that line and clears it. Pure integer lane-wise arithmetic, so the
// vector and scalar versions are bit-identical; the AVX2 clone only
// exists to let the compiler pick wider registers when the CPU has them.
#define OBLV_ADD_LINE_BODY(diff, loads, n)                  \
  do {                                                      \
    OBLV_PRAGMA_SIMD                                        \
    for (std::int64_t i = 0; i < (n); ++i) {                \
      (loads)[i] += static_cast<std::uint32_t>((diff)[i]);  \
      (diff)[i] = 0;                                        \
    }                                                       \
  } while (0)

void add_line_portable(std::int64_t* diff, std::uint32_t* loads,
                       std::int64_t n) {
  OBLV_ADD_LINE_BODY(diff, loads, n);
}

#if OBLV_SIMD_X86_DISPATCH
__attribute__((target("avx2"))) void add_line_avx2(std::int64_t* diff,
                                                   std::uint32_t* loads,
                                                   std::int64_t n) {
  OBLV_ADD_LINE_BODY(diff, loads, n);
}
#endif

inline void add_line(std::int64_t* diff, std::uint32_t* loads,
                     std::int64_t n) {
#if OBLV_SIMD_X86_DISPATCH
  if (simd_avx2_enabled()) {
    add_line_avx2(diff, loads, n);
    return;
  }
#endif
  add_line_portable(diff, loads, n);
}

#undef OBLV_ADD_LINE_BODY

}  // namespace

EdgeLoadMap::EdgeLoadMap(const Mesh& mesh)
    : mesh_(&mesh), loads_(static_cast<std::size_t>(mesh.num_edges()), 0) {
  const int dim = mesh.dim();
  line_strides_.assign(static_cast<std::size_t>(dim), {});
  for (int d = 0; d < dim; ++d) {
    auto& strides = line_strides_[static_cast<std::size_t>(d)];
    strides.assign(static_cast<std::size_t>(dim), 0);
    std::int64_t t = 1;
    for (int i = dim - 1; i >= 0; --i) {
      if (i == d) continue;
      strides[static_cast<std::size_t>(i)] = t;
      t *= mesh.side(i);
    }
  }
}

void EdgeLoadMap::add_path(const Path& path) {
  // Hop validity is enforced by the always-on per-hop OBLV_REQUIRE below;
  // no gated precondition here so the thrown type is build-independent.
  ++paths_added_;
  if (path.nodes.size() < 2) return;
  edge_charges_ += static_cast<std::uint64_t>(path.length());
  max_valid_ = false;
  // Walk the path with an incrementally maintained coordinate so each hop
  // costs O(d) instead of a full id->coord conversion per node.
  Coord cur = mesh_->coord(path.nodes.front());
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const NodeId b = path.nodes[i + 1];
    const std::int64_t delta = b - path.nodes[i];
    bool matched = false;
    for (int d = 0; d < mesh_->dim() && !matched; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      const std::int64_t side = mesh_->side(d);
      const std::int64_t s = mesh_->node_stride(d);
      if (delta == s && cur[dd] + 1 < side) {
        // +1 step, keyed at the lower endpoint (current coordinate).
        loads_[static_cast<std::size_t>(mesh_->edge_id(cur, d))]++;
        cur[dd] += 1;
        matched = true;
      } else if (delta == -s && cur[dd] - 1 >= 0) {
        cur[dd] -= 1;
        loads_[static_cast<std::size_t>(mesh_->edge_id(cur, d))]++;
        matched = true;
      } else if (mesh_->torus() && side > 2 && cur[dd] == side - 1 &&
                 delta == -s * (side - 1)) {
        // Wrap +1: keyed at coordinate side-1.
        loads_[static_cast<std::size_t>(mesh_->edge_id(cur, d))]++;
        cur[dd] = 0;
        matched = true;
      } else if (mesh_->torus() && side > 2 && cur[dd] == 0 &&
                 delta == s * (side - 1)) {
        // Wrap -1: also keyed at coordinate side-1.
        cur[dd] = side - 1;
        loads_[static_cast<std::size_t>(mesh_->edge_id(cur, d))]++;
        matched = true;
      }
    }
    OBLV_REQUIRE(matched, "path hop is not a mesh edge");
  }
}

void EdgeLoadMap::add_paths(const std::vector<Path>& paths) {
  for (const Path& p : paths) add_path(p);
}

std::int64_t EdgeLoadMap::line_index(const Coord& c, int d) const {
  const auto& strides = line_strides_[static_cast<std::size_t>(d)];
  std::int64_t line = 0;
  for (int i = 0; i < mesh_->dim(); ++i) {
    if (i == d) continue;
    line += c[static_cast<std::size_t>(i)] * strides[static_cast<std::size_t>(i)];
  }
  return line;
}

void EdgeLoadMap::range_add(int d, std::size_t base, std::int64_t lo,
                            std::int64_t hi, std::int64_t count) {
  if (lo >= hi) return;
  auto& diff = diff_[static_cast<std::size_t>(d)];
  const std::int64_t radix = mesh_->edge_dim_radix(d);
  diff[base + static_cast<std::size_t>(lo)] += count;
  // A range closing at the end of the line needs no closing marker: the
  // prefix sum stops at radix-1.
  if (hi < radix) diff[base + static_cast<std::size_t>(hi)] -= count;
}

void EdgeLoadMap::add_segments(const SegmentPath& sp) {
  OBLV_REQUIRE(!sp.empty(), "cannot account an empty segment path");
  OBLV_EXPECTS(contracts::validate_segment_path(*mesh_, sp),
               "add_segments needs a valid segment path");
  segments_charged_ += sp.segments.size();
  if (sp.segments.empty()) return;
  // Every unit step of every run (laps included) crosses exactly one edge.
  edge_charges_ += static_cast<std::uint64_t>(sp.length());
  max_valid_ = false;
  if (diff_.empty()) {
    diff_.resize(static_cast<std::size_t>(mesh_->dim()));
    for (int d = 0; d < mesh_->dim(); ++d) {
      diff_[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(mesh_->edge_dim_offset(d + 1) -
                                   mesh_->edge_dim_offset(d)),
          0);
    }
  }
  dirty_ = true;
  Coord cur = mesh_->coord(sp.source);
  for (const Segment& seg : sp.segments) {
    const int d = seg.dim;
    const std::size_t dd = static_cast<std::size_t>(d);
    const std::int64_t side = mesh_->side(d);
    const std::int64_t radix = mesh_->edge_dim_radix(d);
    OBLV_REQUIRE(radix > 0, "segment along a side-1 dimension");
    const std::int64_t k = std::abs(seg.run);
    const std::size_t base =
        static_cast<std::size_t>(line_index(cur, d) * radix);
    if (mesh_->torus() && side > 2) {
      // Wrapping dimension: whole laps charge the full line, the
      // remainder is a cyclic range split into at most two pieces.
      const std::int64_t laps = k / side;
      if (laps > 0) range_add(d, base, 0, side, laps);
      const std::int64_t rem = k % side;
      if (rem > 0) {
        const std::int64_t start =
            seg.run > 0 ? cur[dd] : pos_mod(cur[dd] - rem, side);
        if (start + rem <= side) {
          range_add(d, base, start, start + rem, 1);
        } else {
          range_add(d, base, start, side, 1);
          range_add(d, base, 0, start + rem - side, 1);
        }
      }
      cur[dd] = pos_mod(cur[dd] + seg.run, side);
    } else if (mesh_->torus() && side == 2) {
      // A side-2 torus dimension has a single edge per line (keyed at
      // coordinate 0); every unit step crosses it.
      range_add(d, base, 0, 1, k);
      cur[dd] = pos_mod(cur[dd] + seg.run, side);
    } else if (seg.run > 0) {
      OBLV_REQUIRE(cur[dd] + k < side, "segment run leaves the mesh");
      range_add(d, base, cur[dd], cur[dd] + k, 1);
      cur[dd] += k;
    } else {
      OBLV_REQUIRE(cur[dd] - k >= 0, "segment run leaves the mesh");
      range_add(d, base, cur[dd] - k, cur[dd], 1);
      cur[dd] -= k;
    }
  }
  OBLV_CHECK(mesh_->node_id(cur) == sp.dest,
             "segment path destination mismatch");
}

void EdgeLoadMap::add_segment_paths(const std::vector<SegmentPath>& sps) {
  for (const SegmentPath& sp : sps) add_segments(sp);
}

void EdgeLoadMap::flush() const {
  if (!dirty_) return;
  OBLV_SCOPED_TIMER("loads.flush_seconds");
  dirty_ = false;
  for (int d = 0; d < mesh_->dim(); ++d) {
    auto& diff = diff_[static_cast<std::size_t>(d)];
    const std::int64_t radix = mesh_->edge_dim_radix(d);
    const std::int64_t lines =
        static_cast<std::int64_t>(diff.size()) / std::max<std::int64_t>(radix, 1);
    // Suffix stride: edge ids of a line advance by node_stride(d) as the
    // dimension-d coordinate increments (see Mesh's edge numbering).
    const std::int64_t stride = mesh_->node_stride(d);
    const EdgeId offset = mesh_->edge_dim_offset(d);
    std::size_t idx = 0;
    if (stride == 1) {
      // Innermost dimension: the line's edges are contiguous, so after
      // the (inherently serial) in-place prefix sum the accumulate into
      // loads_ is a straight lane-wise add -- the widened kernel.
      for (std::int64_t line = 0; line < lines; ++line, idx += radix) {
        std::int64_t running = 0;
        for (std::int64_t pos = 0; pos < radix; ++pos) {
          running += diff[idx + static_cast<std::size_t>(pos)];
          diff[idx + static_cast<std::size_t>(pos)] = running;
        }
        add_line(diff.data() + idx,
                 loads_.data() + static_cast<std::size_t>(offset + line * radix),
                 radix);
      }
    } else {
      for (std::int64_t line = 0; line < lines; ++line) {
        const std::int64_t a = line / stride;
        const std::int64_t b = line % stride;
        const std::int64_t edge_base = offset + (a * radix) * stride + b;
        std::int64_t running = 0;
        for (std::int64_t pos = 0; pos < radix; ++pos, ++idx) {
          running += diff[idx];
          diff[idx] = 0;
          if (running != 0) {
            loads_[static_cast<std::size_t>(edge_base + pos * stride)] +=
                static_cast<std::uint32_t>(running);
          }
        }
      }
    }
  }
}

void EdgeLoadMap::merge(const EdgeLoadMap& other) {
  OBLV_REQUIRE(mesh_->num_edges() == other.mesh_->num_edges(),
               "cannot merge load maps over different meshes");
  flush();
  other.flush();
  for (std::size_t e = 0; e < loads_.size(); ++e) {
    loads_[e] += other.loads_[e];
  }
  segments_charged_ += other.segments_charged_;
  paths_added_ += other.paths_added_;
  edge_charges_ += other.edge_charges_;
  max_valid_ = false;
  OBLV_ENSURES(contracts::validate_load_map_consistency(*this),
               "merged loads must sum to the merged hop count");
}

void EdgeLoadMap::clear() {
  std::fill(loads_.begin(), loads_.end(), 0U);
  for (auto& diff : diff_) std::fill(diff.begin(), diff.end(), 0);
  dirty_ = false;
  edge_charges_ = 0;
  max_cache_ = 0;
  max_valid_ = true;
}

std::uint32_t EdgeLoadMap::load(EdgeId e) const {
  OBLV_REQUIRE(e >= 0 && e < mesh_->num_edges(), "edge id out of range");
  flush();
  return loads_[static_cast<std::size_t>(e)];
}

std::uint32_t EdgeLoadMap::max_load() const {
  if (max_valid_) return max_cache_;
  flush();
  std::uint32_t best = 0;
  for (const std::uint32_t l : loads_) best = std::max(best, l);
  max_cache_ = best;
  max_valid_ = true;
  return best;
}

EdgeId EdgeLoadMap::argmax() const {
  flush();
  std::size_t best = 0;
  for (std::size_t i = 1; i < loads_.size(); ++i) {
    if (loads_[i] > loads_[best]) best = i;
  }
  return static_cast<EdgeId>(best);
}

double EdgeLoadMap::mean_nonzero() const {
  flush();
  std::uint64_t sum = 0;
  std::int64_t used = 0;
  for (const std::uint32_t l : loads_) {
    if (l > 0) {
      sum += l;
      ++used;
    }
  }
  return used > 0 ? static_cast<double>(sum) / static_cast<double>(used) : 0.0;
}

std::int64_t EdgeLoadMap::edges_used() const {
  flush();
  std::int64_t used = 0;
  for (const std::uint32_t l : loads_) {
    if (l > 0) ++used;
  }
  return used;
}

IntHistogram EdgeLoadMap::histogram() const {
  flush();
  IntHistogram h;
  for (const std::uint32_t l : loads_) h.add(static_cast<std::int64_t>(l));
  return h;
}

void EdgeLoadMap::record_metrics(const std::string& prefix) const {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::MetricsRegistry::global();
  const IntHistogram h = histogram();  // flushes
  registry.gauge(prefix + ".max_edge_load")
      .set(static_cast<double>(max_load()));
  registry.gauge(prefix + ".p50_edge_load")
      .set(static_cast<double>(h.quantile(0.5)));
  registry.gauge(prefix + ".p99_edge_load")
      .set(static_cast<double>(h.quantile(0.99)));
  registry.gauge(prefix + ".edges_used")
      .set(static_cast<double>(edges_used()));
  registry.gauge(prefix + ".mean_nonzero_load").set(mean_nonzero());
  registry.histogram(prefix + ".edge_load").merge_int_histogram(h);
  // Counters report the charges accumulated since the previous call, so
  // repeated snapshots of a long-lived map do not double count.
  registry.counter(prefix + ".segments_charged")
      .add(segments_charged_ - reported_segments_);
  registry.counter(prefix + ".paths_added").add(paths_added_ - reported_paths_);
  reported_segments_ = segments_charged_;
  reported_paths_ = paths_added_;
}

namespace contracts {

bool validate_load_map_consistency(const EdgeLoadMap& loads) {
  std::uint64_t sum = 0;
  for (EdgeId e = 0; e < loads.mesh().num_edges(); ++e) {
    sum += loads.load(e);  // first call flushes pending difference arrays
  }
  return sum == loads.total_edge_charges();
}

}  // namespace contracts

}  // namespace oblivious
