#include "analysis/congestion.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace oblivious {

EdgeLoadMap::EdgeLoadMap(const Mesh& mesh)
    : mesh_(&mesh), loads_(static_cast<std::size_t>(mesh.num_edges()), 0) {}

void EdgeLoadMap::add_path(const Path& path) {
  if (path.nodes.size() < 2) return;
  // Strides of a unit step per dimension.
  SmallVec<std::int64_t, 8> strides;
  strides.resize(static_cast<std::size_t>(mesh_->dim()), 1);
  for (int d = mesh_->dim() - 2; d >= 0; --d) {
    strides[static_cast<std::size_t>(d)] =
        strides[static_cast<std::size_t>(d) + 1] * mesh_->side(d + 1);
  }
  // Walk the path with an incrementally maintained coordinate so each hop
  // costs O(d) instead of a full id->coord conversion per node.
  Coord cur = mesh_->coord(path.nodes.front());
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const NodeId b = path.nodes[i + 1];
    const std::int64_t delta = b - path.nodes[i];
    bool matched = false;
    for (int d = 0; d < mesh_->dim() && !matched; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      const std::int64_t side = mesh_->side(d);
      const std::int64_t s = strides[dd];
      if (delta == s && cur[dd] + 1 < side) {
        // +1 step, keyed at the lower endpoint (current coordinate).
        loads_[static_cast<std::size_t>(mesh_->edge_id(cur, d))]++;
        cur[dd] += 1;
        matched = true;
      } else if (delta == -s && cur[dd] - 1 >= 0) {
        cur[dd] -= 1;
        loads_[static_cast<std::size_t>(mesh_->edge_id(cur, d))]++;
        matched = true;
      } else if (mesh_->torus() && side > 2 && cur[dd] == side - 1 &&
                 delta == -s * (side - 1)) {
        // Wrap +1: keyed at coordinate side-1.
        loads_[static_cast<std::size_t>(mesh_->edge_id(cur, d))]++;
        cur[dd] = 0;
        matched = true;
      } else if (mesh_->torus() && side > 2 && cur[dd] == 0 &&
                 delta == s * (side - 1)) {
        // Wrap -1: also keyed at coordinate side-1.
        cur[dd] = side - 1;
        loads_[static_cast<std::size_t>(mesh_->edge_id(cur, d))]++;
        matched = true;
      }
    }
    OBLV_REQUIRE(matched, "path hop is not a mesh edge");
  }
}

void EdgeLoadMap::add_paths(const std::vector<Path>& paths) {
  for (const Path& p : paths) add_path(p);
}

void EdgeLoadMap::clear() { std::fill(loads_.begin(), loads_.end(), 0U); }

std::uint32_t EdgeLoadMap::load(EdgeId e) const {
  OBLV_REQUIRE(e >= 0 && e < mesh_->num_edges(), "edge id out of range");
  return loads_[static_cast<std::size_t>(e)];
}

std::uint32_t EdgeLoadMap::max_load() const {
  std::uint32_t best = 0;
  for (const std::uint32_t l : loads_) best = std::max(best, l);
  return best;
}

EdgeId EdgeLoadMap::argmax() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < loads_.size(); ++i) {
    if (loads_[i] > loads_[best]) best = i;
  }
  return static_cast<EdgeId>(best);
}

double EdgeLoadMap::mean_nonzero() const {
  std::uint64_t sum = 0;
  std::int64_t used = 0;
  for (const std::uint32_t l : loads_) {
    if (l > 0) {
      sum += l;
      ++used;
    }
  }
  return used > 0 ? static_cast<double>(sum) / static_cast<double>(used) : 0.0;
}

std::int64_t EdgeLoadMap::edges_used() const {
  std::int64_t used = 0;
  for (const std::uint32_t l : loads_) {
    if (l > 0) ++used;
  }
  return used;
}

IntHistogram EdgeLoadMap::histogram() const {
  IntHistogram h;
  for (const std::uint32_t l : loads_) h.add(static_cast<std::int64_t>(l));
  return h;
}

}  // namespace oblivious
