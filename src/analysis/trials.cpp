#include "analysis/trials.hpp"

#include <memory>
#include <vector>

#include "analysis/congestion.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace oblivious {

TrialSummary evaluate_trials(const Mesh& mesh, const Router& router,
                             const RoutingProblem& problem, int trials,
                             std::uint64_t base_seed, ThreadPool* pool,
                             const AccountingOptions& accounting) {
  OBLV_REQUIRE(trials >= 1, "need at least one trial");
  OBLV_SCOPED_TIMER("trials.total_seconds");
  TrialSummary summary;
  summary.lower_bound = best_lower_bound(mesh, problem);

  // The expected-load sweep needs an O(E) sum array -- exactly what
  // sketch mode exists to avoid, so it only runs under exact accounting.
  const bool track_expected = accounting.mode == AccountingMode::kExact;
  std::vector<double> edge_load_sums(
      track_expected ? static_cast<std::size_t>(mesh.num_edges()) : 0, 0.0);
  oblv::Mutex merge_mutex;

  const auto run_range = [&](std::size_t begin, std::size_t end) {
    TrialSummary local;
    const bool obs_on = obs::metrics_enabled();
    RunningStats trial_seconds;
    IntHistogram congestion_hist;
    // Every buffer lives across the whole trial range: the accountant is
    // cleared (not reallocated) between trials, and the path vector plus
    // routing scratch keep their capacity, so trial t>begin routes with
    // zero steady-state allocation. Per-trial accounting is sequential
    // inside this worker, so sketch estimates depend only on the trial's
    // paths -- never on threading.
    std::vector<double> local_sums(edge_load_sums.size(), 0.0);
    const std::unique_ptr<LoadAccountant> loads =
        LoadAccountant::create(mesh, accounting.mode, accounting.sketch);
    RouteScratch scratch;
    std::vector<SegmentPath> paths;
    for (std::size_t t = begin; t < end; ++t) {
      WallTimer trial_timer;
      RouteAllOptions options;
      options.seed = base_seed + t;
      options.meter_bits = false;
      route_all_segments_into(mesh, router, problem, options, scratch, paths);
      loads->clear();
      loads->add_segment_paths(paths);
      local.congestion.add(static_cast<double>(loads->max_load()));
      std::int64_t dilation = 0;
      double max_stretch = 1.0;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        dilation = std::max(dilation, paths[i].length());
        if (problem.demands[i].src != problem.demands[i].dst) {
          max_stretch =
              std::max(max_stretch, segment_path_stretch(mesh, paths[i]));
        }
      }
      local.dilation.add(static_cast<double>(dilation));
      local.max_stretch.add(max_stretch);
      if (track_expected) {
        for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
          local_sums[static_cast<std::size_t>(e)] +=
              static_cast<double>(loads->estimate_load(e));
        }
      }
      if (obs_on) {
        trial_seconds.add(trial_timer.elapsed_seconds());
        congestion_hist.add(static_cast<std::int64_t>(loads->max_load()));
      }
    }
    if (obs_on) {
      // One registry visit per chunk, into this worker's own shard.
      OBLV_STAT_MERGE("trials.trial_seconds", trial_seconds);
      OBLV_HISTOGRAM_MERGE("trials.congestion", congestion_hist);
      OBLV_COUNTER_ADD("trials.trials_run", end - begin);
      loads->record_metrics("loads");
    }
    oblv::MutexLock lock(merge_mutex);
    summary.congestion.merge(local.congestion);
    summary.dilation.merge(local.dilation);
    summary.max_stretch.merge(local.max_stretch);
    for (std::size_t e = 0; e < edge_load_sums.size(); ++e) {
      edge_load_sums[e] += local_sums[e];
    }
  };

  if (pool != nullptr) {
    parallel_for_chunks(*pool, static_cast<std::size_t>(trials), run_range);
  } else {
    run_range(0, static_cast<std::size_t>(trials));
  }

  for (const double sum : edge_load_sums) {
    summary.max_expected_edge_load = std::max(
        summary.max_expected_edge_load, sum / static_cast<double>(trials));
  }
  if (obs::metrics_enabled()) {
    OBLV_GAUGE_SET("trials.mean_congestion", summary.congestion.mean());
    OBLV_GAUGE_SET("trials.max_congestion", summary.congestion.max());
    OBLV_GAUGE_SET("trials.max_expected_edge_load",
                   summary.max_expected_edge_load);
    OBLV_GAUGE_SET("trials.lower_bound", summary.lower_bound);
  }
  return summary;
}

}  // namespace oblivious
