// Lower bounds on the optimal congestion C* (Section 2).
//
// For any submesh M', every packet with exactly one endpoint inside M'
// must cross its boundary, so any routing (oblivious or not) has
// congestion at least B(M', Pi) = |Pi'| / out(M'). We evaluate B over
// every regular submesh of the hierarchical decomposition -- O(N log n)
// containment tests, no path construction -- plus the trivial
// average-load bound total_distance / |E|. Every congestion experiment
// reports C relative to this bound.
#pragma once

#include <cstdint>

#include "decomposition/decomposition.hpp"
#include "mesh/mesh.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

struct CongestionLowerBound {
  double boundary = 0.0;   // max over regular submeshes of |Pi'| / out(M')
  double average = 0.0;    // total shortest-path work / |E|
  RegularSubmesh boundary_argmax;  // submesh achieving the boundary bound

  // The combined bound: C* >= max(boundary, average, 1 if any packet moves).
  double value() const;
};

// Boundary congestion over all regular submeshes of `decomposition`.
// \pre `decomposition` was built over this same `mesh` object.
CongestionLowerBound congestion_lower_bound(const Mesh& mesh,
                                            const Decomposition& decomposition,
                                            const RoutingProblem& problem);

// Fallback for meshes without a hierarchical decomposition (non-square or
// non-power-of-two): average-load bound plus per-dimension bisection cuts.
CongestionLowerBound congestion_lower_bound(const Mesh& mesh,
                                            const RoutingProblem& problem);

}  // namespace oblivious
