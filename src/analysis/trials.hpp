// Multi-trial evaluation: the congestion guarantee of Theorems 3.9 / 4.3
// holds *with high probability*, so experiments need the distribution of C
// over independent runs, not one sample. Trials differ only in the seed
// (the problem is fixed); they run in parallel on a thread pool since
// oblivious routing is embarrassingly parallel.
#pragma once

#include <cstdint>

#include "analysis/evaluate.hpp"
#include "parallel/thread_pool.hpp"

namespace oblivious {

struct TrialSummary {
  RunningStats congestion;   // C per trial
  RunningStats max_stretch;  // max stretch per trial
  RunningStats dilation;     // D per trial
  double lower_bound = 0.0;  // shared C* bound of the (fixed) problem
  // Per-edge *expected* load: mean over trials of each edge's load, then
  // the maximum over edges -- the empirical E[C(e)] that Lemma 3.8 bounds
  // by 16 C* (log D + 3). Exact accounting only: it needs an O(E) sum
  // array, so sketch mode leaves it at 0.
  double max_expected_edge_load = 0.0;
};

// Runs `trials` independent routings of `problem` with seeds
// base_seed, base_seed+1, ...; uses `pool` when provided. Congestion is
// measured through a LoadAccountant of the requested mode (each trial is
// accounted sequentially inside one worker, so sketch estimates are
// deterministic and thread-count independent).
// \pre trials >= 1.
TrialSummary evaluate_trials(const Mesh& mesh, const Router& router,
                             const RoutingProblem& problem, int trials,
                             std::uint64_t base_seed, ThreadPool* pool = nullptr,
                             const AccountingOptions& accounting = {});

}  // namespace oblivious
