#include "analysis/degradation.hpp"

#include <algorithm>
#include <memory>

#include "analysis/congestion.hpp"
#include "util/check.hpp"

namespace oblivious {

namespace {

struct SweepCell {
  FaultBatchStats stats;
  double mean_stretch = 0.0;
  std::int64_t congestion = 0;
};

// Routes the problem through one fault model and measures the delivered
// traffic. Dropped packets contribute nothing to stretch or congestion:
// the paths the batch driver leaves for them are draws that crossed a
// failed edge, not traffic the network carried.
SweepCell run_cell(const Mesh& mesh, const Router& router,
                   const RoutingProblem& problem, const FaultModel& model,
                   ThreadPool& pool, const DegradationOptions& options,
                   std::vector<SegmentPath>& paths,
                   std::vector<FaultRouteStatus>& statuses) {
  SweepCell cell;
  const FaultAwareRouter fault_router(router, model, options.retry,
                                      /*query_step=*/0);
  cell.stats = route_batch_with_faults(fault_router, problem.demands, pool,
                                       RouteBatchOptions{options.route_seed, 0},
                                       paths, &statuses);
  const std::unique_ptr<LoadAccountant> loads = LoadAccountant::create(
      mesh, options.accounting.mode, options.accounting.sketch);
  std::int64_t delivered_hops = 0;
  std::int64_t delivered_distance = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (statuses[i] == FaultRouteStatus::kDropped) continue;
    loads->add_segments(paths[i]);
    delivered_hops += paths[i].length();
    delivered_distance +=
        mesh.distance(problem.demands[i].src, problem.demands[i].dst);
  }
  cell.congestion = static_cast<std::int64_t>(loads->max_load());
  if (delivered_distance > 0) {
    cell.mean_stretch =
        static_cast<double>(delivered_hops + cell.stats.backoff_steps) /
        static_cast<double>(delivered_distance);
  }
  return cell;
}

}  // namespace

std::vector<DegradationPoint> degradation_sweep(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    std::span<const double> fault_rates, ThreadPool& pool,
    const DegradationOptions& options) {
  OBLV_REQUIRE(&router.mesh() == &mesh,
               "degradation sweep needs the router's own mesh");
  for (const double rate : fault_rates) {
    OBLV_REQUIRE(rate >= 0.0 && rate <= 1.0,
                 "fault rates must be probabilities in [0, 1]");
  }

  // Fault-free baseline anchors added_stretch and congestion_inflation.
  std::vector<SegmentPath> paths;
  std::vector<FaultRouteStatus> statuses;
  FaultConfig baseline_config;
  baseline_config.seed = options.fault_seed;
  const FaultModel baseline_model(mesh, baseline_config);
  const SweepCell baseline = run_cell(mesh, router, problem, baseline_model,
                                      pool, options, paths, statuses);

  std::vector<DegradationPoint> curve;
  curve.reserve(fault_rates.size());
  for (const double rate : fault_rates) {
    FaultConfig config;
    config.edge_fail_prob = rate;
    config.edge_repair_prob = options.repair_prob;
    config.horizon = options.horizon;
    config.seed = options.fault_seed;
    const FaultModel model(mesh, config);
    const SweepCell cell = rate == 0.0
                               ? baseline
                               : run_cell(mesh, router, problem, model, pool,
                                          options, paths, statuses);

    DegradationPoint point;
    point.algorithm = router.name();
    point.fault_rate = rate;
    point.failures_injected = model.failures_injected();
    point.demands = cell.stats.demands;
    point.delivered = cell.stats.delivered;
    point.dropped = cell.stats.dropped;
    point.retried = cell.stats.retried;
    point.detoured = cell.stats.detoured;
    point.attempts = cell.stats.attempts;
    point.backoff_steps = cell.stats.backoff_steps;
    OBLV_CHECK(point.delivered + point.dropped == point.demands,
               "degradation accounting: delivered + dropped must equal "
               "the demand count");
    point.delivery_rate =
        point.demands > 0 ? static_cast<double>(point.delivered) /
                                static_cast<double>(point.demands)
                          : 1.0;
    point.mean_stretch = cell.mean_stretch;
    point.added_stretch = cell.mean_stretch - baseline.mean_stretch;
    point.congestion = cell.congestion;
    point.congestion_inflation =
        static_cast<double>(cell.congestion) /
        static_cast<double>(std::max<std::int64_t>(baseline.congestion, 1));
    curve.push_back(point);
  }
  return curve;
}

}  // namespace oblivious
