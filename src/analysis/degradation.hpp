// Graceful-degradation measurement: how an oblivious algorithm's delivery
// rate and path quality decay as links fail.
//
// The paper's recovery story (Section 1: path selection is online and
// local) predicts that a fault-aware oblivious router degrades smoothly:
// each re-draw is independent, so a fault rate of epsilon should cost
// O(epsilon) extra stretch and drop only the packets whose neighborhoods
// are disconnected. degradation_sweep quantifies exactly that -- it routes
// one problem through a FaultAwareRouter at each fault rate in a sweep and
// reports, per rate, the delivery rate, the stretch added over the
// fault-free baseline (recovery backoff included), and the congestion
// inflation of the delivered traffic.
//
// Determinism: paths, statuses, and every reported number are
// bit-identical for any thread count -- the fault schedule and the
// per-packet rng streams are both counter-derived (fault/fault_model.hpp,
// parallel/route_batch.hpp), and all merges are integer sums.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/sketch/load_accountant.hpp"
#include "fault/fault_batch.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_router.hpp"
#include "mesh/mesh.hpp"
#include "routing/router.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

class ThreadPool;

// One (algorithm, fault rate) cell of the degradation curve.
struct DegradationPoint {
  std::string algorithm;
  double fault_rate = 0.0;           // per-edge per-step failure probability
  std::int64_t failures_injected = 0;  // fail events the model materialized
  std::int64_t demands = 0;
  std::int64_t delivered = 0;        // clean + retried + detoured
  std::int64_t dropped = 0;          // delivered + dropped == demands
  std::int64_t retried = 0;
  std::int64_t detoured = 0;
  std::int64_t attempts = 0;         // total inner draws consumed
  std::int64_t backoff_steps = 0;    // total recovery latency charged
  double delivery_rate = 0.0;        // delivered / demands (1.0 at rate 0)
  // Mean stretch of the delivered traffic with recovery latency folded
  // in: (delivered hops + backoff steps) / (delivered shortest distance).
  double mean_stretch = 0.0;
  double added_stretch = 0.0;        // mean_stretch - fault-free baseline
  std::int64_t congestion = 0;       // C over the delivered paths only
  double congestion_inflation = 0.0; // congestion / max(baseline C, 1)
};

struct DegradationOptions {
  std::uint64_t route_seed = 1;  // per-packet path-selection streams
  std::uint64_t fault_seed = 1;  // fault schedule derivation
  // Two-state Markov chain parameters shared by every swept rate; with
  // horizon = 1 each model is a static snapshot drawn from the chain's
  // stationary distribution (fraction of dead edges = p / (p + r)).
  double repair_prob = 0.25;
  std::int64_t horizon = 1;
  RetryPolicy retry;
  // How the per-cell congestion is accounted (sketch mode frees the sweep
  // from O(E) load arrays; the delivered traffic is accounted
  // sequentially, so estimates stay deterministic).
  AccountingOptions accounting;
};

// Routes `problem` through `router` wrapped in a FaultAwareRouter at each
// fault rate (rate 0 is the draw-for-draw fault-free baseline; include it
// to anchor added_stretch and congestion_inflation -- when absent the
// baseline is computed internally and not reported).
// \pre every fault rate is in [0, 1] and every demand's endpoints are
// node ids of `mesh` (which must be `router`'s mesh).
std::vector<DegradationPoint> degradation_sweep(
    const Mesh& mesh, const Router& router, const RoutingProblem& problem,
    std::span<const double> fault_rates, ThreadPool& pool,
    const DegradationOptions& options = {});

}  // namespace oblivious
