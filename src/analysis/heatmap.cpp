#include "analysis/heatmap.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace oblivious {

std::string render_load_heatmap(const EdgeLoadMap& loads, int width) {
  const Mesh& mesh = loads.mesh();
  OBLV_REQUIRE(mesh.dim() == 2, "heatmap rendering requires a 2D mesh");
  OBLV_REQUIRE(width >= 1, "width must be positive");

  // Node intensity = max load over incident edges.
  std::vector<std::uint32_t> node_load(
      static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    const std::uint32_t l = loads.load(e);
    if (l == 0) continue;
    const auto [a, b] = mesh.edge_endpoints(e);
    node_load[static_cast<std::size_t>(a)] =
        std::max(node_load[static_cast<std::size_t>(a)], l);
    node_load[static_cast<std::size_t>(b)] =
        std::max(node_load[static_cast<std::size_t>(b)], l);
  }
  const std::uint32_t peak =
      *std::max_element(node_load.begin(), node_load.end());

  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = sizeof(kRamp) - 2;  // index 0..9

  const std::int64_t rows = std::min<std::int64_t>(mesh.side(0), width);
  const std::int64_t cols = std::min<std::int64_t>(mesh.side(1), width);
  std::ostringstream os;
  os << "peak edge load " << peak << "; ramp \"" << kRamp << "\"\n";
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      // Cell = max over the node block it covers.
      const std::int64_t x0 = r * mesh.side(0) / rows;
      const std::int64_t x1 = (r + 1) * mesh.side(0) / rows;
      const std::int64_t y0 = c * mesh.side(1) / cols;
      const std::int64_t y1 = (c + 1) * mesh.side(1) / cols;
      std::uint32_t cell = 0;
      for (std::int64_t x = x0; x < std::max(x1, x0 + 1); ++x) {
        for (std::int64_t y = y0; y < std::max(y1, y0 + 1); ++y) {
          cell = std::max(cell, node_load[static_cast<std::size_t>(
                                    mesh.node_id(Coord{x, y}))]);
        }
      }
      const int level =
          peak == 0 ? 0
                    : static_cast<int>((static_cast<std::uint64_t>(cell) *
                                        kLevels) /
                                       peak);
      os << kRamp[level];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace oblivious
