#include "analysis/lower_bound.hpp"

#include <algorithm>
#include <optional>
#include <tuple>
#include <unordered_map>

#include "util/check.hpp"

namespace oblivious {

double CongestionLowerBound::value() const {
  return std::max({boundary, average, boundary > 0.0 || average > 0.0 ? 1.0 : 0.0});
}

namespace {

double average_load_bound(const Mesh& mesh, const RoutingProblem& problem) {
  if (mesh.num_edges() == 0) return 0.0;
  return static_cast<double>(problem.total_distance(mesh)) /
         static_cast<double>(mesh.num_edges());
}

}  // namespace

CongestionLowerBound congestion_lower_bound(const Mesh& mesh,
                                            const Decomposition& decomposition,
                                            const RoutingProblem& problem) {
  OBLV_REQUIRE(&decomposition.mesh() == &mesh, "decomposition of a different mesh");
  CongestionLowerBound out;
  out.average = average_load_bound(mesh, problem);

  struct KeyHash {
    std::size_t operator()(const std::tuple<int, int, std::int64_t>& key) const {
      const auto& [level, type, grid] = key;
      std::size_t h = std::hash<std::int64_t>{}(grid);
      h ^= static_cast<std::size_t>(level) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<std::size_t>(type) * 0xc2b2ae3d27d4eb4fULL;
      return h;
    }
  };
  // Crossing counts |Pi'| keyed by submesh identity; the submesh itself is
  // kept alongside so the argmax can be reported.
  std::unordered_map<std::tuple<int, int, std::int64_t>,
                     std::pair<std::int64_t, RegularSubmesh>, KeyHash>
      crossings;

  const int k = decomposition.leaf_level();
  for (const Demand& demand : problem.demands) {
    if (demand.src == demand.dst) continue;
    const Coord cs = mesh.coord(demand.src);
    const Coord ct = mesh.coord(demand.dst);
    // Levels 1..k-1: the root contains everything (never crossed) and leaf
    // submeshes have out() counted too (single nodes) -- include level k,
    // it yields the max-degree bound for hot spots.
    for (int level = 1; level <= k; ++level) {
      for (int type = 1; type <= decomposition.num_types(level); ++type) {
        const auto sm_s = decomposition.submesh_at(cs, level, type);
        if (sm_s.has_value() && !sm_s->region.contains(mesh, ct)) {
          auto it = crossings
                        .try_emplace(std::make_tuple(level, type, sm_s->grid_key),
                                     0, *sm_s)
                        .first;
          ++it->second.first;
        }
        const auto sm_t = decomposition.submesh_at(ct, level, type);
        if (sm_t.has_value() && !sm_t->region.contains(mesh, cs)) {
          auto it = crossings
                        .try_emplace(std::make_tuple(level, type, sm_t->grid_key),
                                     0, *sm_t)
                        .first;
          ++it->second.first;
        }
      }
    }
  }

  // The argmax over an unordered_map must not depend on bucket order: ties
  // on b are broken toward the smallest (level, type, grid_key) triple, so
  // boundary_argmax is a pure function of the problem.
  // oblv-lint: allow(D002) argmax tie-broken on the submesh key
  std::optional<std::tuple<int, int, std::int64_t>> best_key;
  for (const auto& [key, entry] : crossings) {
    const auto& [count, submesh] = entry;
    const std::int64_t out_edges = mesh.boundary_edge_count(submesh.region);
    OBLV_CHECK(out_edges > 0, "crossed submesh must have boundary edges");
    const double b = static_cast<double>(count) / static_cast<double>(out_edges);
    const bool better =
        b > out.boundary ||
        (b == out.boundary && best_key.has_value() && key < *best_key);
    if (better) {
      out.boundary = b;
      out.boundary_argmax = submesh;
      best_key = key;
    }
  }
  return out;
}

CongestionLowerBound congestion_lower_bound(const Mesh& mesh,
                                            const RoutingProblem& problem) {
  CongestionLowerBound out;
  out.average = average_load_bound(mesh, problem);

  // Per-dimension prefix cuts: the submeshes [0, c] x (full other dims).
  for (int d = 0; d < mesh.dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    const std::int64_t side = mesh.side(d);
    if (side < 2) continue;
    std::vector<std::int64_t> src_at(static_cast<std::size_t>(side), 0);
    std::vector<std::int64_t> dst_at(static_cast<std::size_t>(side), 0);
    for (const Demand& demand : problem.demands) {
      if (demand.src == demand.dst) continue;
      ++src_at[static_cast<std::size_t>(mesh.coord(demand.src)[dd])];
      ++dst_at[static_cast<std::size_t>(mesh.coord(demand.dst)[dd])];
    }
    const std::int64_t cross_section = mesh.num_nodes() / side;
    std::int64_t src_prefix = 0;
    std::int64_t dst_prefix = 0;
    for (std::int64_t c = 0; c + 1 < side; ++c) {
      src_prefix += src_at[static_cast<std::size_t>(c)];
      dst_prefix += dst_at[static_cast<std::size_t>(c)];
      // Packets with exactly one endpoint in the prefix must cross one of
      // the cut's edges (on the torus the cut has two sides).
      const std::int64_t crossing = std::abs(src_prefix - dst_prefix);
      const std::int64_t cut_edges =
          (mesh.torus() && side > 2) ? 2 * cross_section : cross_section;
      const double b =
          static_cast<double>(crossing) / static_cast<double>(cut_edges);
      out.boundary = std::max(out.boundary, b);
    }
  }
  return out;
}

}  // namespace oblivious
