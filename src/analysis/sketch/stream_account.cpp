#include "analysis/sketch/stream_account.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/metrics.hpp"
#include "parallel/route_batch.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace oblivious {

DemandSource DemandSource::from_span(std::span<const Demand> demands) {
  DemandSource s;
  s.demands_ = demands;
  s.count_ = demands.size();
  return s;
}

DemandSource DemandSource::random_pairs(const Mesh& mesh, std::size_t count,
                                        std::uint64_t seed) {
  OBLV_REQUIRE(mesh.num_nodes() > 0, "cannot draw demands from an empty mesh");
  DemandSource s;
  s.mesh_ = &mesh;
  s.count_ = count;
  s.seed_ = splitmix64(seed);
  return s;
}

StreamAccountResult route_and_account(const Router& router,
                                      const DemandSource& source,
                                      ThreadPool& pool,
                                      const StreamAccountOptions& options,
                                      LoadAccountant& accountant) {
  const WallTimer timer;
  const std::size_t n = source.size();
  std::size_t block_size = options.block_size;
  if (block_size == 0) block_size = accountant.block_size();
  OBLV_REQUIRE(block_size >= 1, "stream block_size must be >= 1");
  StreamAccountResult result;
  result.packets = n;
  result.blocks = (n + block_size - 1) / block_size;
  if (n == 0) return result;

  // Workers claim BLOCKS (fixed size, thread-count independent), not
  // thread-count-derived chunks: the block partition is what makes the
  // folded accountant bit-identical for any pool size.
  const bool per_block_fold = accountant.mode() == AccountingMode::kSketch;
  std::atomic<std::size_t> cursor{0};
  oblv::Mutex fold_mu;
  auto worker = [&]() {
    const std::unique_ptr<LoadAccountant> shard = accountant.clone_empty();
    RouteScratch scratch;
    SegmentPath sp;
    bool charged = false;
    for (;;) {
      const std::size_t block = cursor.fetch_add(1);
      const std::size_t begin = block * block_size;
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + block_size);
      if (per_block_fold) shard->clear();
      charged = true;
      for (std::size_t i = begin; i < end; ++i) {
        const Demand d = source.demand(i);
        // oblv-lint: allow(D006) counter-derived per-packet stream -- the
        // shared packet_rng(seed, i) scheme of every parallel driver.
        Rng rng = packet_rng(options.seed, i);
        router.route_segments_into(d.src, d.dst, rng, scratch, sp);
        shard->add_segments(sp);
      }
      if (per_block_fold) {
        oblv::MutexLock lock(fold_mu);
        accountant.fold_block(block, *shard);
      }
    }
    if (!per_block_fold && charged) {
      // Exact shards accumulate across blocks (clearing would cost an
      // O(E) memset per block) and merge once: sums commute.
      oblv::MutexLock lock(fold_mu);
      accountant.merge(*shard);
    }
  };

  const std::size_t workers = std::max<std::size_t>(1, pool.num_threads());
  for (std::size_t w = 0; w < workers; ++w) pool.submit(worker);
  pool.wait_idle();

  result.seconds = timer.elapsed_seconds();
  OBLV_COUNTER_ADD("stream.packets_routed", static_cast<std::int64_t>(n));
  OBLV_STAT_RECORD("stream.block_seconds",
                   result.seconds / static_cast<double>(result.blocks));
  return result;
}

}  // namespace oblivious
