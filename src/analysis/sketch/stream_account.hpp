// Streaming route-and-account: congestion accounting for demand sets too
// large to materialize.
//
// route_and_account never stores demands or paths: a DemandSource yields
// demand i as a pure function of i (a borrowed span, or counter-derived
// random pairs), each packet is routed with the shared (seed, index) rng
// stream and charged straight into a LoadAccountant, and the paths are
// dropped. Peak memory is O(workers * accountant size) regardless of the
// packet count -- with a sketch accountant, 10^8 packets on a 10^9-edge
// mesh fit in a few megabytes.
//
// Determinism: work is claimed in fixed-size blocks (independent of the
// thread count) and finished blocks are handed to fold_block under a
// mutex, so the accountant's final state is bit-identical for any pool
// size and block completion order.
#pragma once

#include <cstdint>

#include <span>

#include "analysis/sketch/load_accountant.hpp"
#include "mesh/mesh.hpp"
#include "routing/router.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

class ThreadPool;

// A demand set addressed by index instead of stored in memory.
class DemandSource {
 public:
  // Borrows an in-memory demand set (caller keeps it alive).
  static DemandSource from_span(std::span<const Demand> demands);

  // `count` uniform random (src, dst) pairs: demand i is a pure function
  // of (seed, i), so nothing is ever materialized and any index range can
  // be regenerated at will.
  static DemandSource random_pairs(const Mesh& mesh, std::size_t count,
                                   std::uint64_t seed);

  std::size_t size() const { return count_; }

  // \pre i < size().
  Demand demand(std::size_t i) const {
    OBLV_EXPECTS(i < count_, "demand index out of range");
    if (!demands_.empty()) return demands_[i];
    const std::uint64_t n = static_cast<std::uint64_t>(mesh_->num_nodes());
    const std::uint64_t base = 2 * static_cast<std::uint64_t>(i);
    return Demand{static_cast<NodeId>(splitmix64(seed_ + base) % n),
                  static_cast<NodeId>(splitmix64(seed_ + base + 1) % n)};
  }

 private:
  DemandSource() = default;

  std::span<const Demand> demands_;
  const Mesh* mesh_ = nullptr;
  std::size_t count_ = 0;
  std::uint64_t seed_ = 0;
};

struct StreamAccountOptions {
  std::uint64_t seed = 1;
  // Packets per accounting block (the deterministic fold granularity).
  // 0 picks the accountant's configured SketchConfig::block_size.
  std::size_t block_size = 0;
};

struct StreamAccountResult {
  std::size_t packets = 0;
  std::size_t blocks = 0;
  double seconds = 0.0;
};

// Routes every demand of `source` with the shared counter-derived rng
// stream (packet_rng(seed, i)) and charges it into `accountant`.
// Deterministic for any thread count; see the file comment.
// \pre every demand's endpoints are node ids of the router's mesh, which
//      is also the accountant's mesh.
StreamAccountResult route_and_account(const Router& router,
                                      const DemandSource& source,
                                      ThreadPool& pool,
                                      const StreamAccountOptions& options,
                                      LoadAccountant& accountant);

}  // namespace oblivious
