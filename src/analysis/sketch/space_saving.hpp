// Deterministic SpaceSaving top-k tracker over (dimension, line) keys.
//
// All load on an edge comes from runs along that edge's own line, so a
// line's total charged hops upper-bound the max edge load on it. Tracking
// the k heaviest lines (by charged hops) gives the sketch accountant a
// candidate set for max-load queries without any per-edge state
// (DESIGN.md section 14).
//
// Determinism: insertion follows the classic SpaceSaving rule with a
// fixed eviction tie-break (smallest count, then smallest key), and
// merge() is a pure function of the two summaries (union counts, sorted
// truncation). Merge order still matters when truncation bites, which is
// why parallel folds go through LoadAccountant::fold_block -- it replays
// shard summaries in block-index order.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/check.hpp"

namespace oblivious {

class SpaceSavingLines {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  // upper bound on the key's true weight
    std::uint64_t error = 0;  // count - error lower-bounds the true weight
  };

  // \pre capacity >= 1.
  explicit SpaceSavingLines(std::size_t capacity);

  void add(std::uint64_t key, std::uint64_t weight);
  void clear();

  // Deterministic summary merge: counts and errors add for shared keys,
  // the union is re-truncated to capacity by (count desc, key asc), and
  // every truncated key counts as an eviction.
  // \pre other has the same capacity.
  void merge(const SpaceSavingLines& other);

  // Tracked entries ordered by (count desc, key asc).
  std::vector<Entry> entries_sorted() const;

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  // Evictions since construction or clear() (heavy-hitter churn). Reset
  // by clear() so per-block shard summaries report only their own block;
  // merge() accumulates the other summary's count.
  std::uint64_t evictions() const { return evictions_; }
  std::size_t memory_bytes() const;

 private:
  struct Slot {
    std::uint64_t key;
    std::uint64_t count;
    std::uint64_t error;
  };

  // Pops heap entries until the top reflects a live slot's current count;
  // returns that slot index.
  std::size_t refresh_min();

  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  std::vector<Slot> slots_;
  // Ordered map (not unordered: D002) from key to slot index.
  std::map<std::uint64_t, std::size_t> index_;
  // Lazy min-heap of (count snapshot, key, slot): stale snapshots are
  // dropped at pop time. Every live slot always has >= 1 heap entry with
  // snapshot <= its current count.
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::size_t>> heap_;
};

}  // namespace oblivious
