#include "analysis/sketch/load_accountant.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <vector>

#include "analysis/congestion.hpp"
#include "analysis/sketch/count_min.hpp"
#include "analysis/sketch/dyadic.hpp"
#include "analysis/sketch/space_saving.hpp"
#include "mesh/contracts.hpp"
#include "obs/metrics.hpp"
#include "rng/rng.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

const char* accounting_mode_name(AccountingMode mode) {
  switch (mode) {
    case AccountingMode::kExact:
      return "exact";
    case AccountingMode::kSketch:
      return "sketch";
  }
  return "unknown";
}

std::optional<AccountingMode> accounting_mode_from_name(
    const std::string& name) {
  if (name == "exact") return AccountingMode::kExact;
  if (name == "sketch") return AccountingMode::kSketch;
  return std::nullopt;
}

void LoadAccountant::add_segment_paths(const std::vector<SegmentPath>& sps) {
  for (const SegmentPath& sp : sps) add_segments(sp);
}

void LoadAccountant::add_paths(const std::vector<Path>& paths) {
  for (const Path& p : paths) add_path(p);
}

void LoadAccountant::fold_block(std::size_t block,
                                const LoadAccountant& shard) {
  // Exact loads commute under addition, so the default ordered fold is a
  // plain merge; the sketch override buffers heavy-line summaries.
  (void)block;
  merge(shard);
}

std::size_t LoadAccountant::exact_bytes(const Mesh& mesh) {
  return static_cast<std::size_t>(mesh.num_edges()) * sizeof(std::uint32_t);
}

namespace {

// ----------------------------------------------------------------- exact --

class ExactAccountant final : public LoadAccountant {
 public:
  explicit ExactAccountant(const Mesh& mesh) : mesh_(&mesh), loads_(mesh) {}

  AccountingMode mode() const override { return AccountingMode::kExact; }

  void add_segments(const SegmentPath& sp) override { loads_.add_segments(sp); }
  void add_path(const Path& path) override { loads_.add_path(path); }
  void clear() override { loads_.clear(); }

  void merge(const LoadAccountant& other) override {
    OBLV_REQUIRE(other.mode() == AccountingMode::kExact,
                 "cannot merge accountants of different modes");
    loads_.merge(static_cast<const ExactAccountant&>(other).loads_);
  }

  std::unique_ptr<LoadAccountant> clone_empty() const override {
    return std::make_unique<ExactAccountant>(*mesh_);
  }

  std::uint64_t max_load() const override { return loads_.max_load(); }
  std::uint64_t estimate_load(EdgeId e) const override {
    return loads_.load(e);
  }
  std::int64_t load_quantile(double q) const override {
    return loads_.histogram().quantile(q);
  }
  std::uint64_t total_edge_charges() const override {
    return loads_.total_edge_charges();
  }
  std::size_t memory_bytes() const override { return exact_bytes(*mesh_); }
  void record_metrics(const std::string& prefix) const override {
    loads_.record_metrics(prefix);
  }
  const EdgeLoadMap* exact_loads() const override { return &loads_; }
  const Mesh& mesh() const override { return *mesh_; }

 private:
  const Mesh* mesh_;
  // oblv-lint: allow(D010) this IS the exact-mode implementation behind
  // the LoadAccountant factory; every other construction site selects a
  // mode through LoadAccountant::create.
  EdgeLoadMap loads_;
};

// ---------------------------------------------------------------- sketch --

class SketchAccountant final : public LoadAccountant {
 public:
  SketchAccountant(const Mesh& mesh, const SketchConfig& config)
      : mesh_(&mesh),
        config_(config),
        cm_(choose_width(config), config.depth, config.seed),
        ss_(config.top_lines) {
    OBLV_REQUIRE(config.block_size >= 1, "sketch block_size must be >= 1");
    OBLV_REQUIRE(config.quantile_sample_cap >= 1,
                 "quantile_sample_cap must be >= 1");
    const int dim = mesh.dim();
    geom_.resize(static_cast<std::size_t>(dim));
    std::uint64_t key_base = 0;
    max_levels_ = 1;
    for (int d = 0; d < dim; ++d) {
      DimGeometry& g = geom_[static_cast<std::size_t>(d)];
      g.radix = mesh.edge_dim_radix(d);
      g.stride = mesh.node_stride(d);
      g.offset = mesh.edge_dim_offset(d);
      const std::int64_t dim_edges = mesh.edge_dim_offset(d + 1) - g.offset;
      g.lines = g.radix > 0 ? dim_edges / g.radix : 0;
      g.universe = g.radix > 0
                       ? std::bit_ceil(static_cast<std::uint64_t>(g.radix))
                       : 1;
      g.levels = floor_log2(g.universe) + 1;
      max_levels_ = std::max(max_levels_, g.levels);
      g.level_key_base.resize(static_cast<std::size_t>(g.levels));
      for (int l = 0; l < g.levels; ++l) {
        g.level_key_base[static_cast<std::size_t>(l)] = key_base;
        key_base += static_cast<std::uint64_t>(g.lines) * (g.universe >> l);
      }
      // Mixed-radix strides of the dimension-d line index (coordinate d
      // removed), matching EdgeLoadMap's numbering.
      g.line_strides.assign(static_cast<std::size_t>(dim), 0);
      std::int64_t t = 1;
      for (int i = dim - 1; i >= 0; --i) {
        if (i == d) continue;
        g.line_strides[static_cast<std::size_t>(i)] = t;
        t *= mesh.side(i);
      }
    }
  }

  AccountingMode mode() const override { return AccountingMode::kSketch; }

  void add_segments(const SegmentPath& sp) override {
    OBLV_REQUIRE(!sp.empty(), "cannot account an empty segment path");
    OBLV_EXPECTS(contracts::validate_segment_path(*mesh_, sp),
                 "add_segments needs a valid segment path");
    segments_charged_ += sp.segments.size();
    edge_charges_ += static_cast<std::uint64_t>(sp.length());
    invalidate();
    Coord cur = mesh_->coord(sp.source);
    for (const Segment& seg : sp.segments) {
      const int d = seg.dim;
      const std::size_t dd = static_cast<std::size_t>(d);
      const std::int64_t side = mesh_->side(d);
      const std::int64_t radix = geom_[dd].radix;
      OBLV_REQUIRE(radix > 0, "segment along a side-1 dimension");
      const std::int64_t k = std::abs(seg.run);
      const std::int64_t line = line_index(cur, d);
      if (mesh_->torus() && side > 2) {
        const std::int64_t laps = k / side;
        if (laps > 0) {
          range_update(d, line, 0, side, static_cast<std::uint64_t>(laps));
        }
        const std::int64_t rem = k % side;
        if (rem > 0) {
          const std::int64_t start =
              seg.run > 0 ? cur[dd] : pos_mod(cur[dd] - rem, side);
          if (start + rem <= side) {
            range_update(d, line, start, start + rem, 1);
          } else {
            range_update(d, line, start, side, 1);
            range_update(d, line, 0, start + rem - side, 1);
          }
        }
        cur[dd] = pos_mod(cur[dd] + seg.run, side);
      } else if (mesh_->torus() && side == 2) {
        // One edge per line, keyed at position 0; every step crosses it.
        range_update(d, line, 0, 1, static_cast<std::uint64_t>(k));
        cur[dd] = pos_mod(cur[dd] + seg.run, side);
      } else if (seg.run > 0) {
        OBLV_REQUIRE(cur[dd] + k < side, "segment run leaves the mesh");
        range_update(d, line, cur[dd], cur[dd] + k, 1);
        cur[dd] += k;
      } else {
        OBLV_REQUIRE(cur[dd] - k >= 0, "segment run leaves the mesh");
        range_update(d, line, cur[dd] - k, cur[dd], 1);
        cur[dd] -= k;
      }
      ss_.add(line_key(d, line), static_cast<std::uint64_t>(k));
    }
    OBLV_CHECK(mesh_->node_id(cur) == sp.dest,
               "segment path destination mismatch");
  }

  void add_path(const Path& path) override {
    ++paths_added_;
    if (path.nodes.size() < 2) return;
    edge_charges_ += static_cast<std::uint64_t>(path.length());
    invalidate();
    // Same hop walk and lower-endpoint keying as EdgeLoadMap::add_path;
    // each hop is a length-1 range (one level-0 dyadic piece).
    Coord cur = mesh_->coord(path.nodes.front());
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      const std::int64_t delta = path.nodes[i + 1] - path.nodes[i];
      bool matched = false;
      for (int d = 0; d < mesh_->dim() && !matched; ++d) {
        const std::size_t dd = static_cast<std::size_t>(d);
        const std::int64_t side = mesh_->side(d);
        const std::int64_t s = mesh_->node_stride(d);
        std::int64_t pos = -1;
        if (delta == s && cur[dd] + 1 < side) {
          pos = cur[dd];
          cur[dd] += 1;
          matched = true;
        } else if (delta == -s && cur[dd] - 1 >= 0) {
          cur[dd] -= 1;
          pos = cur[dd];
          matched = true;
        } else if (mesh_->torus() && side > 2 && cur[dd] == side - 1 &&
                   delta == -s * (side - 1)) {
          pos = cur[dd];
          cur[dd] = 0;
          matched = true;
        } else if (mesh_->torus() && side > 2 && cur[dd] == 0 &&
                   delta == s * (side - 1)) {
          cur[dd] = side - 1;
          pos = cur[dd];
          matched = true;
        }
        if (matched) {
          // Side-2 torus lines have a single edge keyed at position 0.
          if (mesh_->torus() && side == 2) pos = 0;
          const std::int64_t line = line_index(cur, d);
          range_update(d, line, pos, pos + 1, 1);
          ss_.add(line_key(d, line), 1);
        }
      }
      OBLV_REQUIRE(matched, "path hop is not a mesh edge");
    }
  }

  void clear() override {
    cm_.clear();
    hh_churn_ += ss_.evictions();
    ss_.clear();
    pending_.clear();
    next_block_ = 0;
    edge_charges_ = 0;
    dyadic_mass_ = 0;
    invalidate();
  }

  void merge(const LoadAccountant& other) override {
    const SketchAccountant& o = same_kind(other);
    OBLV_REQUIRE(pending_.empty() && o.pending_.empty(),
                 "cannot merge accountants with unfolded pending blocks");
    cm_.merge(o.cm_);
    ss_.merge(o.ss_);
    absorb_counters(o);
    hh_churn_ += o.hh_churn_;
    invalidate();
  }

  void fold_block(std::size_t block, const LoadAccountant& shard) override {
    const SketchAccountant& o = same_kind(shard);
    OBLV_REQUIRE(block >= next_block_ && pending_.find(block) == pending_.end(),
                 "each block index folds exactly once");
    // Count-min cells are linear: merging now, in completion order, gives
    // the same table as any other order. The heavy-line summary is
    // order-sensitive, so it waits its turn in the block sequence.
    cm_.merge(o.cm_);
    absorb_counters(o);
    pending_.emplace(block, o.ss_);
    while (!pending_.empty() && pending_.begin()->first == next_block_) {
      ss_.merge(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_block_;
    }
    invalidate();
  }

  std::unique_ptr<LoadAccountant> clone_empty() const override {
    return std::make_unique<SketchAccountant>(*mesh_, config_);
  }

  std::uint64_t max_load() const override {
    if (max_cache_.has_value()) return *max_cache_;
    // Scan the candidate heavy lines' positions with point estimates; the
    // true max edge lies on a line whose charged hops >= the max load, so
    // heavy lines are where maxima live.
    std::uint64_t best = 0;
    const std::uint64_t dim = static_cast<std::uint64_t>(mesh_->dim());
    for (const SpaceSavingLines::Entry& e : ss_.entries_sorted()) {
      const int d = static_cast<int>(e.key % dim);
      const std::int64_t line = static_cast<std::int64_t>(e.key / dim);
      const std::int64_t radix = geom_[static_cast<std::size_t>(d)].radix;
      for (std::int64_t pos = 0; pos < radix; ++pos) {
        best = std::max(best, point_estimate(d, line, pos));
      }
    }
    max_cache_ = best;
    return best;
  }

  std::uint64_t estimate_load(EdgeId e) const override {
    OBLV_REQUIRE(e >= 0 && e < mesh_->num_edges(), "edge id out of range");
    // Invert the mesh's edge numbering: within dimension d, the edge ids
    // of a line advance by node_stride(d), and line a*stride+b starts at
    // offset + (a*radix)*stride + b (see EdgeLoadMap::flush).
    int d = mesh_->dim() - 1;
    while (d > 0 && e < geom_[static_cast<std::size_t>(d)].offset) --d;
    const DimGeometry& g = geom_[static_cast<std::size_t>(d)];
    const std::int64_t rel = e - g.offset;
    const std::int64_t a = rel / (g.radix * g.stride);
    const std::int64_t rem = rel % (g.radix * g.stride);
    const std::int64_t pos = rem / g.stride;
    const std::int64_t line = a * g.stride + rem % g.stride;
    return point_estimate(d, line, pos);
  }

  std::int64_t load_quantile(double q) const override {
    return estimate_histogram().quantile(q);
  }

  std::uint64_t total_edge_charges() const override { return edge_charges_; }

  std::size_t block_size() const override { return config_.block_size; }

  std::size_t memory_bytes() const override {
    std::size_t pending = 0;
    for (const auto& [block, ss] : pending_) pending += ss.memory_bytes();
    return cm_.memory_bytes() + ss_.memory_bytes() + pending;
  }

  double error_bound() const override {
    // Classic count-min Markov bound per dyadic level, union-bounded over
    // the levels a point query sums (DESIGN.md section 14): the collision
    // mass of one row cell is at most e * M / width with probability
    // >= 1 - e^{-depth}, where M is the total mass in the table.
    return std::numbers::e * static_cast<double>(dyadic_mass_) /
           static_cast<double>(cm_.width()) * static_cast<double>(max_levels_);
  }

  double failure_probability() const override {
    return std::min(1.0, static_cast<double>(max_levels_) *
                             std::exp(-static_cast<double>(cm_.depth())));
  }

  void record_metrics(const std::string& prefix) const override {
    if (!obs::metrics_enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    const IntHistogram h = estimate_histogram();
    registry.gauge(prefix + ".max_edge_load")
        .set(static_cast<double>(max_load()));
    registry.gauge(prefix + ".p50_edge_load")
        .set(static_cast<double>(h.quantile(0.5)));
    registry.gauge(prefix + ".p99_edge_load")
        .set(static_cast<double>(h.quantile(0.99)));
    registry.gauge("congestion.sketch.width")
        .set(static_cast<double>(cm_.width()));
    registry.gauge("congestion.sketch.depth")
        .set(static_cast<double>(cm_.depth()));
    registry.gauge("congestion.sketch.levels")
        .set(static_cast<double>(max_levels_));
    registry.gauge("congestion.sketch.memory_bytes")
        .set(static_cast<double>(memory_bytes()));
    registry.gauge("congestion.sketch.error_bound").set(error_bound());
    // Counters report deltas since the previous call (same discipline as
    // EdgeLoadMap::record_metrics).
    const std::uint64_t churn = hh_churn_ + ss_.evictions();
    registry.counter("congestion.sketch.updates")
        .add(updates_ - reported_updates_);
    registry.counter("congestion.sketch.hh_churn")
        .add(churn - reported_churn_);
    registry.counter(prefix + ".segments_charged")
        .add(segments_charged_ - reported_segments_);
    registry.counter(prefix + ".paths_added")
        .add(paths_added_ - reported_paths_);
    reported_updates_ = updates_;
    reported_churn_ = churn;
    reported_segments_ = segments_charged_;
    reported_paths_ = paths_added_;
  }

  const Mesh& mesh() const override { return *mesh_; }

 private:
  struct DimGeometry {
    std::int64_t radix = 0;   // edge positions per line
    std::int64_t lines = 0;
    std::int64_t stride = 0;  // intra-line edge id stride (node_stride)
    EdgeId offset = 0;        // first edge id of the dimension
    std::uint64_t universe = 1;  // radix padded to a power of two
    int levels = 1;
    std::vector<std::uint64_t> level_key_base;
    std::vector<std::int64_t> line_strides;
  };

  static std::size_t choose_width(const SketchConfig& config) {
    OBLV_REQUIRE(config.depth >= 1 && config.depth <= 16,
                 "sketch depth must be in [1, 16]");
    OBLV_REQUIRE(config.top_lines >= 1, "sketch top_lines must be >= 1");
    // Reserve the heavy-line tracker's worst case (slots + map nodes +
    // lazy heap) so memory_bytes() stays inside sketch_bytes.
    const std::size_t reserve = config.top_lines * 192 + 1024;
    const std::size_t row_bytes =
        static_cast<std::size_t>(config.depth) * sizeof(std::uint64_t);
    OBLV_REQUIRE(config.sketch_bytes >= reserve + 16 * row_bytes,
                 "sketch_bytes too small for the configured depth/top_lines");
    return std::bit_floor((config.sketch_bytes - reserve) / row_bytes);
  }

  const SketchAccountant& same_kind(const LoadAccountant& other) const {
    OBLV_REQUIRE(other.mode() == AccountingMode::kSketch,
                 "cannot combine accountants of different modes");
    const auto& o = static_cast<const SketchAccountant&>(other);
    OBLV_REQUIRE(mesh_->num_edges() == o.mesh_->num_edges() &&
                     cm_.same_shape(o.cm_) &&
                     ss_.capacity() == o.ss_.capacity(),
                 "cannot combine sketch accountants of different shape");
    return o;
  }

  // Everything except heavy-line state. Churn transfers through
  // ss_.merge's eviction accumulation (fold_block) or explicitly in
  // merge(); absorbing o.hh_churn_ here would double-count per-block
  // shards whose clear() banked already-folded evictions.
  void absorb_counters(const SketchAccountant& o) {
    edge_charges_ += o.edge_charges_;
    dyadic_mass_ += o.dyadic_mass_;
    updates_ += o.updates_;
    segments_charged_ += o.segments_charged_;
    paths_added_ += o.paths_added_;
  }

  void invalidate() {
    max_cache_.reset();
    hist_cache_.reset();
  }

  std::uint64_t line_key(int d, std::int64_t line) const {
    return static_cast<std::uint64_t>(line) *
               static_cast<std::uint64_t>(mesh_->dim()) +
           static_cast<std::uint64_t>(d);
  }

  std::int64_t line_index(const Coord& c, int d) const {
    const auto& strides = geom_[static_cast<std::size_t>(d)].line_strides;
    std::int64_t line = 0;
    for (int i = 0; i < mesh_->dim(); ++i) {
      if (i == d) continue;
      line += c[static_cast<std::size_t>(i)] *
              strides[static_cast<std::size_t>(i)];
    }
    return line;
  }

  std::uint64_t key_at(const DimGeometry& g, int level, std::int64_t line,
                       std::int64_t p) const {
    return g.level_key_base[static_cast<std::size_t>(level)] +
           static_cast<std::uint64_t>(line) * (g.universe >> level) +
           static_cast<std::uint64_t>(p);
  }

  // +count on positions [lo, hi) of the given dimension-d line, as at
  // most 2*log2(universe) conservative dyadic counter updates.
  void range_update(int d, std::int64_t line, std::int64_t lo, std::int64_t hi,
                    std::uint64_t count) {
    if (lo >= hi) return;
    const DimGeometry& g = geom_[static_cast<std::size_t>(d)];
    dyadic_decompose(lo, hi, [&](int level, std::int64_t p) {
      cm_.add_conservative(key_at(g, level, line, p), count);
      ++updates_;
      dyadic_mass_ += count;
    });
  }

  // Sum of the count-min estimates of the position's dyadic ancestors:
  // exactly one ancestor per level carries each range's contribution, so
  // the sum upper-bounds (and without collisions equals) the true load.
  std::uint64_t point_estimate(int d, std::int64_t line,
                               std::int64_t pos) const {
    const DimGeometry& g = geom_[static_cast<std::size_t>(d)];
    std::uint64_t sum = 0;
    std::int64_t p = pos;
    for (int l = 0; l < g.levels; ++l, p >>= 1) {
      sum += cm_.estimate(key_at(g, l, line, p));
    }
    return sum;
  }

  const IntHistogram& estimate_histogram() const {
    if (hist_cache_.has_value()) return *hist_cache_;
    IntHistogram h;
    const std::int64_t num_edges = mesh_->num_edges();
    const std::int64_t cap =
        static_cast<std::int64_t>(config_.quantile_sample_cap);
    if (num_edges <= cap) {
      for (int d = 0; d < mesh_->dim(); ++d) {
        const DimGeometry& g = geom_[static_cast<std::size_t>(d)];
        for (std::int64_t line = 0; line < g.lines; ++line) {
          for (std::int64_t pos = 0; pos < g.radix; ++pos) {
            h.add(static_cast<std::int64_t>(point_estimate(d, line, pos)));
          }
        }
      }
    } else {
      // Deterministic sample of the edge space (counter-derived indices).
      const std::uint64_t sample_seed =
          splitmix64(config_.seed ^ 0x9e3779b97f4a7c15ULL);
      for (std::int64_t i = 0; i < cap; ++i) {
        const std::int64_t idx = static_cast<std::int64_t>(
            splitmix64(sample_seed + static_cast<std::uint64_t>(i)) %
            static_cast<std::uint64_t>(num_edges));
        int d = mesh_->dim() - 1;
        while (d > 0 && idx < geom_[static_cast<std::size_t>(d)].offset) --d;
        const DimGeometry& g = geom_[static_cast<std::size_t>(d)];
        const std::int64_t rel = idx - g.offset;
        h.add(static_cast<std::int64_t>(
            point_estimate(d, rel / g.radix, rel % g.radix)));
      }
    }
    hist_cache_ = std::move(h);
    return *hist_cache_;
  }

  const Mesh* mesh_;
  SketchConfig config_;
  CountMinSketch cm_;
  SpaceSavingLines ss_;
  std::vector<DimGeometry> geom_;
  int max_levels_ = 1;

  std::uint64_t edge_charges_ = 0;
  std::uint64_t dyadic_mass_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t segments_charged_ = 0;
  std::uint64_t paths_added_ = 0;
  // Churn banked from cleared trackers; live churn adds ss_.evictions().
  std::uint64_t hh_churn_ = 0;

  // Ordered-fold state: heavy-line summaries of not-yet-due blocks.
  std::size_t next_block_ = 0;
  std::map<std::size_t, SpaceSavingLines> pending_;

  mutable std::optional<std::uint64_t> max_cache_;
  mutable std::optional<IntHistogram> hist_cache_;
  mutable std::uint64_t reported_updates_ = 0;
  mutable std::uint64_t reported_churn_ = 0;
  mutable std::uint64_t reported_segments_ = 0;
  mutable std::uint64_t reported_paths_ = 0;
};

}  // namespace

std::unique_ptr<LoadAccountant> LoadAccountant::create(
    const Mesh& mesh, AccountingMode mode, const SketchConfig& config) {
  if (mode == AccountingMode::kSketch) {
    return std::make_unique<SketchAccountant>(mesh, config);
  }
  return std::make_unique<ExactAccountant>(mesh);
}

}  // namespace oblivious
