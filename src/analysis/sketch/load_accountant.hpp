// Mode-selectable congestion accounting: exact per-edge arrays or
// space-bounded sketches behind one interface.
//
// The exact EdgeLoadMap materializes every edge -- O(E) memory, which
// caps measurable mesh sizes around 10^8 edges. Sketch mode replaces it
// with a conservative-update count-min sketch over dyadic range keys
// (load quantiles and point estimates, O(log side) updates per axis run)
// plus a SpaceSaving top-k tracker of heavy lines (max-load candidates).
// Estimates never underestimate, and on small meshes they stay within
// the classic count-min (eps, delta) bound of exact values (validated in
// tests/sketch_test.cpp; derivation in DESIGN.md section 14).
//
// Merge discipline: merge() is the order-insensitive path for exact mode
// and for the linear count-min cells. Conservative updates and
// SpaceSaving summaries depend on update grouping, so parallel drivers
// shard work into FIXED-SIZE blocks (SketchConfig::block_size packets,
// independent of thread count) and hand each finished block to
// fold_block(): count-min cells merge immediately (commutative), while
// heavy-line summaries are buffered and replayed in block-index order.
// The folded result is bit-identical for ANY block completion order and
// ANY thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/segment_path.hpp"
#include "util/stats.hpp"

namespace oblivious {

class EdgeLoadMap;

enum class AccountingMode {
  kExact,   // per-edge uint32 array (EdgeLoadMap)
  kSketch,  // count-min + SpaceSaving, O(sketch_bytes) memory
};

const char* accounting_mode_name(AccountingMode mode);
std::optional<AccountingMode> accounting_mode_from_name(const std::string& name);

struct SketchConfig {
  // Total sketch memory budget; the count-min width is the largest power
  // of two that fits after the heavy-line tracker's reservation.
  std::size_t sketch_bytes = std::size_t{1} << 20;
  // Count-min rows; failure probability decays as e^{-depth}.
  int depth = 4;
  // SpaceSaving capacity: candidate (dimension, line) keys for max-load.
  std::size_t top_lines = 64;
  // Deterministic fold granularity for parallel drivers (packets per
  // accounting block). Thread-count independent by construction.
  std::size_t block_size = 8192;
  // Quantiles scan every edge up to this many, then switch to a
  // deterministic sample of this size.
  std::size_t quantile_sample_cap = std::size_t{1} << 16;
  // Hash-family seed (NOT the routing seed): estimates are a pure
  // function of (seed, update multiset).
  std::uint64_t seed = 0xc0119e5710ade5caULL;
};

struct AccountingOptions {
  AccountingMode mode = AccountingMode::kExact;
  SketchConfig sketch;
};

class LoadAccountant {
 public:
  virtual ~LoadAccountant() = default;

  virtual AccountingMode mode() const = 0;

  // \pre `sp` is a non-empty valid segment path of this accountant's mesh.
  virtual void add_segments(const SegmentPath& sp) = 0;
  virtual void add_segment_paths(const std::vector<SegmentPath>& sps);
  // \pre `path` is a valid path of this accountant's mesh.
  virtual void add_path(const Path& path) = 0;
  virtual void add_paths(const std::vector<Path>& paths);

  virtual void clear() = 0;

  // Order-insensitive shard merge (exact loads and count-min cells are
  // linear). Sketch heavy-line candidates merge deterministically but
  // order-SENSITIVELY here; parallel folds use fold_block instead.
  // \pre `other` was created by the same factory call (mesh, mode, config).
  virtual void merge(const LoadAccountant& other) = 0;

  // Deterministic ordered fold for parallel drivers: blocks 0..N-1 may
  // arrive in any order, but the result is bit-identical to merging them
  // in block-index order. Callers serialize fold_block externally (it is
  // not thread-safe) and fold every block index exactly once.
  // \pre `shard` was created by the same factory call as this accountant.
  virtual void fold_block(std::size_t block, const LoadAccountant& shard);

  // An empty accountant of the same mode/mesh/config, for worker shards.
  virtual std::unique_ptr<LoadAccountant> clone_empty() const = 0;

  // C (max edge load); an upper-bound estimate in sketch mode.
  virtual std::uint64_t max_load() const = 0;
  // Per-edge load; never underestimates in sketch mode.
  // \pre e is an edge id of this accountant's mesh.
  virtual std::uint64_t estimate_load(EdgeId e) const = 0;
  // Edge-load quantile in [0, 1] over all edges (sketch mode: over point
  // estimates, sampled above quantile_sample_cap edges).
  virtual std::int64_t load_quantile(double q) const = 0;

  // Unit hops ingested since construction/clear(); exact in both modes.
  virtual std::uint64_t total_edge_charges() const = 0;
  virtual std::size_t memory_bytes() const = 0;

  // The fold granularity parallel drivers should use (the configured
  // SketchConfig::block_size in sketch mode, its default otherwise).
  virtual std::size_t block_size() const { return SketchConfig{}.block_size; }

  // Additive overestimation ceiling for a single point estimate: with
  // probability >= 1 - failure_probability(), estimate_load(e) exceeds
  // the true load by at most error_bound(). Zero in exact mode.
  virtual double error_bound() const { return 0.0; }
  virtual double failure_probability() const { return 0.0; }

  // Publishes `prefix.max_edge_load/p50/p99` (mirroring EdgeLoadMap) and,
  // in sketch mode, the congestion.sketch.* family (width, depth, levels,
  // memory bytes, update and heavy-hitter-churn counters).
  virtual void record_metrics(const std::string& prefix) const = 0;

  // Exact mode's backing map (heatmaps, conservation contracts); null in
  // sketch mode.
  virtual const EdgeLoadMap* exact_loads() const { return nullptr; }

  virtual const Mesh& mesh() const = 0;

  // The only sanctioned constructor of accounting state (lint rule D010
  // flags direct EdgeLoadMap construction elsewhere in src/).
  static std::unique_ptr<LoadAccountant> create(const Mesh& mesh,
                                                AccountingMode mode,
                                                const SketchConfig& config = {});

  // What exact mode would allocate for `mesh` (no allocation happens):
  // the feasibility check for gigantic meshes.
  static std::size_t exact_bytes(const Mesh& mesh);
};

}  // namespace oblivious
