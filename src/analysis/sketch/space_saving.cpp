#include "analysis/sketch/space_saving.hpp"

#include <algorithm>
#include <tuple>

namespace oblivious {

namespace {

// Min-heap order: smallest (count, key) on top -- the eviction victim.
struct HeapGreater {
  bool operator()(const std::tuple<std::uint64_t, std::uint64_t, std::size_t>& a,
                  const std::tuple<std::uint64_t, std::uint64_t, std::size_t>& b)
      const {
    return std::tie(std::get<0>(a), std::get<1>(a)) >
           std::tie(std::get<0>(b), std::get<1>(b));
  }
};

bool entry_heavier(const SpaceSavingLines::Entry& a,
                   const SpaceSavingLines::Entry& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.key < b.key;
}

}  // namespace

SpaceSavingLines::SpaceSavingLines(std::size_t capacity) : capacity_(capacity) {
  OBLV_REQUIRE(capacity >= 1, "SpaceSaving needs capacity >= 1");
  slots_.reserve(capacity);
  heap_.reserve(capacity * 2);
}

std::size_t SpaceSavingLines::refresh_min() {
  for (;;) {
    OBLV_CHECK(!heap_.empty(), "SpaceSaving heap lost a live slot");
    const auto [count, key, slot] = heap_.front();
    if (slot < slots_.size() && slots_[slot].key == key) {
      if (slots_[slot].count == count) return slot;
      // Stale snapshot of a live slot: replace it with the current count.
      std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
      heap_.back() = {slots_[slot].count, key, slot};
      std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
      continue;
    }
    // The slot was evicted and reused for another key; drop the ghost.
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
    heap_.pop_back();
  }
}

void SpaceSavingLines::add(std::uint64_t key, std::uint64_t weight) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // The heap entry goes stale-low; refresh_min repairs it lazily.
    slots_[it->second].count += weight;
    return;
  }
  if (slots_.size() < capacity_) {
    const std::size_t slot = slots_.size();
    slots_.push_back({key, weight, 0});
    index_.emplace(key, slot);
    heap_.push_back({weight, key, slot});
    std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
    return;
  }
  // Classic SpaceSaving replacement: the new key inherits the victim's
  // count as its error bound.
  const std::size_t slot = refresh_min();
  std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
  heap_.pop_back();
  index_.erase(slots_[slot].key);
  const std::uint64_t floor = slots_[slot].count;
  slots_[slot] = {key, floor + weight, floor};
  index_.emplace(key, slot);
  heap_.push_back({floor + weight, key, slot});
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
  ++evictions_;
}

void SpaceSavingLines::clear() {
  slots_.clear();
  index_.clear();
  heap_.clear();
  evictions_ = 0;
}

std::vector<SpaceSavingLines::Entry> SpaceSavingLines::entries_sorted() const {
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) out.push_back({s.key, s.count, s.error});
  std::sort(out.begin(), out.end(), entry_heavier);
  return out;
}

void SpaceSavingLines::merge(const SpaceSavingLines& other) {
  OBLV_REQUIRE(capacity_ == other.capacity_,
               "cannot merge SpaceSaving summaries of different capacity");
  // Combine via an ordered map so the union is key-sorted (deterministic),
  // then keep the heaviest `capacity_` keys.
  std::map<std::uint64_t, Entry> combined;
  for (const Slot& s : slots_) combined[s.key] = {s.key, s.count, s.error};
  for (const Slot& s : other.slots_) {
    Entry& e = combined[s.key];
    e.key = s.key;
    e.count += s.count;
    e.error += s.error;
  }
  std::vector<Entry> entries;
  entries.reserve(combined.size());
  for (const auto& [key, e] : combined) entries.push_back(e);
  std::sort(entries.begin(), entries.end(), entry_heavier);
  if (entries.size() > capacity_) {
    evictions_ += entries.size() - capacity_;
    entries.resize(capacity_);
  }
  evictions_ += other.evictions_;

  slots_.clear();
  index_.clear();
  heap_.clear();
  for (const Entry& e : entries) {
    const std::size_t slot = slots_.size();
    slots_.push_back({e.key, e.count, e.error});
    index_.emplace(e.key, slot);
    heap_.push_back({e.count, e.key, slot});
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapGreater{});
}

std::size_t SpaceSavingLines::memory_bytes() const {
  // Ordered-map nodes cost roughly three pointers + color + payload.
  constexpr std::size_t kMapNodeBytes = 64;
  return slots_.capacity() * sizeof(Slot) + index_.size() * kMapNodeBytes +
         heap_.capacity() * sizeof(heap_[0]);
}

}  // namespace oblivious
