#include "analysis/sketch/count_min.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace oblivious {

CountMinSketch::CountMinSketch(std::size_t width, int depth, std::uint64_t seed)
    : width_(width), mask_(width - 1), depth_(depth), seed_(seed) {
  OBLV_REQUIRE(width >= 16 && is_power_of_two(width),
               "count-min width must be a power of two >= 16");
  OBLV_REQUIRE(depth >= 1 && depth <= kMaxDepth,
               "count-min depth must be in [1, 16]");
  row_seeds_.reserve(static_cast<std::size_t>(depth));
  for (int r = 0; r < depth; ++r) {
    // Counter-derived row seeds: the hash family is a pure function of
    // the config seed, never of platform or run order.
    row_seeds_.push_back(splitmix64(seed + static_cast<std::uint64_t>(r) + 1));
  }
  cells_.assign(width_ * static_cast<std::size_t>(depth), 0);
}

void CountMinSketch::merge(const CountMinSketch& other) {
  OBLV_REQUIRE(same_shape(other),
               "cannot merge count-min sketches of different shape or seed");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i];
  }
}

void CountMinSketch::clear() { std::fill(cells_.begin(), cells_.end(), 0); }

}  // namespace oblivious
