// Deterministic conservative-update count-min sketch.
//
// A depth x width table of saturating uint64 counters. Row hashes are
// splitmix64 with counter-derived per-row seeds, so estimates are a pure
// function of (config seed, update multiset) -- platform-independent and
// replayable. Two update flavors:
//
//  * add() is LINEAR: the table is a sum of per-update one-hot rows, so
//    cell-wise merge() commutes and any shard merge order is
//    bit-identical.
//  * add_conservative() only raises each row cell to the new lower bound
//    min_row(cell) + count (the classic conservative update). It tightens
//    estimates but makes the table depend on update GROUPING, which is
//    why the accountant confines it to deterministic fixed-size blocks
//    (DESIGN.md section 14).
//
// Either way every cell >= the true count hashed into it, so estimates
// never underestimate, and conservative cells are <= the linear cells --
// the classic count-min (eps, delta) bound is an upper envelope for both.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace oblivious {

class CountMinSketch {
 public:
  // \pre width is a power of two >= 16; depth in [1, 16].
  CountMinSketch(std::size_t width, int depth, std::uint64_t seed);

  void add(std::uint64_t key, std::uint64_t count) {
    for (int r = 0; r < depth_; ++r) {
      cells_[row_offset(r) + slot(r, key)] += count;
    }
  }

  void add_conservative(std::uint64_t key, std::uint64_t count) {
    std::uint64_t est = ~std::uint64_t{0};
    std::size_t idx[kMaxDepth];
    for (int r = 0; r < depth_; ++r) {
      idx[r] = row_offset(r) + slot(r, key);
      est = cells_[idx[r]] < est ? cells_[idx[r]] : est;
    }
    const std::uint64_t target = est + count;
    for (int r = 0; r < depth_; ++r) {
      if (cells_[idx[r]] < target) cells_[idx[r]] = target;
    }
  }

  std::uint64_t estimate(std::uint64_t key) const {
    std::uint64_t est = ~std::uint64_t{0};
    for (int r = 0; r < depth_; ++r) {
      const std::uint64_t cell = cells_[row_offset(r) + slot(r, key)];
      est = cell < est ? cell : est;
    }
    return est;
  }

  // Cell-wise sum. Commutative and associative, so sharded tables merge
  // in any order; conservative cells stay overestimates under summation.
  // \pre other was built with the same width, depth, and seed.
  void merge(const CountMinSketch& other);
  void clear();

  bool same_shape(const CountMinSketch& other) const {
    return width_ == other.width_ && depth_ == other.depth_ &&
           seed_ == other.seed_;
  }

  std::size_t width() const { return width_; }
  int depth() const { return depth_; }
  std::uint64_t seed() const { return seed_; }
  std::size_t memory_bytes() const { return cells_.size() * sizeof(std::uint64_t); }

 private:
  static constexpr int kMaxDepth = 16;

  std::size_t row_offset(int r) const {
    return static_cast<std::size_t>(r) * width_;
  }
  std::size_t slot(int r, std::uint64_t key) const {
    return static_cast<std::size_t>(
        splitmix64(key ^ row_seeds_[static_cast<std::size_t>(r)]) & mask_);
  }

  std::size_t width_;
  std::uint64_t mask_;
  int depth_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> row_seeds_;
  std::vector<std::uint64_t> cells_;  // depth rows of width cells
};

}  // namespace oblivious
