// Dyadic range decomposition: the trick that lets the sketch accountant
// charge a whole axis run in O(log side) counter updates instead of one
// update per edge.
//
// The positions of a line live in a universe padded to the next power of
// two U. Every half-open range [lo, hi) decomposes into at most two
// dyadic pieces per level (<= 2*log2(U) total), and every point of the
// range is covered by EXACTLY one piece -- so a point's true load is the
// sum of the true counts of its log2(U)+1 dyadic ancestors, and a
// count-min point query just sums the per-level ancestor estimates
// (DESIGN.md section 14).
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace oblivious {

// Canonical dyadic cover of [lo, hi). emit(level, pos) receives each
// piece's level and its position index at that level (the piece covers
// points [pos << level, (pos + 1) << level)). Returns the piece count.
// \pre 0 <= lo <= hi.
template <typename Emit>
inline int dyadic_decompose(std::int64_t lo, std::int64_t hi, Emit&& emit) {
  OBLV_REQUIRE(0 <= lo && lo <= hi, "dyadic range must be ordered in [0, U)");
  int level = 0;
  int pieces = 0;
  while (lo < hi) {
    if (lo & 1) {
      emit(level, lo);
      ++lo;
      ++pieces;
    }
    if (hi & 1) {
      --hi;
      emit(level, hi);
      ++pieces;
    }
    lo >>= 1;
    hi >>= 1;
    ++level;
  }
  return pieces;
}

}  // namespace oblivious
