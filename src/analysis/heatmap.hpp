// ASCII load heatmaps for 2D meshes.
//
// Renders a character per node whose intensity is the maximum load on its
// incident edges, so hot spots (the diagonal of e-cube on transpose, the
// trapped edge of Pi_A) are visible at a glance in the examples and CLI.
#pragma once

#include <string>

#include "analysis/congestion.hpp"

namespace oblivious {

// 2D meshes only; `width` bounds the rendered grid (larger meshes are
// downsampled by taking the max over each cell of nodes).
// \pre loads.mesh().dim() == 2 and width >= 1.
std::string render_load_heatmap(const EdgeLoadMap& loads, int width = 64);

}  // namespace oblivious
