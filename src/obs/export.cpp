#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace oblivious::obs {

namespace {

// --- JSON writing -----------------------------------------------------------

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Integer-valued doubles print exactly as integers; everything else with
  // 17 significant digits, which round-trips IEEE doubles exactly.
  if (v == std::floor(v) && std::fabs(v) <= 9.007199254740992e15) {
    os << static_cast<std::int64_t>(v);
    return;
  }
  std::ostringstream tmp;
  tmp << std::setprecision(17) << v;
  os << tmp.str();
}

struct JsonWriter {
  std::ostream& os;
  int indent_width;
  int depth = 0;

  void newline() {
    if (indent_width <= 0) return;
    os << '\n';
    for (int i = 0; i < depth * indent_width; ++i) os << ' ';
  }
};

template <typename Map, typename Fn>
void write_object(JsonWriter& w, const Map& map, const Fn& write_value) {
  w.os << '{';
  ++w.depth;
  bool first = true;
  for (const auto& [key, value] : map) {
    if (!first) w.os << ',';
    first = false;
    w.newline();
    write_escaped(w.os, key);
    w.os << (w.indent_width > 0 ? ": " : ":");
    write_value(value);
  }
  --w.depth;
  if (!first) w.newline();
  w.os << '}';
}

void write_stat(JsonWriter& w, const StatSnapshot& s) {
  w.os << "{\"count\": " << s.count << ", \"mean\": ";
  write_double(w.os, s.mean);
  w.os << ", \"stddev\": ";
  write_double(w.os, s.stddev);
  w.os << ", \"min\": ";
  write_double(w.os, s.min);
  w.os << ", \"max\": ";
  write_double(w.os, s.max);
  w.os << ", \"total\": ";
  write_double(w.os, s.total);
  w.os << '}';
}

void write_histogram(JsonWriter& w, const HistogramSnapshot& h) {
  w.os << "{\"count\": " << h.count << ", \"sum\": ";
  write_double(w.os, h.sum);
  w.os << ", \"mean\": ";
  write_double(w.os, h.mean());
  w.os << ", \"p50\": ";
  write_double(w.os, h.quantile(0.50));
  w.os << ", \"p90\": ";
  write_double(w.os, h.quantile(0.90));
  w.os << ", \"p99\": ";
  write_double(w.os, h.quantile(0.99));
  w.os << ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) w.os << ", ";
    first = false;
    w.os << "{\"i\": " << i << ", \"le\": ";
    write_double(w.os, Histogram::bucket_upper_bound(static_cast<int>(i)));
    w.os << ", \"n\": " << h.buckets[i] << '}';
  }
  w.os << "]}";
}

void write_metrics(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.os << '{';
  ++w.depth;
  w.newline();
  w.os << "\"counters\": ";
  write_object(w, snapshot.counters,
               [&](std::uint64_t v) { w.os << v; });
  w.os << ',';
  w.newline();
  w.os << "\"gauges\": ";
  write_object(w, snapshot.gauges, [&](double v) { write_double(w.os, v); });
  w.os << ',';
  w.newline();
  w.os << "\"timers\": ";
  write_object(w, snapshot.stats,
               [&](const StatSnapshot& s) { write_stat(w, s); });
  w.os << ',';
  w.newline();
  w.os << "\"histograms\": ";
  write_object(w, snapshot.histograms,
               [&](const HistogramSnapshot& h) { write_histogram(w, h); });
  --w.depth;
  w.newline();
  w.os << '}';
}

// --- Minimal JSON parsing ---------------------------------------------------
//
// A small recursive-descent parser for the subset emitted above (objects,
// arrays, numbers, strings, true/false/null). Kept private to this file;
// only metrics_from_json is exposed.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_keyword(c == 't');
    if (c == 'n') {
      parse_literal("null");
      return JsonValue{};
    }
    return parse_number();
  }

  void parse_literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue parse_keyword(bool value) {
    parse_literal(value ? "true" : "false");
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = value;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const int code =
                std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            // Only the control characters our writer emits.
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(parse_value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double as_number(const JsonValue* v) {
  if (v == nullptr || v->type != JsonValue::Type::kNumber) return 0.0;
  return v->number;
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snapshot, int indent) {
  std::ostringstream os;
  JsonWriter w{os, indent};
  write_metrics(w, snapshot);
  return os.str();
}

std::string metrics_envelope_json(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"oblv-metrics-v1\"";
  for (const auto& [key, value] : labels) {
    os << ",\n  ";
    write_escaped(os, key);
    os << ": ";
    write_escaped(os, value);
  }
  os << ",\n  \"metrics\": ";
  JsonWriter w{os, 2};
  w.depth = 1;
  write_metrics(w, snapshot);
  os << "\n}\n";
  return os.str();
}

MetricsSnapshot metrics_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.type != JsonValue::Type::kObject) {
    throw std::invalid_argument("metrics JSON must be an object");
  }
  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr) metrics = &root;  // bare metrics object
  if (metrics->type != JsonValue::Type::kObject) {
    throw std::invalid_argument("\"metrics\" must be an object");
  }

  MetricsSnapshot out;
  if (const JsonValue* counters = metrics->find("counters")) {
    for (const auto& [name, v] : counters->object) {
      out.counters[name] = static_cast<std::uint64_t>(as_number(&v));
    }
  }
  if (const JsonValue* gauges = metrics->find("gauges")) {
    for (const auto& [name, v] : gauges->object) {
      out.gauges[name] = as_number(&v);
    }
  }
  if (const JsonValue* timers = metrics->find("timers")) {
    for (const auto& [name, v] : timers->object) {
      StatSnapshot s;
      s.count = static_cast<std::uint64_t>(as_number(v.find("count")));
      s.mean = as_number(v.find("mean"));
      s.stddev = as_number(v.find("stddev"));
      s.min = as_number(v.find("min"));
      s.max = as_number(v.find("max"));
      s.total = as_number(v.find("total"));
      out.stats[name] = s;
    }
  }
  if (const JsonValue* histograms = metrics->find("histograms")) {
    for (const auto& [name, v] : histograms->object) {
      HistogramSnapshot h;
      h.buckets.assign(static_cast<std::size_t>(Histogram::kNumBuckets), 0);
      h.count = static_cast<std::uint64_t>(as_number(v.find("count")));
      h.sum = as_number(v.find("sum"));
      if (const JsonValue* buckets = v.find("buckets")) {
        for (const JsonValue& b : buckets->array) {
          const auto i = static_cast<std::size_t>(as_number(b.find("i")));
          if (i < h.buckets.size()) {
            h.buckets[i] = static_cast<std::uint64_t>(as_number(b.find("n")));
          }
        }
      }
      out.histograms[name] = h;
    }
  }
  return out;
}

std::string render_metrics_table(const MetricsSnapshot& snapshot) {
  Table table({"kind", "name", "count", "value/mean", "p50", "p99", "max"});
  for (const auto& [name, v] : snapshot.counters) {
    table.row().add("counter").add(name).add(v).add("-").add("-").add("-").add(
        "-");
  }
  for (const auto& [name, v] : snapshot.gauges) {
    table.row().add("gauge").add(name).add("-").add(v, 4).add("-").add("-").add(
        "-");
  }
  for (const auto& [name, s] : snapshot.stats) {
    table.row()
        .add("timer")
        .add(name)
        .add(s.count)
        .add(s.mean, 6)
        .add("-")
        .add("-")
        .add(s.max, 6);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    table.row()
        .add("histogram")
        .add(name)
        .add(h.count)
        .add(h.mean(), 3)
        .add(h.quantile(0.50), 3)
        .add(h.quantile(0.99), 3)
        .add(h.quantile(1.0), 3);
  }
  return table.to_string();
}

void write_metrics_json_file(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << metrics_envelope_json(labels, snapshot);
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace oblivious::obs
