// Lightweight observability layer: counters, gauges, scoped timers and
// log-bucketed histograms registered in a process-wide MetricsRegistry.
//
// Design goals, in order:
//  1. The instrumented hot paths (route + account, millions of packets per
//     second) must stay contention-free: every metric cell lives in a
//     *thread-local shard*, so an increment is one relaxed atomic add on a
//     cacheline no other thread writes -- the same sharding idiom as the
//     parallel route path's per-chunk EdgeLoadMap accumulators. Shards are
//     merged by name only when a snapshot is taken.
//  2. Instrumentation must be cheap to disable. `metrics_enabled()` is a
//     single relaxed atomic load (branch predicted away in loops), and when
//     the library is configured with -DOBLV_METRICS=OFF it becomes
//     `constexpr false`, so every gated block is dead-stripped -- truly
//     compiled out. bench_p5_obs_overhead measures both gaps.
//  3. Handles are stable: counter()/gauge()/histogram() return references
//     that survive reset() and snapshot(), so call sites cache them in
//     static thread_local pointers (see the OBLV_* macros below) and pay
//     the name lookup once per thread.
//
// Snapshot values are merged across shards: counters sum, histograms sum
// per bucket, timer stats merge via RunningStats::merge, and gauges keep
// the most recently set value (a global sequence number breaks ties
// between shards).
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace oblivious::obs {

#if defined(OBLV_METRICS_ENABLED) && OBLV_METRICS_ENABLED
// Runtime kill switch (default on). Flipping it off reduces every gated
// instrumentation block to one predicted branch.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);
#else
constexpr bool metrics_enabled() { return false; }
inline void set_metrics_enabled(bool) {}
#endif

// Monotonic event count. add() is a relaxed atomic on a thread-local cell.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written value (e.g. "max edge load of the most recent run"). The
// global sequence number lets a snapshot pick the newest write across
// shards.
class Gauge {
 public:
  void set(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  std::uint64_t sequence() const { return seq_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> seq_{0};
};

// Log-bucketed histogram over positive doubles: 4 sub-buckets per octave
// (power of two), covering ~1e-6 .. 8e12. Values outside clamp to the end
// buckets. 256 buckets of relaxed atomics per shard.
class Histogram {
 public:
  static constexpr int kMinExp = -20;   // smallest octave: [2^-21, 2^-20)
  static constexpr int kNumOctaves = 64;
  static constexpr int kSubBuckets = 4;
  static constexpr int kNumBuckets = kNumOctaves * kSubBuckets;

  // Index of the bucket containing v (v <= 0 maps to bucket 0).
  static int bucket_index(double v);
  // Exclusive upper bound of a bucket.
  static double bucket_upper_bound(int index);

  void add(double v, std::uint64_t weight = 1);
  // Bulk-merges a hot-loop-local IntHistogram (value i with its count).
  void merge_int_histogram(const IntHistogram& h);

  std::uint64_t bucket_count(int index) const {
    return buckets_[static_cast<std::size_t>(index)].load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<double> sum_{0.0};
};

// --- Snapshot types ---------------------------------------------------------

struct StatSnapshot {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double total = 0.0;  // mean * count

  static StatSnapshot from(const RunningStats& s);
};

struct HistogramSnapshot {
  // Dense bucket counts, size Histogram::kNumBuckets.
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const;
  // Upper bound of the bucket where the cumulative mass crosses q.
  // \pre q is in [0, 1].
  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, StatSnapshot> stats;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && stats.empty() &&
           histograms.empty();
  }
};

// --- Registry ---------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Invalidates the per-thread shard caches (a later registry could be
  // allocated at this address, and the caches key on it).
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every macro and instrumentation site uses.
  static MetricsRegistry& global();

  // Return this thread's cell for `name`, creating shard and cell on first
  // use. References stay valid for the registry's lifetime (reset() zeroes
  // cells in place).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Timer-stat ingestion (RunningStats per name, merged across shards).
  void record_stat(const std::string& name, double value);
  void merge_stat(const std::string& name, const RunningStats& stats);

  // Merges every shard by name into one consistent view.
  MetricsSnapshot snapshot() const OBLV_EXCLUDES(shards_mu_);
  // Zeroes every cell in every shard; handles remain valid.
  void reset() OBLV_EXCLUDES(shards_mu_);

 private:
  struct Shard {
    mutable oblv::Mutex mu;  // guards the maps and `stats`
    std::map<std::string, std::unique_ptr<Counter>> counters
        OBLV_GUARDED_BY(mu);
    std::map<std::string, std::unique_ptr<Gauge>> gauges OBLV_GUARDED_BY(mu);
    std::map<std::string, std::unique_ptr<Histogram>> histograms
        OBLV_GUARDED_BY(mu);
    std::map<std::string, RunningStats> stats OBLV_GUARDED_BY(mu);
  };

  Shard& local_shard() OBLV_EXCLUDES(shards_mu_);

  // Lock order: shards_mu_ before any Shard::mu (snapshot/reset walk the
  // shard list shared, then lock each shard in turn). The reverse never
  // happens: a hot-path cell lookup locks only its own shard. See
  // DESIGN.md section 13 for why the order cannot be expressed as an
  // OBLV_ACQUIRED_BEFORE attribute here (Shard::mu cannot name the
  // enclosing registry's member).
  mutable oblv::SharedMutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_ OBLV_GUARDED_BY(shards_mu_);
};

// Wall-clock timer that records its lifetime (seconds) as a timer stat in
// the global registry. `stop()` records early and returns the elapsed
// seconds; the destructor records unless stop() already did.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name)
      : name_(name), active_(metrics_enabled()) {}
  ~ScopedTimer() {
    if (active_) record();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double stop() {
    const double s = timer_.elapsed_seconds();
    if (active_) {
      record();
      active_ = false;
    }
    return s;
  }

 private:
  void record();

  const char* name_;
  bool active_;
  WallTimer timer_;
};

}  // namespace oblivious::obs

// --- Instrumentation macros -------------------------------------------------
//
// Each macro caches the metric handle in a static thread_local pointer, so
// the steady-state cost is one predicted branch plus one relaxed atomic op.
// With OBLV_METRICS=OFF, metrics_enabled() is constexpr false and the whole
// block is dead-stripped.

#define OBLV_OBS_CONCAT_INNER(a, b) a##b
#define OBLV_OBS_CONCAT(a, b) OBLV_OBS_CONCAT_INNER(a, b)

#define OBLV_COUNTER_ADD(name, n)                                         \
  do {                                                                    \
    if (::oblivious::obs::metrics_enabled()) {                            \
      static thread_local ::oblivious::obs::Counter* oblv_obs_cell =      \
          &::oblivious::obs::MetricsRegistry::global().counter(name);     \
      oblv_obs_cell->add(static_cast<std::uint64_t>(n));                  \
    }                                                                     \
  } while (0)

#define OBLV_GAUGE_SET(name, v)                                           \
  do {                                                                    \
    if (::oblivious::obs::metrics_enabled()) {                            \
      static thread_local ::oblivious::obs::Gauge* oblv_obs_cell =        \
          &::oblivious::obs::MetricsRegistry::global().gauge(name);       \
      oblv_obs_cell->set(static_cast<double>(v));                         \
    }                                                                     \
  } while (0)

#define OBLV_HISTOGRAM_ADD(name, v)                                      \
  do {                                                                   \
    if (::oblivious::obs::metrics_enabled()) {                           \
      static thread_local ::oblivious::obs::Histogram* oblv_obs_cell =   \
          &::oblivious::obs::MetricsRegistry::global().histogram(name);  \
      oblv_obs_cell->add(static_cast<double>(v));                        \
    }                                                                    \
  } while (0)

// Folds a loop-local IntHistogram into a shared histogram in one call.
#define OBLV_HISTOGRAM_MERGE(name, int_histogram)                        \
  do {                                                                   \
    if (::oblivious::obs::metrics_enabled()) {                           \
      static thread_local ::oblivious::obs::Histogram* oblv_obs_cell =   \
          &::oblivious::obs::MetricsRegistry::global().histogram(name);  \
      oblv_obs_cell->merge_int_histogram(int_histogram);                 \
    }                                                                    \
  } while (0)

#define OBLV_STAT_RECORD(name, value)                                       \
  do {                                                                      \
    if (::oblivious::obs::metrics_enabled()) {                              \
      ::oblivious::obs::MetricsRegistry::global().record_stat(name, value); \
    }                                                                       \
  } while (0)

#define OBLV_STAT_MERGE(name, running_stats)                               \
  do {                                                                     \
    if (::oblivious::obs::metrics_enabled()) {                             \
      ::oblivious::obs::MetricsRegistry::global().merge_stat(              \
          name, running_stats);                                            \
    }                                                                      \
  } while (0)

// Times the enclosing scope and records it as a timer stat. Expands to
// nothing when metrics are compiled out (skips even the clock read).
#if defined(OBLV_METRICS_ENABLED) && OBLV_METRICS_ENABLED
#define OBLV_SCOPED_TIMER(name) \
  ::oblivious::obs::ScopedTimer OBLV_OBS_CONCAT(oblv_obs_timer_, __LINE__)(name)
#else
#define OBLV_SCOPED_TIMER(name) ((void)0)
#endif
