#include "obs/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace oblivious::obs {

namespace {

#if defined(OBLV_METRICS_ENABLED) && OBLV_METRICS_ENABLED
std::atomic<bool> g_enabled{true};
#endif

// Global write sequence for gauges: snapshot keeps the newest write when
// the same gauge name was set from several shards.
std::atomic<std::uint64_t> g_gauge_seq{0};

// Bumped by every registry destructor. The thread-local shard caches key
// on the registry address, and a later registry can reuse a destroyed
// one's address, so a generation mismatch discards the whole cache.
std::atomic<std::uint64_t> g_registry_generation{0};

}  // namespace

#if defined(OBLV_METRICS_ENABLED) && OBLV_METRICS_ENABLED
bool metrics_enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}
#endif

// --- Gauge ------------------------------------------------------------------

void Gauge::set(double v) {
  seq_.store(g_gauge_seq.fetch_add(1, std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  value_.store(v, std::memory_order_relaxed);
}

void Gauge::reset() {
  value_.store(0.0, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_relaxed);
}

// --- Histogram --------------------------------------------------------------

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  int sub = static_cast<int>((m - 0.5) * 8.0);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  const int idx = (e - kMinExp) * kSubBuckets + sub;
  return std::clamp(idx, 0, kNumBuckets - 1);
}

double Histogram::bucket_upper_bound(int index) {
  OBLV_REQUIRE(index >= 0 && index < kNumBuckets, "bucket index out of range");
  const int e = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(0.5 + static_cast<double>(sub + 1) / 8.0, e);
}

void Histogram::add(double v, std::uint64_t weight) {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      weight, std::memory_order_relaxed);
  sum_.fetch_add(v * static_cast<double>(weight), std::memory_order_relaxed);
}

void Histogram::merge_int_histogram(const IntHistogram& h) {
  for (std::size_t i = 0; i < h.num_bins(); ++i) {
    const std::uint64_t c = h.count(static_cast<std::int64_t>(i));
    if (c > 0) add(static_cast<double>(i), c);
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- Snapshot types ---------------------------------------------------------

StatSnapshot StatSnapshot::from(const RunningStats& s) {
  StatSnapshot out;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.max = s.max();
  out.total = s.mean() * static_cast<double>(s.count());
  return out;
}

double HistogramSnapshot::mean() const {
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double HistogramSnapshot::quantile(double q) const {
  OBLV_REQUIRE(q >= 0.0 && q <= 1.0, "quantile in [0,1]");
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += static_cast<double>(buckets[i]);
    if (cum >= target && buckets[i] > 0) {
      return Histogram::bucket_upper_bound(static_cast<int>(i));
    }
  }
  for (std::size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] > 0) return Histogram::bucket_upper_bound(static_cast<int>(i));
  }
  return 0.0;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: exporters registered with atexit (bench_common)
  // snapshot the global registry after static destruction has begun, so it
  // must outlive every ordinary static. Still reachable, so LSan is quiet.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::~MetricsRegistry() {
  g_registry_generation.fetch_add(1, std::memory_order_release);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // One cached shard pointer per (thread, registry). A thread touches at
  // most a handful of registries (global + test-local), so linear scan.
  struct TlsEntry {
    const MetricsRegistry* registry;
    Shard* shard;
  };
  static thread_local std::vector<TlsEntry> tls;
  static thread_local std::uint64_t tls_generation = 0;
  const std::uint64_t generation =
      g_registry_generation.load(std::memory_order_acquire);
  if (tls_generation != generation) {
    // Some registry died since the cache was built; every cached pointer
    // is suspect. Dropping them only costs a re-registration (the thread
    // gets a fresh shard, and snapshots merge shards by name anyway).
    tls.clear();
    tls_generation = generation;
  }
  for (const TlsEntry& e : tls) {
    if (e.registry == this) return *e.shard;
  }
  oblv::WriterMutexLock lock(shards_mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  tls.push_back({this, shard});
  return *shard;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Shard& shard = local_shard();
  oblv::MutexLock lock(shard.mu);
  auto& cell = shard.counters[name];
  if (cell == nullptr) cell = std::make_unique<Counter>();
  return *cell;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Shard& shard = local_shard();
  oblv::MutexLock lock(shard.mu);
  auto& cell = shard.gauges[name];
  if (cell == nullptr) cell = std::make_unique<Gauge>();
  return *cell;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Shard& shard = local_shard();
  oblv::MutexLock lock(shard.mu);
  auto& cell = shard.histograms[name];
  if (cell == nullptr) cell = std::make_unique<Histogram>();
  return *cell;
}

void MetricsRegistry::record_stat(const std::string& name, double value) {
  Shard& shard = local_shard();
  oblv::MutexLock lock(shard.mu);
  shard.stats[name].add(value);
}

void MetricsRegistry::merge_stat(const std::string& name,
                                 const RunningStats& stats) {
  Shard& shard = local_shard();
  oblv::MutexLock lock(shard.mu);
  shard.stats[name].merge(stats);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::map<std::string, std::uint64_t> gauge_seq;
  std::map<std::string, RunningStats> merged_stats;
  // Shared hold: snapshot never grows the shard list, so concurrent
  // snapshots (exporter + introspection endpoint) do not serialize on
  // the registry lock -- only writers (local_shard registration) do.
  oblv::ReaderMutexLock shards_lock(shards_mu_);
  for (const auto& shard : shards_) {
    oblv::MutexLock lock(shard->mu);
    for (const auto& [name, cell] : shard->counters) {
      out.counters[name] += cell->value();
    }
    for (const auto& [name, cell] : shard->gauges) {
      const std::uint64_t seq = cell->sequence();
      if (seq == 0) continue;  // never set (or reset) in this shard
      auto it = gauge_seq.find(name);
      if (it == gauge_seq.end() || seq > it->second) {
        gauge_seq[name] = seq;
        out.gauges[name] = cell->value();
      }
    }
    for (const auto& [name, cell] : shard->histograms) {
      HistogramSnapshot& h = out.histograms[name];
      if (h.buckets.empty()) {
        h.buckets.assign(static_cast<std::size_t>(Histogram::kNumBuckets), 0);
      }
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        const std::uint64_t c = cell->bucket_count(i);
        h.buckets[static_cast<std::size_t>(i)] += c;
        h.count += c;
      }
      h.sum += cell->sum();
    }
    for (const auto& [name, stats] : shard->stats) {
      merged_stats[name].merge(stats);
    }
  }
  for (const auto& [name, stats] : merged_stats) {
    out.stats[name] = StatSnapshot::from(stats);
  }
  return out;
}

void MetricsRegistry::reset() {
  // Shared hold on the shard *list*; the cells being zeroed are guarded
  // by each shard's own mu (taken below) or are atomics.
  oblv::ReaderMutexLock shards_lock(shards_mu_);
  for (const auto& shard : shards_) {
    oblv::MutexLock lock(shard->mu);
    for (const auto& entry : shard->counters) entry.second->reset();
    for (const auto& entry : shard->gauges) entry.second->reset();
    for (const auto& entry : shard->histograms) entry.second->reset();
    for (auto& entry : shard->stats) entry.second = RunningStats{};
  }
}

// --- ScopedTimer ------------------------------------------------------------

void ScopedTimer::record() {
  MetricsRegistry::global().record_stat(name_, timer_.elapsed_seconds());
}

}  // namespace oblivious::obs
