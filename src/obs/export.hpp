// Exporters for MetricsSnapshot: a machine-readable JSON schema (shared by
// `oblv_route --metrics-json`, the bench harnesses' OBLV_METRICS_JSON
// output and the CI perf-smoke gate) and a human-readable table.
//
// Schema (documented in DESIGN.md, "Metrics schema"):
//
//   {
//     "schema": "oblv-metrics-v1",
//     "<label>": "<value>", ...            // e.g. "bench": "bench_p4_pipeline"
//     "metrics": {
//       "counters":   {"name": 123, ...},
//       "gauges":     {"name": 4.5, ...},
//       "timers":     {"name": {"count":..,"mean":..,"stddev":..,
//                               "min":..,"max":..,"total":..}, ...},
//       "histograms": {"name": {"count":..,"sum":..,"mean":..,
//                               "p50":..,"p90":..,"p99":..,
//                               "buckets":[{"i":..,"le":..,"n":..}, ...]}, ...}
//     }
//   }
//
// metrics_from_json accepts either the envelope or the bare "metrics"
// object, ignores derived fields (mean, p50, ...) and reconstructs the
// snapshot exactly (doubles are printed with 17 significant digits).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace oblivious::obs {

// The bare "metrics" object.
std::string metrics_to_json(const MetricsSnapshot& snapshot, int indent = 2);

// Full envelope with "schema" plus caller labels in order.
std::string metrics_envelope_json(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const MetricsSnapshot& snapshot);

// Inverse of the writers: parses an envelope or bare metrics object.
// Throws std::invalid_argument on malformed input.
MetricsSnapshot metrics_from_json(const std::string& json);

// Aligned human-readable summary (one row per metric).
std::string render_metrics_table(const MetricsSnapshot& snapshot);

// Writes the envelope to `path`; throws std::runtime_error on I/O failure.
void write_metrics_json_file(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const MetricsSnapshot& snapshot);

}  // namespace oblivious::obs
