// Public facade of the library.
//
// Typical use:
//
//   using namespace oblivious;
//   ObliviousMeshRouting system(Mesh::cube(2, 64), Algorithm::kHierarchical2d);
//   RoutingProblem problem = transpose(system.mesh());
//   RoutingRun run = system.route(problem, /*seed=*/7);
//   // run.paths       : one path per packet, selected obliviously
//   // run.metrics     : congestion, dilation, stretch, lower bound, bits
//   SimulationResult sim = system.deliver(run.paths);
//   // sim.makespan    : steps to deliver every packet, vs max(C, D)
//
// Everything the facade does is also available through the individual
// modules (mesh/, decomposition/, routing/, workloads/, analysis/,
// simulator/) for finer control.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/evaluate.hpp"
#include "mesh/mesh.hpp"
#include "routing/registry.hpp"
#include "simulator/simulator.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

struct RoutingRun {
  std::vector<Path> paths;
  RouteSetMetrics metrics;
};

struct SegmentRoutingRun {
  std::vector<SegmentPath> paths;
  RouteSetMetrics metrics;
};

class ObliviousMeshRouting {
 public:
  ObliviousMeshRouting(Mesh mesh, Algorithm algorithm);

  const Mesh& mesh() const { return mesh_; }
  const Router& router() const { return *router_; }
  Algorithm algorithm() const { return algorithm_; }

  // Selects a path for a single packet.
  Path route_one(NodeId s, NodeId t, std::uint64_t seed) const;

  // Routes a whole problem obliviously and measures path quality.
  RoutingRun route(const RoutingProblem& problem,
                   std::uint64_t seed = 1) const;

  // Segment-pipeline routing: packets are routed in parallel on `pool`
  // (deterministically -- per-packet rng streams depend only on seed and
  // packet index) and congestion is accounted in O(segments) per path.
  // The preferred entry point for large problems.
  SegmentRoutingRun route_segments(const RoutingProblem& problem,
                                   ThreadPool& pool,
                                   std::uint64_t seed = 1) const;

  // Delivers a path set in the synchronous one-packet-per-edge model.
  SimulationResult deliver(const std::vector<Path>& paths,
                           const SimulationOptions& options = {}) const;

  // route + deliver in one call.
  SimulationResult route_and_deliver(const RoutingProblem& problem,
                                     std::uint64_t seed = 1,
                                     const SimulationOptions& options = {}) const;

 private:
  Mesh mesh_;
  Algorithm algorithm_;
  std::unique_ptr<Router> router_;
};

}  // namespace oblivious
