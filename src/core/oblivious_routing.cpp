#include "core/oblivious_routing.hpp"

#include "util/timer.hpp"

namespace oblivious {

ObliviousMeshRouting::ObliviousMeshRouting(Mesh mesh, Algorithm algorithm)
    : mesh_(std::move(mesh)),
      algorithm_(algorithm),
      router_(make_router(algorithm, mesh_)) {}

Path ObliviousMeshRouting::route_one(NodeId s, NodeId t, std::uint64_t seed) const {
  Rng rng(seed);
  return router_->route(s, t, rng);
}

RoutingRun ObliviousMeshRouting::route(const RoutingProblem& problem,
                                       std::uint64_t seed) const {
  RoutingRun run;
  RouteAllOptions options;
  options.seed = seed;
  RunningStats bits;
  WallTimer timer;
  run.paths = route_all(mesh_, *router_, problem, options, &bits);
  const double seconds = timer.elapsed_seconds();
  run.metrics = measure_paths(mesh_, problem, run.paths,
                              best_lower_bound(mesh_, problem));
  run.metrics.algorithm = router_->name();
  run.metrics.bits_per_packet = bits;
  run.metrics.routing_seconds = seconds;
  return run;
}

SegmentRoutingRun ObliviousMeshRouting::route_segments(
    const RoutingProblem& problem, ThreadPool& pool,
    std::uint64_t seed) const {
  SegmentRoutingRun run;
  run.metrics = route_and_measure_parallel(mesh_, *router_, problem,
                                           best_lower_bound(mesh_, problem),
                                           pool, seed, &run.paths);
  return run;
}

SimulationResult ObliviousMeshRouting::deliver(
    const std::vector<Path>& paths, const SimulationOptions& options) const {
  return simulate(mesh_, paths, options);
}

SimulationResult ObliviousMeshRouting::route_and_deliver(
    const RoutingProblem& problem, std::uint64_t seed,
    const SimulationOptions& options) const {
  return deliver(route(problem, seed).paths, options);
}

}  // namespace oblivious
