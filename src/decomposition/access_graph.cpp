#include "decomposition/access_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace oblivious {

AccessGraph::AccessGraph(const Decomposition& decomposition)
    : decomp_(&decomposition) {
  const Mesh& mesh = decomp_->mesh();
  OBLV_REQUIRE(mesh.num_nodes() <= 1 << 16,
               "explicit access graph is for small meshes only");

  const int k = decomp_->leaf_level();
  by_level_.resize(static_cast<std::size_t>(k) + 1);
  for (int level = 0; level <= k; ++level) {
    decomp_->for_each_submesh(level, [&](const RegularSubmesh& sm) {
      const int idx = static_cast<int>(nodes_.size());
      nodes_.push_back(AccessGraphNode{sm, {}, {}});
      by_level_[static_cast<std::size_t>(level)].push_back(idx);
      index_.emplace(std::make_tuple(sm.level, sm.type, sm.grid_key), idx);
    });
  }

  // Edge (u_l, u_{l+1}) exists iff the submesh of u_l completely contains
  // the submesh of u_{l+1}.
  for (int level = 0; level < k; ++level) {
    for (const int pi : by_level_[static_cast<std::size_t>(level)]) {
      for (const int ci : by_level_[static_cast<std::size_t>(level) + 1]) {
        const Region& parent = nodes_[static_cast<std::size_t>(pi)].submesh.region;
        const Region& child = nodes_[static_cast<std::size_t>(ci)].submesh.region;
        if (parent.contains_region(mesh, child)) {
          nodes_[static_cast<std::size_t>(pi)].children.push_back(ci);
          nodes_[static_cast<std::size_t>(ci)].parents.push_back(pi);
        }
      }
    }
  }
}

std::vector<int> AccessGraph::nodes_at_level(int level) const {
  OBLV_REQUIRE(level >= 0 && level <= decomp_->leaf_level(), "level out of range");
  return by_level_[static_cast<std::size_t>(level)];
}

std::optional<int> AccessGraph::find(int level, int type, std::int64_t grid_key) const {
  const auto it = index_.find(std::make_tuple(level, type, grid_key));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

int AccessGraph::leaf_of(const Coord& p) const {
  const RegularSubmesh leaf = decomp_->type1_at(p, decomp_->leaf_level());
  const auto idx = find(leaf.level, leaf.type, leaf.grid_key);
  OBLV_CHECK(idx.has_value(), "leaf missing from access graph");
  return *idx;
}

bool AccessGraph::is_ancestor(int ancestor_idx, int descendant_idx) const {
  // Climb the unique type-1 parent chain from the descendant; the ancestor
  // may be of any type but all intermediate nodes must be type-1
  // (definition of a monotonic path, Section 3.2).
  int current = descendant_idx;
  while (true) {
    const AccessGraphNode& node = nodes_[static_cast<std::size_t>(current)];
    if (node.submesh.level <= 0) return false;
    if (std::find(node.parents.begin(), node.parents.end(), ancestor_idx) !=
        node.parents.end()) {
      return true;
    }
    // Continue through the type-1 parent only.
    int type1_parent = -1;
    for (const int pi : node.parents) {
      if (nodes_[static_cast<std::size_t>(pi)].submesh.type == 1) {
        type1_parent = pi;
        break;
      }
    }
    if (type1_parent < 0) return false;
    current = type1_parent;
  }
}

std::vector<int> AccessGraph::bitonic_path(const Coord& s, const Coord& t) const {
  const int k = decomp_->leaf_level();
  const RegularSubmesh bridge = decomp_->deepest_common(s, t, true);
  const auto bridge_idx = find(bridge.level, bridge.type, bridge.grid_key);
  OBLV_CHECK(bridge_idx.has_value(), "bridge missing from access graph");

  std::vector<int> path;
  // Monotonic ascent from the leaf of s.
  for (int level = k; level > bridge.level; --level) {
    const RegularSubmesh sm = decomp_->type1_at(s, level);
    const auto idx = find(sm.level, sm.type, sm.grid_key);
    OBLV_CHECK(idx.has_value(), "type-1 submesh missing from access graph");
    path.push_back(*idx);
  }
  path.push_back(*bridge_idx);
  // Monotonic descent to the leaf of t.
  for (int level = bridge.level + 1; level <= k; ++level) {
    const RegularSubmesh sm = decomp_->type1_at(t, level);
    const auto idx = find(sm.level, sm.type, sm.grid_key);
    OBLV_CHECK(idx.has_value(), "type-1 submesh missing from access graph");
    path.push_back(*idx);
  }
  return path;
}

}  // namespace oblivious
