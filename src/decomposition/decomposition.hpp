// The hierarchical mesh decomposition of Sections 3.1 and 4.1.
//
// The mesh (side 2^k per dimension) is decomposed into k+1 levels of
// *type-1* submeshes: level l partitions the mesh into cubes of side
// m_l = 2^{k-l} (level 0 is the whole mesh, level k the individual nodes).
// On top of these, each level has *shifted* families ("type-2" in the 2D
// construction, "type-j" in d dimensions): the type-1 grid translated by
// (j-1)*lambda_l per dimension, where
//
//     lambda_l = max(1, m_l / 2^shift_divisor_log2).
//
// Two configurations from the paper:
//   * Section 3 (2D): shift_divisor_log2 = 1 (lambda = m_l/2, one shifted
//     family) with the external corner pieces discarded. This is also the
//     "direct generalization" to d dimensions whose stretch degrades to
//     O(2^d) -- we keep it available as an ablation.
//   * Section 4 (general d): shift_divisor_log2 = ceil(log2(d+1)), giving
//     at least d+1 families per level (at most 2(d+1)), which is what the
//     pigeonhole argument of Lemma 4.1 needs.
//
// On the torus all shifted submeshes wrap and are full-size; on the plain
// mesh, external shifted submeshes are truncated to their intersection
// with M (and, under the Section 3 rule, pieces truncated in every
// dimension -- the corners -- are discarded, since they coincide with
// type-1 submeshes of the next level).
//
// A *regular* submesh (type-1 or shifted) is identified implicitly by
// (level, type, grid index); nothing is materialized, so queries cost O(d)
// arithmetic even on meshes with millions of nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "mesh/mesh.hpp"
#include "mesh/region.hpp"
#include "mesh/types.hpp"

namespace oblivious {

struct DecompositionConfig {
  // lambda_l = max(1, m_l >> shift_divisor_log2).
  int shift_divisor_log2 = 1;
  // Discard shifted submeshes truncated in *every* dimension (Section 3.1).
  bool discard_corners = true;

  // The 2D construction of Section 3 (valid for any d as the paper's
  // "direct generalization"; stretch grows like 2^d for d > 2).
  static DecompositionConfig section3();
  // The d-dimensional construction of Section 4.
  static DecompositionConfig section4(int dim);
};

// One regular submesh, as returned by containment queries.
struct RegularSubmesh {
  int level = 0;           // 0 = root (whole mesh), k = single nodes
  int type = 1;            // 1 = aligned family, 2.. = shifted families
  Region region;           // truncated to the mesh when not a torus
  std::int64_t grid_key = 0;  // unique among submeshes of the same (level, type)
  bool truncated = false;  // mesh only: extends past the boundary

  std::string describe() const;
};

class Decomposition {
 public:
  // \pre the mesh is square with power-of-two side length, and
  // config.shift_divisor_log2 >= 1.
  Decomposition(const Mesh& mesh, DecompositionConfig config);

  static Decomposition section3(const Mesh& mesh);
  static Decomposition section4(const Mesh& mesh);

  const Mesh& mesh() const { return *mesh_; }
  const DecompositionConfig& config() const { return config_; }

  // Number of type-1 levels is k+1 (levels 0..k); k = log2(side).
  int leaf_level() const { return k_; }
  // Side length m_l = 2^{k-l} of submeshes at level l.
  std::int64_t side_at(int level) const;
  // Height (paper's terminology) of a level: k - level.
  int height_of(int level) const { return k_ - level; }
  int level_of_height(int height) const { return k_ - height; }

  // Shift unit lambda_l for the given level.
  std::int64_t shift_lambda(int level) const;
  // Number of families at the level (1 at the root and the leaf level).
  int num_types(int level) const;

  // The type-1 submesh containing p at the level (always exists).
  RegularSubmesh type1_at(const Coord& p, int level) const;

  // The submesh of the given family containing p, or nullopt when that
  // piece is discarded (Section 3 corner rule).
  std::optional<RegularSubmesh> submesh_at(const Coord& p, int level, int type) const;

  // The submesh of the family containing both s and t, if one exists.
  std::optional<RegularSubmesh> common_submesh(const Coord& s, const Coord& t,
                                               int level, int type) const;

  // Deepest regular submesh containing both s and t, scanning all levels
  // deepest-first. With use_shifted_types == false this searches the
  // access *tree* of type-1 submeshes only (the Maggs et al. baseline);
  // with true it searches the full access graph including bridges.
  RegularSubmesh deepest_common(const Coord& s, const Coord& t,
                                bool use_shifted_types) const;

  // Enumerates every valid submesh of a family at a level.
  void for_each_submesh(int level, int type,
                        const std::function<void(const RegularSubmesh&)>& fn) const;
  // Enumerates all families at a level.
  void for_each_submesh(int level,
                        const std::function<void(const RegularSubmesh&)>& fn) const;
  std::int64_t count_submeshes(int level) const;

 private:
  // Per-dimension grid index of the family cell containing coordinate x.
  std::int64_t cell_index(std::int64_t x, std::int64_t shift, std::int64_t m) const;
  // Builds the submesh for the given per-dimension indices; nullopt when
  // discarded. `indices` uses the same convention as cell_index.
  std::optional<RegularSubmesh> make_submesh(int level, int type,
                                             const Coord& indices) const;

  const Mesh* mesh_;
  DecompositionConfig config_;
  int k_ = 0;              // log2(side)
  std::int64_t side_ = 0;  // 2^k
};

}  // namespace oblivious
