#include "decomposition/render.hpp"

#include <map>
#include <sstream>

#include "util/check.hpp"

namespace oblivious {

namespace {

char symbol_for(std::size_t index) {
  static constexpr char kSymbols[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  return kSymbols[index % (sizeof(kSymbols) - 1)];
}

}  // namespace

std::string render_family(const Decomposition& decomposition, int level, int type,
                          int dim_x, int dim_y, std::int64_t slice) {
  const Mesh& mesh = decomposition.mesh();
  OBLV_REQUIRE(dim_x != dim_y || mesh.dim() == 1, "need two distinct dimensions");
  OBLV_REQUIRE(dim_x >= 0 && dim_x < mesh.dim(), "dim_x out of range");
  OBLV_REQUIRE(mesh.dim() == 1 || (dim_y >= 0 && dim_y < mesh.dim()),
               "dim_y out of range");

  const std::int64_t side = mesh.side(0);
  std::map<std::int64_t, std::size_t> key_to_symbol;
  std::ostringstream os;
  const std::int64_t rows = mesh.dim() == 1 ? 1 : side;
  for (std::int64_t y = 0; y < rows; ++y) {
    for (std::int64_t x = 0; x < side; ++x) {
      Coord p;
      p.resize(static_cast<std::size_t>(mesh.dim()), slice);
      p[static_cast<std::size_t>(dim_x)] = x;
      if (mesh.dim() > 1) p[static_cast<std::size_t>(dim_y)] = y;
      const auto sm = decomposition.submesh_at(p, level, type);
      if (!sm.has_value()) {
        os << '.';
        continue;
      }
      const auto [it, _] = key_to_symbol.emplace(sm->grid_key, key_to_symbol.size());
      os << symbol_for(it->second);
    }
    os << '\n';
  }
  return os.str();
}

std::string render_level(const Decomposition& decomposition, int level) {
  std::ostringstream os;
  for (int type = 1; type <= decomposition.num_types(level); ++type) {
    os << "level " << level << ", type " << type
       << " (side " << decomposition.side_at(level)
       << ", shift " << (type - 1) * decomposition.shift_lambda(level) << "):\n";
    os << render_family(decomposition, level, type);
    os << '\n';
  }
  return os.str();
}

}  // namespace oblivious
