// ASCII rendering of the decomposition, reproducing the construction
// figures of the paper (Figure 1: 2D type-1/type-2 levels; Figure 2: the
// shifted type-j families of the 3-dimensional decomposition, drawn as a
// 2D slice).
#pragma once

#include <string>

#include "decomposition/decomposition.hpp"

namespace oblivious {

// Renders one family at one level as a character grid over a 2D slice of
// the mesh (dimensions dim_x, dim_y; all other coordinates fixed to
// `slice`). Every submesh gets its own letter; '.' marks nodes not covered
// by any valid submesh of the family (discarded corners).
// \pre dim_x and dim_y are distinct valid dimensions (equal only on a
// 1-dimensional mesh).
std::string render_family(const Decomposition& decomposition, int level, int type,
                          int dim_x = 0, int dim_y = 1, std::int64_t slice = 0);

// Renders all families of a level, side by side descriptions.
std::string render_level(const Decomposition& decomposition, int level);

}  // namespace oblivious
