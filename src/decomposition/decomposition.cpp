#include "decomposition/decomposition.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace oblivious {

DecompositionConfig DecompositionConfig::section3() {
  return DecompositionConfig{.shift_divisor_log2 = 1, .discard_corners = true};
}

DecompositionConfig DecompositionConfig::section4(int dim) {
  OBLV_REQUIRE(dim >= 1, "dimension must be >= 1");
  return DecompositionConfig{
      .shift_divisor_log2 = ceil_log2(static_cast<std::uint64_t>(dim) + 1),
      .discard_corners = false};
}

std::string RegularSubmesh::describe() const {
  std::ostringstream os;
  os << "level " << level << " type " << type << " " << region.describe();
  if (truncated) os << " (truncated)";
  return os.str();
}

Decomposition::Decomposition(const Mesh& mesh, DecompositionConfig config)
    : mesh_(&mesh), config_(config) {
  WallTimer build_timer;
  OBLV_REQUIRE(mesh.is_square(), "decomposition requires a square mesh");
  OBLV_REQUIRE(mesh.sides_power_of_two(),
               "decomposition requires power-of-two side lengths");
  OBLV_REQUIRE(config_.shift_divisor_log2 >= 1, "shift divisor must be >= 2");
  side_ = mesh.side(0);
  k_ = floor_log2(static_cast<std::uint64_t>(side_));
  if (obs::metrics_enabled()) {
    // Closed-form counts only (the decomposition is implicit, so the build
    // itself is O(1); enumerating truncated shifted pieces would be O(n)).
    double type1_submeshes = 0.0;
    std::int64_t bridge_families = 0;
    for (int l = 0; l <= k_; ++l) {
      const std::int64_t cells = side_ / side_at(l);  // per dimension
      double count = 1.0;
      for (int d = 0; d < mesh.dim(); ++d) count *= static_cast<double>(cells);
      type1_submeshes += count;
      bridge_families += num_types(l) - 1;
    }
    OBLV_COUNTER_ADD("decomposition.builds", 1);
    OBLV_GAUGE_SET("decomposition.levels", k_ + 1);
    OBLV_GAUGE_SET("decomposition.type1_submeshes", type1_submeshes);
    OBLV_GAUGE_SET("decomposition.bridge_families", bridge_families);
    OBLV_STAT_RECORD("decomposition.build_seconds",
                     build_timer.elapsed_seconds());
  }
}

Decomposition Decomposition::section3(const Mesh& mesh) {
  return Decomposition(mesh, DecompositionConfig::section3());
}

Decomposition Decomposition::section4(const Mesh& mesh) {
  return Decomposition(mesh, DecompositionConfig::section4(mesh.dim()));
}

std::int64_t Decomposition::side_at(int level) const {
  OBLV_REQUIRE(level >= 0 && level <= k_, "level out of range");
  return std::int64_t{1} << (k_ - level);
}

std::int64_t Decomposition::shift_lambda(int level) const {
  const std::int64_t m = side_at(level);
  return std::max<std::int64_t>(1, m >> config_.shift_divisor_log2);
}

int Decomposition::num_types(int level) const {
  if (level == 0) return 1;  // the root has no shifted copies
  const std::int64_t m = side_at(level);
  const std::int64_t families =
      std::min<std::int64_t>(std::int64_t{1} << config_.shift_divisor_log2, m);
  return static_cast<int>(families);
}

std::int64_t Decomposition::cell_index(std::int64_t x, std::int64_t shift,
                                       std::int64_t m) const {
  if (mesh_->torus()) return pos_mod(x - shift, side_) / m;
  return floor_div(x - shift, m);
}

std::optional<RegularSubmesh> Decomposition::make_submesh(int level, int type,
                                                          const Coord& indices) const {
  const std::int64_t m = side_at(level);
  const std::int64_t shift =
      static_cast<std::int64_t>(type - 1) * shift_lambda(level);
  const std::int64_t cells = side_ / m;
  const std::int64_t key_radix = cells + 2;

  Coord anchor;
  Coord extent;
  anchor.resize(indices.size());
  extent.resize(indices.size());
  std::int64_t key = 0;
  bool truncated_any = false;
  bool truncated_all = true;

  for (std::size_t d = 0; d < indices.size(); ++d) {
    const std::int64_t i = indices[d];
    key = key * key_radix + (i + 1);
    if (mesh_->torus()) {
      anchor[d] = pos_mod(shift + i * m, side_);
      extent[d] = m;
      truncated_all = false;
      continue;
    }
    const std::int64_t raw = shift + i * m;
    const std::int64_t lo = std::max<std::int64_t>(raw, 0);
    const std::int64_t hi = std::min<std::int64_t>(raw + m - 1, side_ - 1);
    if (lo > hi) return std::nullopt;  // empty intersection with the mesh
    const bool trunc = (raw < 0) || (raw + m > side_);
    truncated_any = truncated_any || trunc;
    truncated_all = truncated_all && trunc;
    anchor[d] = lo;
    extent[d] = hi - lo + 1;
  }

  // Section 3.1: corner pieces (truncated in every dimension) are
  // discarded -- they coincide with type-1 submeshes of the next level.
  if (type > 1 && config_.discard_corners && truncated_all && !mesh_->torus()) {
    return std::nullopt;
  }

  RegularSubmesh sm;
  sm.level = level;
  sm.type = type;
  sm.region = Region(std::move(anchor), std::move(extent));
  sm.grid_key = key;
  sm.truncated = !mesh_->torus() && truncated_any;
  return sm;
}

RegularSubmesh Decomposition::type1_at(const Coord& p, int level) const {
  auto sm = submesh_at(p, level, 1);
  OBLV_CHECK(sm.has_value(), "type-1 submesh must always exist");
  return *std::move(sm);
}

std::optional<RegularSubmesh> Decomposition::submesh_at(const Coord& p, int level,
                                                        int type) const {
  OBLV_REQUIRE(p.size() == static_cast<std::size_t>(mesh_->dim()),
               "coordinate dimension mismatch");
  OBLV_REQUIRE(level >= 0 && level <= k_, "level out of range");
  OBLV_REQUIRE(type >= 1 && type <= num_types(level), "type out of range");
  const std::int64_t m = side_at(level);
  const std::int64_t shift =
      static_cast<std::int64_t>(type - 1) * shift_lambda(level);
  Coord indices;
  indices.resize(p.size());
  for (std::size_t d = 0; d < p.size(); ++d) {
    OBLV_REQUIRE(p[d] >= 0 && p[d] < side_, "coordinate out of range");
    indices[d] = cell_index(p[d], shift, m);
  }
  auto sm = make_submesh(level, type, indices);
  OBLV_CHECK(!sm.has_value() || sm->region.contains(*mesh_, p),
             "containment query produced a submesh missing the point");
  return sm;
}

std::optional<RegularSubmesh> Decomposition::common_submesh(const Coord& s,
                                                            const Coord& t,
                                                            int level,
                                                            int type) const {
  const std::int64_t m = side_at(level);
  const std::int64_t shift =
      static_cast<std::int64_t>(type - 1) * shift_lambda(level);
  for (std::size_t d = 0; d < s.size(); ++d) {
    if (cell_index(s[d], shift, m) != cell_index(t[d], shift, m)) {
      return std::nullopt;
    }
  }
  return submesh_at(s, level, type);
}

RegularSubmesh Decomposition::deepest_common(const Coord& s, const Coord& t,
                                             bool use_shifted_types) const {
  for (int level = k_; level >= 0; --level) {
    const int types = use_shifted_types ? num_types(level) : 1;
    for (int type = 1; type <= types; ++type) {
      if (auto sm = common_submesh(s, t, level, type)) {
        OBLV_ENSURES(sm->region.contains(*mesh_, s) &&
                         sm->region.contains(*mesh_, t),
                     "deepest_common must return a submesh containing both "
                     "endpoints");
        return *std::move(sm);
      }
    }
  }
  OBLV_UNREACHABLE("the root submesh contains every pair");
}

void Decomposition::for_each_submesh(
    int level, int type,
    const std::function<void(const RegularSubmesh&)>& fn) const {
  OBLV_REQUIRE(level >= 0 && level <= k_, "level out of range");
  OBLV_REQUIRE(type >= 1 && type <= num_types(level), "type out of range");
  const std::int64_t m = side_at(level);
  const std::int64_t cells = side_ / m;
  const std::int64_t lo = (type == 1 || mesh_->torus()) ? 0 : -1;
  const std::int64_t hi = (type == 1 || mesh_->torus()) ? cells - 1 : cells - 1;
  // For shifted families on the mesh the index range is [-1, cells-1]
  // (the grid extended by one layer before translation, Section 3.1).
  const int dim = mesh_->dim();
  Coord indices;
  indices.resize(static_cast<std::size_t>(dim), lo);
  for (;;) {
    if (auto sm = make_submesh(level, type, indices)) fn(*sm);
    int d = dim - 1;
    while (d >= 0) {
      const std::size_t dd = static_cast<std::size_t>(d);
      if (indices[dd] < hi) {
        ++indices[dd];
        break;
      }
      indices[dd] = lo;
      --d;
    }
    if (d < 0) break;
  }
}

void Decomposition::for_each_submesh(
    int level, const std::function<void(const RegularSubmesh&)>& fn) const {
  for (int type = 1; type <= num_types(level); ++type) {
    for_each_submesh(level, type, fn);
  }
}

std::int64_t Decomposition::count_submeshes(int level) const {
  std::int64_t count = 0;
  for_each_submesh(level, [&count](const RegularSubmesh&) { ++count; });
  return count;
}

}  // namespace oblivious
