// Explicitly materialized access graph (Section 3.2).
//
// The access graph G(M) has one node per regular submesh; an edge connects
// a level-l node to a level-(l+1) node when the larger submesh completely
// contains the smaller one. It is *not* a tree: a submesh can have up to
// two parents in 2D (its type-1 parent and a shifted parent), which is
// exactly what creates the short bridge paths the paper exploits.
//
// This materialization is O(total submeshes) and is meant for small meshes
// (tests, figures); the routing algorithms use the implicit
// `Decomposition` queries instead.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "decomposition/decomposition.hpp"

namespace oblivious {

struct AccessGraphNode {
  RegularSubmesh submesh;
  std::vector<int> parents;   // node indices at level-1
  std::vector<int> children;  // node indices at level+1
};

class AccessGraph {
 public:
  // \pre the decomposed mesh has at most 2^16 nodes (explicit
  // materialization is for tests and figures only).
  explicit AccessGraph(const Decomposition& decomposition);

  const Decomposition& decomposition() const { return *decomp_; }
  const std::vector<AccessGraphNode>& nodes() const { return nodes_; }
  const AccessGraphNode& node(int idx) const {
    return nodes_.at(static_cast<std::size_t>(idx));
  }

  // \pre 0 <= level <= decomposition().leaf_level().
  std::vector<int> nodes_at_level(int level) const;

  // Index of a node by identity, or nullopt if not in the graph.
  std::optional<int> find(int level, int type, std::int64_t grid_key) const;

  // The leaf (level k, single mesh node) containing p.
  int leaf_of(const Coord& p) const;

  // True when `ancestor_idx` is reachable from `descendant_idx` following
  // a monotonic path (all intermediate submeshes type-1; Section 3.2).
  bool is_ancestor(int ancestor_idx, int descendant_idx) const;

  // The bitonic access-graph path between the leaves of s and t: the
  // type-1 chain up from s, the deepest common ancestor (the bridge),
  // and the type-1 chain down to t. Returns node indices.
  std::vector<int> bitonic_path(const Coord& s, const Coord& t) const;

 private:
  struct KeyHash {
    std::size_t operator()(const std::tuple<int, int, std::int64_t>& key) const {
      const auto& [level, type, grid] = key;
      std::size_t h = std::hash<std::int64_t>{}(grid);
      h ^= std::hash<int>{}(level) + 0x9e3779b9U + (h << 6) + (h >> 2);
      h ^= std::hash<int>{}(type) + 0x9e3779b9U + (h << 6) + (h >> 2);
      return h;
    }
  };

  const Decomposition* decomp_;
  std::vector<AccessGraphNode> nodes_;
  std::vector<std::vector<int>> by_level_;
  std::unordered_map<std::tuple<int, int, std::int64_t>, int, KeyHash> index_;
};

}  // namespace oblivious
