// Lane-parallel twin of Rng for the SoA batch engine.
//
// The batch drivers derive one private stream per packet from a counter:
// packet_rng(seed, i) seeds an independent xoshiro256++ engine from
// splitmix64(seed ^ splitmix64(i)). Because the derivation is already
// counter-based, W packets can be stepped side by side: RngLanes keeps W
// complete engine states in structure-of-arrays form and advances all of
// them with one vectorized pass. Lane k never reads another lane's state,
// so lane k of every next() call emits the EXACT word the scalar
// packet_rng(seed, indices[k]) stream would emit at the same position --
// the bit-identity the SoA engine's determinism contract rests on
// (pinned against scalar golden words in tests/rng_test.cpp).
//
// Rejection sampling (uniform_below on a non-power-of-two bound) is the
// only place lanes diverge: a rejected lane must redraw while the others
// hold still. next_lane(k) advances exactly one lane for that fix-up,
// keeping every lane on its own scalar stream.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rng/rng.hpp"
#include "util/simd.hpp"

namespace oblivious {

namespace rng_lanes_detail {

inline std::uint64_t rotl_u64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// One xoshiro256++ step per lane, all lanes in lock step. The body is the
// scalar Rng::next_u64 verbatim, applied element-wise to the SoA state;
// compiled twice below (portable + AVX2 target) and runtime-dispatched.
#define OBLV_RNG_LANES_STEP_BODY(W)                           \
  for (std::size_t k = 0; k < (W); ++k) {                     \
    out[k] = rotl_u64(s0[k] + s3[k], 23) + s0[k];             \
    const std::uint64_t t = s1[k] << 17;                      \
    s2[k] ^= s0[k];                                           \
    s3[k] ^= s1[k];                                           \
    s1[k] ^= s2[k];                                           \
    s0[k] ^= s3[k];                                           \
    s2[k] ^= t;                                               \
    s3[k] = rotl_u64(s3[k], 45);                              \
  }

template <std::size_t W>
inline void step_portable(std::uint64_t* s0, std::uint64_t* s1,
                          std::uint64_t* s2, std::uint64_t* s3,
                          std::uint64_t* out) {
  OBLV_PRAGMA_SIMD
  OBLV_RNG_LANES_STEP_BODY(W)
}

#if OBLV_SIMD_X86_DISPATCH
template <std::size_t W>
__attribute__((target("avx2"))) inline void step_avx2(std::uint64_t* s0,
                                                      std::uint64_t* s1,
                                                      std::uint64_t* s2,
                                                      std::uint64_t* s3,
                                                      std::uint64_t* out) {
  OBLV_PRAGMA_SIMD
  OBLV_RNG_LANES_STEP_BODY(W)
}
#endif

#undef OBLV_RNG_LANES_STEP_BODY

// `nops` steps with the state held in locals for the whole sweep -- one
// load and one store of the SoA state per BLOCK instead of per step.
#define OBLV_RNG_LANES_BLOCK_BODY(W)                          \
  std::uint64_t t0[(W)], t1[(W)], t2[(W)], t3[(W)];           \
  for (std::size_t k = 0; k < (W); ++k) {                     \
    t0[k] = s0[k];                                            \
    t1[k] = s1[k];                                            \
    t2[k] = s2[k];                                            \
    t3[k] = s3[k];                                            \
  }                                                           \
  for (std::size_t o = 0; o < nops; ++o) {                    \
    std::uint64_t* out = rows + o * (W);                      \
    OBLV_PRAGMA_SIMD                                          \
    for (std::size_t k = 0; k < (W); ++k) {                   \
      out[k] = rotl_u64(t0[k] + t3[k], 23) + t0[k];           \
      const std::uint64_t t = t1[k] << 17;                    \
      t2[k] ^= t0[k];                                         \
      t3[k] ^= t1[k];                                         \
      t1[k] ^= t2[k];                                         \
      t0[k] ^= t3[k];                                         \
      t2[k] ^= t;                                             \
      t3[k] = rotl_u64(t3[k], 45);                            \
    }                                                         \
  }                                                           \
  for (std::size_t k = 0; k < (W); ++k) {                     \
    s0[k] = t0[k];                                            \
    s1[k] = t1[k];                                            \
    s2[k] = t2[k];                                            \
    s3[k] = t3[k];                                            \
  }

template <std::size_t W>
inline void block_portable(std::uint64_t* s0, std::uint64_t* s1,
                           std::uint64_t* s2, std::uint64_t* s3,
                           std::uint64_t* rows, std::size_t nops) {
  OBLV_RNG_LANES_BLOCK_BODY(W)
}

#if OBLV_SIMD_X86_DISPATCH
template <std::size_t W>
__attribute__((target("avx2"))) inline void block_avx2(
    std::uint64_t* s0, std::uint64_t* s1, std::uint64_t* s2,
    std::uint64_t* s3, std::uint64_t* rows, std::size_t nops) {
  OBLV_RNG_LANES_BLOCK_BODY(W)
}
#endif

#undef OBLV_RNG_LANES_BLOCK_BODY

}  // namespace rng_lanes_detail

class RngLanes {
 public:
  // Width of the SoA state: 8 x u64 = two AVX2 registers per state word.
  static constexpr std::size_t kLanes = 8;

  // Seeds lane k with the stream of packet_rng(seed, indices[k]) for
  // k < n; n may be smaller than kLanes for a tail group (the remaining
  // lanes are seeded with indices[n-1] and stepped but never read).
  // \pre 1 <= n <= kLanes.
  void seed_packets(std::uint64_t seed, const std::uint64_t* indices,
                    std::size_t n) {
    active_ = n;
    std::uint64_t x[kLanes];
    for (std::size_t k = 0; k < kLanes; ++k) {
      x[k] = indices[k < n ? k : n - 1];
    }
    // splitmix64 expansion of the per-packet seed, as Rng::reseed --
    // restructured into row passes so every round runs across all lanes.
    OBLV_PRAGMA_SIMD
    for (std::size_t k = 0; k < kLanes; ++k) {
      x[k] = splitmix64(seed ^ splitmix64(x[k]));
    }
    for (std::size_t w = 0; w < 4; ++w) {
      OBLV_PRAGMA_SIMD
      for (std::size_t k = 0; k < kLanes; ++k) {
        x[k] += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x[k];
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        s_[w][k] = z ^ (z >> 31);
      }
    }
  }

  std::size_t active() const { return active_; }

  // Advances every lane one step; out[k] is lane k's next raw word.
  // \pre out has room for kLanes words.
  void next(std::uint64_t* out) {
#if OBLV_SIMD_X86_DISPATCH
    if (simd_avx2_enabled()) {
      rng_lanes_detail::step_avx2<kLanes>(s_[0], s_[1], s_[2], s_[3], out);
      return;
    }
#endif
    rng_lanes_detail::step_portable<kLanes>(s_[0], s_[1], s_[2], s_[3], out);
  }

  // Advances every lane `nops` steps; step o's words land at
  // rows[o * kLanes .. o * kLanes + kLanes). Bit-identical to nops calls
  // of next() -- only the state-memory traffic differs.
  // \pre rows has room for nops * kLanes words.
  void next_block(std::uint64_t* rows, std::size_t nops) {
#if OBLV_SIMD_X86_DISPATCH
    if (simd_avx2_enabled()) {
      rng_lanes_detail::block_avx2<kLanes>(s_[0], s_[1], s_[2], s_[3], rows,
                                           nops);
      return;
    }
#endif
    rng_lanes_detail::block_portable<kLanes>(s_[0], s_[1], s_[2], s_[3], rows,
                                             nops);
  }

  // Advances ONLY lane k (rejection fix-up; the other lanes hold still).
  std::uint64_t next_lane(std::size_t k) {
    using rng_lanes_detail::rotl_u64;
    const std::uint64_t result = rotl_u64(s_[0][k] + s_[3][k], 23) + s_[0][k];
    const std::uint64_t t = s_[1][k] << 17;
    s_[2][k] ^= s_[0][k];
    s_[3][k] ^= s_[1][k];
    s_[1][k] ^= s_[2][k];
    s_[0][k] ^= s_[3][k];
    s_[2][k] ^= t;
    s_[3][k] = rotl_u64(s_[3][k], 45);
    return result;
  }

 private:
  // s_[w][k]: state word w of lane k (SoA: one cache line per state word).
  alignas(64) std::uint64_t s_[4][kLanes] = {};
  std::size_t active_ = 0;
};

}  // namespace oblivious
