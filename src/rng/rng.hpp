// Deterministic random number generation with information-theoretic bit
// metering.
//
// Section 5 of the paper bounds the number of random *bits* a near-optimal
// oblivious algorithm must consume per packet, and Section 5.3 shows the
// paper's algorithm needs only O(d log(D d)) of them. To reproduce those
// experiments every random draw in the library flows through `Rng`, which
// can be attached to a `BitMeter` that charges ceil(log2(m)) bits for a
// uniform draw from m alternatives (the information content of the choice,
// matching the paper's accounting for a kappa-choice algorithm).
#pragma once

#include <cstdint>

#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/small_vec.hpp"

namespace oblivious {

// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function used
// to derive decorrelated seeds (per-packet streams, per-pair tables).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Accumulates the number of random bits charged by an attached Rng.
struct BitMeter {
  std::uint64_t bits = 0;
  std::uint64_t draws = 0;

  void reset() {
    bits = 0;
    draws = 0;
  }
};

// xoshiro256++ engine seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state; this is the
    // initialization recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Raw engine output; NOT metered (metering happens in the typed draws).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  void attach_meter(BitMeter* meter) { meter_ = meter; }
  BitMeter* meter() const { return meter_; }

  // `n` uniformly random bits, n in [0, 64]. Charges n bits.
  std::uint64_t bits(int n) {
    OBLV_REQUIRE(n >= 0 && n <= 64, "bits() takes n in [0,64]");
    if (n == 0) return 0;
    charge(n);
    return next_u64() >> (64 - n);
  }

  // Uniform in [0, bound), unbiased (rejection sampling on the top bits).
  // Charges ceil(log2(bound)) bits -- the information content of the draw;
  // a draw from a single alternative is free.
  std::uint64_t uniform_below(std::uint64_t bound) {
    OBLV_REQUIRE(bound >= 1, "uniform_below needs bound >= 1");
    if (bound == 1) return 0;
    const int nbits = ceil_log2(bound);
    charge(nbits);
    // Draw nbits-wide values until one lands below bound. Expected < 2 draws.
    for (;;) {
      const std::uint64_t v = next_u64() >> (64 - nbits);
      if (v < bound) return v;
    }
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    OBLV_REQUIRE(lo <= hi, "uniform_range needs lo <= hi");
    return lo + static_cast<std::int64_t>(
                    uniform_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  double uniform_double() {
    // 53-bit mantissa in [0,1). Metered as 53 bits.
    charge(53);
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool coin() { return bits(1) != 0; }

  // Fisher-Yates permutation of {0, ..., n-1}; charges the bits of each swap
  // index draw (~log2(n!) total).
  SmallVec<int, 8> random_permutation(int n) {
    OBLV_REQUIRE(n >= 0, "permutation size must be non-negative");
    SmallVec<int, 8> perm;
    perm.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_below(static_cast<std::uint64_t>(i) + 1));
      std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
    }
    return perm;
  }

  template <typename T>
  void shuffle(T* data, std::size_t n) {
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = uniform_below(i);
      std::swap(data[i - 1], data[j]);
    }
  }

  // Derives an independent child generator (for per-packet streams).
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  void charge(int nbits) {
    if (meter_ != nullptr) {
      meter_->bits += static_cast<std::uint64_t>(nbits);
      ++meter_->draws;
    }
  }

  std::uint64_t state_[4] = {};
  BitMeter* meter_ = nullptr;
};

}  // namespace oblivious
