// oblvd server core: admission -> fair-share queue -> batch coalescing
// -> reply, plus the graceful-drain state machine.
//
// Threading model (DESIGN.md section 11):
//
//   accept loop (run())   one thread; poll-bounded accept, spawns a
//                         connection thread per client, notices
//                         request_drain() within one poll tick
//   connection threads    read frames, run admission, wait for the
//                         batch worker to fulfil their request, write
//                         the response; a malformed frame fails only
//                         its own connection
//   batch worker          dequeues fair-share chunks and feeds each
//                         request's demands through route_batch (the
//                         zero-alloc/SoA engines), so concurrent small
//                         requests coalesce into one scheduling quantum
//   routing pool          route_batch's workers
//
// Determinism contract: the paths in a response depend only on
// (algorithm, mesh, request seed, request demands) -- they are
// bit-identical to a local route_batch call with the same seed, for
// any interleaving of clients, tenants, and batches. Timing and batch
// composition are not deterministic; path selection is.
//
// Deadlines (protocol v2, DESIGN.md section 15): a request carrying
// deadline_ms > 0 is shed the moment the daemon notices it cannot meet
// it -- at admission (the frame's transport time already consumed the
// budget, e.g. a slow-loris client), at dequeue (lazy expiry in the
// fair queue, no service credit banked), or before reply (the deadline
// passed while routing). Each site counts under its own
// daemon.deadline.shed_* metric and the client sees kExpired.
//
// Drain (SIGTERM in the oblvd binary): request_drain() flips one
// atomic. The accept loop then (1) stops accepting, (2) marks the
// queue draining so new requests are rejected with kShuttingDown,
// (3) lets the batch worker flush every admitted request, (4) joins
// the connection threads after their final responses, and run()
// returns 0. Accounting holds the exit invariant
// submitted == delivered + rejected + expired (daemon.unaccounted == 0).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/sketch/load_accountant.hpp"
#include "daemon/fair_queue.hpp"
#include "daemon/net.hpp"
#include "mesh/mesh.hpp"
#include "parallel/thread_pool.hpp"
#include "routing/router.hpp"
#include "util/thread_annotations.hpp"

namespace oblivious::daemon {

struct ServerOptions {
  Endpoint endpoint;
  std::string algorithm = "hierarchical-2d";
  // Routing pool width for route_batch (0 = hardware concurrency).
  std::size_t routing_threads = 2;
  // Packets per coalesced batch quantum.
  std::size_t max_batch_packets = 4096;
  FairQueueOptions queue;
  // Declared tenants (name, weight); others auto-register at weight
  // queue.default_weight.
  std::vector<std::pair<std::string, std::uint64_t>> tenants;
  // Mid-frame / response-write stall budget per connection.
  int io_timeout_ms = 5000;
  // Poll granularity of the accept and idle-read loops (drain latency).
  int poll_tick_ms = 50;
  // Cumulative congestion accounting of every routed path (exact per-edge
  // loads, or the space-bounded sketch for gigantic meshes). Published as
  // daemon.load.* gauges and part of the metrics endpoint.
  AccountingOptions accounting;
};

// Request-level and packet-level accounting. The daemon-wide invariant
// submitted == delivered + rejected + expired is checked at drain and
// exported as daemon.unaccounted.
struct ServerStats {
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_delivered = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_expired = 0;
  std::uint64_t packets_submitted = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_rejected = 0;
  std::uint64_t packets_expired = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t connections_accepted = 0;

  std::int64_t unaccounted_requests() const {
    return static_cast<std::int64_t>(requests_submitted) -
           static_cast<std::int64_t>(requests_delivered) -
           static_cast<std::int64_t>(requests_rejected) -
           static_cast<std::int64_t>(requests_expired);
  }
};

class Server {
 public:
  // \pre options.algorithm names a registry algorithm valid for `mesh`.
  Server(const Mesh& mesh, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, serves until a drain completes, returns 0 on a clean drain
  // (the accounting invariant is a contract violation otherwise).
  int run();

  // Starts the drain state machine. Async-signal-safe (one atomic
  // store), callable from any thread or a signal handler; run()
  // notices within one poll tick.
  void request_drain() { drain_requested_.store(true, std::memory_order_release); }

  // True once run() has bound the socket and accepts connections.
  bool serving() const { return serving_.load(std::memory_order_acquire); }
  // TCP listeners with port 0: the port actually bound (valid once
  // serving() is true).
  std::uint16_t bound_port() const { return bound_port_.load(std::memory_order_acquire); }

  ServerStats stats() const;

  // oblv-metrics-v1 envelope with daemon.* gauges folded in; also what
  // the kMetricsRequest introspection endpoint serves.
  std::string metrics_json() const;

 private:
  struct Pending;

  void connection_loop(UniqueFd fd);
  void batch_worker_loop();
  // `frame_start_ms` is when the request's frame started arriving: a
  // v2 deadline is measured from there, so transport stalls (slow-loris
  // clients, chaos faults) consume the request's own budget.
  void handle_route_request(int fd, std::vector<std::uint8_t>& payload,
                            std::vector<std::uint8_t>& out,
                            std::uint64_t frame_start_ms);
  void publish_gauges() const;

  const Mesh& mesh_;
  ServerOptions options_;
  std::unique_ptr<Router> router_;
  ThreadPool routing_pool_;
  FairShareQueue queue_;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> serving_{false};
  // Set after the batch worker flushed the backlog: connection threads
  // may exit their read loops.
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint16_t> bound_port_{0};

  std::atomic<std::uint64_t> requests_submitted_{0};
  std::atomic<std::uint64_t> requests_delivered_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> requests_expired_{0};
  std::atomic<std::uint64_t> packets_submitted_{0};
  std::atomic<std::uint64_t> packets_delivered_{0};
  std::atomic<std::uint64_t> packets_rejected_{0};
  std::atomic<std::uint64_t> packets_expired_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};

  oblv::Mutex conn_mu_;
  // Connection threads, appended by the accept loop and joined at
  // drain step 4; only run() touches the vector, but always under the
  // lock so the discipline survives future refactors.
  std::vector<std::thread> connections_ OBLV_GUARDED_BY(conn_mu_);

  // Cumulative load accounting. Written by the single batch worker,
  // snapshotted by metrics readers; both paths lock. Deterministic: the
  // worker charges requests sequentially in dequeue order.
  mutable oblv::Mutex account_mu_;
  std::unique_ptr<LoadAccountant> accountant_ OBLV_GUARDED_BY(account_mu_);
};

}  // namespace oblivious::daemon
