// Socket transport for the oblvd daemon -- the one place in the tree
// allowed to issue raw socket syscalls (lint rule D007 flags
// read/write/poll outside src/daemon/net*).
//
// Everything here is bounded: reads and writes go through poll() with a
// caller-supplied timeout, so no daemon thread can block forever on a
// stalled peer. The helpers speak the framing layer of protocol.hpp --
// read_frame/write_frame move one length-prefixed payload at a time and
// enforce kMaxFrameBytes before allocating.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oblivious::daemon {

// Owning file descriptor (closes on destruction; moveable, not copyable).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

// One end of a connection or listener. `unix_path` is set for Unix
// domain endpoints, `port` for TCP (loopback only).
struct Endpoint {
  std::string unix_path;
  std::uint16_t tcp_port = 0;

  bool is_unix() const { return !unix_path.empty(); }
};

// Outcome of a bounded I/O call.
enum class IoStatus {
  kOk,        // the full frame / requested byte count moved
  kTimeout,   // the deadline passed with the transfer incomplete
  kClosed,    // orderly peer shutdown (EOF before any byte of a frame)
  kTruncated, // EOF in the middle of a frame
  kError,     // errno-level failure (message in *error when provided)
};

// --- listeners / connections ------------------------------------------------
// All throw std::runtime_error with an errno message on setup failure.

// Binds and listens on a Unix socket, unlinking a stale path first.
UniqueFd listen_unix(const std::string& path);
// Binds and listens on loopback TCP. Port 0 picks a free port; the
// chosen port is written back through `bound_port`.
UniqueFd listen_tcp(std::uint16_t port, std::uint16_t* bound_port = nullptr);
UniqueFd listen_on(const Endpoint& endpoint, std::uint16_t* bound_port = nullptr);

UniqueFd connect_unix(const std::string& path);
UniqueFd connect_tcp(std::uint16_t port);
UniqueFd connect_to(const Endpoint& endpoint);

// Accepts one pending connection; returns an invalid fd when the wait
// times out or the listener fails (spurious wakeups are retried inside).
UniqueFd accept_connection(int listen_fd, int timeout_ms);

// True when `fd` has readable data (or EOF) within the timeout.
bool wait_readable(int fd, int timeout_ms);

// --- framed I/O -------------------------------------------------------------

// Reads one length-prefixed frame payload into `payload` (resized to the
// frame's length, capacity retained). Returns:
//   kOk        a complete frame is in `payload`
//   kClosed    the peer closed before sending the first prefix byte
//   kTruncated the peer closed mid-frame
//   kTimeout   the deadline passed mid-frame (idle waits before byte 0
//              also report kTimeout; callers poll in a loop)
//   kError     syscall failure or a length prefix above kMaxFrameBytes
//              (the message lands in *error when provided)
IoStatus read_frame(int fd, std::vector<std::uint8_t>& payload,
                    int timeout_ms, std::string* error = nullptr);

// Writes the whole buffer (typically one or more encoded frames).
IoStatus write_all(int fd, const std::uint8_t* data, std::size_t size,
                   int timeout_ms, std::string* error = nullptr);

// --- wakeup pipe ------------------------------------------------------------
// Self-pipe used to interrupt poll() from signal handlers and other
// threads: write_wakeup is async-signal-safe.

struct WakeupPipe {
  UniqueFd read_end;
  UniqueFd write_end;
};

WakeupPipe make_wakeup_pipe();
void write_wakeup(int write_fd);
void drain_wakeup(int read_fd);

}  // namespace oblivious::daemon
