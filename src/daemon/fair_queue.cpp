#include "daemon/fair_queue.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/check.hpp"

namespace oblivious::daemon {

namespace {

// Milliseconds on the monotonic clock; only consulted when the caller
// passed kNowFromClock (tests pass explicit timestamps instead).
std::uint64_t resolve_now_ms(std::uint64_t now_ms) {
  if (now_ms != FairShareQueue::kNowFromClock) return now_ms;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool is_expired(const QueueItem& item, std::uint64_t now_ms) {
  return item.expires_at_ms != 0 && now_ms >= item.expires_at_ms;
}

}  // namespace

FairShareQueue::FairShareQueue(FairQueueOptions options)
    : options_(options) {
  OBLV_REQUIRE(options_.capacity_packets >= 1,
               "queue capacity must be at least one packet");
  OBLV_REQUIRE(options_.drain_rate_hint >= 1,
               "drain_rate_hint must be at least 1 packet/ms");
}

void FairShareQueue::register_tenant(const std::string& name,
                                     std::uint64_t weight) {
  OBLV_REQUIRE(weight >= 1, "tenant weight must be >= 1");
  oblv::MutexLock lock(mu_);
  Tenant& tenant = tenants_[name];
  tenant.weight = weight;
  // A tenant (re)declared while others are active starts at the current
  // virtual frontier, not at zero, so registration cannot mint credit.
  tenant.virtual_time =
      std::max(tenant.virtual_time, active_virtual_floor_locked());
  recompute_shares_locked();
}

FairShareQueue::Tenant& FairShareQueue::tenant_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant& tenant = tenants_[name];
    tenant.weight = options_.default_weight;
    tenant.virtual_time = active_virtual_floor_locked();
    recompute_shares_locked();
    return tenant;
  }
  return it->second;
}

void FairShareQueue::recompute_shares_locked() {
  std::uint64_t total_weight = 0;
  for (const auto& [name, tenant] : tenants_) total_weight += tenant.weight;
  if (total_weight == 0) return;
  for (auto& [name, tenant] : tenants_) {
    // Integer split of the global bound; every tenant keeps at least
    // one packet of headroom so a tiny weight is throttled, not starved.
    tenant.capacity = std::max<std::size_t>(
        1, options_.capacity_packets * tenant.weight / total_weight);
  }
}

std::uint64_t FairShareQueue::active_virtual_floor_locked() const {
  std::uint64_t floor = 0;
  bool any = false;
  for (const auto& [name, tenant] : tenants_) {
    if (tenant.items.empty()) continue;
    floor = any ? std::min(floor, tenant.virtual_time) : tenant.virtual_time;
    any = true;
  }
  if (any) return floor;
  // No active tenant: the frontier is the furthest any tenant has been
  // served to, so a newcomer never lags behind idle history.
  for (const auto& [name, tenant] : tenants_) {
    floor = std::max(floor, tenant.virtual_time);
  }
  return floor;
}

AdmissionResult FairShareQueue::try_enqueue(const QueueItem& item,
                                            std::uint64_t now_ms) {
  OBLV_REQUIRE(item.packets >= 1, "queue items carry at least one packet");
  oblv::MutexLock lock(mu_);
  Tenant& tenant = tenant_locked(item.tenant);
  AdmissionResult result;
  if (draining_) {
    ++tenant.rejected;
    result.admitted = false;
    result.retry_after_ms = 0;  // draining: retrying here is pointless
    result.reason = RejectReason::kDraining;
    return result;
  }
  const bool was_idle = tenant.items.empty();
  if (was_idle) {
    // An idle tenant has no standing queue by definition: reset the
    // CoDel detector so a stale overload verdict cannot outlive the
    // backlog that caused it.
    tenant.first_above_ms = 0;
    tenant.overloaded = false;
  }
  if (item.expires_at_ms != 0) {
    const std::uint64_t now = resolve_now_ms(now_ms);
    if (is_expired(item, now)) {
      // Dead on arrival: shed here rather than waste a queue slot. The
      // server counts this under daemon.deadline.shed_admission; it is
      // expiry, not backpressure, so tenant.rejected stays untouched.
      tenant.expired += item.packets;
      result.admitted = false;
      result.retry_after_ms = 0;
      result.reason = RejectReason::kDeadline;
      return result;
    }
  }
  if (options_.codel_target_ms > 0 && tenant.overloaded) {
    ++tenant.rejected;
    ++tenant.overload_rejected;
    result.admitted = false;
    // The standing queue needs roughly an interval to clear; back the
    // client off that long plus the backlog-drain estimate.
    result.retry_after_ms = static_cast<std::uint32_t>(
        options_.codel_interval_ms +
        tenant.queued / options_.drain_rate_hint);
    result.reason = RejectReason::kOverload;
    return result;
  }
  if (tenant.queued + item.packets > tenant.capacity ||
      queued_packets_ + item.packets > options_.capacity_packets) {
    ++tenant.rejected;
    result.admitted = false;
    const std::size_t backlog = std::max(tenant.queued, item.packets);
    result.retry_after_ms = static_cast<std::uint32_t>(
        1 + backlog / options_.drain_rate_hint);
    result.reason = RejectReason::kCapacity;
    return result;
  }
  if (was_idle) {
    // Returning from idle: clamp forward so sleep time is not credit.
    tenant.virtual_time =
        std::max(tenant.virtual_time, active_virtual_floor_locked());
  }
  tenant.items.push_back(item);
  tenant.queued += item.packets;
  queued_packets_ += item.packets;
  result.admitted = true;
  work_available_.notify_one();
  return result;
}

void FairShareQueue::observe_sojourn_locked(Tenant& tenant,
                                            std::uint64_t sojourn_ms,
                                            std::uint64_t now_ms) {
  if (options_.codel_target_ms == 0) return;
  if (sojourn_ms < options_.codel_target_ms) {
    // One good sojourn ends the episode (CoDel's exit condition).
    tenant.first_above_ms = 0;
    tenant.overloaded = false;
    return;
  }
  if (tenant.first_above_ms == 0) {
    tenant.first_above_ms = now_ms;
  } else if (now_ms - tenant.first_above_ms >= options_.codel_interval_ms) {
    // Sojourns above target for a full interval: a standing queue, not
    // a burst. New admissions are refused until a sojourn recovers.
    tenant.overloaded = true;
  }
}

std::vector<QueueItem> FairShareQueue::dequeue_chunk(
    std::size_t max_packets, std::vector<QueueItem>* expired,
    std::uint64_t now_ms) {
  OBLV_REQUIRE(max_packets >= 1, "dequeue_chunk needs max_packets >= 1");
  oblv::MutexLock lock(mu_);
  // Explicit predicate loop (not a wait-with-lambda): the analysis
  // treats a lambda as a separate unannotated function, so reading the
  // guarded fields inside one would defeat the GUARDED_BY checks.
  while (queued_packets_ == 0 && !draining_) work_available_.wait(mu_);
  const std::uint64_t now = resolve_now_ms(now_ms);
  std::vector<QueueItem> chunk;
  std::size_t gathered = 0;
  while (gathered < max_packets && queued_packets_ > 0) {
    // Level 1: the active tenant with the smallest virtual time; the
    // std::map order makes the tie-break deterministic (by name).
    Tenant* best = nullptr;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.items.empty()) continue;
      if (best == nullptr || tenant.virtual_time < best->virtual_time) {
        best = &tenant;
      }
    }
    if (best == nullptr) break;  // unreachable while queued_packets_ > 0
    // Lazy expiry at the front: dead work is popped into `expired`
    // with NO served/virtual-time credit and no chunk budget charge,
    // then the tenant scan restarts (the tenant may now be idle).
    if (expired != nullptr && is_expired(best->items.front(), now)) {
      QueueItem& dead = best->items.front();
      best->queued -= dead.packets;
      queued_packets_ -= dead.packets;
      best->expired += dead.packets;
      expired->push_back(std::move(dead));
      best->items.pop_front();
      continue;
    }
    // Level 2: FIFO within the tenant. Requests are never split; a
    // request larger than the remaining budget still ships when it is
    // the first of the chunk.
    const QueueItem& front = best->items.front();
    if (gathered > 0 && gathered + front.packets > max_packets) break;
    // Feed the overload detector with this item's time-in-queue.
    if (now >= front.enqueued_at_ms) {
      observe_sojourn_locked(*best, now - front.enqueued_at_ms, now);
    }
    chunk.push_back(front);
    gathered += front.packets;
    best->queued -= front.packets;
    queued_packets_ -= front.packets;
    best->served += front.packets;
    best->virtual_time +=
        front.packets * kVirtualScale / best->weight;
    best->items.pop_front();
  }
  return chunk;
}

void FairShareQueue::begin_drain() {
  oblv::MutexLock lock(mu_);
  draining_ = true;
  work_available_.notify_all();
}

bool FairShareQueue::draining() const {
  oblv::MutexLock lock(mu_);
  return draining_;
}

std::size_t FairShareQueue::queued_packets() const {
  oblv::MutexLock lock(mu_);
  return queued_packets_;
}

std::vector<TenantStats> FairShareQueue::tenant_stats() const {
  oblv::MutexLock lock(mu_);
  std::vector<TenantStats> stats;
  stats.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantStats s;
    s.name = name;
    s.weight = tenant.weight;
    s.queued_packets = tenant.queued;
    s.capacity_packets = tenant.capacity;
    s.served_packets = tenant.served;
    s.rejected_requests = tenant.rejected;
    s.expired_packets = tenant.expired;
    s.overload_rejected_requests = tenant.overload_rejected;
    s.overloaded = tenant.overloaded;
    stats.push_back(s);
  }
  return stats;
}

}  // namespace oblivious::daemon
