#include "daemon/fair_queue.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace oblivious::daemon {

FairShareQueue::FairShareQueue(FairQueueOptions options)
    : options_(options) {
  OBLV_REQUIRE(options_.capacity_packets >= 1,
               "queue capacity must be at least one packet");
  OBLV_REQUIRE(options_.drain_rate_hint >= 1,
               "drain_rate_hint must be at least 1 packet/ms");
}

void FairShareQueue::register_tenant(const std::string& name,
                                     std::uint64_t weight) {
  OBLV_REQUIRE(weight >= 1, "tenant weight must be >= 1");
  oblv::MutexLock lock(mu_);
  Tenant& tenant = tenants_[name];
  tenant.weight = weight;
  // A tenant (re)declared while others are active starts at the current
  // virtual frontier, not at zero, so registration cannot mint credit.
  tenant.virtual_time =
      std::max(tenant.virtual_time, active_virtual_floor_locked());
  recompute_shares_locked();
}

FairShareQueue::Tenant& FairShareQueue::tenant_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant& tenant = tenants_[name];
    tenant.weight = options_.default_weight;
    tenant.virtual_time = active_virtual_floor_locked();
    recompute_shares_locked();
    return tenant;
  }
  return it->second;
}

void FairShareQueue::recompute_shares_locked() {
  std::uint64_t total_weight = 0;
  for (const auto& [name, tenant] : tenants_) total_weight += tenant.weight;
  if (total_weight == 0) return;
  for (auto& [name, tenant] : tenants_) {
    // Integer split of the global bound; every tenant keeps at least
    // one packet of headroom so a tiny weight is throttled, not starved.
    tenant.capacity = std::max<std::size_t>(
        1, options_.capacity_packets * tenant.weight / total_weight);
  }
}

std::uint64_t FairShareQueue::active_virtual_floor_locked() const {
  std::uint64_t floor = 0;
  bool any = false;
  for (const auto& [name, tenant] : tenants_) {
    if (tenant.items.empty()) continue;
    floor = any ? std::min(floor, tenant.virtual_time) : tenant.virtual_time;
    any = true;
  }
  if (any) return floor;
  // No active tenant: the frontier is the furthest any tenant has been
  // served to, so a newcomer never lags behind idle history.
  for (const auto& [name, tenant] : tenants_) {
    floor = std::max(floor, tenant.virtual_time);
  }
  return floor;
}

AdmissionResult FairShareQueue::try_enqueue(const QueueItem& item) {
  OBLV_REQUIRE(item.packets >= 1, "queue items carry at least one packet");
  oblv::MutexLock lock(mu_);
  Tenant& tenant = tenant_locked(item.tenant);
  AdmissionResult result;
  if (draining_) {
    ++tenant.rejected;
    result.admitted = false;
    result.retry_after_ms = 0;  // draining: retrying here is pointless
    return result;
  }
  if (tenant.queued + item.packets > tenant.capacity ||
      queued_packets_ + item.packets > options_.capacity_packets) {
    ++tenant.rejected;
    result.admitted = false;
    const std::size_t backlog = std::max(tenant.queued, item.packets);
    result.retry_after_ms = static_cast<std::uint32_t>(
        1 + backlog / options_.drain_rate_hint);
    return result;
  }
  const bool was_idle = tenant.items.empty();
  if (was_idle) {
    // Returning from idle: clamp forward so sleep time is not credit.
    tenant.virtual_time =
        std::max(tenant.virtual_time, active_virtual_floor_locked());
  }
  tenant.items.push_back(item);
  tenant.queued += item.packets;
  queued_packets_ += item.packets;
  result.admitted = true;
  work_available_.notify_one();
  return result;
}

std::vector<QueueItem> FairShareQueue::dequeue_chunk(
    std::size_t max_packets) {
  OBLV_REQUIRE(max_packets >= 1, "dequeue_chunk needs max_packets >= 1");
  oblv::MutexLock lock(mu_);
  // Explicit predicate loop (not a wait-with-lambda): the analysis
  // treats a lambda as a separate unannotated function, so reading the
  // guarded fields inside one would defeat the GUARDED_BY checks.
  while (queued_packets_ == 0 && !draining_) work_available_.wait(mu_);
  std::vector<QueueItem> chunk;
  std::size_t gathered = 0;
  while (gathered < max_packets && queued_packets_ > 0) {
    // Level 1: the active tenant with the smallest virtual time; the
    // std::map order makes the tie-break deterministic (by name).
    Tenant* best = nullptr;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.items.empty()) continue;
      if (best == nullptr || tenant.virtual_time < best->virtual_time) {
        best = &tenant;
      }
    }
    if (best == nullptr) break;  // unreachable while queued_packets_ > 0
    // Level 2: FIFO within the tenant. Requests are never split; a
    // request larger than the remaining budget still ships when it is
    // the first of the chunk.
    const QueueItem& front = best->items.front();
    if (gathered > 0 && gathered + front.packets > max_packets) break;
    chunk.push_back(front);
    gathered += front.packets;
    best->queued -= front.packets;
    queued_packets_ -= front.packets;
    best->served += front.packets;
    best->virtual_time +=
        front.packets * kVirtualScale / best->weight;
    best->items.pop_front();
  }
  return chunk;
}

void FairShareQueue::begin_drain() {
  oblv::MutexLock lock(mu_);
  draining_ = true;
  work_available_.notify_all();
}

bool FairShareQueue::draining() const {
  oblv::MutexLock lock(mu_);
  return draining_;
}

std::size_t FairShareQueue::queued_packets() const {
  oblv::MutexLock lock(mu_);
  return queued_packets_;
}

std::vector<TenantStats> FairShareQueue::tenant_stats() const {
  oblv::MutexLock lock(mu_);
  std::vector<TenantStats> stats;
  stats.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantStats s;
    s.name = name;
    s.weight = tenant.weight;
    s.queued_packets = tenant.queued;
    s.capacity_packets = tenant.capacity;
    s.served_packets = tenant.served;
    s.rejected_requests = tenant.rejected;
    stats.push_back(s);
  }
  return stats;
}

}  // namespace oblivious::daemon
