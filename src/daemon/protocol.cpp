#include "daemon/protocol.hpp"

#include <cstring>

#include "util/check.hpp"

namespace oblivious::daemon {

namespace {

// --- byte-level writer ------------------------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_bytes(std::vector<std::uint8_t>& out, const std::string& s) {
  out.insert(out.end(), s.begin(), s.end());
}

// Reserves the length prefix, writes the header, and returns the index
// of the prefix so finish_frame can patch the real length in.
std::size_t begin_frame(std::vector<std::uint8_t>& out,
                        const FrameHeader& header) {
  const std::size_t at = out.size();
  put_u32(out, 0);  // patched by finish_frame
  put_u32(out, kMagic);
  put_u16(out, header.version);
  put_u16(out, static_cast<std::uint16_t>(header.type));
  put_u32(out, header.request_id);
  return at;
}

void finish_frame(std::vector<std::uint8_t>& out, std::size_t at) {
  const std::size_t payload = out.size() - at - 4;
  OBLV_CHECK(payload <= kMaxFrameBytes, "encoded frame exceeds kMaxFrameBytes");
  const auto v = static_cast<std::uint32_t>(payload);
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

// --- bounds-checked reader --------------------------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t offset() const { return at_; }
  std::size_t remaining() const { return size_ - at_; }

  std::uint16_t u16(const char* field) {
    need(2, field);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[at_] | (static_cast<std::uint16_t>(data_[at_ + 1]) << 8));
    at_ += 2;
    return v;
  }

  std::uint32_t u32(const char* field) {
    need(4, field);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[at_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    at_ += 4;
    return v;
  }

  std::uint64_t u64(const char* field) {
    need(8, field);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[at_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    at_ += 8;
    return v;
  }

  std::int64_t i64(const char* field) {
    return static_cast<std::int64_t>(u64(field));
  }

  std::int32_t i32(const char* field) {
    return static_cast<std::int32_t>(u32(field));
  }

  std::string bytes(std::size_t n, const char* field) {
    need(n, field);
    std::string s(reinterpret_cast<const char*>(data_ + at_), n);
    at_ += n;
    return s;
  }

  void expect_done(const char* what) {
    if (at_ != size_) {
      throw ProtocolError(std::string(what) + ": " +
                          std::to_string(size_ - at_) +
                          " trailing byte(s) after the body");
    }
  }

 private:
  void need(std::size_t n, const char* field) {
    if (size_ - at_ < n) {
      throw ProtocolError(std::string("truncated frame: field '") + field +
                          "' needs " + std::to_string(n) + " byte(s) at " +
                          "offset " + std::to_string(at_) + ", " +
                          std::to_string(size_ - at_) + " left");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

FrameHeader read_header(Reader& r) {
  if (r.remaining() < kHeaderBytes) {
    throw ProtocolError("truncated header: need " +
                        std::to_string(kHeaderBytes) + " bytes, got " +
                        std::to_string(r.remaining()));
  }
  const std::uint32_t magic = r.u32("magic");
  if (magic != kMagic) {
    throw ProtocolError("bad magic 0x" + std::to_string(magic) +
                        " (not an oblvd frame)");
  }
  FrameHeader header;
  header.version = r.u16("version");
  if (header.version < kMinProtocolVersion ||
      header.version > kProtocolVersion) {
    throw ProtocolError("unknown protocol version " +
                        std::to_string(header.version) + " (this daemon "
                        "speaks versions " +
                        std::to_string(kMinProtocolVersion) + ".." +
                        std::to_string(kProtocolVersion) + ")");
  }
  header.type = static_cast<MessageType>(r.u16("type"));
  header.request_id = r.u32("request_id");
  return header;
}

void check_type(const FrameHeader& header, MessageType want,
                const char* what) {
  if (header.type != want) {
    throw ProtocolError(std::string(what) + ": unexpected message type " +
                        std::to_string(static_cast<int>(header.type)));
  }
}

}  // namespace

// --- encoders ---------------------------------------------------------------

void encode_route_request(const RouteRequest& request,
                          std::vector<std::uint8_t>& out,
                          std::uint16_t version) {
  OBLV_REQUIRE(request.tenant.size() <= 0xffff,
               "tenant name longer than a u16 length");
  OBLV_REQUIRE(version >= kMinProtocolVersion && version <= kProtocolVersion,
               "encode_route_request: unsupported protocol version");
  OBLV_REQUIRE(version >= 2 || request.deadline_ms == 0,
               "deadline_ms requires protocol version 2");
  const std::size_t at = begin_frame(
      out,
      FrameHeader{version, MessageType::kRouteRequest, request.request_id});
  put_u64(out, request.seed);
  if (version >= 2) put_u32(out, request.deadline_ms);
  put_u16(out, static_cast<std::uint16_t>(request.tenant.size()));
  put_bytes(out, request.tenant);
  put_u32(out, static_cast<std::uint32_t>(request.demands.size()));
  for (const Demand& d : request.demands) {
    put_i64(out, d.src);
    put_i64(out, d.dst);
  }
  finish_frame(out, at);
}

void encode_route_response(const RouteResponse& response,
                           std::vector<std::uint8_t>& out,
                           std::uint16_t version) {
  OBLV_REQUIRE(response.message.size() <= 0xffff,
               "response message longer than a u16 length");
  OBLV_REQUIRE(version >= kMinProtocolVersion && version <= kProtocolVersion,
               "encode_route_response: unsupported protocol version");
  const std::size_t at = begin_frame(
      out, FrameHeader{version, MessageType::kRouteResponse,
                       response.request_id});
  put_u16(out, static_cast<std::uint16_t>(response.status));
  put_u32(out, response.retry_after_ms);
  put_u16(out, static_cast<std::uint16_t>(response.message.size()));
  put_bytes(out, response.message);
  put_u32(out, static_cast<std::uint32_t>(response.paths.size()));
  for (const SegmentPath& sp : response.paths) {
    put_i64(out, sp.source);
    put_i64(out, sp.dest);
    OBLV_CHECK(sp.segments.size() <= 0xffff,
               "segment path longer than a u16 count");
    put_u16(out, static_cast<std::uint16_t>(sp.segments.size()));
    for (const Segment& s : sp.segments) {
      put_u32(out, static_cast<std::uint32_t>(s.dim));
      put_i64(out, s.run);
    }
  }
  finish_frame(out, at);
}

void encode_metrics_request(std::uint32_t request_id,
                            std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(
      out, FrameHeader{kProtocolVersion, MessageType::kMetricsRequest,
                       request_id});
  finish_frame(out, at);
}

void encode_metrics_response(std::uint32_t request_id,
                             const std::string& json,
                             std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(
      out, FrameHeader{kProtocolVersion, MessageType::kMetricsResponse,
                       request_id});
  put_u32(out, static_cast<std::uint32_t>(json.size()));
  put_bytes(out, json);
  finish_frame(out, at);
}

void encode_ping(std::uint32_t request_id, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(
      out, FrameHeader{kProtocolVersion, MessageType::kPing, request_id});
  finish_frame(out, at);
}

void encode_pong(std::uint32_t request_id, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(
      out, FrameHeader{kProtocolVersion, MessageType::kPong, request_id});
  finish_frame(out, at);
}

// --- decoders ---------------------------------------------------------------

FrameHeader decode_header(const std::uint8_t* payload, std::size_t size) {
  Reader r(payload, size);
  return read_header(r);
}

RouteRequest decode_route_request(const std::uint8_t* payload,
                                  std::size_t size) {
  Reader r(payload, size);
  const FrameHeader header = read_header(r);
  check_type(header, MessageType::kRouteRequest, "route request");
  RouteRequest request;
  request.request_id = header.request_id;
  request.version = header.version;
  request.seed = r.u64("seed");
  // v1 bodies have no deadline field; the request simply never expires.
  if (header.version >= 2) request.deadline_ms = r.u32("deadline_ms");
  const std::uint16_t tenant_len = r.u16("tenant length");
  request.tenant = r.bytes(tenant_len, "tenant");
  const std::uint32_t count = r.u32("demand count");
  // Each demand is 16 bytes; an impossible count is caught before the
  // loop so a lying prefix cannot force a huge reservation.
  if (static_cast<std::uint64_t>(count) * 16 > r.remaining()) {
    throw ProtocolError("demand count " + std::to_string(count) +
                        " exceeds the frame body (" +
                        std::to_string(r.remaining()) + " bytes left)");
  }
  request.demands.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Demand d;
    d.src = r.i64("demand src");
    d.dst = r.i64("demand dst");
    request.demands.push_back(d);
  }
  r.expect_done("route request");
  return request;
}

RouteResponse decode_route_response(const std::uint8_t* payload,
                                    std::size_t size) {
  Reader r(payload, size);
  const FrameHeader header = read_header(r);
  check_type(header, MessageType::kRouteResponse, "route response");
  RouteResponse response;
  response.request_id = header.request_id;
  response.status = static_cast<RouteStatus>(r.u16("status"));
  response.retry_after_ms = r.u32("retry_after_ms");
  const std::uint16_t msg_len = r.u16("message length");
  response.message = r.bytes(msg_len, "message");
  const std::uint32_t count = r.u32("path count");
  // 18 bytes minimum per path (source, dest, empty segment list).
  if (static_cast<std::uint64_t>(count) * 18 > r.remaining()) {
    throw ProtocolError("path count " + std::to_string(count) +
                        " exceeds the frame body");
  }
  response.paths.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SegmentPath sp;
    sp.source = r.i64("path source");
    sp.dest = r.i64("path dest");
    const std::uint16_t nseg = r.u16("segment count");
    for (std::uint16_t s = 0; s < nseg; ++s) {
      Segment seg;
      seg.dim = r.i32("segment dim");
      seg.run = r.i64("segment run");
      sp.segments.push_back(seg);
    }
    response.paths.push_back(sp);
  }
  r.expect_done("route response");
  return response;
}

std::string decode_metrics_response(const std::uint8_t* payload,
                                    std::size_t size) {
  Reader r(payload, size);
  const FrameHeader header = read_header(r);
  check_type(header, MessageType::kMetricsResponse, "metrics response");
  const std::uint32_t len = r.u32("json length");
  std::string json = r.bytes(len, "json");
  r.expect_done("metrics response");
  return json;
}

}  // namespace oblivious::daemon
