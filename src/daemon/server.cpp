#include "daemon/server.hpp"

#include <chrono>
#include <future>

#include "daemon/protocol.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "parallel/route_batch.hpp"
#include "routing/registry.hpp"
#include "util/check.hpp"

namespace oblivious::daemon {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

// One admitted route request in flight between a connection thread and
// the batch worker. The connection thread owns the Pending and blocks
// on the future; the worker is guaranteed to fulfil every admitted
// request before the drain completes, so the raw token round-trip
// through QueueItem is safe.
struct Server::Pending {
  RouteRequest request;
  std::chrono::steady_clock::time_point admitted_at;
  std::promise<std::vector<SegmentPath>> promise;
};

Server::Server(const Mesh& mesh, ServerOptions options)
    : mesh_(mesh),
      options_(std::move(options)),
      routing_pool_(options_.routing_threads),
      queue_(options_.queue) {
  const auto algorithm = algorithm_from_name(options_.algorithm);
  OBLV_REQUIRE(algorithm.has_value(),
               "unknown algorithm '" + options_.algorithm + "'");
  router_ = make_router(*algorithm, mesh_);
  {
    oblv::MutexLock lock(account_mu_);
    accountant_ = LoadAccountant::create(mesh_, options_.accounting.mode,
                                         options_.accounting.sketch);
  }
  for (const auto& [name, weight] : options_.tenants) {
    queue_.register_tenant(name, weight);
  }
}

Server::~Server() = default;

ServerStats Server::stats() const {
  ServerStats s;
  // The unaccounted == 0 drain check runs after worker.join() plus the
  // connection-thread joins, whose synchronization already orders every
  // preceding fetch_add before these snapshot loads.
  // oblv-lint: allow(D009) drain-synchronized snapshot reads, see above.
  s.requests_submitted = requests_submitted_.load(std::memory_order_relaxed);
  s.requests_delivered = requests_delivered_.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  // oblv-lint: allow(D009) same drain-synchronized snapshot as above.
  s.packets_submitted = packets_submitted_.load(std::memory_order_relaxed);
  s.packets_delivered = packets_delivered_.load(std::memory_order_relaxed);
  s.packets_rejected = packets_rejected_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  return s;
}

void Server::publish_gauges() const {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::MetricsRegistry::global();
  const ServerStats s = stats();
  registry.gauge("daemon.requests.submitted")
      .set(static_cast<double>(s.requests_submitted));
  registry.gauge("daemon.requests.delivered")
      .set(static_cast<double>(s.requests_delivered));
  registry.gauge("daemon.requests.rejected")
      .set(static_cast<double>(s.requests_rejected));
  registry.gauge("daemon.packets.submitted")
      .set(static_cast<double>(s.packets_submitted));
  registry.gauge("daemon.packets.delivered")
      .set(static_cast<double>(s.packets_delivered));
  registry.gauge("daemon.packets.rejected")
      .set(static_cast<double>(s.packets_rejected));
  registry.gauge("daemon.protocol_errors")
      .set(static_cast<double>(s.protocol_errors));
  registry.gauge("daemon.connections")
      .set(static_cast<double>(s.connections_accepted));
  registry.gauge("daemon.unaccounted")
      .set(static_cast<double>(s.unaccounted_requests()));
  registry.gauge("daemon.queue.depth")
      .set(static_cast<double>(queue_.queued_packets()));
  {
    oblv::MutexLock lock(account_mu_);
    accountant_->record_metrics("daemon.load");
    registry.gauge("daemon.load.memory_bytes")
        .set(static_cast<double>(accountant_->memory_bytes()));
  }
  for (const TenantStats& t : queue_.tenant_stats()) {
    const std::string prefix = "daemon.tenant." + t.name;
    registry.gauge(prefix + ".weight").set(static_cast<double>(t.weight));
    registry.gauge(prefix + ".served_packets")
        .set(static_cast<double>(t.served_packets));
    registry.gauge(prefix + ".queued_packets")
        .set(static_cast<double>(t.queued_packets));
    registry.gauge(prefix + ".capacity_packets")
        .set(static_cast<double>(t.capacity_packets));
    registry.gauge(prefix + ".rejected_requests")
        .set(static_cast<double>(t.rejected_requests));
  }
}

std::string Server::metrics_json() const {
  publish_gauges();
  return obs::metrics_envelope_json(
      {{"tool", "oblvd"},
       {"mesh", mesh_.describe()},
       {"algorithm", options_.algorithm}},
      obs::MetricsRegistry::global().snapshot());
}

int Server::run() {
  UniqueFd listener = [&] {
    std::uint16_t port = 0;
    UniqueFd fd = listen_on(options_.endpoint, &port);
    bound_port_.store(port, std::memory_order_release);
    return fd;
  }();
  std::thread worker([this] { batch_worker_loop(); });
  serving_.store(true, std::memory_order_release);

  while (!drain_requested_.load(std::memory_order_acquire)) {
    UniqueFd conn = accept_connection(listener.get(), options_.poll_tick_ms);
    if (!conn.valid()) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    oblv::MutexLock lock(conn_mu_);
    connections_.emplace_back(
        [this, fd = std::move(conn)]() mutable {
          connection_loop(std::move(fd));
        });
  }

  // --- drain state machine -------------------------------------------------
  // 1. Stop accepting (listener closes when this scope ends).
  listener.reset();
  if (options_.endpoint.is_unix()) {
    ::remove(options_.endpoint.unix_path.c_str());
  }
  // 2. Reject new work; 3. the worker flushes every admitted request.
  queue_.begin_drain();
  worker.join();
  // 4. Every future is fulfilled; let the connection threads write
  // their final responses and exit their read loops.
  stopping_.store(true, std::memory_order_release);
  {
    oblv::MutexLock lock(conn_mu_);
    for (std::thread& t : connections_) t.join();
    connections_.clear();
  }
  serving_.store(false, std::memory_order_release);

  publish_gauges();
  const ServerStats s = stats();
  OBLV_CHECK(s.unaccounted_requests() == 0,
             "drain accounting: submitted != delivered + rejected");
  return 0;
}

void Server::handle_route_request(int fd, std::vector<std::uint8_t>& payload,
                                  std::vector<std::uint8_t>& out) {
  RouteRequest request = decode_route_request(payload.data(), payload.size());
  requests_submitted_.fetch_add(1, std::memory_order_relaxed);
  packets_submitted_.fetch_add(request.demands.size(),
                               std::memory_order_relaxed);
  OBLV_COUNTER_ADD("daemon.requests", 1);

  RouteResponse response;
  response.request_id = request.request_id;

  // Validation at admission, not in the worker: route_batch must never
  // throw on the batch thread (ThreadPool tasks are noexcept).
  std::string invalid;
  if (request.demands.empty()) {
    invalid = "empty demand list";
  } else {
    for (const Demand& d : request.demands) {
      if (d.src < 0 || d.src >= mesh_.num_nodes() || d.dst < 0 ||
          d.dst >= mesh_.num_nodes()) {
        invalid = "demand endpoints off the mesh (" + std::to_string(d.src) +
                  " -> " + std::to_string(d.dst) + ")";
        break;
      }
    }
  }
  if (!invalid.empty()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    packets_rejected_.fetch_add(request.demands.size(),
                                std::memory_order_relaxed);
    OBLV_COUNTER_ADD("daemon.admission.invalid", 1);
    response.status = RouteStatus::kError;
    response.message = invalid;
    encode_route_response(response, out);
    return;
  }

  Pending pending;
  pending.admitted_at = std::chrono::steady_clock::now();
  const std::size_t packets = request.demands.size();
  const std::string tenant = request.tenant;
  pending.request = std::move(request);

  QueueItem item;
  item.tenant = tenant;
  item.packets = packets;
  item.token = reinterpret_cast<std::uint64_t>(&pending);
  const AdmissionResult admission = queue_.try_enqueue(item);
  if (!admission.admitted) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    packets_rejected_.fetch_add(packets, std::memory_order_relaxed);
    OBLV_COUNTER_ADD("daemon.admission.rejected", 1);
    response.status = queue_.draining() ? RouteStatus::kShuttingDown
                                        : RouteStatus::kRejected;
    response.retry_after_ms = admission.retry_after_ms;
    response.message = queue_.draining() ? "daemon is draining"
                                         : "queue full; retry later";
    encode_route_response(response, out);
    return;
  }

  // The worker fulfils every admitted request, even during drain, so
  // this wait always completes.
  std::future<std::vector<SegmentPath>> future = pending.promise.get_future();
  try {
    response.paths = future.get();
    response.status = RouteStatus::kOk;
    requests_delivered_.fetch_add(1, std::memory_order_relaxed);
    packets_delivered_.fetch_add(packets, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    // Unreachable by construction (demands pre-validated); keep the
    // accounting identity if it ever fires.
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    packets_rejected_.fetch_add(packets, std::memory_order_relaxed);
    response.status = RouteStatus::kError;
    response.message = e.what();
  }
  encode_route_response(response, out);
  (void)fd;
}

void Server::connection_loop(UniqueFd fd) {
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> out;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) break;
    // Idle poll tick so drain is noticed; only a *readable* socket
    // enters the framed read below, which then runs under the full
    // io_timeout_ms budget (a mid-frame stall drops the connection,
    // never wedges the loop).
    if (!wait_readable(fd.get(), options_.poll_tick_ms)) continue;
    std::string io_error;
    const IoStatus status =
        read_frame(fd.get(), payload, options_.io_timeout_ms, &io_error);
    if (status == IoStatus::kClosed) break;
    if (status != IoStatus::kOk) {
      // Truncated frame, oversize prefix, mid-frame stall: this
      // connection is broken; the accept loop and every other
      // connection are unaffected.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      OBLV_COUNTER_ADD("daemon.protocol_errors", 1);
      break;
    }

    out.clear();
    try {
      const FrameHeader header =
          decode_header(payload.data(), payload.size());
      switch (header.type) {
        case MessageType::kPing:
          encode_pong(header.request_id, out);
          break;
        case MessageType::kMetricsRequest:
          encode_metrics_response(header.request_id, metrics_json(), out);
          break;
        case MessageType::kRouteRequest:
          handle_route_request(fd.get(), payload, out);
          break;
        default:
          throw ProtocolError("unsupported message type " +
                              std::to_string(static_cast<int>(header.type)));
      }
    } catch (const ProtocolError& e) {
      // Per-connection error path: best-effort error frame, then close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      OBLV_COUNTER_ADD("daemon.protocol_errors", 1);
      RouteResponse error;
      error.status = RouteStatus::kError;
      error.message = e.what();
      out.clear();
      encode_route_response(error, out);
      write_all(fd.get(), out.data(), out.size(), options_.io_timeout_ms);
      break;
    }

    if (!out.empty() &&
        write_all(fd.get(), out.data(), out.size(), options_.io_timeout_ms) !=
            IoStatus::kOk) {
      break;  // dead peer; admitted work was still routed and counted
    }
  }
}

void Server::batch_worker_loop() {
  std::vector<SegmentPath> paths;
  for (;;) {
    const std::vector<QueueItem> chunk =
        queue_.dequeue_chunk(options_.max_batch_packets);
    if (chunk.empty()) break;  // draining and flushed

    std::size_t chunk_packets = 0;
    for (const QueueItem& item : chunk) chunk_packets += item.packets;
    OBLV_HISTOGRAM_ADD("daemon.batch.packets", chunk_packets);
    OBLV_HISTOGRAM_ADD("daemon.batch.requests", chunk.size());
    OBLV_HISTOGRAM_ADD("daemon.queue.depth", queue_.queued_packets());

    // Each request keeps its own seed, so its paths are bit-identical
    // to a solo route_batch run; the chunk amortizes worker wakeups and
    // keeps the routing pool hot across coalesced small requests.
    for (const QueueItem& item : chunk) {
      auto* pending = reinterpret_cast<Pending*>(item.token);
      RouteBatchOptions options;
      options.seed = pending->request.seed;
      options.validate_demands = false;  // validated at admission
      try {
        route_batch(*router_, pending->request.demands, routing_pool_,
                    options, paths);
        {
          // The single worker charges requests in dequeue order, so even
          // sketch estimates are a deterministic function of the served
          // request sequence; the lock is only against metrics readers.
          oblv::MutexLock lock(account_mu_);
          accountant_->add_segment_paths(paths);
        }
        OBLV_HISTOGRAM_ADD("daemon.service_seconds",
                           seconds_since(pending->admitted_at));
        pending->promise.set_value(std::move(paths));
      } catch (...) {
        pending->promise.set_exception(std::current_exception());
      }
      paths = std::vector<SegmentPath>();
    }
  }
}

}  // namespace oblivious::daemon
