#include "daemon/server.hpp"

#include <chrono>
#include <future>

#include "daemon/protocol.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "parallel/route_batch.hpp"
#include "routing/registry.hpp"
#include "util/check.hpp"

namespace oblivious::daemon {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Milliseconds on the monotonic clock, comparable with QueueItem's
// enqueued_at_ms/expires_at_ms (the fair queue reads the same clock).
std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// What the batch worker hands back through a Pending's promise: either
// routed paths, or the verdict that the deadline passed first (the
// connection thread turns that into a kExpired response).
struct RouteOutcome {
  bool expired = false;
  std::vector<SegmentPath> paths;
};

}  // namespace

// One admitted route request in flight between a connection thread and
// the batch worker. The connection thread owns the Pending and blocks
// on the future; the worker is guaranteed to fulfil every admitted
// request before the drain completes, so the raw token round-trip
// through QueueItem is safe.
struct Server::Pending {
  RouteRequest request;
  std::chrono::steady_clock::time_point admitted_at;
  std::promise<RouteOutcome> promise;
};

Server::Server(const Mesh& mesh, ServerOptions options)
    : mesh_(mesh),
      options_(std::move(options)),
      routing_pool_(options_.routing_threads),
      queue_(options_.queue) {
  const auto algorithm = algorithm_from_name(options_.algorithm);
  OBLV_REQUIRE(algorithm.has_value(),
               "unknown algorithm '" + options_.algorithm + "'");
  router_ = make_router(*algorithm, mesh_);
  {
    oblv::MutexLock lock(account_mu_);
    accountant_ = LoadAccountant::create(mesh_, options_.accounting.mode,
                                         options_.accounting.sketch);
  }
  for (const auto& [name, weight] : options_.tenants) {
    queue_.register_tenant(name, weight);
  }
}

Server::~Server() = default;

ServerStats Server::stats() const {
  ServerStats s;
  // The unaccounted == 0 drain check runs after worker.join() plus the
  // connection-thread joins, whose synchronization already orders every
  // preceding fetch_add before these snapshot loads.
  // oblv-lint: allow(D009) drain-synchronized snapshot reads, see above.
  s.requests_submitted = requests_submitted_.load(std::memory_order_relaxed);
  s.requests_delivered = requests_delivered_.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  // oblv-lint: allow(D009) same drain-synchronized snapshot as above.
  s.requests_expired = requests_expired_.load(std::memory_order_relaxed);
  s.packets_submitted = packets_submitted_.load(std::memory_order_relaxed);
  s.packets_delivered = packets_delivered_.load(std::memory_order_relaxed);
  // oblv-lint: allow(D009) same drain-synchronized snapshot as above.
  s.packets_rejected = packets_rejected_.load(std::memory_order_relaxed);
  s.packets_expired = packets_expired_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  return s;
}

void Server::publish_gauges() const {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::MetricsRegistry::global();
  const ServerStats s = stats();
  registry.gauge("daemon.requests.submitted")
      .set(static_cast<double>(s.requests_submitted));
  registry.gauge("daemon.requests.delivered")
      .set(static_cast<double>(s.requests_delivered));
  registry.gauge("daemon.requests.rejected")
      .set(static_cast<double>(s.requests_rejected));
  registry.gauge("daemon.packets.submitted")
      .set(static_cast<double>(s.packets_submitted));
  registry.gauge("daemon.packets.delivered")
      .set(static_cast<double>(s.packets_delivered));
  registry.gauge("daemon.packets.rejected")
      .set(static_cast<double>(s.packets_rejected));
  registry.gauge("daemon.requests.expired")
      .set(static_cast<double>(s.requests_expired));
  registry.gauge("daemon.packets.expired")
      .set(static_cast<double>(s.packets_expired));
  registry.gauge("daemon.protocol_errors")
      .set(static_cast<double>(s.protocol_errors));
  registry.gauge("daemon.connections")
      .set(static_cast<double>(s.connections_accepted));
  registry.gauge("daemon.unaccounted")
      .set(static_cast<double>(s.unaccounted_requests()));
  registry.gauge("daemon.queue.depth")
      .set(static_cast<double>(queue_.queued_packets()));
  {
    oblv::MutexLock lock(account_mu_);
    accountant_->record_metrics("daemon.load");
    registry.gauge("daemon.load.memory_bytes")
        .set(static_cast<double>(accountant_->memory_bytes()));
  }
  std::uint64_t overloaded_tenants = 0;
  std::uint64_t overload_rejected = 0;
  for (const TenantStats& t : queue_.tenant_stats()) {
    const std::string prefix = "daemon.tenant." + t.name;
    registry.gauge(prefix + ".weight").set(static_cast<double>(t.weight));
    registry.gauge(prefix + ".served_packets")
        .set(static_cast<double>(t.served_packets));
    registry.gauge(prefix + ".queued_packets")
        .set(static_cast<double>(t.queued_packets));
    registry.gauge(prefix + ".capacity_packets")
        .set(static_cast<double>(t.capacity_packets));
    registry.gauge(prefix + ".rejected_requests")
        .set(static_cast<double>(t.rejected_requests));
    registry.gauge(prefix + ".expired_packets")
        .set(static_cast<double>(t.expired_packets));
    registry.gauge(prefix + ".overload_rejected_requests")
        .set(static_cast<double>(t.overload_rejected_requests));
    registry.gauge(prefix + ".overloaded")
        .set(t.overloaded ? 1.0 : 0.0);
    overloaded_tenants += t.overloaded ? 1 : 0;
    overload_rejected += t.overload_rejected_requests;
  }
  // The daemon.overload.* gauge set: how many tenants the CoDel
  // detector currently marks overloaded, and the lifetime count of
  // admissions it refused.
  registry.gauge("daemon.overload.tenants")
      .set(static_cast<double>(overloaded_tenants));
  registry.gauge("daemon.overload.rejected_requests")
      .set(static_cast<double>(overload_rejected));
}

std::string Server::metrics_json() const {
  publish_gauges();
  return obs::metrics_envelope_json(
      {{"tool", "oblvd"},
       {"mesh", mesh_.describe()},
       {"algorithm", options_.algorithm}},
      obs::MetricsRegistry::global().snapshot());
}

int Server::run() {
  UniqueFd listener = [&] {
    std::uint16_t port = 0;
    UniqueFd fd = listen_on(options_.endpoint, &port);
    bound_port_.store(port, std::memory_order_release);
    return fd;
  }();
  std::thread worker([this] { batch_worker_loop(); });
  serving_.store(true, std::memory_order_release);

  while (!drain_requested_.load(std::memory_order_acquire)) {
    UniqueFd conn = accept_connection(listener.get(), options_.poll_tick_ms);
    if (!conn.valid()) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    oblv::MutexLock lock(conn_mu_);
    connections_.emplace_back(
        [this, fd = std::move(conn)]() mutable {
          connection_loop(std::move(fd));
        });
  }

  // --- drain state machine -------------------------------------------------
  // 1. Stop accepting (listener closes when this scope ends).
  listener.reset();
  if (options_.endpoint.is_unix()) {
    ::remove(options_.endpoint.unix_path.c_str());
  }
  // 2. Reject new work; 3. the worker flushes every admitted request.
  queue_.begin_drain();
  worker.join();
  // 4. Every future is fulfilled; let the connection threads write
  // their final responses and exit their read loops.
  stopping_.store(true, std::memory_order_release);
  {
    oblv::MutexLock lock(conn_mu_);
    for (std::thread& t : connections_) t.join();
    connections_.clear();
  }
  serving_.store(false, std::memory_order_release);

  publish_gauges();
  const ServerStats s = stats();
  OBLV_CHECK(s.unaccounted_requests() == 0,
             "drain accounting: submitted != delivered + rejected + expired");
  return 0;
}

void Server::handle_route_request(int fd, std::vector<std::uint8_t>& payload,
                                  std::vector<std::uint8_t>& out,
                                  std::uint64_t frame_start_ms) {
  RouteRequest request = decode_route_request(payload.data(), payload.size());
  requests_submitted_.fetch_add(1, std::memory_order_relaxed);
  packets_submitted_.fetch_add(request.demands.size(),
                               std::memory_order_relaxed);
  OBLV_COUNTER_ADD("daemon.requests", 1);

  RouteResponse response;
  response.request_id = request.request_id;
  const std::uint16_t wire_version = request.version;

  // Validation at admission, not in the worker: route_batch must never
  // throw on the batch thread (ThreadPool tasks are noexcept).
  std::string invalid;
  if (request.demands.empty()) {
    invalid = "empty demand list";
  } else {
    for (const Demand& d : request.demands) {
      if (d.src < 0 || d.src >= mesh_.num_nodes() || d.dst < 0 ||
          d.dst >= mesh_.num_nodes()) {
        invalid = "demand endpoints off the mesh (" + std::to_string(d.src) +
                  " -> " + std::to_string(d.dst) + ")";
        break;
      }
    }
  }
  if (!invalid.empty()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    packets_rejected_.fetch_add(request.demands.size(),
                                std::memory_order_relaxed);
    OBLV_COUNTER_ADD("daemon.admission.invalid", 1);
    response.status = RouteStatus::kError;
    response.message = invalid;
    encode_route_response(response, out, wire_version);
    return;
  }

  Pending pending;
  pending.admitted_at = std::chrono::steady_clock::now();
  const std::size_t packets = request.demands.size();
  const std::string tenant = request.tenant;
  const std::uint32_t deadline_ms = request.deadline_ms;
  pending.request = std::move(request);

  QueueItem item;
  item.tenant = tenant;
  item.packets = packets;
  item.token = reinterpret_cast<std::uint64_t>(&pending);
  item.enqueued_at_ms = steady_now_ms();
  // The deadline budget starts when the frame started arriving, so a
  // request whose own transport (slow-loris client, chaos stall) ate
  // the budget is shed right here at admission.
  item.expires_at_ms =
      deadline_ms == 0 ? 0 : frame_start_ms + deadline_ms;
  const AdmissionResult admission = queue_.try_enqueue(item);
  if (!admission.admitted) {
    if (admission.reason == RejectReason::kDeadline) {
      requests_expired_.fetch_add(1, std::memory_order_relaxed);
      packets_expired_.fetch_add(packets, std::memory_order_relaxed);
      OBLV_COUNTER_ADD("daemon.deadline.shed_admission", 1);
      response.status = RouteStatus::kExpired;
      response.message = "deadline expired before admission";
    } else {
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      packets_rejected_.fetch_add(packets, std::memory_order_relaxed);
      OBLV_COUNTER_ADD("daemon.admission.rejected", 1);
      if (admission.reason == RejectReason::kOverload) {
        OBLV_COUNTER_ADD("daemon.overload.shed", 1);
        response.status = RouteStatus::kRejected;
        response.message = "tenant overloaded (standing queue); retry later";
      } else if (admission.reason == RejectReason::kDraining) {
        response.status = RouteStatus::kShuttingDown;
        response.message = "daemon is draining";
      } else {
        response.status = RouteStatus::kRejected;
        response.message = "queue full; retry later";
      }
      response.retry_after_ms = admission.retry_after_ms;
    }
    encode_route_response(response, out, wire_version);
    return;
  }

  // The worker fulfils every admitted request, even during drain, so
  // this wait always completes.
  std::future<RouteOutcome> future = pending.promise.get_future();
  try {
    RouteOutcome outcome = future.get();
    if (outcome.expired) {
      // Shed in-queue or post-route by the worker (which bumped the
      // per-site daemon.deadline.shed_* counter); account it here.
      requests_expired_.fetch_add(1, std::memory_order_relaxed);
      packets_expired_.fetch_add(packets, std::memory_order_relaxed);
      response.status = RouteStatus::kExpired;
      response.message = "deadline expired before reply";
    } else {
      response.paths = std::move(outcome.paths);
      response.status = RouteStatus::kOk;
      requests_delivered_.fetch_add(1, std::memory_order_relaxed);
      packets_delivered_.fetch_add(packets, std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    // Unreachable by construction (demands pre-validated); keep the
    // accounting identity if it ever fires.
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    packets_rejected_.fetch_add(packets, std::memory_order_relaxed);
    response.status = RouteStatus::kError;
    response.message = e.what();
  }
  encode_route_response(response, out, wire_version);
  (void)fd;
}

void Server::connection_loop(UniqueFd fd) {
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> out;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) break;
    // Idle poll tick so drain is noticed; only a *readable* socket
    // enters the framed read below, which then runs under the full
    // io_timeout_ms budget (a mid-frame stall drops the connection,
    // never wedges the loop).
    if (!wait_readable(fd.get(), options_.poll_tick_ms)) continue;
    // The socket turned readable: the frame starts arriving now. A v2
    // deadline is measured from this stamp, so a frame that trickles in
    // slowly consumes its own budget.
    const std::uint64_t frame_start_ms = steady_now_ms();
    std::string io_error;
    const IoStatus status =
        read_frame(fd.get(), payload, options_.io_timeout_ms, &io_error);
    if (status == IoStatus::kClosed) break;
    if (status != IoStatus::kOk) {
      // Truncated frame, oversize prefix, mid-frame stall: this
      // connection is broken; the accept loop and every other
      // connection are unaffected.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      OBLV_COUNTER_ADD("daemon.protocol_errors", 1);
      break;
    }

    out.clear();
    try {
      const FrameHeader header =
          decode_header(payload.data(), payload.size());
      switch (header.type) {
        case MessageType::kPing:
          encode_pong(header.request_id, out);
          break;
        case MessageType::kMetricsRequest:
          encode_metrics_response(header.request_id, metrics_json(), out);
          break;
        case MessageType::kRouteRequest:
          handle_route_request(fd.get(), payload, out, frame_start_ms);
          break;
        default:
          throw ProtocolError("unsupported message type " +
                              std::to_string(static_cast<int>(header.type)));
      }
    } catch (const ProtocolError& e) {
      // Per-connection error path: best-effort error frame, then close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      OBLV_COUNTER_ADD("daemon.protocol_errors", 1);
      RouteResponse error;
      error.status = RouteStatus::kError;
      error.message = e.what();
      out.clear();
      encode_route_response(error, out);
      write_all(fd.get(), out.data(), out.size(), options_.io_timeout_ms);
      break;
    }

    if (!out.empty() &&
        write_all(fd.get(), out.data(), out.size(), options_.io_timeout_ms) !=
            IoStatus::kOk) {
      break;  // dead peer; admitted work was still routed and counted
    }
  }
}

void Server::batch_worker_loop() {
  std::vector<SegmentPath> paths;
  std::vector<QueueItem> dead;
  for (;;) {
    dead.clear();
    const std::vector<QueueItem> chunk =
        queue_.dequeue_chunk(options_.max_batch_packets, &dead);
    // Shedding expired work is progress too: only an empty chunk AND no
    // expired items means the drain backlog is flushed.
    if (chunk.empty() && dead.empty()) break;

    // Expired in queue (lazy expiry banked no service credit): fulfil
    // the waiting connection threads with the expiry verdict.
    for (const QueueItem& item : dead) {
      auto* pending = reinterpret_cast<Pending*>(item.token);
      OBLV_COUNTER_ADD("daemon.deadline.shed_dequeue", 1);
      RouteOutcome outcome;
      outcome.expired = true;
      pending->promise.set_value(std::move(outcome));
    }
    if (chunk.empty()) continue;

    std::size_t chunk_packets = 0;
    for (const QueueItem& item : chunk) chunk_packets += item.packets;
    OBLV_HISTOGRAM_ADD("daemon.batch.packets", chunk_packets);
    OBLV_HISTOGRAM_ADD("daemon.batch.requests", chunk.size());
    OBLV_HISTOGRAM_ADD("daemon.queue.depth", queue_.queued_packets());

    // Each request keeps its own seed, so its paths are bit-identical
    // to a solo route_batch run; the chunk amortizes worker wakeups and
    // keeps the routing pool hot across coalesced small requests.
    for (const QueueItem& item : chunk) {
      auto* pending = reinterpret_cast<Pending*>(item.token);
      RouteBatchOptions options;
      options.seed = pending->request.seed;
      options.validate_demands = false;  // validated at admission
      try {
        route_batch(*router_, pending->request.demands, routing_pool_,
                    options, paths);
        RouteOutcome outcome;
        // Shed-before-reply: the deadline passed while this item sat in
        // the chunk or routed. The paths are discarded undelivered, so
        // the load accountant is not charged for them.
        if (item.expires_at_ms != 0 &&
            steady_now_ms() >= item.expires_at_ms) {
          OBLV_COUNTER_ADD("daemon.deadline.shed_reply", 1);
          outcome.expired = true;
        } else {
          // The single worker charges requests in dequeue order, so even
          // sketch estimates are a deterministic function of the served
          // request sequence; the lock is only against metrics readers.
          oblv::MutexLock lock(account_mu_);
          accountant_->add_segment_paths(paths);
          outcome.paths = std::move(paths);
        }
        OBLV_HISTOGRAM_ADD("daemon.service_seconds",
                           seconds_since(pending->admitted_at));
        pending->promise.set_value(std::move(outcome));
      } catch (...) {
        pending->promise.set_exception(std::current_exception());
      }
      paths = std::vector<SegmentPath>();
    }
  }
}

}  // namespace oblivious::daemon
