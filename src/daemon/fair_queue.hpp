// Bounded admission queue with two-level weighted fair-share scheduling.
//
// Level 1 picks the tenant, level 2 is FIFO within the tenant -- the
// weighted-pool idiom of large RPC runtimes (ytsaurus'
// two_level_fair_share_thread_pool): each tenant accrues *virtual work*
// served_work / weight, and the dispatcher always serves the active
// tenant with the smallest virtual time, ties broken by name. A tenant
// that goes idle is clamped forward to the current virtual frontier
// when it returns, so sleeping never banks unbounded credit, and a
// greedy tenant can only push a light one as far as the weight ratio
// allows (the fair-share isolation the P9 smoke scenario asserts).
//
// Admission is capacity-based per tenant: a tenant's queue share is
// capacity * weight / total weight, so a flood from one tenant fills
// only its own share and the others always have room (backpressure is a
// per-tenant property, not a global one). A rejected enqueue carries a
// retry-after hint derived from the tenant's queued backlog.
//
// Two resilience layers ride on top of capacity admission (DESIGN.md
// section 15):
//
//  - Lazy deadline expiry: items may carry an expiry timestamp; an item
//    found dead at dequeue is popped into the caller's expired list and
//    banks NO service credit (no served packets, no virtual-time
//    advance), so a flood of already-dead work cannot distort the fair
//    share. Items are never scanned proactively -- expiry costs O(1)
//    amortized at the dequeue front, CoDel-style.
//
//  - CoDel-style overload control, per tenant: the sojourn (time in
//    queue) of each dequeued item is compared against codel_target_ms.
//    Once sojourns have stayed continuously above target for
//    codel_interval_ms the tenant is *overloaded* and new enqueues are
//    rejected with retry-after until a sojourn dips below target (or
//    the tenant goes idle). Admission latency therefore tracks queue
//    *delay*, not queue *length* -- the standing-queue detector of
//    CoDel (Nichols & Jacobson) applied at admission instead of drop.
//
// The queue is the synchronization point between the connection threads
// (producers) and the batch worker (consumer): all methods are
// thread-safe, and dequeue_chunk blocks until work arrives or the queue
// is told to drain. Time is passed in explicitly (milliseconds on the
// caller's monotonic clock) or defaulted to steady_clock, so tests
// drive expiry and overload deterministically.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace oblivious::daemon {

struct FairQueueOptions {
  // Total packets admitted across all tenants before backpressure.
  std::size_t capacity_packets = 1 << 16;
  // Estimated drain rate used for the retry-after hint (packets per
  // millisecond; the hint is advisory, not a guarantee).
  std::size_t drain_rate_hint = 100;
  // Weight given to tenants that were not registered explicitly.
  std::uint64_t default_weight = 1;
  // CoDel overload control: sojourn target and detection interval in
  // milliseconds. codel_target_ms == 0 disables the detector (the
  // default; oblvd enables it via --codel-target-ms).
  std::uint64_t codel_target_ms = 0;
  std::uint64_t codel_interval_ms = 500;
};

// One queued unit of work. `token` is an opaque caller handle (the
// server stores the index of the pending request).
struct QueueItem {
  std::string tenant;
  std::size_t packets = 0;
  std::uint64_t token = 0;
  // Milliseconds on the producer's monotonic clock. enqueued_at_ms
  // feeds the CoDel sojourn; expires_at_ms == 0 means no deadline.
  std::uint64_t enqueued_at_ms = 0;
  std::uint64_t expires_at_ms = 0;
};

// Why an enqueue was refused (kNone when admitted).
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kCapacity,  // tenant share (or the global bound) is full
  kOverload,  // CoDel marked the tenant overloaded (standing queue)
  kDeadline,  // the item was already expired at admission
  kDraining,  // the queue is shutting down
};

struct AdmissionResult {
  bool admitted = false;
  // Set when !admitted: suggested client backoff.
  std::uint32_t retry_after_ms = 0;
  RejectReason reason = RejectReason::kNone;
};

// Point-in-time stats for introspection.
struct TenantStats {
  std::string name;
  std::uint64_t weight = 0;
  std::size_t queued_packets = 0;
  std::size_t capacity_packets = 0;
  std::uint64_t served_packets = 0;
  std::uint64_t rejected_requests = 0;
  std::uint64_t expired_packets = 0;
  std::uint64_t overload_rejected_requests = 0;
  bool overloaded = false;
};

class FairShareQueue {
 public:
  // Sentinel for the now_ms parameters: read std::chrono::steady_clock
  // instead (production path; tests pass explicit timestamps).
  static constexpr std::uint64_t kNowFromClock = ~std::uint64_t{0};

  explicit FairShareQueue(FairQueueOptions options = {});

  // Declares a tenant and its weight; recomputes every tenant's
  // capacity share. Unknown tenants auto-register with default_weight
  // on first enqueue. \pre weight >= 1.
  void register_tenant(const std::string& name, std::uint64_t weight)
      OBLV_EXCLUDES(mu_);

  // Admits `item` unless it is already expired, the tenant is
  // overloaded, the tenant's capacity share is full, or the queue is
  // draining -- in that checking order, reported via
  // AdmissionResult::reason. O(log #tenants).
  AdmissionResult try_enqueue(const QueueItem& item,
                              std::uint64_t now_ms = kNowFromClock)
      OBLV_EXCLUDES(mu_);

  // Pops whole items from the fairest tenant (smallest virtual time,
  // then from the next fairest, ...) until at least `max_packets` are
  // gathered or the queue is empty. Blocks while the queue is empty and
  // not draining; returns an empty vector only when draining and empty.
  // An item larger than max_packets is still returned alone (requests
  // are never split).
  //
  // When `expired` is non-null, items found past their expires_at_ms
  // are popped into it instead of the chunk; they bank no service
  // credit and do not count against max_packets. A null `expired`
  // skips expiry entirely (legacy call sites behave as before). The
  // call can return an empty chunk with a non-empty expired list; the
  // caller must treat that as progress, not as drain-complete.
  std::vector<QueueItem> dequeue_chunk(
      std::size_t max_packets, std::vector<QueueItem>* expired = nullptr,
      std::uint64_t now_ms = kNowFromClock) OBLV_EXCLUDES(mu_);

  // Draining: every later try_enqueue is rejected, and dequeue_chunk
  // returns the remaining backlog then empty vectors instead of
  // blocking.
  void begin_drain() OBLV_EXCLUDES(mu_);
  bool draining() const OBLV_EXCLUDES(mu_);

  std::size_t queued_packets() const OBLV_EXCLUDES(mu_);
  std::vector<TenantStats> tenant_stats() const OBLV_EXCLUDES(mu_);

 private:
  struct Tenant {
    std::uint64_t weight = 1;
    // served_work / weight, scaled by kVirtualScale for integer math.
    std::uint64_t virtual_time = 0;
    std::size_t queued = 0;       // packets
    std::size_t capacity = 0;     // packets (share of the global bound)
    std::uint64_t served = 0;     // packets, lifetime
    std::uint64_t rejected = 0;   // requests, lifetime
    std::uint64_t expired = 0;    // packets shed in-queue, lifetime
    std::uint64_t overload_rejected = 0;  // requests, lifetime
    // CoDel detector: timestamp of the first continuously-above-target
    // sojourn (0 = currently below target) and the overload verdict.
    std::uint64_t first_above_ms = 0;
    bool overloaded = false;
    std::deque<QueueItem> items;  // FIFO within the tenant
  };

  static constexpr std::uint64_t kVirtualScale = 1 << 16;

  // \pre mu_ held (now compiler-checked, not just documented).
  Tenant& tenant_locked(const std::string& name) OBLV_REQUIRES(mu_);
  void recompute_shares_locked() OBLV_REQUIRES(mu_);
  std::uint64_t active_virtual_floor_locked() const OBLV_REQUIRES(mu_);
  void observe_sojourn_locked(Tenant& tenant, std::uint64_t sojourn_ms,
                              std::uint64_t now_ms) OBLV_REQUIRES(mu_);

  FairQueueOptions options_;
  // Single-lock design: one mutex covers tenant selection AND the
  // per-tenant FIFOs. The two-level *scheduling* does not need
  // two-level *locking* -- dequeue scans every tenant's virtual time
  // anyway, so a global→tenant lock split would add ordering hazards
  // (see DESIGN.md §13) for no concurrency win at daemon batch sizes.
  mutable oblv::Mutex mu_;
  oblv::CondVar work_available_;
  // std::map: deterministic iteration order for tie-breaks and stats.
  std::map<std::string, Tenant> tenants_ OBLV_GUARDED_BY(mu_);
  std::size_t queued_packets_ OBLV_GUARDED_BY(mu_) = 0;
  bool draining_ OBLV_GUARDED_BY(mu_) = false;
};

}  // namespace oblivious::daemon
