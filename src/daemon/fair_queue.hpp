// Bounded admission queue with two-level weighted fair-share scheduling.
//
// Level 1 picks the tenant, level 2 is FIFO within the tenant -- the
// weighted-pool idiom of large RPC runtimes (ytsaurus'
// two_level_fair_share_thread_pool): each tenant accrues *virtual work*
// served_work / weight, and the dispatcher always serves the active
// tenant with the smallest virtual time, ties broken by name. A tenant
// that goes idle is clamped forward to the current virtual frontier
// when it returns, so sleeping never banks unbounded credit, and a
// greedy tenant can only push a light one as far as the weight ratio
// allows (the fair-share isolation the P9 smoke scenario asserts).
//
// Admission is capacity-based per tenant: a tenant's queue share is
// capacity * weight / total weight, so a flood from one tenant fills
// only its own share and the others always have room (backpressure is a
// per-tenant property, not a global one). A rejected enqueue carries a
// retry-after hint derived from the tenant's queued backlog.
//
// The queue is the synchronization point between the connection threads
// (producers) and the batch worker (consumer): all methods are
// thread-safe, and dequeue_chunk blocks until work arrives or the queue
// is told to drain.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace oblivious::daemon {

struct FairQueueOptions {
  // Total packets admitted across all tenants before backpressure.
  std::size_t capacity_packets = 1 << 16;
  // Estimated drain rate used for the retry-after hint (packets per
  // millisecond; the hint is advisory, not a guarantee).
  std::size_t drain_rate_hint = 100;
  // Weight given to tenants that were not registered explicitly.
  std::uint64_t default_weight = 1;
};

// One queued unit of work. `token` is an opaque caller handle (the
// server stores the index of the pending request).
struct QueueItem {
  std::string tenant;
  std::size_t packets = 0;
  std::uint64_t token = 0;
};

struct AdmissionResult {
  bool admitted = false;
  // Set when !admitted: suggested client backoff.
  std::uint32_t retry_after_ms = 0;
};

// Point-in-time stats for introspection.
struct TenantStats {
  std::string name;
  std::uint64_t weight = 0;
  std::size_t queued_packets = 0;
  std::size_t capacity_packets = 0;
  std::uint64_t served_packets = 0;
  std::uint64_t rejected_requests = 0;
};

class FairShareQueue {
 public:
  explicit FairShareQueue(FairQueueOptions options = {});

  // Declares a tenant and its weight; recomputes every tenant's
  // capacity share. Unknown tenants auto-register with default_weight
  // on first enqueue. \pre weight >= 1.
  void register_tenant(const std::string& name, std::uint64_t weight)
      OBLV_EXCLUDES(mu_);

  // Admits `item` unless the tenant's capacity share (or the draining
  // flag) forbids it. O(log #tenants).
  AdmissionResult try_enqueue(const QueueItem& item) OBLV_EXCLUDES(mu_);

  // Pops whole items from the fairest tenant (smallest virtual time,
  // then from the next fairest, ...) until at least `max_packets` are
  // gathered or the queue is empty. Blocks while the queue is empty and
  // not draining; returns an empty vector only when draining and empty.
  // An item larger than max_packets is still returned alone (requests
  // are never split).
  std::vector<QueueItem> dequeue_chunk(std::size_t max_packets)
      OBLV_EXCLUDES(mu_);

  // Draining: every later try_enqueue is rejected, and dequeue_chunk
  // returns the remaining backlog then empty vectors instead of
  // blocking.
  void begin_drain() OBLV_EXCLUDES(mu_);
  bool draining() const OBLV_EXCLUDES(mu_);

  std::size_t queued_packets() const OBLV_EXCLUDES(mu_);
  std::vector<TenantStats> tenant_stats() const OBLV_EXCLUDES(mu_);

 private:
  struct Tenant {
    std::uint64_t weight = 1;
    // served_work / weight, scaled by kVirtualScale for integer math.
    std::uint64_t virtual_time = 0;
    std::size_t queued = 0;       // packets
    std::size_t capacity = 0;     // packets (share of the global bound)
    std::uint64_t served = 0;     // packets, lifetime
    std::uint64_t rejected = 0;   // requests, lifetime
    std::deque<QueueItem> items;  // FIFO within the tenant
  };

  static constexpr std::uint64_t kVirtualScale = 1 << 16;

  // \pre mu_ held (now compiler-checked, not just documented).
  Tenant& tenant_locked(const std::string& name) OBLV_REQUIRES(mu_);
  void recompute_shares_locked() OBLV_REQUIRES(mu_);
  std::uint64_t active_virtual_floor_locked() const OBLV_REQUIRES(mu_);

  FairQueueOptions options_;
  // Single-lock design: one mutex covers tenant selection AND the
  // per-tenant FIFOs. The two-level *scheduling* does not need
  // two-level *locking* -- dequeue scans every tenant's virtual time
  // anyway, so a global→tenant lock split would add ordering hazards
  // (see DESIGN.md §13) for no concurrency win at daemon batch sizes.
  mutable oblv::Mutex mu_;
  oblv::CondVar work_available_;
  // std::map: deterministic iteration order for tie-breaks and stats.
  std::map<std::string, Tenant> tenants_ OBLV_GUARDED_BY(mu_);
  std::size_t queued_packets_ OBLV_GUARDED_BY(mu_) = 0;
  bool draining_ OBLV_GUARDED_BY(mu_) = false;
};

}  // namespace oblivious::daemon
