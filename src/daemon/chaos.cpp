#include "daemon/chaos.hpp"

#include "obs/metrics.hpp"
#include "rng/rng.hpp"
#include "util/thread_annotations.hpp"

namespace oblivious::daemon::chaos {
namespace {

struct State {
  oblv::Mutex mu;
  bool armed OBLV_GUARDED_BY(mu) = false;
  ChaosConfig config OBLV_GUARDED_BY(mu);
  std::uint64_t invocations[kSiteCount] OBLV_GUARDED_BY(mu) = {0, 0};
  ChaosCounters totals OBLV_GUARDED_BY(mu);
};

State& state() {
  static State s;
  return s;
}

// Pure decision function: (seed, site, invocation index) -> draw. The
// site tag lives in the top byte so the two sites consume decorrelated
// subsequences of the same seed, exactly as packet_rng decorrelates
// per-packet streams.
std::uint64_t draw(std::uint64_t seed, Site site, std::uint64_t index) {
  const std::uint64_t tagged =
      (static_cast<std::uint64_t>(site) << 56) | index;
  return splitmix64(seed ^ splitmix64(tagged));
}

Fault classify(const ChaosConfig& config, Site site, std::uint64_t uniform) {
  const std::uint64_t per_mille = uniform % 1000;
  // Slot layout: [slice)[stall)[reset)[clean]. Slice faults are
  // site-specific but occupy distinct slots, so classification of a
  // given draw never depends on which site consumed it.
  std::uint64_t edge = config.short_read_per_mille;
  if (per_mille < edge) {
    return site == Site::kReadFrame ? Fault::kShortRead : Fault::kNone;
  }
  edge += config.torn_write_per_mille;
  if (per_mille < edge) {
    return site == Site::kWriteAll ? Fault::kTornWrite : Fault::kNone;
  }
  edge += config.stall_per_mille;
  if (per_mille < edge) return Fault::kStall;
  edge += config.reset_per_mille;
  if (per_mille < edge) return Fault::kReset;
  return Fault::kNone;
}

}  // namespace

void configure(const ChaosConfig& config) {
  State& s = state();
  oblv::MutexLock lock(s.mu);
  s.armed = true;
  s.config = config;
  s.invocations[0] = 0;
  s.invocations[1] = 0;
  s.totals = ChaosCounters{};
}

void disable() {
  State& s = state();
  oblv::MutexLock lock(s.mu);
  s.armed = false;
}

bool enabled() {
  State& s = state();
  oblv::MutexLock lock(s.mu);
  return s.armed;
}

Decision next(Site site) {
  State& s = state();
  oblv::MutexLock lock(s.mu);
  if (!s.armed) return Decision{};
  const auto slot = static_cast<std::size_t>(site);
  const std::uint64_t index = s.invocations[slot]++;
  if (site == Site::kReadFrame) {
    ++s.totals.read_invocations;
  } else {
    ++s.totals.write_invocations;
  }
  Decision decision;
  decision.fault = classify(s.config, site, draw(s.config.seed, site, index));
  switch (decision.fault) {
    case Fault::kShortRead:
      ++s.totals.short_reads;
      OBLV_COUNTER_ADD("daemon.chaos.short_read", 1);
      break;
    case Fault::kTornWrite:
      ++s.totals.torn_writes;
      OBLV_COUNTER_ADD("daemon.chaos.torn_write", 1);
      break;
    case Fault::kStall:
      ++s.totals.stalls;
      decision.stall_ms = s.config.stall_ms;
      OBLV_COUNTER_ADD("daemon.chaos.stall", 1);
      break;
    case Fault::kReset:
      ++s.totals.resets;
      OBLV_COUNTER_ADD("daemon.chaos.reset", 1);
      break;
    case Fault::kNone:
      break;
  }
  return decision;
}

ChaosCounters counters() {
  State& s = state();
  oblv::MutexLock lock(s.mu);
  return s.totals;
}

}  // namespace oblivious::daemon::chaos
