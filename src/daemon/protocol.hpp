// oblvd wire protocol: length-prefixed binary frames with a versioned
// header.
//
// A frame on the wire is
//
//   u32  payload length (little-endian, at most kMaxFrameBytes)
//   ...  payload
//
// and every payload starts with the fixed header
//
//   u32  magic       "OBLV" (0x564c424f little-endian)
//   u16  version     kMinProtocolVersion..kProtocolVersion
//   u16  type        MessageType
//   u32  request_id  echoed verbatim in the response
//
// followed by the type-specific body. All integers are little-endian;
// the encoder writes bytes explicitly so the wire format is identical
// on every platform. Decoding is hardened the same way as the problem
// file loaders (PR 5): every read is bounds-checked and a malformed
// frame raises ProtocolError with a source-position message -- the
// server turns that into a per-connection error without touching the
// accept loop.
//
// Versioning: the decoder accepts every version in
// [kMinProtocolVersion, kProtocolVersion] and the body layout branches
// on the header's version, so old clients keep working unmodified. The
// server echoes the request's version in its response, so a v1 client
// never sees a frame it cannot parse. Version 2 added `deadline_ms` to
// kRouteRequest (and the kExpired status a deadline can produce); a v1
// request simply has no deadline and can never expire.
//
// Bodies:
//
//   kRouteRequest:   u64 seed, [v2+: u32 deadline_ms, 0 = none],
//                    u16 tenant length, tenant bytes,
//                    u32 demand count, count x (i64 src, i64 dst)
//   kRouteResponse:  u16 status, u32 retry_after_ms, u16 message length,
//                    message bytes, u32 path count, count x
//                    (i64 source, i64 dest, u16 segment count,
//                     nseg x (i32 dim, i64 run))
//   kMetricsRequest: empty
//   kMetricsResponse:u32 JSON length, oblv-metrics-v1 JSON bytes
//   kPing / kPong:   empty
//
// A kRouteResponse carries paths only when status == kOk; a rejected or
// failed request carries a human-readable message and (for kRejected) a
// retry-after hint in milliseconds.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mesh/segment_path.hpp"
#include "workloads/problem.hpp"

namespace oblivious::daemon {

inline constexpr std::uint32_t kMagic = 0x564c424fu;  // "OBLV"
inline constexpr std::uint16_t kProtocolVersion = 2;
// Oldest version this build still decodes (v1 lacks deadline_ms).
inline constexpr std::uint16_t kMinProtocolVersion = 1;
// Hard ceiling on a frame payload; a length prefix above this is a
// protocol violation (it would otherwise let one client stall a
// connection thread on a multi-gigabyte read).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;
inline constexpr std::size_t kHeaderBytes = 12;

enum class MessageType : std::uint16_t {
  kRouteRequest = 1,
  kRouteResponse = 2,
  kMetricsRequest = 3,
  kMetricsResponse = 4,
  kPing = 5,
  kPong = 6,
};

enum class RouteStatus : std::uint16_t {
  kOk = 0,
  kRejected = 1,      // admission backpressure; retry_after_ms is set
  kError = 2,         // malformed request (bad endpoints, empty batch)
  kShuttingDown = 3,  // daemon is draining; do not retry here
  kExpired = 4,       // v2+: deadline_ms elapsed before the reply
};

// Raised by every decoder on malformed input. The message pinpoints the
// offending field and offset.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  MessageType type = MessageType::kPing;
  std::uint32_t request_id = 0;
};

struct RouteRequest {
  std::uint32_t request_id = 0;
  std::uint64_t seed = 1;
  // Milliseconds the client is willing to wait, measured by the server
  // from admission; 0 means no deadline. v2+ on the wire -- a decoded
  // v1 request always carries 0.
  std::uint32_t deadline_ms = 0;
  std::string tenant;
  std::vector<Demand> demands;
  // Header version the request arrived with (set by the decoder); the
  // server echoes it in the response so old clients stay compatible.
  std::uint16_t version = kProtocolVersion;
};

struct RouteResponse {
  std::uint32_t request_id = 0;
  RouteStatus status = RouteStatus::kOk;
  std::uint32_t retry_after_ms = 0;
  std::string message;
  std::vector<SegmentPath> paths;
};

// --- encoding ---------------------------------------------------------------
// Each encoder appends one complete frame (length prefix + payload) to
// `out`, which keeps its capacity across calls.

// `version` selects the wire layout (compat tests craft v1 frames; the
// server echoes a v1 client's version when responding).
void encode_route_request(const RouteRequest& request,
                          std::vector<std::uint8_t>& out,
                          std::uint16_t version = kProtocolVersion);
void encode_route_response(const RouteResponse& response,
                           std::vector<std::uint8_t>& out,
                           std::uint16_t version = kProtocolVersion);
void encode_metrics_request(std::uint32_t request_id,
                            std::vector<std::uint8_t>& out);
void encode_metrics_response(std::uint32_t request_id,
                             const std::string& json,
                             std::vector<std::uint8_t>& out);
void encode_ping(std::uint32_t request_id, std::vector<std::uint8_t>& out);
void encode_pong(std::uint32_t request_id, std::vector<std::uint8_t>& out);

// --- decoding ---------------------------------------------------------------
// Decoders take the frame *payload* (after the length prefix has been
// consumed and validated by the transport).
// \pre `payload` points at `size` readable bytes (size may be 0); the
// transport enforces size <= kMaxFrameBytes before the payload exists.

// Validates magic and version and returns the header. Throws
// ProtocolError on a short payload, bad magic, or unknown version.
FrameHeader decode_header(const std::uint8_t* payload, std::size_t size);

// Decode the body of a frame whose header named this type; each checks
// the header again so it can be called directly on a raw payload.
RouteRequest decode_route_request(const std::uint8_t* payload,
                                  std::size_t size);
RouteResponse decode_route_response(const std::uint8_t* payload,
                                    std::size_t size);
std::string decode_metrics_response(const std::uint8_t* payload,
                                    std::size_t size);

}  // namespace oblivious::daemon
