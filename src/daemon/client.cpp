#include "daemon/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace oblivious::daemon {

DaemonClient::DaemonClient(const Endpoint& endpoint, int timeout_ms)
    : fd_(connect_to(endpoint)), timeout_ms_(timeout_ms) {}

void DaemonClient::send_frame(const std::vector<std::uint8_t>& frame) {
  std::string error;
  const IoStatus status =
      write_all(fd_.get(), frame.data(), frame.size(), timeout_ms_, &error);
  if (status != IoStatus::kOk) {
    throw ClientError("send failed: " +
                      (error.empty() ? std::string("timeout or closed")
                                     : error));
  }
}

void DaemonClient::receive_frame(std::vector<std::uint8_t>& payload) {
  std::string error;
  const IoStatus status =
      read_frame(fd_.get(), payload, timeout_ms_, &error);
  switch (status) {
    case IoStatus::kOk:
      return;
    case IoStatus::kTimeout:
      throw ClientError("no response within " + std::to_string(timeout_ms_) +
                        " ms");
    case IoStatus::kClosed:
    case IoStatus::kTruncated:
      throw ClientError("daemon closed the connection");
    case IoStatus::kError:
      throw ClientError("receive failed: " + error);
  }
  OBLV_UNREACHABLE("IoStatus covered above");
}

RouteResponse DaemonClient::route(const std::string& tenant,
                                  std::uint64_t seed,
                                  const std::vector<Demand>& demands,
                                  std::uint32_t deadline_ms) {
  RouteRequest request;
  request.request_id = next_request_id_++;
  request.seed = seed;
  request.deadline_ms = deadline_ms;
  request.tenant = tenant;
  request.demands = demands;
  send_buf_.clear();
  encode_route_request(request, send_buf_);
  send_frame(send_buf_);
  receive_frame(recv_buf_);
  RouteResponse response =
      decode_route_response(recv_buf_.data(), recv_buf_.size());
  if (response.request_id != request.request_id) {
    throw ProtocolError("response id " + std::to_string(response.request_id) +
                        " does not match request id " +
                        std::to_string(request.request_id));
  }
  return response;
}

RouteResponse DaemonClient::route_with_retry(const std::string& tenant,
                                             std::uint64_t seed,
                                             const std::vector<Demand>& demands,
                                             std::uint32_t deadline_ms,
                                             const RetryPolicy& policy) {
  RouteResponse response = route(tenant, seed, demands, deadline_ms);
  for (std::size_t attempt = 0; attempt < policy.max_retries; ++attempt) {
    // Only backpressure is worth retrying: kShuttingDown will not
    // recover here, kExpired means the budget is spent, kError is a
    // request defect.
    if (response.status != RouteStatus::kRejected) return response;
    const std::uint64_t exponential = std::min<std::uint64_t>(
        policy.max_backoff_ms,
        static_cast<std::uint64_t>(policy.base_ms) << attempt);
    std::uint64_t wait_ms =
        std::max<std::uint64_t>(response.retry_after_ms, exponential);
    wait_ms = std::min<std::uint64_t>(wait_ms, policy.max_backoff_ms);
    // Deterministic decorrelation jitter in [0, wait/2]: splitmix64 of
    // the policy seed and a per-connection retry counter, the same
    // counter-derived idiom as packet_rng.
    const std::uint64_t jitter =
        splitmix64(policy.seed ^ splitmix64(retry_draws_++)) %
        (wait_ms / 2 + 1);
    wait_ms += jitter;
    ++stats_.retries;
    stats_.backoff_ms_total += wait_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    response = route(tenant, seed, demands, deadline_ms);
  }
  return response;
}

std::string DaemonClient::metrics_json() {
  send_buf_.clear();
  encode_metrics_request(next_request_id_++, send_buf_);
  send_frame(send_buf_);
  receive_frame(recv_buf_);
  return decode_metrics_response(recv_buf_.data(), recv_buf_.size());
}

bool DaemonClient::ping() {
  send_buf_.clear();
  encode_ping(next_request_id_++, send_buf_);
  send_frame(send_buf_);
  receive_frame(recv_buf_);
  const FrameHeader header =
      decode_header(recv_buf_.data(), recv_buf_.size());
  return header.type == MessageType::kPong;
}

}  // namespace oblivious::daemon
