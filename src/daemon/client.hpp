// Blocking client for the oblvd daemon, used by oblv_load, the daemon
// tests, and the P9 loopback bench.
//
// One DaemonClient owns one connection and is not thread-safe; open one
// per client thread. Every call is bounded by timeout_ms -- a stalled
// daemon surfaces as a thrown error, never a wedged caller.
//
// Backpressure: route_with_retry() honors kRejected + retry_after_ms
// with capped, seeded exponential backoff plus deterministic jitter
// (splitmix64 of the policy seed and a retry counter -- reproducible,
// like every other draw in the tree). Retries and total backoff are
// counted in ClientStats, which oblv_load folds into its report.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "daemon/net.hpp"
#include "daemon/protocol.hpp"

namespace oblivious::daemon {

// Transport-level failure (connect/read/write/timeout); protocol-level
// malformed frames raise ProtocolError from the codec.
class ClientError : public std::runtime_error {
 public:
  explicit ClientError(const std::string& what) : std::runtime_error(what) {}
};

// Backoff behavior of route_with_retry on kRejected responses.
struct RetryPolicy {
  // Retries after the first attempt; 0 restores fail-fast route().
  std::size_t max_retries = 3;
  // Exponential schedule: attempt k waits
  // max(server retry_after_ms, base_ms << k) + jitter, capped at
  // max_backoff_ms. Jitter is uniform in [0, wait/2], drawn from
  // splitmix64(seed, retry counter).
  std::uint32_t base_ms = 5;
  std::uint32_t max_backoff_ms = 1000;
  std::uint64_t seed = 1;
};

// Lifetime client-side counters (one connection's view).
struct ClientStats {
  std::uint64_t retries = 0;
  std::uint64_t backoff_ms_total = 0;
};

class DaemonClient {
 public:
  // Connects immediately; throws std::runtime_error on failure.
  explicit DaemonClient(const Endpoint& endpoint, int timeout_ms = 10000);

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;
  DaemonClient(DaemonClient&&) = default;
  DaemonClient& operator=(DaemonClient&&) = default;

  // Sends one route request and blocks for its response. The returned
  // response's status says whether `paths` is populated (kOk) or the
  // request was rejected (kRejected/kShuttingDown, with retry_after_ms),
  // expired (kExpired, deadline_ms elapsed server-side), or refused
  // (kError, with a message). deadline_ms rides in the v2 header body;
  // 0 means no deadline. Throws ClientError on transport failure,
  // ProtocolError on a malformed response.
  RouteResponse route(const std::string& tenant, std::uint64_t seed,
                      const std::vector<Demand>& demands,
                      std::uint32_t deadline_ms = 0);

  // route(), but kRejected responses are retried per `policy` with
  // capped exponential backoff + deterministic jitter, honoring the
  // server's retry_after_ms hint. Returns the final response (still
  // kRejected when retries are exhausted); kShuttingDown, kExpired and
  // kError are never retried.
  RouteResponse route_with_retry(const std::string& tenant,
                                 std::uint64_t seed,
                                 const std::vector<Demand>& demands,
                                 std::uint32_t deadline_ms,
                                 const RetryPolicy& policy);

  const ClientStats& stats() const { return stats_; }

  // Fetches the daemon's oblv-metrics-v1 introspection JSON.
  std::string metrics_json();

  // Round-trips a ping; true on pong.
  bool ping();

 private:
  void send_frame(const std::vector<std::uint8_t>& frame);
  // Reads one frame payload; throws on timeout/close/error.
  void receive_frame(std::vector<std::uint8_t>& payload);

  UniqueFd fd_;
  int timeout_ms_;
  std::uint32_t next_request_id_ = 1;
  std::uint64_t retry_draws_ = 0;  // jitter stream counter
  ClientStats stats_;
  std::vector<std::uint8_t> send_buf_;
  std::vector<std::uint8_t> recv_buf_;
};

}  // namespace oblivious::daemon
