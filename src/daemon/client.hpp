// Blocking client for the oblvd daemon, used by oblv_load, the daemon
// tests, and the P9 loopback bench.
//
// One DaemonClient owns one connection and is not thread-safe; open one
// per client thread. Every call is bounded by timeout_ms -- a stalled
// daemon surfaces as a thrown error, never a wedged caller.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "daemon/net.hpp"
#include "daemon/protocol.hpp"

namespace oblivious::daemon {

// Transport-level failure (connect/read/write/timeout); protocol-level
// malformed frames raise ProtocolError from the codec.
class ClientError : public std::runtime_error {
 public:
  explicit ClientError(const std::string& what) : std::runtime_error(what) {}
};

class DaemonClient {
 public:
  // Connects immediately; throws std::runtime_error on failure.
  explicit DaemonClient(const Endpoint& endpoint, int timeout_ms = 10000);

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;
  DaemonClient(DaemonClient&&) = default;
  DaemonClient& operator=(DaemonClient&&) = default;

  // Sends one route request and blocks for its response. The returned
  // response's status says whether `paths` is populated (kOk) or the
  // request was rejected (kRejected/kShuttingDown, with retry_after_ms)
  // or refused (kError, with a message). Throws ClientError on
  // transport failure, ProtocolError on a malformed response.
  RouteResponse route(const std::string& tenant, std::uint64_t seed,
                      const std::vector<Demand>& demands);

  // Fetches the daemon's oblv-metrics-v1 introspection JSON.
  std::string metrics_json();

  // Round-trips a ping; true on pong.
  bool ping();

 private:
  void send_frame(const std::vector<std::uint8_t>& frame);
  // Reads one frame payload; throws on timeout/close/error.
  void receive_frame(std::vector<std::uint8_t>& payload);

  UniqueFd fd_;
  int timeout_ms_;
  std::uint32_t next_request_id_ = 1;
  std::vector<std::uint8_t> send_buf_;
  std::vector<std::uint8_t> recv_buf_;
};

}  // namespace oblivious::daemon
