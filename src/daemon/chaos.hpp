// Deterministic network-chaos fault points for the daemon transport.
//
// The routing core owes its testability to seeded determinism (every
// draw is a pure function of a seed and a counter -- see FaultModel in
// src/fault/ and packet_rng in src/parallel/route_batch.hpp). This
// layer extends the same discipline to *transport* faults: torn/short
// reads, partial writes, stalls and connection resets injected at the
// two sanctioned syscall helpers in net.cpp (read_frame / write_all).
//
// Determinism argument, mirroring FaultModel's: each fault point keeps
// a per-site invocation counter, and the decision for invocation i at
// site s is splitmix64(seed ^ splitmix64(site-tagged i)) -- a pure
// function of (seed, site, i) with no dependence on wall-clock time or
// thread scheduling. Two runs that drive each site the same number of
// times therefore see the identical fault *sequence* per site; when the
// driver is additionally sequential (one in-flight request), the whole
// run's observable outcome split is reproducible and tools/chaos_soak.py
// asserts exact counter equality across paired runs.
//
// Scoping: compiled only under -DOBLV_CHAOS=ON (OBLV_CHAOS_ENABLED),
// and even then inert until configure() is called -- only oblvd's
// --chaos-seed flag does, so clients and oblv_load sharing net.cpp are
// never faulted. Default builds contain no trace of this layer.
#pragma once

#include <cstdint>

namespace oblivious::daemon::chaos {

// The two sanctioned fault points in net.cpp. wait_readable is
// deliberately NOT a site: idle poll ticks fire at a rate set by the
// scheduler, so counting them would desynchronise the per-site
// invocation counters between otherwise identical runs.
enum class Site : int {
  kReadFrame = 0,  // once per frame read attempt (including the EOF probe)
  kWriteAll = 1,   // once per outbound frame
};
inline constexpr int kSiteCount = 2;

enum class Fault : int {
  kNone = 0,
  kShortRead,   // read site: syscall slices capped at 1 byte for this frame
  kTornWrite,   // write site: send slices capped at 1 byte for this frame
  kStall,       // either site: sleep stall_ms before the I/O proceeds
  kReset,       // either site: fail the I/O as if the peer reset
};

// Per-mille injection rates, sliced out of one uniform draw per
// invocation (so rates compose without extra randomness): a draw in
// [0, short+torn) is a slice fault, [.., +stall) a stall, [.., +reset)
// a reset, the rest clean. Slice faults apply only at the matching
// site; the slots are kept distinct so the same seed gives the same
// classification regardless of which site consumes the draw.
struct ChaosConfig {
  std::uint64_t seed = 0;
  std::uint32_t short_read_per_mille = 0;
  std::uint32_t torn_write_per_mille = 0;
  std::uint32_t stall_per_mille = 0;
  std::uint32_t reset_per_mille = 0;
  std::uint32_t stall_ms = 5;
};

// What the fault point must do for one invocation.
struct Decision {
  Fault fault = Fault::kNone;
  std::uint32_t stall_ms = 0;
};

// Snapshot of lifetime injection totals (also exported as
// daemon.chaos.* counters in the metrics registry).
struct ChaosCounters {
  std::uint64_t read_invocations = 0;
  std::uint64_t write_invocations = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t stalls = 0;
  std::uint64_t resets = 0;
};

// Arms the fault points. Call before serving starts (oblvd does, from
// --chaos-seed); reconfiguring mid-flight is supported but resets the
// per-site counters, forfeiting reproducibility for the current run.
void configure(const ChaosConfig& config);

// Disarms the fault points; next() returns kNone until reconfigured.
void disable();

// True once configure() has armed the layer.
bool enabled();

// Draws the decision for the next invocation of `site`. Thread-safe;
// the per-site sequence of decisions is a pure function of the seed.
Decision next(Site site);

// Lifetime totals since the last configure().
ChaosCounters counters();

}  // namespace oblivious::daemon::chaos
