#include "daemon/net.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <limits>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "daemon/protocol.hpp"

#ifdef OBLV_CHAOS_ENABLED
#include <thread>

#include "daemon/chaos.hpp"
#endif

// This translation unit is the sanctioned home of every raw socket
// syscall (lint rule D007): all reads and writes below are bounded by
// poll() deadlines, so callers can never wedge on a stalled peer. It is
// also where the chaos fault points live (-DOBLV_CHAOS=ON): read_frame
// and write_all consult chaos::next() once per frame and may slice,
// stall, or fail the transfer -- see src/daemon/chaos.hpp.

namespace oblivious::daemon {

namespace {

// Thread-safe errno formatting. std::strerror writes into a shared
// static buffer (clang-tidy concurrency-mt-unsafe), and connection
// threads can fail concurrently, so go through strerror_r. glibc and
// POSIX disagree on its signature (char* returning the message vs int
// writing into buf); overload dispatch on the actual return type picks
// the right reading without a feature-test-macro maze.
inline const char* strerror_pick(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
inline const char* strerror_pick(const char* msg, const char* /*buf*/) {
  return msg != nullptr ? msg : "unknown error";
}

std::string errno_string(int err) {
  char buf[256] = {};
  return strerror_pick(strerror_r(err, buf, sizeof(buf)), buf);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + errno_string(errno));
}

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

// Bounded single poll: true when `fd` reports any of `events`. EINTR
// must not extend the deadline, so the remaining wait is recomputed
// from a steady-clock deadline instead of restarting the full timeout
// (a signal storm would otherwise keep a "bounded" wait alive forever).
bool poll_one(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int remaining_ms = timeout_ms;
  for (;;) {
    // oblv-lint: allow(D007) net.cpp is the sanctioned syscall site; the
    // timeout bounds the wait
    const int rc = ::poll(&pfd, 1, remaining_ms);
    if (rc < 0 && errno == EINTR) {
      if (timeout_ms < 0) continue;  // infinite wait: just retry
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now);
      // Round up so a sub-millisecond remainder still polls once more
      // instead of busy-spinning on a zero timeout.
      remaining_ms = static_cast<int>(left.count()) + 1;
      continue;
    }
    return rc > 0 && (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
  }
}

// No cap on per-syscall transfer size (the normal case). The chaos
// short-read/torn-write faults shrink this to 1 to drive the resume
// loops below through their partial-transfer paths.
constexpr std::size_t kNoSliceLimit = std::numeric_limits<std::size_t>::max();

// Reads exactly `size` bytes with a per-call deadline. Returns kOk,
// kTimeout, kError, or -- when EOF arrives before any byte -- kClosed
// (kTruncated when EOF interrupts a partial read). Each syscall moves
// at most `max_slice` bytes.
IoStatus read_exact(int fd, std::uint8_t* data, std::size_t size,
                    int timeout_ms, std::string* error,
                    std::size_t max_slice = kNoSliceLimit) {
  std::size_t got = 0;
  while (got < size) {
    if (!poll_one(fd, POLLIN, timeout_ms)) return IoStatus::kTimeout;
    const std::size_t want = std::min(size - got, max_slice);
    // oblv-lint: allow(D007) bounded by the poll_one deadline above
    const ssize_t n = ::read(fd, data + got, want);
    if (n == 0) return got == 0 ? IoStatus::kClosed : IoStatus::kTruncated;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      set_error(error, "read: " + errno_string(errno));
      return IoStatus::kError;
    }
    got += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

}  // namespace

void UniqueFd::reset() {
  if (fd_ >= 0) {
    // oblv-lint: allow(D007) close() does not block
    ::close(fd_);
    fd_ = -1;
  }
}

UniqueFd listen_unix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  set_cloexec(fd.get());
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd.get(), 128) < 0) throw_errno("listen(" + path + ")");
  return fd;
}

UniqueFd listen_tcp(std::uint16_t port, std::uint16_t* bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  set_cloexec(fd.get());
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind(tcp " + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), 128) < 0) throw_errno("listen(tcp)");
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                      &len) < 0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

UniqueFd listen_on(const Endpoint& endpoint, std::uint16_t* bound_port) {
  if (endpoint.is_unix()) return listen_unix(endpoint.unix_path);
  return listen_tcp(endpoint.tcp_port, bound_port);
}

UniqueFd connect_unix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  set_cloexec(fd.get());
  // oblv-lint: allow(D007) unix connect on a listening socket completes
  // immediately or fails; no deadline needed
  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

UniqueFd connect_tcp(std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  set_cloexec(fd.get());
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // oblv-lint: allow(D007) loopback connect completes immediately or
  // fails; no deadline needed
  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    throw_errno("connect(tcp " + std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

UniqueFd connect_to(const Endpoint& endpoint) {
  if (endpoint.is_unix()) return connect_unix(endpoint.unix_path);
  return connect_tcp(endpoint.tcp_port);
}

UniqueFd accept_connection(int listen_fd, int timeout_ms) {
  if (!poll_one(listen_fd, POLLIN, timeout_ms)) return UniqueFd();
  // oblv-lint: allow(D007) guarded by the poll above; a raced-away
  // connection returns EAGAIN and an invalid fd
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return UniqueFd();
  set_cloexec(fd);
  return UniqueFd(fd);
}

bool wait_readable(int fd, int timeout_ms) {
  return poll_one(fd, POLLIN, timeout_ms);
}

IoStatus read_frame(int fd, std::vector<std::uint8_t>& payload,
                    int timeout_ms, std::string* error) {
  std::size_t max_slice = kNoSliceLimit;
#ifdef OBLV_CHAOS_ENABLED
  if (chaos::enabled()) {
    const chaos::Decision fault = chaos::next(chaos::Site::kReadFrame);
    switch (fault.fault) {
      case chaos::Fault::kReset:
        set_error(error, "chaos: injected reset on read");
        return IoStatus::kError;
      case chaos::Fault::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.stall_ms));
        break;
      case chaos::Fault::kShortRead:
        max_slice = 1;  // every syscall for this frame moves one byte
        break;
      default:
        break;
    }
  }
#endif
  std::uint8_t prefix[4];
  // An idle wait before the first prefix byte is a normal timeout; the
  // caller loops. EOF here is an orderly close between frames.
  const IoStatus head =
      read_exact(fd, prefix, 1, timeout_ms, error, max_slice);
  if (head != IoStatus::kOk) return head;
  IoStatus rest = read_exact(fd, prefix + 1, 3, timeout_ms, error, max_slice);
  if (rest == IoStatus::kClosed) return IoStatus::kTruncated;
  if (rest != IoStatus::kOk) return rest;

  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (length > kMaxFrameBytes) {
    set_error(error, "length prefix " + std::to_string(length) +
                         " exceeds kMaxFrameBytes (" +
                         std::to_string(kMaxFrameBytes) + ")");
    return IoStatus::kError;
  }
  payload.resize(length);
  if (length == 0) return IoStatus::kOk;
  rest = read_exact(fd, payload.data(), length, timeout_ms, error, max_slice);
  if (rest == IoStatus::kClosed) return IoStatus::kTruncated;
  return rest;
}

IoStatus write_all(int fd, const std::uint8_t* data, std::size_t size,
                   int timeout_ms, std::string* error) {
  std::size_t max_slice = kNoSliceLimit;
#ifdef OBLV_CHAOS_ENABLED
  if (chaos::enabled()) {
    const chaos::Decision fault = chaos::next(chaos::Site::kWriteAll);
    switch (fault.fault) {
      case chaos::Fault::kReset:
        set_error(error, "chaos: injected reset on write");
        return IoStatus::kError;
      case chaos::Fault::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.stall_ms));
        break;
      case chaos::Fault::kTornWrite:
        max_slice = 1;  // every syscall for this buffer moves one byte
        break;
      default:
        break;
    }
  }
#endif
  std::size_t sent = 0;
  while (sent < size) {
    if (!poll_one(fd, POLLOUT, timeout_ms)) return IoStatus::kTimeout;
    const std::size_t want = std::min(size - sent, max_slice);
    // oblv-lint: allow(D007) bounded by the poll_one deadline above;
    // MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE
    const ssize_t n = ::send(fd, data + sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      set_error(error, "send: " + errno_string(errno));
      return IoStatus::kError;
    }
    sent += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

WakeupPipe make_wakeup_pipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  set_cloexec(fds[0]);
  set_cloexec(fds[1]);
  // Nonblocking write end: a signal handler must never block on a full
  // pipe (one pending byte is enough to wake the poll loop).
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  WakeupPipe pipe;
  pipe.read_end = UniqueFd(fds[0]);
  pipe.write_end = UniqueFd(fds[1]);
  return pipe;
}

void write_wakeup(int write_fd) {
  const std::uint8_t byte = 1;
  for (;;) {
    // oblv-lint: allow(D007) nonblocking write end; async-signal-safe
    const ssize_t n = ::write(write_fd, &byte, 1);
    // EINTR: retry (write remains async-signal-safe). EAGAIN: the pipe
    // already holds a pending wakeup byte, which is all a waker needs.
    if (n >= 0 || errno != EINTR) return;
  }
}

void drain_wakeup(int read_fd) {
  std::uint8_t buf[64];
  for (;;) {
    if (!poll_one(read_fd, POLLIN, 0)) return;
    // oblv-lint: allow(D007) poll(0) above guarantees data is pending
    const ssize_t n = ::read(read_fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;  // retry, pipe still readable
    if (n <= 0) return;
  }
}

}  // namespace oblivious::daemon
