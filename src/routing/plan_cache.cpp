#include "routing/plan_cache.hpp"

#include <algorithm>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace oblivious {

PlanCache::PlanCache(std::size_t capacity) {
  OBLV_REQUIRE(capacity >= 1, "plan cache capacity must be >= 1");
  sets_per_shard_ =
      std::max<std::size_t>(1, (capacity + kNumShards * kWays - 1) /
                                   (kNumShards * kWays));
  capacity_ = sets_per_shard_ * kNumShards * kWays;
  for (Shard& shard : shards_) {
    // The constructor runs single-threaded, but the analysis (rightly)
    // has no happens-before notion: guarded data is locked data, even
    // here. Uncontended, so the cost is one atomic pair per shard, once.
    oblv::MutexLock lock(shard.mu);
    shard.sets.resize(sets_per_shard_);
  }
}

std::uint64_t PlanCache::mix(NodeId s, NodeId t) {
  return splitmix64(static_cast<std::uint64_t>(s) * 0x9E3779B97F4A7C15ULL ^
                    splitmix64(static_cast<std::uint64_t>(t)));
}

bool PlanCache::lookup(NodeId s, NodeId t, int dim, std::vector<Region>& chain,
                       std::size_t& up_count, int& bridge_level) const {
  const std::uint64_t h = mix(s, t);
  const Shard& shard = shards_[h % kNumShards];
  oblv::MutexLock lock(shard.mu);
  const Set& set = shard.sets[(h / kNumShards) % sets_per_shard_];
  for (const Entry& e : set.ways) {
    if (e.s != s || e.t != t) continue;
    chain.clear();
    chain.reserve(e.chain_len);
    const std::size_t d = static_cast<std::size_t>(dim);
    const std::int64_t* flat = e.data.data();
    for (std::uint32_t i = 0; i < e.chain_len; ++i) {
      Coord anchor;
      Coord extent;
      anchor.resize(d);
      extent.resize(d);
      for (std::size_t dd = 0; dd < d; ++dd) anchor[dd] = flat[dd];
      for (std::size_t dd = 0; dd < d; ++dd) extent[dd] = flat[d + dd];
      flat += 2 * d;
      chain.emplace_back(std::move(anchor), std::move(extent));
    }
    up_count = e.up_count;
    bridge_level = e.bridge_level;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void PlanCache::insert(NodeId s, NodeId t, int dim,
                       const std::vector<Region>& chain, std::size_t up_count,
                       int bridge_level) {
  const std::uint64_t h = mix(s, t);
  Shard& shard = shards_[h % kNumShards];
  oblv::MutexLock lock(shard.mu);
  Set& set = shard.sets[(h / kNumShards) % sets_per_shard_];
  Entry* slot = nullptr;
  for (Entry& e : set.ways) {
    if (e.s == s && e.t == t) {
      slot = &e;  // refresh in place (another thread may have raced us)
      break;
    }
    if (slot == nullptr && e.s == kInvalidNode) slot = &e;
  }
  if (slot == nullptr) {
    slot = &set.ways[set.next_victim % kWays];
    set.next_victim = static_cast<std::uint8_t>((set.next_victim + 1) % kWays);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  slot->s = s;
  slot->t = t;
  slot->up_count = static_cast<std::uint32_t>(up_count);
  slot->chain_len = static_cast<std::uint32_t>(chain.size());
  slot->bridge_level = bridge_level;
  const std::size_t d = static_cast<std::size_t>(dim);
  slot->data.clear();
  slot->data.reserve(chain.size() * 2 * d);
  for (const Region& region : chain) {
    for (std::size_t dd = 0; dd < d; ++dd) {
      slot->data.push_back(region.anchor()[dd]);
    }
    for (std::size_t dd = 0; dd < d; ++dd) {
      slot->data.push_back(region.extent()[dd]);
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void PlanCache::clear() {
  for (Shard& shard : shards_) {
    oblv::MutexLock lock(shard.mu);
    for (Set& set : shard.sets) {
      for (Entry& e : set.ways) {
        e.s = kInvalidNode;
        e.t = kInvalidNode;
        e.chain_len = 0;
        e.data.clear();
      }
      set.next_victim = 0;
    }
  }
}

PlanCache::Stats PlanCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace oblivious
