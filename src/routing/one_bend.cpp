#include "routing/one_bend.hpp"

#include <cstdlib>

#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

namespace {

// Walks `steps` unit moves along dimension d in direction dir, appending
// each visited node. `cur` is updated in place and kept canonical.
void walk(const Mesh& mesh, Coord& cur, int d, int dir, std::int64_t steps,
          Path& path) {
  const std::size_t dd = static_cast<std::size_t>(d);
  for (std::int64_t i = 0; i < steps; ++i) {
    cur[dd] += dir;
    if (mesh.torus()) cur[dd] = pos_mod(cur[dd], mesh.side(d));
    OBLV_DCHECK(cur[dd] >= 0 && cur[dd] < mesh.side(d),
                "dimension-order walk left the mesh");
    path.nodes.push_back(mesh.node_id(cur));
  }
}

}  // namespace

void append_dim_order_path(const Mesh& mesh, const Coord& from, const Coord& to,
                           std::span<const int> order, Path& path) {
  OBLV_REQUIRE(!path.nodes.empty() && path.nodes.back() == mesh.node_id(from),
               "path must currently end at `from`");
  OBLV_REQUIRE(order.size() == static_cast<std::size_t>(mesh.dim()),
               "order must cover every dimension");
  Coord cur = from;
  for (const int d : order) {
    const std::size_t dd = static_cast<std::size_t>(d);
    const std::int64_t delta = mesh.displacement(cur[dd], to[dd], d);
    if (delta != 0) {
      walk(mesh, cur, d, delta > 0 ? 1 : -1, std::abs(delta), path);
    }
  }
  OBLV_CHECK(path.nodes.back() == mesh.node_id(to), "walk missed the target");
}

void append_path_in_region(const Mesh& mesh, const Region& region,
                           const Coord& from, const Coord& to,
                           std::span<const int> order, Path& path) {
  OBLV_REQUIRE(!path.nodes.empty() && path.nodes.back() == mesh.node_id(from),
               "path must currently end at `from`");
  OBLV_REQUIRE(order.size() == static_cast<std::size_t>(mesh.dim()),
               "order must cover every dimension");
  const Coord off_from = region.offset_of(mesh, from);
  const Coord off_to = region.offset_of(mesh, to);
  Coord cur = from;
  for (const int d : order) {
    const std::size_t dd = static_cast<std::size_t>(d);
    // Move monotonically in offset space: stays inside the region even
    // when the region wraps around the torus.
    const std::int64_t delta = off_to[dd] - off_from[dd];
    if (delta != 0) {
      walk(mesh, cur, d, delta > 0 ? 1 : -1, std::abs(delta), path);
    }
  }
  OBLV_CHECK(path.nodes.back() == mesh.node_id(to), "walk missed the target");
}

void append_dim_order_segments(const Mesh& mesh, const Coord& from,
                               const Coord& to, std::span<const int> order,
                               SegmentPath& sp) {
  OBLV_REQUIRE(order.size() == static_cast<std::size_t>(mesh.dim()),
               "order must cover every dimension");
  for (const int d : order) {
    const std::size_t dd = static_cast<std::size_t>(d);
    sp.append(d, mesh.displacement(from[dd], to[dd], d));
  }
}

void append_segments_in_region(const Mesh& mesh, const Region& region,
                               const Coord& from, const Coord& to,
                               std::span<const int> order, SegmentPath& sp) {
  OBLV_REQUIRE(order.size() == static_cast<std::size_t>(mesh.dim()),
               "order must cover every dimension");
  const Coord off_from = region.offset_of(mesh, from);
  const Coord off_to = region.offset_of(mesh, to);
  for (const int d : order) {
    const std::size_t dd = static_cast<std::size_t>(d);
    // Move monotonically in offset space, exactly like the node-list
    // append: stays inside the region even when it wraps the torus.
    sp.append(d, off_to[dd] - off_from[dd]);
  }
}

SmallVec<int, 8> identity_order(int dim) {
  OBLV_REQUIRE(dim >= 1, "dimension must be >= 1");
  SmallVec<int, 8> order;
  order.resize(static_cast<std::size_t>(dim));
  for (int d = 0; d < dim; ++d) order[static_cast<std::size_t>(d)] = d;
  return order;
}

}  // namespace oblivious
