#include "routing/staircase.hpp"

#include <cstdlib>

#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

void RandomStaircaseRouter::route_into(NodeId s, NodeId t, Rng& rng,
                                       RouteScratch& /*scratch*/,
                                       Path& out) const {
  expects_route_args(s, t);
  out.nodes.clear();
  out.nodes.push_back(s);
  Coord cur = mesh_->coord(s);
  const Coord target = mesh_->coord(t);

  // Remaining signed displacement per dimension (torus-aware shortest).
  SmallVec<std::int64_t, 8> remaining;
  remaining.resize(cur.size());
  std::int64_t total = 0;
  for (int d = 0; d < mesh_->dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    remaining[dd] = mesh_->displacement(cur[dd], target[dd], d);
    total += std::abs(remaining[dd]);
  }

  while (total > 0) {
    // Pick the dimension with probability proportional to its remaining
    // distance: sequentially uniform over all monotone shortest paths.
    std::int64_t pick = static_cast<std::int64_t>(
        rng.uniform_below(static_cast<std::uint64_t>(total)));
    int dim = 0;
    for (int d = 0; d < mesh_->dim(); ++d) {
      const std::int64_t r = std::abs(remaining[static_cast<std::size_t>(d)]);
      if (pick < r) {
        dim = d;
        break;
      }
      pick -= r;
    }
    const std::size_t dd = static_cast<std::size_t>(dim);
    const int dir = remaining[dd] > 0 ? 1 : -1;
    cur[dd] += dir;
    if (mesh_->torus()) cur[dd] = pos_mod(cur[dd], mesh_->side(dim));
    OBLV_DCHECK(cur[dd] >= 0 && cur[dd] < mesh_->side(dim),
                "staircase walk left the mesh");
    out.nodes.push_back(mesh_->node_id(cur));
    remaining[dd] -= dir;
    --total;
  }
  OBLV_CHECK(out.nodes.back() == t, "staircase walk missed the target");
  ensures_route_result(s, t, out);
}

void RandomStaircaseRouter::route_segments_into(NodeId s, NodeId t, Rng& rng,
                                                RouteScratch& /*scratch*/,
                                                SegmentPath& out) const {
  expects_route_args(s, t);
  // The staircase draws a dimension per hop, so the run structure follows
  // the draws; consecutive same-dimension hops still merge into one run.
  out.segments.clear();
  out.source = s;
  out.dest = t;
  Coord cur = mesh_->coord(s);
  const Coord target = mesh_->coord(t);

  SmallVec<std::int64_t, 8> remaining;
  remaining.resize(cur.size());
  std::int64_t total = 0;
  for (int d = 0; d < mesh_->dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    remaining[dd] = mesh_->displacement(cur[dd], target[dd], d);
    total += std::abs(remaining[dd]);
  }

  while (total > 0) {
    std::int64_t pick = static_cast<std::int64_t>(
        rng.uniform_below(static_cast<std::uint64_t>(total)));
    int dim = 0;
    for (int d = 0; d < mesh_->dim(); ++d) {
      const std::int64_t r = std::abs(remaining[static_cast<std::size_t>(d)]);
      if (pick < r) {
        dim = d;
        break;
      }
      pick -= r;
    }
    const std::size_t dd = static_cast<std::size_t>(dim);
    const int dir = remaining[dd] > 0 ? 1 : -1;
    out.append(dim, dir);
    remaining[dd] -= dir;
    --total;
  }
  ensures_route_result(s, t, out);
}

Path RandomStaircaseRouter::route(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  Path path;
  route_into(s, t, rng, scratch, path);
  return path;
}

SegmentPath RandomStaircaseRouter::route_segments(NodeId s, NodeId t,
                                                  Rng& rng) const {
  RouteScratch scratch;
  SegmentPath sp;
  route_segments_into(s, t, rng, scratch, sp);
  return sp;
}

}  // namespace oblivious
