// Sharded fixed-capacity cache of hierarchical route plans.
//
// A route *plan* -- the bitonic chain of regions, its ascent length
// `up_count`, and the bridge level -- depends only on the (source,
// destination) pair: the chain is built from deterministic decomposition
// lookups, and randomness enters only when waypoints are drawn *inside*
// the cached regions. Caching plans is therefore rng-transparent: a hit
// consumes exactly the same draws and yields byte-identical paths
// (route_into_equivalence_test proves this, including under eviction).
//
// Layout: kNumShards shards, each guarded by its own mutex and holding
// kWays-way set-associative slots. An entry stores the chain flattened as
// (anchor, extent) coordinate pairs in a vector that is reused on
// overwrite, so steady-state lookup/insert performs no heap allocation.
// Eviction is round-robin within a set. Hit/miss totals are kept as
// relaxed atomics; callers export them through the obs metrics registry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "mesh/region.hpp"
#include "mesh/types.hpp"
#include "util/thread_annotations.hpp"

namespace oblivious {

class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  // \pre capacity >= 1 (rounded up so every shard owns at least one set).
  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  // On hit fills `chain` (cleared first, capacity retained), `up_count`,
  // and `bridge_level`, and returns true. `dim` is the mesh dimension the
  // stored regions were flattened with.
  bool lookup(NodeId s, NodeId t, int dim, std::vector<Region>& chain,
              std::size_t& up_count, int& bridge_level) const;

  // Stores the plan for (s, t), evicting the set's round-robin victim if
  // every way is taken.
  void insert(NodeId s, NodeId t, int dim, const std::vector<Region>& chain,
              std::size_t up_count, int bridge_level);

  // Drops every entry (capacity and counters retained).
  void clear();

  std::size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  static constexpr std::size_t kNumShards = 64;
  static constexpr std::size_t kWays = 4;

  struct Entry {
    NodeId s = kInvalidNode;
    NodeId t = kInvalidNode;
    std::uint32_t up_count = 0;
    std::uint32_t chain_len = 0;
    std::int32_t bridge_level = 0;
    // Flattened chain: per region, dim anchors then dim extents.
    std::vector<std::int64_t> data;
  };

  struct Set {
    std::array<Entry, kWays> ways;
    std::uint8_t next_victim = 0;
  };

  struct Shard {
    mutable oblv::Mutex mu;
    std::vector<Set> sets OBLV_GUARDED_BY(mu);
  };

  static std::uint64_t mix(NodeId s, NodeId t);

  std::size_t capacity_ = 0;
  std::size_t sets_per_shard_ = 0;
  std::array<Shard, kNumShards> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace oblivious
