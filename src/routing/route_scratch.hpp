// Reusable per-caller buffers for the zero-allocation routing fast path.
//
// The allocating `Router::route` / `route_segments` APIs build a fresh
// chain vector and output container per packet; at millions of packets per
// second those mallocs dominate. `route_into` / `route_segments_into`
// instead thread a RouteScratch through every call: the chain buffer and
// the output path keep their heap capacity between packets, so after a
// short warm-up the steady state performs zero heap allocations per packet
// (proved by tests/alloc_count_test.cpp).
//
// A RouteScratch is NOT thread-safe; give each thread its own (that is
// what route_batch does). Waypoints, dimension orders, and coordinates
// need no scratch fields: they live in SmallVec inline storage for every
// mesh dimension the paper considers (d <= 8).
#pragma once

#include <vector>

#include "mesh/path.hpp"
#include "mesh/region.hpp"
#include "mesh/segment_path.hpp"

namespace oblivious {

struct RouteScratch {
  // Bitonic chain of regions (hierarchical routers). Cleared per packet,
  // capacity retained.
  std::vector<Region> chain;

  // Staging outputs for callers that route transiently (e.g. the online
  // simulator routes into `path`, converts to edges, and discards it).
  Path path;
  SegmentPath segments;

  // Staging buffer for the fault-aware decorator's greedy detour (kept
  // separate from `path`, which callers may alias as their output).
  Path fault_detour;
};

}  // namespace oblivious
