#include "routing/kchoice.hpp"

#include "util/check.hpp"

namespace oblivious {

namespace {

const Mesh& inner_mesh(const std::unique_ptr<Router>& inner) {
  OBLV_REQUIRE(inner != nullptr, "inner router required");
  return inner->mesh();
}

}  // namespace

KChoiceRouter::KChoiceRouter(std::unique_ptr<Router> inner, int kappa,
                             std::uint64_t table_seed)
    : Router(inner_mesh(inner)),
      inner_(std::move(inner)),
      kappa_(kappa),
      table_seed_(table_seed) {
  OBLV_REQUIRE(kappa_ >= 1, "kappa must be >= 1");
}

std::uint64_t KChoiceRouter::pair_seed(NodeId s, NodeId t, int index) const {
  std::uint64_t x = table_seed_;
  x = splitmix64(x ^ static_cast<std::uint64_t>(s));
  x = splitmix64(x ^ static_cast<std::uint64_t>(t));
  x = splitmix64(x ^ static_cast<std::uint64_t>(index));
  return x;
}

Path KChoiceRouter::alternative(NodeId s, NodeId t, int index) const {
  OBLV_REQUIRE(index >= 0 && index < kappa_, "alternative index out of range");
  // The alternative table is fixed: the inner router's randomness comes
  // from a deterministic per-(pair, index) seed and is NOT charged to the
  // packet's bit budget -- the table is part of the algorithm description,
  // exactly as in the Section 5 model.
  Rng inner_rng(pair_seed(s, t, index));
  return inner_->route(s, t, inner_rng);
}

Path KChoiceRouter::route(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  const int index =
      static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(kappa_)));
  Path p = alternative(s, t, index);
  ensures_route_result(s, t, p);
  return p;
}

SegmentPath KChoiceRouter::route_segments(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  const int index =
      static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(kappa_)));
  Rng inner_rng(pair_seed(s, t, index));
  SegmentPath sp = inner_->route_segments(s, t, inner_rng);
  ensures_route_result(s, t, sp);
  return sp;
}

void KChoiceRouter::route_into(NodeId s, NodeId t, Rng& rng,
                               RouteScratch& scratch, Path& out) const {
  expects_route_args(s, t);
  // Same draw order as `route`: one index choice from the packet's rng;
  // the inner router then runs on the fixed per-(pair, index) seed.
  const int index =
      static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(kappa_)));
  Rng inner_rng(pair_seed(s, t, index));
  inner_->route_into(s, t, inner_rng, scratch, out);
  ensures_route_result(s, t, out);
}

void KChoiceRouter::route_segments_into(NodeId s, NodeId t, Rng& rng,
                                        RouteScratch& scratch,
                                        SegmentPath& out) const {
  expects_route_args(s, t);
  const int index =
      static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(kappa_)));
  Rng inner_rng(pair_seed(s, t, index));
  inner_->route_segments_into(s, t, inner_rng, scratch, out);
  ensures_route_result(s, t, out);
}

std::string KChoiceRouter::name() const {
  return inner_->name() + "-k" + std::to_string(kappa_);
}

}  // namespace oblivious
