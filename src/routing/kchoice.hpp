// The kappa-choice algorithm model of Section 5.
//
// A path-selection algorithm A is a kappa-choice algorithm if for every
// pair (s, t) it picks the path from kappa fixed alternatives, using
// log2(kappa) random bits. kappa = 1 is a deterministic algorithm; the
// paper's lower bound (Lemma 5.1) says any kappa-choice algorithm suffers
// expected congestion >= l / (kappa d) on its adversarial instance Pi_A,
// so near-optimal congestion needs kappa (and hence the per-packet random
// bits) to grow with the network.
//
// KChoiceRouter turns any randomized router into a kappa-choice algorithm:
// the kappa alternatives for (s, t) are the paths the inner router
// produces from kappa deterministic per-pair seeds, and the only true
// randomness spent per packet is the log2(kappa)-bit index choice. This
// lets the experiments interpolate between deterministic routing and the
// full algorithm and measure congestion as a function of the random-bit
// budget (experiment E10).
#pragma once

#include <memory>

#include "routing/router.hpp"

namespace oblivious {

class KChoiceRouter final : public Router {
 public:
  // `table_seed` fixes the alternative table (two routers with the same
  // inner algorithm, kappa, and table_seed offer identical alternatives).
  // \pre inner != nullptr and kappa >= 1.
  KChoiceRouter(std::unique_ptr<Router> inner, int kappa,
                std::uint64_t table_seed = 0x5eedUL);

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                           SegmentPath& out) const override;
  std::string name() const override;
  bool deterministic() const override { return kappa_ == 1; }

  int kappa() const { return kappa_; }
  const Router& inner() const { return *inner_; }

  // The i-th fixed alternative for the pair (exposed for analysis).
  // \pre 0 <= index < kappa().
  Path alternative(NodeId s, NodeId t, int index) const;

 private:
  std::uint64_t pair_seed(NodeId s, NodeId t, int index) const;

  std::unique_ptr<Router> inner_;
  int kappa_;
  std::uint64_t table_seed_;
};

}  // namespace oblivious
