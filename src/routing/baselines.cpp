#include "routing/baselines.hpp"

#include "routing/one_bend.hpp"
#include "util/check.hpp"

namespace oblivious {

namespace {

// The baselines need no scratch state: their only intermediates are
// SmallVec-inline coordinates and permutations. The *_into entry points
// exist so callers can reuse the output's capacity across packets.
inline void reset_path(NodeId s, NodeId /*t*/, Path& out) {
  out.nodes.clear();
  out.nodes.push_back(s);
}
inline void reset_path(NodeId s, NodeId t, SegmentPath& out) {
  out.segments.clear();
  out.source = s;
  out.dest = t;
}

}  // namespace

void DimensionOrderRouter::route_into(NodeId s, NodeId t, Rng& /*rng*/,
                                      RouteScratch& /*scratch*/,
                                      Path& out) const {
  expects_route_args(s, t);
  reset_path(s, t, out);
  const auto order = identity_order(mesh_->dim());
  append_dim_order_path(*mesh_, mesh_->coord(s), mesh_->coord(t),
                        std::span<const int>(order.data(), order.size()), out);
  ensures_route_result(s, t, out);
}

void DimensionOrderRouter::route_segments_into(NodeId s, NodeId t,
                                               Rng& /*rng*/,
                                               RouteScratch& /*scratch*/,
                                               SegmentPath& out) const {
  expects_route_args(s, t);
  reset_path(s, t, out);
  const auto order = identity_order(mesh_->dim());
  append_dim_order_segments(*mesh_, mesh_->coord(s), mesh_->coord(t),
                            std::span<const int>(order.data(), order.size()),
                            out);
  ensures_route_result(s, t, out);
}

Path DimensionOrderRouter::route(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  Path path;
  route_into(s, t, rng, scratch, path);
  return path;
}

SegmentPath DimensionOrderRouter::route_segments(NodeId s, NodeId t,
                                                 Rng& rng) const {
  RouteScratch scratch;
  SegmentPath sp;
  route_segments_into(s, t, rng, scratch, sp);
  return sp;
}

void RandomDimOrderRouter::route_into(NodeId s, NodeId t, Rng& rng,
                                      RouteScratch& /*scratch*/,
                                      Path& out) const {
  expects_route_args(s, t);
  reset_path(s, t, out);
  const auto order = rng.random_permutation(mesh_->dim());
  append_dim_order_path(*mesh_, mesh_->coord(s), mesh_->coord(t),
                        std::span<const int>(order.data(), order.size()), out);
  ensures_route_result(s, t, out);
}

void RandomDimOrderRouter::route_segments_into(NodeId s, NodeId t, Rng& rng,
                                               RouteScratch& /*scratch*/,
                                               SegmentPath& out) const {
  expects_route_args(s, t);
  reset_path(s, t, out);
  const auto order = rng.random_permutation(mesh_->dim());
  append_dim_order_segments(*mesh_, mesh_->coord(s), mesh_->coord(t),
                            std::span<const int>(order.data(), order.size()),
                            out);
  ensures_route_result(s, t, out);
}

Path RandomDimOrderRouter::route(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  Path path;
  route_into(s, t, rng, scratch, path);
  return path;
}

SegmentPath RandomDimOrderRouter::route_segments(NodeId s, NodeId t,
                                                 Rng& rng) const {
  RouteScratch scratch;
  SegmentPath sp;
  route_segments_into(s, t, rng, scratch, sp);
  return sp;
}

void ValiantRouter::route_into(NodeId s, NodeId t, Rng& rng,
                               RouteScratch& /*scratch*/, Path& out) const {
  expects_route_args(s, t);
  reset_path(s, t, out);
  if (s == t) return;
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const Region whole = Region::whole(*mesh_);
  const Coord mid = whole.random_coord(*mesh_, rng);
  const auto order1 = rng.random_permutation(mesh_->dim());
  append_dim_order_path(*mesh_, cs, mid,
                        std::span<const int>(order1.data(), order1.size()),
                        out);
  const auto order2 = rng.random_permutation(mesh_->dim());
  append_dim_order_path(*mesh_, mid, ct,
                        std::span<const int>(order2.data(), order2.size()),
                        out);
  ensures_route_result(s, t, out);
}

void ValiantRouter::route_segments_into(NodeId s, NodeId t, Rng& rng,
                                        RouteScratch& /*scratch*/,
                                        SegmentPath& out) const {
  expects_route_args(s, t);
  reset_path(s, t, out);
  if (s == t) return;
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const Region whole = Region::whole(*mesh_);
  const Coord mid = whole.random_coord(*mesh_, rng);
  const auto order1 = rng.random_permutation(mesh_->dim());
  append_dim_order_segments(*mesh_, cs, mid,
                            std::span<const int>(order1.data(), order1.size()),
                            out);
  const auto order2 = rng.random_permutation(mesh_->dim());
  append_dim_order_segments(*mesh_, mid, ct,
                            std::span<const int>(order2.data(), order2.size()),
                            out);
  ensures_route_result(s, t, out);
}

Path ValiantRouter::route(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  Path path;
  route_into(s, t, rng, scratch, path);
  return path;
}

SegmentPath ValiantRouter::route_segments(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  SegmentPath sp;
  route_segments_into(s, t, rng, scratch, sp);
  return sp;
}

}  // namespace oblivious
