#include "routing/baselines.hpp"

#include "routing/one_bend.hpp"
#include "util/check.hpp"

namespace oblivious {

Path DimensionOrderRouter::route(NodeId s, NodeId t, Rng& /*rng*/) const {
  expects_route_args(s, t);
  Path path;
  path.nodes.push_back(s);
  const auto order = identity_order(mesh_->dim());
  append_dim_order_path(*mesh_, mesh_->coord(s), mesh_->coord(t),
                        std::span<const int>(order.data(), order.size()), path);
  ensures_route_result(s, t, path);
  return path;
}

SegmentPath DimensionOrderRouter::route_segments(NodeId s, NodeId t,
                                                 Rng& /*rng*/) const {
  expects_route_args(s, t);
  SegmentPath sp;
  sp.source = s;
  sp.dest = t;
  const auto order = identity_order(mesh_->dim());
  append_dim_order_segments(*mesh_, mesh_->coord(s), mesh_->coord(t),
                            std::span<const int>(order.data(), order.size()),
                            sp);
  ensures_route_result(s, t, sp);
  return sp;
}

Path RandomDimOrderRouter::route(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  Path path;
  path.nodes.push_back(s);
  const auto order = rng.random_permutation(mesh_->dim());
  append_dim_order_path(*mesh_, mesh_->coord(s), mesh_->coord(t),
                        std::span<const int>(order.data(), order.size()), path);
  ensures_route_result(s, t, path);
  return path;
}

SegmentPath RandomDimOrderRouter::route_segments(NodeId s, NodeId t,
                                                 Rng& rng) const {
  expects_route_args(s, t);
  SegmentPath sp;
  sp.source = s;
  sp.dest = t;
  const auto order = rng.random_permutation(mesh_->dim());
  append_dim_order_segments(*mesh_, mesh_->coord(s), mesh_->coord(t),
                            std::span<const int>(order.data(), order.size()),
                            sp);
  ensures_route_result(s, t, sp);
  return sp;
}

Path ValiantRouter::route(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  if (s == t) return Path{{s}};
  Path path;
  path.nodes.push_back(s);
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const Region whole = Region::whole(*mesh_);
  const Coord mid = whole.random_coord(*mesh_, rng);
  const auto order1 = rng.random_permutation(mesh_->dim());
  append_dim_order_path(*mesh_, cs, mid,
                        std::span<const int>(order1.data(), order1.size()), path);
  const auto order2 = rng.random_permutation(mesh_->dim());
  append_dim_order_path(*mesh_, mid, ct,
                        std::span<const int>(order2.data(), order2.size()), path);
  ensures_route_result(s, t, path);
  return path;
}

SegmentPath ValiantRouter::route_segments(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  SegmentPath sp;
  sp.source = s;
  sp.dest = t;
  if (s == t) return sp;
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const Region whole = Region::whole(*mesh_);
  const Coord mid = whole.random_coord(*mesh_, rng);
  const auto order1 = rng.random_permutation(mesh_->dim());
  append_dim_order_segments(*mesh_, cs, mid,
                            std::span<const int>(order1.data(), order1.size()),
                            sp);
  const auto order2 = rng.random_permutation(mesh_->dim());
  append_dim_order_segments(*mesh_, mid, ct,
                            std::span<const int>(order2.data(), order2.size()),
                            sp);
  ensures_route_result(s, t, sp);
  return sp;
}

}  // namespace oblivious
