// Bounded (locality-preserving) Valiant routing.
//
// A folklore fix for Valiant-Brebner's diameter-scale stretch: pick the
// random intermediate node inside the bounding box of source and
// destination instead of the whole mesh. Stretch is then at most 3, but
// the congestion guarantee degrades -- for traffic concentrated in a thin
// slab the box is thin and the randomization cannot spread load across the
// orthogonal dimension, which is exactly the gap the paper's bridge
// submeshes close (the bridge is a *square* region of side O(d dist), not
// the skewed bounding box). Included as a baseline so the experiments can
// show the difference.
#pragma once

#include "routing/router.hpp"

namespace oblivious {

class BoundedValiantRouter final : public Router {
 public:
  // `margin` inflates the bounding box by margin * dist(s, t) nodes per
  // side (clipped to the mesh): 0 is the pure bounding box.
  // \pre margin >= 0.
  explicit BoundedValiantRouter(const Mesh& mesh, double margin = 0.0);

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                           SegmentPath& out) const override;
  std::string name() const override;

  // The sampling region for a pair (exposed for tests).
  Region box_for(NodeId s, NodeId t) const;

 private:
  double margin_;
};

}  // namespace oblivious
