#include "routing/registry.hpp"

#include "routing/baselines.hpp"
#include "routing/bounded_valiant.hpp"
#include "routing/hierarchical.hpp"
#include "routing/staircase.hpp"
#include "util/check.hpp"

namespace oblivious {

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kEcube,          Algorithm::kRandomDimOrder,
          Algorithm::kStaircase,      Algorithm::kValiant,
          Algorithm::kBoundedValiant,
          Algorithm::kAccessTree,     Algorithm::kHierarchical2d,
          Algorithm::kHierarchicalNd, Algorithm::kHierarchicalNdFrugal};
}

std::vector<Algorithm> algorithms_for(const Mesh& mesh) {
  std::vector<Algorithm> out = {Algorithm::kEcube, Algorithm::kRandomDimOrder,
                                Algorithm::kStaircase, Algorithm::kValiant,
                                Algorithm::kBoundedValiant};
  if (mesh.is_square() && mesh.sides_power_of_two()) {
    out.insert(out.end(),
               {Algorithm::kAccessTree, Algorithm::kHierarchical2d,
                Algorithm::kHierarchicalNd, Algorithm::kHierarchicalNdFrugal});
  }
  return out;
}

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kEcube:
      return "ecube";
    case Algorithm::kRandomDimOrder:
      return "random-dim-order";
    case Algorithm::kStaircase:
      return "staircase";
    case Algorithm::kValiant:
      return "valiant";
    case Algorithm::kBoundedValiant:
      return "bounded-valiant";
    case Algorithm::kAccessTree:
      return "access-tree";
    case Algorithm::kHierarchical2d:
      return "hierarchical-2d";
    case Algorithm::kHierarchicalNd:
      return "hierarchical-nd";
    case Algorithm::kHierarchicalNdFrugal:
      return "hierarchical-nd-frugal";
  }
  OBLV_UNREACHABLE("unknown algorithm");
}

std::optional<Algorithm> algorithm_from_name(const std::string& name) {
  for (const Algorithm a : all_algorithms()) {
    if (algorithm_name(a) == name) return a;
  }
  return std::nullopt;
}

std::unique_ptr<Router> make_router(Algorithm algorithm, const Mesh& mesh) {
  switch (algorithm) {
    case Algorithm::kEcube:
      return std::make_unique<DimensionOrderRouter>(mesh);
    case Algorithm::kRandomDimOrder:
      return std::make_unique<RandomDimOrderRouter>(mesh);
    case Algorithm::kStaircase:
      return std::make_unique<RandomStaircaseRouter>(mesh);
    case Algorithm::kValiant:
      return std::make_unique<ValiantRouter>(mesh);
    case Algorithm::kBoundedValiant:
      return std::make_unique<BoundedValiantRouter>(mesh);
    case Algorithm::kAccessTree:
      return std::make_unique<AncestorRouter>(mesh,
                                              AncestorRouter::Hierarchy::kAccessTree);
    case Algorithm::kHierarchical2d:
      return std::make_unique<AncestorRouter>(
          mesh, AncestorRouter::Hierarchy::kAccessGraph);
    case Algorithm::kHierarchicalNd:
      return std::make_unique<NdRouter>(mesh, NdRouter::RandomnessMode::kNaive);
    case Algorithm::kHierarchicalNdFrugal:
      return std::make_unique<NdRouter>(mesh, NdRouter::RandomnessMode::kFrugal);
  }
  OBLV_UNREACHABLE("unknown algorithm");
}

}  // namespace oblivious
