// Baseline oblivious path-selection algorithms.
//
//  * DimensionOrderRouter -- deterministic e-cube (XY) routing: correct
//    dimension 0 first, then 1, ... This is the classic kappa = 1
//    algorithm whose congestion the Section 5.1 construction shows is
//    Omega(D/d) in the worst case.
//  * RandomDimOrderRouter -- the same one-bend routes but the order of
//    dimensions is a fresh random permutation per packet (the randomized
//    dimension-by-dimension routing the paper builds on).
//  * ValiantRouter -- Valiant-Brebner routing: a uniformly random
//    intermediate node in the whole mesh, dimension-order on both legs.
//    Near-optimal congestion for worst-case permutations but stretch
//    Theta(diameter / dist): locality is destroyed.
#pragma once

#include "routing/router.hpp"

namespace oblivious {

class DimensionOrderRouter final : public Router {
 public:
  explicit DimensionOrderRouter(const Mesh& mesh) : Router(mesh) {}

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                           SegmentPath& out) const override;
  std::string name() const override { return "ecube"; }
  bool deterministic() const override { return true; }
};

class RandomDimOrderRouter final : public Router {
 public:
  explicit RandomDimOrderRouter(const Mesh& mesh) : Router(mesh) {}

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                           SegmentPath& out) const override;
  std::string name() const override { return "random-dim-order"; }
};

class ValiantRouter final : public Router {
 public:
  explicit ValiantRouter(const Mesh& mesh) : Router(mesh) {}

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                           SegmentPath& out) const override;
  std::string name() const override { return "valiant"; }
};

}  // namespace oblivious
